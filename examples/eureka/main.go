// Parallel search with an OR-barrier (paper Section 4.3.2): 64 cores probe
// a key space; the first to find the target triggers the eureka and all
// others stop immediately instead of finishing their shards. The broadcast
// variable makes the "stop everyone" signal a single wireless store.
package main

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
)

func main() {
	const keySpace = 1 << 20
	const target = 777_777

	m := core.NewMachine(config.New(config.WiSync, 64))
	f := syncprims.NewFactory(m)
	eureka := f.NewEureka()

	var finder, probesDone int
	m.SpawnAll(func(t *core.Thread) {
		shard := keySpace / 64
		lo := t.Core * shard
		rng := sim.NewRand(uint64(t.Core))
		for k := lo; k < lo+shard; k += 4096 {
			// Probe a block of keys (~costly hash checks).
			t.Compute(200 + rng.Intn(100))
			probesDone++
			if k <= target && target < k+4096 {
				finder = t.Core
				eureka.Trigger(t)
				return
			}
			if eureka.Triggered(t) {
				return // someone else found it; stop early
			}
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("core %d found the key at cycle %d\n", finder, m.Now())
	fmt.Printf("probes executed: %d of %d possible (early stop saved %.0f%%)\n",
		probesDone, 64*(keySpace/64/4096),
		100*(1-float64(probesDone)/float64(64*(keySpace/64/4096))))
}
