// Quickstart: build a 64-core WiSync machine, let every core contribute to
// a global reduction through Broadcast-Memory fetch&add, and close the
// phase with a Tone-channel barrier — the two signature operations of the
// architecture.
package main

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/syncprims"
)

func main() {
	cfg := config.New(config.WiSync, 64)
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)

	sum := f.NewReducer(0)       // a broadcast variable updated by fetch&add
	barrier := f.NewBarrier(nil) // a Tone-channel barrier over all cores

	m.SpawnAll(func(t *core.Thread) {
		// Each core computes a partial result...
		t.Compute(100 + 13*t.Core)
		// ...contributes it with a single wireless fetch&add...
		sum.Add(t, uint64(t.Core+1))
		// ...and waits for everyone at the tone barrier.
		barrier.Wait(t)
		if t.Core == 0 {
			fmt.Printf("after barrier at cycle %d: sum = %d\n",
				t.Proc().Now(), sum.Value(t))
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("total: %d cycles for 64 fetch&adds + 1 tone barrier\n", m.Now())
	fmt.Printf("wireless messages: %d, collisions: %d, channel utilization: %.2f%%\n",
		m.Net.Stats.Messages, m.Net.Stats.Collisions, 100*m.DataChannelUtilization())
	fmt.Printf("tone barriers completed: %d\n", m.Tone.Stats.Completions)
}
