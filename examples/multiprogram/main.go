// Multiprogramming on one WiSync chip (paper Sections 3.2, 4.4, 5.1): two
// programs share the Broadcast Memory and the Tone channel. Each allocates
// its own tone barrier (the two barriers time-share the channel slots),
// PID tags isolate their BM entries, and a deliberate cross-program access
// demonstrates the protection fault.
package main

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
)

func main() {
	m := core.NewMachine(config.New(config.WiSync, 8))

	// Program A (PID 1) runs on cores 0-3, program B (PID 2) on 4-7.
	// Each gets a broadcast counter and a tone barrier of its own.
	ctrA, _ := m.BM.AllocBare(1, false)
	ctrB, _ := m.BM.AllocBare(2, false)
	barA, _ := m.Tone.AllocateBare(1, []int{0, 1, 2, 3})
	barB, _ := m.Tone.AllocateBare(2, []int{4, 5, 6, 7})

	for c := 0; c < 4; c++ {
		m.Spawn(fmt.Sprintf("A%d", c), c, 1, func(t *core.Thread) {
			t.Compute(10 * (t.Core + 1))
			t.BMFetchAdd(ctrA, 1)
			t.ToneStore(barA)
			t.ToneWait(barA, 1)
			if t.Core == 0 {
				fmt.Printf("program A: counter=%d, released at cycle %d\n",
					t.BMLoad(ctrA), t.Proc().Now())
			}
		})
	}
	for c := 4; c < 8; c++ {
		m.Spawn(fmt.Sprintf("B%d", c), c, 2, func(t *core.Thread) {
			t.Compute(25 * (t.Core - 3))
			t.BMFetchAdd(ctrB, 2)
			t.ToneStore(barB)
			t.ToneWait(barB, 1)
			if t.Core == 4 {
				fmt.Printf("program B: counter=%d, released at cycle %d\n",
					t.BMLoad(ctrB), t.Proc().Now())
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("tone barriers completed: %d (both programs, one shared Tone channel)\n",
		m.Tone.Stats.Completions)

	// Protection: program B touching program A's counter faults.
	m.Spawn("intruder", 4, 2, func(t *core.Thread) {
		if _, err := t.TryBMLoad(ctrA); err != nil {
			fmt.Printf("protection works: %v\n", err)
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
}
