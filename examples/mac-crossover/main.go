// MAC crossover: where does token passing beat carrier-sense backoff on
// the shared wireless channel?
//
// The program drains a synchronized N-message storm (every node transmits
// in the same cycle — the arrival pattern a barrier release generates)
// under four arbitration setups and prints the drain time per message:
//
//   - backoff+fifo: the paper's design — carrier sensing, binary
//     exponential backoff, busy-deferred senders queued FIFO;
//   - backoff+csma: the same collision resolution but pure 1-persistent
//     CSMA (every deferred sender re-contends at busy-end);
//   - token: collision-free round-robin token rotation;
//   - adaptive+csma: the traffic-aware switcher on top of the CSMA
//     channel.
//
// Two regimes bound the design space. Against pure CSMA, the token wins
// from small storm sizes: re-contention collapses into repeated collision
// rounds while the token serializes the storm at one hop per grant. The
// paper's FIFO busy-deferral, however, is already an implicit global
// queue — collisions only happen between same-slot arrivals — so it
// stays ahead of the token everywhere (the rotation latency it avoids
// grows with the ring size), which is why the paper's simple scheme holds
// up and why the adaptive MAC is the interesting protocol only on
// channels without a deferral queue. A lone periodic sender (second
// table) shows the token's worst case: a full ring rotation per message.
package main

import (
	"fmt"

	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// storm starts one message on every node in cycle 0 and returns the cycle
// the last commit lands, plus the channel counters.
func storm(nodes int, p wireless.Params) (sim.Time, wireless.Stats, wireless.MACStats) {
	eng := sim.NewEngine(42)
	n := wireless.New(eng, nodes, p)
	for c := 0; c < nodes; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
			n.Send(pp, wireless.Msg{Src: c}, nil)
		})
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Now(), n.Stats, n.MACCounters()
}

// lone sends msgs messages from node 0 with idle gaps, the token's worst
// case: each message pays a full ring rotation.
func lone(nodes, msgs int, p wireless.Params) sim.Time {
	eng := sim.NewEngine(42)
	n := wireless.New(eng, nodes, p)
	eng.Go("n0", func(pp *sim.Proc) {
		for i := 0; i < msgs; i++ {
			n.Send(pp, wireless.Msg{Src: 0}, nil)
			pp.Sleep(3)
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Now()
}

func setups() []struct {
	name string
	p    wireless.Params
} {
	fifo := wireless.DefaultParams()
	csma := wireless.DefaultParams()
	csma.Defer = wireless.DeferContend
	token := wireless.DefaultParams()
	token.MAC = wireless.MACToken
	adaptive := wireless.DefaultParams()
	adaptive.MAC = wireless.MACAdaptive
	adaptive.Defer = wireless.DeferContend
	adaptive.AdaptiveWindow = 16
	return []struct {
		name string
		p    wireless.Params
	}{
		{"backoff+fifo", fifo},
		{"backoff+csma", csma},
		{"token", token},
		{"adaptive+csma", adaptive},
	}
}

func main() {
	fmt.Println("Synchronized storm: cycles/message to drain N simultaneous senders")
	fmt.Printf("%8s", "N")
	for _, s := range setups() {
		fmt.Printf("  %13s", s.name)
	}
	fmt.Println()
	for _, nodes := range []int{4, 16, 64, 256} {
		fmt.Printf("%8d", nodes)
		for _, s := range setups() {
			drain, _, _ := storm(nodes, s.p)
			fmt.Printf("  %13.1f", float64(drain)/float64(nodes))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Collision counts for the 256-node storm (why the ranking flips):")
	for _, s := range setups() {
		_, st, mc := storm(256, s.p)
		fmt.Printf("  %-13s  collisions=%-5d token-waits=%-6d mode-switches=%d\n",
			s.name, st.Collisions, mc.TokenWaitCycles, mc.ModeSwitches)
	}
	fmt.Println()
	fmt.Println("Lone sender, 40 messages on a 64-node ring: total cycles")
	for _, s := range setups() {
		fmt.Printf("  %-13s  %6d\n", s.name, lone(64, 40, s.p))
	}
}
