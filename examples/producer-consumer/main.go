// Producer-consumer over Broadcast Memory (paper Section 4.3.4): a
// producer streams 4-word batches to a consumer through a full/empty flag.
// On WiSync the data moves in single 15-cycle Bulk messages; the same code
// on the Baseline machine pays coherence round trips per word. The example
// prints the per-batch cost on both.
package main

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/syncprims"
)

func main() {
	const batches = 50
	for _, kind := range []config.Kind{config.WiSync, config.Baseline} {
		m := core.NewMachine(config.New(kind, 16))
		f := syncprims.NewFactory(m)
		pc := f.NewPC(4) // 4-word channel: Bulk transfers on WiSync

		var received uint64
		m.Spawn("producer", 0, 1, func(t *core.Thread) {
			for i := 0; i < batches; i++ {
				base := uint64(i * 4)
				pc.Produce(t, []uint64{base, base + 1, base + 2, base + 3})
			}
		})
		m.Spawn("consumer", 15, 1, func(t *core.Thread) {
			buf := make([]uint64, 4)
			for i := 0; i < batches; i++ {
				pc.Consume(t, buf)
				for _, v := range buf {
					received += v
				}
			}
		})
		if err := m.Run(); err != nil {
			panic(err)
		}
		want := uint64(4*batches) * uint64(4*batches-1) / 2
		fmt.Printf("%-9s: %d batches in %6d cycles (%.0f cycles/batch), checksum %d (want %d)\n",
			kind, batches, m.Now(), float64(m.Now())/batches, received, want)
	}
}
