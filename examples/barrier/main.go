// Barrier shoot-out: the paper's Figure 7 in miniature. Runs a tight
// barrier loop on all four Table 2 machines at several core counts and
// prints cycles per barrier episode, showing the centralized barrier
// degrading with core count while the Tone barrier stays flat.
package main

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/syncprims"
)

func main() {
	const episodes = 20
	fmt.Printf("%-8s", "cores")
	for _, k := range config.Kinds {
		fmt.Printf("%12s", k)
	}
	fmt.Println(" (cycles/barrier)")
	for _, cores := range []int{16, 64, 128} {
		fmt.Printf("%-8d", cores)
		for _, k := range config.Kinds {
			m := core.NewMachine(config.New(k, cores))
			b := syncprims.NewFactory(m).NewBarrier(nil)
			m.SpawnAll(func(t *core.Thread) {
				for e := 0; e < episodes; e++ {
					t.Compute(50)
					b.Wait(t)
				}
			})
			if err := m.Run(); err != nil {
				panic(err)
			}
			fmt.Printf("%12d", m.Now()/episodes)
		}
		fmt.Println()
	}
}
