// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus ablations of the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration regenerates the corresponding table/figure with
// reduced sweep sizes (the full-size sweeps are the cmd/wisync-bench tool).
// Reported ns/op is wall time to reproduce the experiment; custom metrics
// carry headline simulated results so regressions in *shape* show up in
// benchmark diffs.
package wisync_test

import (
	"testing"

	"wisync/internal/apps"
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/harness"
	"wisync/internal/kernels"
	"wisync/internal/sim"
	"wisync/internal/stats"
	"wisync/internal/syncprims"
	"wisync/internal/wireless"
)

func quickOpts() harness.Options { return harness.Options{Quick: true} }

// BenchmarkTable4AreaPower regenerates Table 4 (analytic RF scaling model).
func BenchmarkTable4AreaPower(b *testing.B) {
	var atomAreaPct float64
	for i := 0; i < b.N; i++ {
		rows := harness.Table4(quickOpts())
		atomAreaPct = rows[1].AreaPct
	}
	b.ReportMetric(atomAreaPct, "atom-area-%")
}

// BenchmarkFig7TightLoop regenerates Figure 7 (TightLoop vs core count).
func BenchmarkFig7TightLoop(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig7(quickOpts())
		var base, w float64
		for _, r := range rows {
			if r.Cores == 128 {
				switch r.Kind {
				case config.Baseline:
					base = r.CyclesPerIter
				case config.WiSync:
					w = r.CyclesPerIter
				}
			}
		}
		speedup = base / w
	}
	b.ReportMetric(speedup, "baseline/wisync@128c")
}

// BenchmarkFig8Livermore regenerates Figure 8 (Livermore loops 2, 3, 6).
func BenchmarkFig8Livermore(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig8(quickOpts())
		var base, w float64
		for _, r := range rows {
			if r.Loop == 2 && r.Length == 16 && r.Cores == 64 {
				switch r.Kind {
				case config.Baseline:
					base = float64(r.Cycles)
				case config.WiSync:
					w = float64(r.Cycles)
				}
			}
		}
		adv = base / w
	}
	b.ReportMetric(adv, "loop2-n16-advantage")
}

// BenchmarkFig9CAS regenerates Figure 9 (CAS throughput).
func BenchmarkFig9CAS(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig9(quickOpts())
		var base, w float64
		for _, r := range rows {
			if r.Kernel == kernels.ADD && r.CSInstr == 16 && r.Cores == 64 {
				switch r.Kind {
				case config.Baseline:
					base = r.Per1000
				case config.WiSync:
					w = r.Per1000
				}
			}
		}
		gap = w / base
	}
	b.ReportMetric(gap, "contended-gap-x")
}

// BenchmarkFig10Apps regenerates Figure 10 (application speedups).
func BenchmarkFig10Apps(b *testing.B) {
	var gm float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig10(quickOpts())
		var w []float64
		for _, r := range rows {
			w = append(w, r.Speedup[config.WiSync])
		}
		gm = stats.GeoMean(w)
	}
	b.ReportMetric(gm, "wisync-geomean")
}

// BenchmarkTable5Utilization regenerates Table 5 (channel utilization).
func BenchmarkTable5Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table5(quickOpts(), nil)
	}
}

// BenchmarkFig11Sensitivity regenerates Figure 11 (Table 6 variants).
func BenchmarkFig11Sensitivity(b *testing.B) {
	var slowNetGM float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig11(quickOpts())
		for _, r := range rows {
			if r.Variant == config.SlowNet && r.Kind == config.WiSync {
				slowNetGM = r.GeoMean
			}
		}
	}
	b.ReportMetric(slowNetGM, "slownet-geomean")
}

// BenchmarkTxnContended is the continuation-rewrite workload: every core
// hammers one synchronization word with fetch&add, so the entire run is
// back-to-back contended transactions — directory-line storms through mem
// on Baseline, broadcast RMW storms through bmem/wireless on WiSyncNoT.
// ns/op is simulator wall time; cyc is the simulated result, which must not
// move when the engine changes (the golden-conformance suite pins the same
// paths exactly).
func BenchmarkTxnContended(b *testing.B) {
	const cores = 64
	const opsPerCore = 50
	b.Run("mem", func(b *testing.B) {
		var cyc float64
		for i := 0; i < b.N; i++ {
			m := core.NewMachine(config.New(config.Baseline, cores))
			line := m.AllocLine()
			m.SpawnAll(func(t *core.Thread) {
				for k := 0; k < opsPerCore; k++ {
					t.FetchAdd(line, 1)
				}
			})
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if got := m.Mem.Peek(line); got != cores*opsPerCore {
				b.Fatalf("fetch&add lost updates: %d != %d", got, cores*opsPerCore)
			}
			cyc = float64(m.Now())
		}
		b.ReportMetric(cyc, "cyc")
	})
	b.Run("bmem", func(b *testing.B) {
		var cyc float64
		for i := 0; i < b.N; i++ {
			m := core.NewMachine(config.New(config.WiSyncNoT, cores))
			addr, err := m.BM.AllocBare(1, false)
			if err != nil {
				b.Fatal(err)
			}
			m.SpawnAll(func(t *core.Thread) {
				for k := 0; k < opsPerCore; k++ {
					t.BMFetchAdd(addr, 1)
				}
			})
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if got := m.BM.Peek(addr); got != cores*opsPerCore {
				b.Fatalf("broadcast fetch&add lost updates: %d != %d", got, cores*opsPerCore)
			}
			cyc = float64(m.Now())
		}
		b.ReportMetric(cyc, "cyc")
	})
}

// BenchmarkTaskTightLoop pins the workload-execution modes against each
// other on the scaling regime that motivated the continuation conversion:
// a single 256-core TightLoop point per machine substrate (Baseline's
// directory storms, WiSyncNoT's Data-channel storms). The "task" variants
// run goroutine-free on the engine goroutine; the "thread" variants pay
// one goroutine park/unpark per forced suspension. Simulated results are
// bit-identical by construction (cyc must never differ between the modes —
// the equivalence suite enforces it; here it is reported so benchmark
// diffs catch drift too).
func BenchmarkTaskTightLoop(b *testing.B) {
	const cores = 256
	const iters = 10
	run := func(kind config.Kind, exec kernels.Exec) func(b *testing.B) {
		return func(b *testing.B) {
			var cyc float64
			for i := 0; i < b.N; i++ {
				r := kernels.TightLoopExec(config.New(kind, cores), iters, exec)
				cyc = float64(r.Cycles)
			}
			b.ReportMetric(cyc, "cyc")
		}
	}
	b.Run("task-baseline", run(config.Baseline, kernels.ExecTask))
	b.Run("thread-baseline", run(config.Baseline, kernels.ExecThread))
	b.Run("task-wnot", run(config.WiSyncNoT, kernels.ExecTask))
	b.Run("thread-wnot", run(config.WiSyncNoT, kernels.ExecThread))
}

// BenchmarkFig10App pins the full-application path on one representative
// profile: streamcluster (the headline Figure 10 bar — barrier-phase bound
// with reductions) at the Fig10 geometry, task vs thread execution. ns/op
// is simulator wall time and allocs/op the interpreter's allocation rate —
// task mode must stay goroutine-free and near-allocation-free; cyc is the
// simulated result, identical between the modes by construction (the apps
// equivalence suite enforces it; reported so benchmark diffs catch drift
// too).
func BenchmarkFig10App(b *testing.B) {
	p, ok := apps.ByName("streamcluster")
	if !ok {
		b.Fatal("streamcluster profile missing")
	}
	p.Iterations = 4
	run := func(exec core.Exec) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := config.New(config.WiSyncNoT, 64)
			var cyc float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := apps.RunExec(cfg, p, exec)
				cyc = float64(r.Cycles)
			}
			b.ReportMetric(cyc, "cyc")
		}
	}
	b.Run("task", run(core.ExecTask))
	b.Run("thread", run(core.ExecThread))
}

// BenchmarkShardedPoint pins the sharded-engine overhead on the tentpole
// target: one 256-core WiSync TightLoop point, unsharded vs partitioned
// into 1 and 4 shards. Sharding is exact, so cyc must be identical across
// the variants (the golden shard-invariance suite proves it end to end;
// the cross-check here makes benchmark diffs catch drift too). ns/op
// measures what the partitioned dispatch costs on this host: on a
// single-core runner the drain rounds run serially and the variants show
// pure bookkeeping overhead; with 4+ host cores the rounds fan out across
// goroutines.
func BenchmarkShardedPoint(b *testing.B) {
	const cores = 256
	const iters = 10
	var cycs [3]float64
	run := func(idx, shards int) func(b *testing.B) {
		return func(b *testing.B) {
			var cyc float64
			for i := 0; i < b.N; i++ {
				cfg := config.New(config.WiSync, cores).WithShards(shards)
				r := kernels.TightLoopExec(cfg, iters, kernels.ExecTask)
				cyc = float64(r.Cycles)
			}
			cycs[idx] = cyc
			b.ReportMetric(cyc, "cyc")
		}
	}
	b.Run("unsharded", run(0, 0))
	b.Run("shards-1", run(1, 1))
	b.Run("shards-4", run(2, 4))
	for i := 1; i < len(cycs); i++ {
		// Entries are zero when a -bench filter skipped that variant.
		if cycs[i] != 0 && cycs[0] != 0 && cycs[i] != cycs[0] {
			b.Fatalf("sharded cyc diverged: unsharded=%v variant%d=%v", cycs[0], i, cycs[i])
		}
	}
}

// ---- Ablations (DESIGN.md section 5) ----

// benchBarrier measures one barrier configuration's cycles/episode.
func benchBarrier(b *testing.B, cfg config.Config, episodes int) float64 {
	var per float64
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(cfg)
		bar := syncprims.NewFactory(m).NewBarrier(nil)
		m.SpawnAll(func(t *core.Thread) {
			for e := 0; e < episodes; e++ {
				bar.Wait(t)
			}
		})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		per = float64(m.Now()) / float64(episodes)
	}
	return per
}

// BenchmarkAblationToneVsData is the paper's own ablation: the Tone
// channel on/off for barrier bursts (WiSync vs WiSyncNoT).
func BenchmarkAblationToneVsData(b *testing.B) {
	b.Run("tone", func(b *testing.B) {
		b.ReportMetric(benchBarrier(b, config.New(config.WiSync, 64), 10), "cyc/barrier")
	})
	b.Run("data", func(b *testing.B) {
		b.ReportMetric(benchBarrier(b, config.New(config.WiSyncNoT, 64), 10), "cyc/barrier")
	})
}

// BenchmarkAblationBackoff compares the Section 5.3 persistent backoff,
// classic per-message Ethernet backoff, and a constant window.
func BenchmarkAblationBackoff(b *testing.B) {
	run := func(name string, mod func(*wireless.Params)) {
		b.Run(name, func(b *testing.B) {
			cfg := config.New(config.WiSyncNoT, 64)
			mod(&cfg.Wireless)
			b.ReportMetric(benchBarrier(b, cfg, 10), "cyc/barrier")
		})
	}
	run("persistent", func(p *wireless.Params) { p.Backoff = wireless.BackoffPersistent })
	run("per-message", func(p *wireless.Params) { p.Backoff = wireless.BackoffPerMessage })
	run("adaptive", func(p *wireless.Params) { p.Backoff = wireless.BackoffAdaptive })
	run("constant16", func(p *wireless.Params) { p.ConstantBackoffWindow = 16 })
}

// BenchmarkAblationDeferPolicy compares the FIFO busy-deferral drain with
// pure re-contention CSMA.
func BenchmarkAblationDeferPolicy(b *testing.B) {
	run := func(name string, d wireless.DeferPolicy) {
		b.Run(name, func(b *testing.B) {
			cfg := config.New(config.WiSyncNoT, 64)
			cfg.Wireless.Defer = d
			b.ReportMetric(benchBarrier(b, cfg, 10), "cyc/barrier")
		})
	}
	run("fifo", wireless.DeferFIFO)
	run("contend", wireless.DeferContend)
}

// BenchmarkAblationRMWProtocol compares grant-time RMW evaluation with the
// literal Section 4.2.1 early-read + AFB retry protocol.
func BenchmarkAblationRMWProtocol(b *testing.B) {
	run := func(name string, early bool) {
		b.Run(name, func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				cfg := config.New(config.WiSyncNoT, 64)
				m := core.NewMachine(cfg)
				m.BM.SetRMWEarlyRead(early)
				bar := syncprims.NewFactory(m).NewBarrier(nil)
				m.SpawnAll(func(t *core.Thread) {
					for e := 0; e < 10; e++ {
						bar.Wait(t)
					}
				})
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				per = float64(m.Now()) / 10
			}
			b.ReportMetric(per, "cyc/barrier")
		})
	}
	run("at-grant", false)
	run("early-read", true)
}

// BenchmarkAblationTreeBroadcast measures the Baseline+ virtual-tree NoC
// support by toggling it under the tournament barrier.
func BenchmarkAblationTreeBroadcast(b *testing.B) {
	// Baseline+ has the tree; compare against Baseline hardware with the
	// same tournament barrier software by constructing it directly.
	b.Run("tree", func(b *testing.B) {
		b.ReportMetric(benchBarrier(b, config.New(config.BaselinePlus, 64), 10), "cyc/barrier")
	})
	b.Run("release-storm-baseline", func(b *testing.B) {
		b.ReportMetric(benchBarrier(b, config.New(config.Baseline, 64), 10), "cyc/barrier")
	})
}

// BenchmarkAblationChannelBandwidth compares the conservative 5-cycle
// (19 Gb/s) message with the 4-cycle (32 Gb/s) projection of Section 2.
func BenchmarkAblationChannelBandwidth(b *testing.B) {
	run := func(name string, msgCycles sim.Time) {
		b.Run(name, func(b *testing.B) {
			cfg := config.New(config.WiSyncNoT, 64)
			cfg.Wireless.MsgCycles = msgCycles
			b.ReportMetric(benchBarrier(b, cfg, 10), "cyc/barrier")
		})
	}
	run("19gbps-5cyc", 5)
	run("32gbps-4cyc", 4)
}

// BenchmarkAblationBulkVsSingles compares one 15-cycle Bulk message with
// four single messages for a 4-word producer-consumer transfer.
func BenchmarkAblationBulkVsSingles(b *testing.B) {
	run := func(name string, words int, batches int) {
		b.Run(name, func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(config.New(config.WiSync, 4))
				f := syncprims.NewFactory(m)
				var pcs []*syncprims.PC
				if words == 4 {
					pcs = []*syncprims.PC{f.NewPC(4)}
				} else {
					pcs = []*syncprims.PC{f.NewPC(1), f.NewPC(1), f.NewPC(1), f.NewPC(1)}
				}
				m.Spawn("producer", 0, 1, func(t *core.Thread) {
					for n := 0; n < batches; n++ {
						if words == 4 {
							pcs[0].Produce(t, []uint64{1, 2, 3, 4})
						} else {
							for _, pc := range pcs {
								pc.Produce(t, []uint64{uint64(n)})
							}
						}
					}
				})
				m.Spawn("consumer", 3, 1, func(t *core.Thread) {
					buf4 := make([]uint64, 4)
					buf1 := make([]uint64, 1)
					for n := 0; n < batches; n++ {
						if words == 4 {
							pcs[0].Consume(t, buf4)
						} else {
							for _, pc := range pcs {
								pc.Consume(t, buf1)
							}
						}
					}
				})
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				per = float64(m.Now()) / float64(batches)
			}
			b.ReportMetric(per, "cyc/4words")
		})
	}
	run("bulk", 4, 40)
	run("singles", 1, 40)
}
