// Package noc models the wired 2D-mesh on-chip network of Table 1:
// XY-routed, 128-bit links, a configurable per-hop latency (4 cycles by
// default), and four memory controllers attached at the edges.
//
// The mesh provides distance/latency queries to the coherence layer
// (internal/mem), which adds its own queueing; the mesh itself is a latency
// model with flit accounting. It also implements the virtual tree-based
// broadcast cost model of Krishna et al. [22] used by the Baseline+
// configuration for 1-to-many and many-to-1 traffic.
package noc

import "fmt"

// Mesh is a 2D mesh interconnect for n nodes arranged cols x rows.
type Mesh struct {
	cols, rows int
	hopLat     uint64
	// FlitsSent counts point-to-point messages for statistics.
	FlitsSent uint64
	// mcs holds the node index nearest each memory-controller attach point.
	mcs [4]int
}

// Dims returns the mesh dimensions used for n cores: the most-square
// factorization with cols >= rows. Core counts in the paper are powers of
// two from 16 to 256 (4x4, 8x4, 8x8, 16x8, 16x16).
func Dims(n int) (cols, rows int) {
	if n <= 0 {
		panic(fmt.Sprintf("noc: invalid node count %d", n))
	}
	best := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			best = f
		}
	}
	return n / best, best
}

// New returns a mesh for n nodes with the given per-hop latency in cycles.
func New(n int, hopLatency uint64) *Mesh {
	cols, rows := Dims(n)
	m := &Mesh{cols: cols, rows: rows, hopLat: hopLatency}
	// Memory controllers sit at the middle of each edge (Table 1: four
	// controllers). Store the node they attach to.
	m.mcs[0] = m.node(cols/2, 0)      // north
	m.mcs[1] = m.node(cols/2, rows-1) // south
	m.mcs[2] = m.node(0, rows/2)      // west
	m.mcs[3] = m.node(cols-1, rows/2) // east
	return m
}

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.cols * m.rows }

// HopLatency returns the per-hop latency in cycles.
func (m *Mesh) HopLatency() uint64 { return m.hopLat }

// Coord returns the (x, y) position of node id.
func (m *Mesh) Coord(id int) (x, y int) {
	m.check(id)
	return id % m.cols, id / m.cols
}

func (m *Mesh) node(x, y int) int { return y*m.cols + x }

func (m *Mesh) check(id int) {
	if id < 0 || id >= m.cols*m.rows {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", id, m.cols*m.rows))
	}
}

// Hops returns the XY-routing hop count between nodes a and b.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Latency returns the one-way latency in cycles between nodes a and b and
// counts one message. Same-node latency is one hop (the local router
// crossing).
func (m *Mesh) Latency(a, b int) uint64 {
	m.FlitsSent++
	h := m.Hops(a, b)
	if h == 0 {
		h = 1
	}
	return uint64(h) * m.hopLat
}

// MaxHops returns the mesh diameter in hops.
func (m *Mesh) MaxHops() int { return m.cols - 1 + m.rows - 1 }

// ControllerFor returns the node a memory request from addr's home bank is
// routed to, interleaving lines across the four controllers.
func (m *Mesh) ControllerFor(line uint64) (ctrl int, node int) {
	c := int(line % 4)
	return c, m.mcs[c]
}

// BroadcastLatency returns the latency for a 1-to-many virtual-tree
// multicast from src covering dst destinations (Baseline+ flit replication
// at router crossbars): the farthest destination distance dominates, with
// replication adding one cycle per tree level rather than per destination.
func (m *Mesh) BroadcastLatency(src int, maxHops int) uint64 {
	m.FlitsSent++
	if maxHops <= 0 {
		maxHops = m.MaxHops()
	}
	return uint64(maxHops)*m.hopLat + uint64(log2ceil(m.Nodes()))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
