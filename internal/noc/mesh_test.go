package noc

import (
	"testing"
	"testing/quick"
)

func TestDims(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{16, 4, 4}, {32, 8, 4}, {64, 8, 8}, {128, 16, 8}, {256, 16, 16},
		{1, 1, 1}, {2, 2, 1}, {12, 4, 3},
	}
	for _, c := range cases {
		cols, rows := Dims(c.n)
		if cols != c.cols || rows != c.rows {
			t.Errorf("Dims(%d) = %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
	}
}

func TestDimsInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dims(0) did not panic")
		}
	}()
	Dims(0)
}

func TestCoordRoundTrip(t *testing.T) {
	m := New(64, 4)
	for id := 0; id < 64; id++ {
		x, y := m.Coord(id)
		if got := y*8 + x; got != id {
			t.Fatalf("Coord(%d) = (%d,%d) does not round-trip", id, x, y)
		}
	}
}

func TestHops(t *testing.T) {
	m := New(64, 4) // 8x8
	cases := []struct{ a, b, hops int }{
		{0, 0, 0},
		{0, 7, 7},   // across top row
		{0, 63, 14}, // corner to corner = diameter
		{0, 9, 2},   // one right, one down
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
	if m.MaxHops() != 14 {
		t.Errorf("MaxHops = %d, want 14", m.MaxHops())
	}
}

func TestHopsMetricProperties(t *testing.T) {
	m := New(128, 4)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%128, int(b)%128, int(c)%128
		// Symmetry, identity, triangle inequality.
		return m.Hops(x, y) == m.Hops(y, x) &&
			m.Hops(x, x) == 0 &&
			m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatency(t *testing.T) {
	m := New(64, 4)
	if got := m.Latency(0, 63); got != 56 {
		t.Errorf("Latency corner-corner = %d, want 56", got)
	}
	// Same node still crosses the local router once.
	if got := m.Latency(5, 5); got != 4 {
		t.Errorf("Latency(5,5) = %d, want 4", got)
	}
	if m.FlitsSent != 2 {
		t.Errorf("FlitsSent = %d, want 2", m.FlitsSent)
	}
}

func TestHopLatencyVariants(t *testing.T) {
	// Table 6 variants: hop latency 2 (FastNet) and 6 (SlowNet).
	fast := New(64, 2)
	slow := New(64, 6)
	if fast.Latency(0, 63) != 28 || slow.Latency(0, 63) != 84 {
		t.Errorf("variant latencies = %d, %d; want 28, 84",
			fast.Latency(0, 63), slow.Latency(0, 63))
	}
}

func TestControllerFor(t *testing.T) {
	m := New(64, 4)
	seen := map[int]bool{}
	for line := uint64(0); line < 16; line++ {
		ctrl, node := m.ControllerFor(line)
		if ctrl < 0 || ctrl > 3 {
			t.Fatalf("controller %d out of range", ctrl)
		}
		m.check(node)
		seen[ctrl] = true
	}
	if len(seen) != 4 {
		t.Errorf("interleaving used %d controllers, want 4", len(seen))
	}
}

func TestBroadcastLatency(t *testing.T) {
	m := New(64, 4)
	// Tree broadcast across the whole chip: diameter * hop + log2(64).
	if got := m.BroadcastLatency(0, 0); got != 14*4+6 {
		t.Errorf("BroadcastLatency = %d, want %d", got, 14*4+6)
	}
	// Bounded multicast radius.
	if got := m.BroadcastLatency(0, 3); got != 3*4+6 {
		t.Errorf("BroadcastLatency(r=3) = %d, want %d", got, 3*4+6)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 64: 6, 100: 7, 256: 8}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
