package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseInlineAndNormalize(t *testing.T) {
	p, err := Parse([]byte(`{"outages":[{"node":3,"at":500},{"node":1,"at":100,"for":50}],"token_loss":[900,200]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Outages:   []Outage{{Node: 1, At: 100, For: 50}, {Node: 3, At: 500}},
		TokenLoss: []uint64{200, 900},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("got %+v want %+v", p, want)
	}
	if p.Empty() {
		t.Fatal("non-empty plan reports Empty")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"outage":[{"node":0,"at":1}]}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestParseFlagFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"outages":[{"node":2,"at":10}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseFlag("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Outages) != 1 || p.Outages[0].Node != 2 {
		t.Fatalf("got %+v", p)
	}
	if p2, err := ParseFlag(""); err != nil || p2 != nil {
		t.Fatalf("empty flag: got %v, %v", p2, err)
	}
	if _, err := ParseFlag("@/nonexistent/plan.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidate(t *testing.T) {
	p := &Plan{Outages: []Outage{{Node: 7, At: 0}}}
	if err := p.Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := p.Validate(4); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	all := &Plan{Outages: []Outage{{Node: 0, At: 0}, {Node: 1, At: 5}}}
	if err := all.Validate(2); err == nil {
		t.Fatal("all-nodes fail-stop accepted")
	}
	if err := (*Plan)(nil).Validate(2); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}

func TestInjectorDown(t *testing.T) {
	inj := NewInjector(&Plan{Outages: []Outage{
		{Node: 1, At: 100, For: 50}, // transient [100,150)
		{Node: 2, At: 300},          // fail-stop
	}})
	cases := []struct {
		node int
		now  uint64
		down bool
	}{
		{1, 99, false}, {1, 100, true}, {1, 149, true}, {1, 150, false},
		{2, 299, false}, {2, 300, true}, {2, 1 << 40, true},
		{0, 100, false},
	}
	for _, c := range cases {
		if got := inj.Down(c.node, c.now); got != c.down {
			t.Errorf("Down(%d,%d) = %v want %v", c.node, c.now, got, c.down)
		}
	}
	if inj.FailStopped(1, 120) {
		t.Fatal("transient outage reported as fail-stop")
	}
	if !inj.FailStopped(2, 300) || inj.FailStopped(2, 299) {
		t.Fatal("fail-stop boundary wrong")
	}
}

func TestInjectorTokenLossConsumes(t *testing.T) {
	inj := NewInjector(&Plan{TokenLoss: []uint64{100, 100, 500}})
	if inj.TokenLost(99) {
		t.Fatal("premature token loss")
	}
	if !inj.TokenLost(100) || !inj.TokenLost(150) {
		t.Fatal("scheduled losses not consumed")
	}
	if inj.TokenLost(499) {
		t.Fatal("third loss fired early")
	}
	if !inj.TokenLost(500) || inj.TokenLost(1<<30) {
		t.Fatal("loss count wrong")
	}
}

func TestEmptyPlanNilInjector(t *testing.T) {
	if NewInjector(nil) != nil || NewInjector(&Plan{}) != nil {
		t.Fatal("empty plan compiled to a live injector")
	}
}
