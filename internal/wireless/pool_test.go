package wireless

import (
	"runtime"
	"runtime/debug"
	"testing"

	"wisync/internal/sim"
)

// TestRequestPoolRecycle drives a chain of sequential messages through one
// channel and asserts the request records recycle: the whole chain must be
// served by a single pooled record, returned to the freelist after the
// last commit.
func TestRequestPoolRecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, Params{})
	const msgs = 50
	sent := 0
	var issue func(committed bool)
	issue = func(committed bool) {
		if sent > 0 && !committed {
			t.Error("uncontended message did not commit")
		}
		if sent == msgs {
			return
		}
		sent++
		n.SendAsync(Msg{Src: sent % 4, Addr: 7, Val: uint64(sent)}, nil, issue)
	}
	eng.Schedule(0, func() { issue(true) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Messages != msgs {
		t.Fatalf("committed %d messages, want %d", n.Stats.Messages, msgs)
	}
	if got := len(n.reqFree); got != 1 {
		t.Errorf("freelist holds %d records after sequential chain, want 1", got)
	}
	if got := n.reqFree[0].epoch; got != msgs {
		t.Errorf("pooled record epoch %d, want %d (one bump per trip)", got, msgs)
	}
}

// TestStaleTokenCancel holds a Token past its message's commit and cancels
// only after the pooled record has been reissued to a different sender: the
// stale Cancel must be refused and the second message must still commit.
func TestStaleTokenCancel(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, Params{})
	var tok Token
	second := false
	eng.Schedule(0, func() {
		n.SendAsync(Msg{Src: 0, Addr: 1, Val: 1}, &tok, func(committed bool) {
			if !committed {
				t.Error("first message did not commit")
			}
			// The record just returned to the pool; reissue it for a
			// different sender, without a token.
			n.SendAsync(Msg{Src: 1, Addr: 2, Val: 2}, nil, func(committed bool) {
				second = committed
			})
			if tok.Cancel() {
				t.Error("stale Cancel succeeded; it would have withdrawn another sender's message")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !second {
		t.Error("second message did not commit")
	}
	if n.Stats.Withdrawn != 0 {
		t.Errorf("Withdrawn = %d, want 0", n.Stats.Withdrawn)
	}
}

// TestCanceledRequestNotPooled withdraws a busy-deferred transfer and
// asserts its record is NOT recycled: the MAC backlog still references it
// (the entry is skipped lazily by state), so pooling it would let a stale
// queue entry transmit a recycled record's new message.
func TestCanceledRequestNotPooled(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, Params{})
	var tok Token
	canceled := false
	eng.Schedule(0, func() {
		// Occupies the channel for MsgCycles; the second send defers.
		n.SendAsync(Msg{Src: 0, Addr: 1, Val: 1}, nil, func(bool) {})
	})
	eng.Schedule(1, func() {
		n.SendAsync(Msg{Src: 1, Addr: 2, Val: 2}, &tok, func(committed bool) {
			canceled = !committed
		})
	})
	eng.Schedule(2, func() {
		if !tok.Cancel() {
			t.Error("Cancel of a deferred transfer failed")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !canceled {
		t.Fatal("deferred transfer was not withdrawn")
	}
	if n.Stats.Withdrawn != 1 {
		t.Errorf("Withdrawn = %d, want 1", n.Stats.Withdrawn)
	}
	// Only the committed message's record may be in the pool.
	if got := len(n.reqFree); got != 1 {
		t.Errorf("freelist holds %d records, want 1 (canceled record must not be pooled)", got)
	}
}

// TestSendAsyncAllocFree pins the steady-state continuation send path at
// zero heap allocations per message: the request record, the commit event
// and the completion delivery are all pooled, and the MAC's slot slices and
// arbitration continuations recycle. It counts mallocs exactly (GC off,
// same goroutine) across a long message chain after a warm-up chain has
// populated every pool and grown every map.
func TestSendAsyncAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, Params{})
	left := 0
	var issue func(bool)
	issue = func(bool) {
		if left == 0 {
			return
		}
		left--
		n.SendAsync(Msg{Src: 1, Addr: 3, Val: 9}, nil, issue)
	}
	start := func() { issue(true) }
	run := func(k int) {
		left = k
		eng.Schedule(0, start)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	const msgs = 20000
	run(msgs) // warm up pools, maps, queue storage
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(msgs)
	runtime.ReadMemStats(&after)
	if d := after.Mallocs - before.Mallocs; d != 0 {
		t.Errorf("steady-state SendAsync allocated %d objects over %d messages, want 0", d, msgs)
	}
}
