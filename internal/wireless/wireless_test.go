package wireless

import (
	"fmt"
	"testing"

	"wisync/internal/sim"
)

func TestSingleSendTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	var commits []sim.Time
	n.Subscribe(func(m Msg, at sim.Time) { commits = append(commits, at) })
	eng.Go("tx", func(p *sim.Proc) {
		if !n.Send(p, Msg{Src: 0, Addr: 1, Val: 42}, nil) {
			t.Error("Send reported failure")
		}
		if p.Now() != 5 {
			t.Errorf("sender resumed at %d, want 5", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 1 || commits[0] != 5 {
		t.Errorf("commits = %v, want [5]", commits)
	}
	if n.Stats.Messages != 1 || n.Stats.BusyCycles != 5 {
		t.Errorf("stats = %+v", n.Stats)
	}
}

func TestBulkTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	eng.Go("tx", func(p *sim.Proc) {
		n.Send(p, Msg{Src: 0, Kind: KindBulk}, nil)
		if p.Now() != 15 {
			t.Errorf("bulk commit at %d, want 15", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusyChannelWaits(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	var t2 sim.Time
	eng.Go("tx1", func(p *sim.Proc) {
		n.Send(p, Msg{Src: 0}, nil)
	})
	eng.Go("tx2", func(p *sim.Proc) {
		p.Sleep(2) // channel busy with tx1 until cycle 5
		n.Send(p, Msg{Src: 1}, nil)
		t2 = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// tx2 waits for cycle 5, transmits 5..10.
	if t2 != 10 {
		t.Errorf("tx2 committed at %d, want 10", t2)
	}
	if n.Stats.Collisions != 0 {
		t.Errorf("Collisions = %d, want 0", n.Stats.Collisions)
	}
}

func TestSimultaneousSendsCollide(t *testing.T) {
	eng := sim.NewEngine(7)
	n := New(eng, 4, DefaultParams())
	var commits int
	n.Subscribe(func(Msg, sim.Time) { commits++ })
	for i := 0; i < 2; i++ {
		i := i
		eng.Go(fmt.Sprintf("tx%d", i), func(p *sim.Proc) {
			if !n.Send(p, Msg{Src: i}, nil) {
				t.Errorf("tx%d failed", i)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if commits != 2 {
		t.Errorf("commits = %d, want 2", commits)
	}
	if n.Stats.Collisions < 1 {
		t.Errorf("Collisions = %d, want >= 1", n.Stats.Collisions)
	}
}

func TestTotalOrderAndAllDelivered(t *testing.T) {
	// Many nodes hammer the channel; every message must commit exactly
	// once, commits must not overlap, and all subscribers see the same
	// order.
	eng := sim.NewEngine(3)
	n := New(eng, 64, DefaultParams())
	var order1, order2 []int
	n.Subscribe(func(m Msg, at sim.Time) { order1 = append(order1, m.Src*1000+int(m.Val)) })
	n.Subscribe(func(m Msg, at sim.Time) { order2 = append(order2, m.Src*1000+int(m.Val)) })
	var lastCommit sim.Time
	n.Subscribe(func(m Msg, at sim.Time) {
		if at < lastCommit+5 && lastCommit != 0 {
			t.Errorf("commits overlap: %d after %d", at, lastCommit)
		}
		lastCommit = at
	})
	const msgsPerNode = 5
	for c := 0; c < 64; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			for i := 0; i < msgsPerNode; i++ {
				if !n.Send(p, Msg{Src: c, Val: uint64(i)}, nil) {
					t.Errorf("node %d msg %d failed", c, i)
				}
				p.Sleep(sim.Time(p.Engine().Rand().Intn(30)))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order1) != 64*msgsPerNode {
		t.Fatalf("delivered %d messages, want %d", len(order1), 64*msgsPerNode)
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("subscribers saw different orders")
		}
	}
	if n.Stats.Messages != 64*msgsPerNode {
		t.Errorf("Messages = %d", n.Stats.Messages)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	// A single node's messages commit in issue order (the MAC does not
	// reorder), even under contention from others.
	eng := sim.NewEngine(11)
	n := New(eng, 8, DefaultParams())
	var vals []uint64
	n.Subscribe(func(m Msg, _ sim.Time) {
		if m.Src == 0 {
			vals = append(vals, m.Val)
		}
	})
	eng.Go("n0", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			n.Send(p, Msg{Src: 0, Val: uint64(i)}, nil)
		}
	})
	for c := 1; c < 8; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				n.Send(p, Msg{Src: c}, nil)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("node 0 commit order %v not FIFO", vals)
		}
	}
}

func TestCancelWithdrawsPending(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	var commits int
	n.Subscribe(func(Msg, sim.Time) { commits++ })
	var tok Token
	eng.Go("blocker", func(p *sim.Proc) {
		n.Send(p, Msg{Src: 0}, nil) // occupies channel 0..5
	})
	eng.Go("victim", func(p *sim.Proc) {
		p.Sleep(1)
		if n.Send(p, Msg{Src: 1}, &tok) {
			t.Error("canceled Send reported commit")
		}
		if p.Now() != 3 {
			t.Errorf("victim resumed at %d, want 3", p.Now())
		}
	})
	eng.Go("canceler", func(p *sim.Proc) {
		p.Sleep(3)
		if !tok.Cancel() {
			t.Error("Cancel returned false for pending request")
		}
		if tok.Cancel() {
			t.Error("second Cancel returned true")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if commits != 1 {
		t.Errorf("commits = %d, want 1 (victim withdrew)", commits)
	}
	if n.Stats.Withdrawn != 1 {
		t.Errorf("Withdrawn = %d, want 1", n.Stats.Withdrawn)
	}
}

func TestCancelTooLateFails(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	var tok Token
	eng.Go("tx", func(p *sim.Proc) {
		if !n.Send(p, Msg{Src: 0}, &tok) {
			t.Error("Send failed")
		}
	})
	eng.Go("late", func(p *sim.Proc) {
		p.Sleep(2) // transmission already in flight
		if tok.Cancel() {
			t.Error("Cancel succeeded mid-transmission")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialBackoffWindowGrows(t *testing.T) {
	// With many simultaneous senders, some nodes must reach backoff
	// exponents > 1, and all messages still get through.
	eng := sim.NewEngine(5)
	p := DefaultParams()
	p.Backoff = BackoffPersistent
	n := New(eng, 32, p)
	maxExp := 0
	n.Subscribe(func(Msg, sim.Time) {
		for _, b := range n.mac.(*backoffMAC).backoff {
			if b > maxExp {
				maxExp = b
			}
		}
	})
	for c := 0; c < 32; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			n.Send(p, Msg{Src: c}, nil)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Messages != 32 {
		t.Errorf("Messages = %d, want 32", n.Stats.Messages)
	}
	if maxExp < 2 {
		t.Errorf("max backoff exponent = %d, want >= 2 under 32-way burst", maxExp)
	}
	if n.Stats.Collisions == 0 {
		t.Error("no collisions under 32-way simultaneous burst")
	}
}

func TestBackoffExponentCapped(t *testing.T) {
	// Note: the cap must comfortably exceed the burst size or contention
	// can never resolve (with w nodes contending inside a window smaller
	// than w, every slot collides — a real property of the protocol).
	eng := sim.NewEngine(5)
	p := DefaultParams()
	p.Backoff = BackoffPersistent
	p.MaxBackoffExp = 3
	n := New(eng, 4, p)
	for c := 0; c < 4; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
			for i := 0; i < 3; i++ {
				n.Send(pp, Msg{Src: c}, nil)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Messages != 12 {
		t.Errorf("Messages = %d, want 12", n.Stats.Messages)
	}
	for c, b := range n.mac.(*backoffMAC).backoff {
		if b > 3 {
			t.Fatalf("node %d backoff exponent %d exceeds cap 3", c, b)
		}
	}
}

func TestConstantBackoffAblation(t *testing.T) {
	eng := sim.NewEngine(5)
	p := DefaultParams()
	p.ConstantBackoffWindow = 4
	n := New(eng, 16, p)
	for c := 0; c < 16; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
			n.Send(pp, Msg{Src: c}, nil)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Messages != 16 {
		t.Errorf("Messages = %d, want 16", n.Stats.Messages)
	}
}

func TestUtilizationAndLatencyStats(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 4, DefaultParams())
	eng.Go("tx", func(p *sim.Proc) {
		n.Send(p, Msg{Src: 0}, nil)
		p.Sleep(15) // idle 5..20
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if u := n.Stats.Utilization(20); u != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", u)
	}
	if l := n.Stats.MeanLatency(); l != 5 {
		t.Errorf("MeanLatency = %v, want 5", l)
	}
}

func TestSaturatedThroughputBound(t *testing.T) {
	// Under permanent demand, throughput cannot exceed 1 message per
	// MsgCycles, and backoff should keep goodput reasonable (> 50% of
	// channel capacity).
	eng := sim.NewEngine(9)
	n := New(eng, 64, DefaultParams())
	stop := sim.Time(20000)
	for c := 0; c < 64; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			for p.Now() < stop {
				n.Send(p, Msg{Src: c}, nil)
			}
		})
	}
	if err := eng.RunUntil(stop); err != nil {
		t.Fatal(err)
	}
	eng.Shutdown()
	maxMsgs := uint64(stop / 5)
	if n.Stats.Messages > maxMsgs {
		t.Errorf("Messages = %d exceeds channel capacity %d", n.Stats.Messages, maxMsgs)
	}
	if n.Stats.Messages < maxMsgs/2 {
		t.Errorf("Messages = %d, less than half of capacity %d (backoff too aggressive)", n.Stats.Messages, maxMsgs)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() []int {
		eng := sim.NewEngine(123)
		n := New(eng, 16, DefaultParams())
		var order []int
		n.Subscribe(func(m Msg, _ sim.Time) { order = append(order, m.Src) })
		for c := 0; c < 16; c++ {
			c := c
			eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
				for i := 0; i < 4; i++ {
					n.Send(p, Msg{Src: c}, nil)
					p.Sleep(sim.Time(p.Engine().Rand().Intn(7)))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wireless commit order not deterministic")
		}
	}
}
