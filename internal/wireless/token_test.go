package wireless

import (
	"fmt"
	"testing"

	"wisync/internal/sim"
)

func tokenParams() Params {
	p := DefaultParams()
	p.MAC = MACToken
	return p
}

// TestTokenNeverCollides is the token MAC's defining property: random
// concurrent traffic from every node, zero collisions, every message
// delivered in a total order.
func TestTokenNeverCollides(t *testing.T) {
	eng := sim.NewEngine(3)
	n := New(eng, 64, tokenParams())
	var order1, order2 []int
	n.Subscribe(func(m Msg, at sim.Time) { order1 = append(order1, m.Src*1000+int(m.Val)) })
	n.Subscribe(func(m Msg, at sim.Time) { order2 = append(order2, m.Src*1000+int(m.Val)) })
	var lastCommit sim.Time
	n.Subscribe(func(m Msg, at sim.Time) {
		if at < lastCommit+5 && lastCommit != 0 {
			t.Errorf("commits overlap: %d after %d", at, lastCommit)
		}
		lastCommit = at
	})
	const msgsPerNode = 5
	for c := 0; c < 64; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			for i := 0; i < msgsPerNode; i++ {
				if !n.Send(p, Msg{Src: c, Val: uint64(i)}, nil) {
					t.Errorf("node %d msg %d failed", c, i)
				}
				p.Sleep(sim.Time(p.Engine().Rand().Intn(30)))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order1) != 64*msgsPerNode {
		t.Fatalf("delivered %d messages, want %d", len(order1), 64*msgsPerNode)
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("subscribers saw different orders")
		}
	}
	if n.Stats.Collisions != 0 {
		t.Errorf("Stats.Collisions = %d, want 0 under token passing", n.Stats.Collisions)
	}
	mc := n.MACCounters()
	if mc.Collisions != 0 {
		t.Errorf("MACStats.Collisions = %d, want 0", mc.Collisions)
	}
	if mc.Grants != 64*msgsPerNode {
		t.Errorf("MACStats.Grants = %d, want %d", mc.Grants, 64*msgsPerNode)
	}
	if mc.TokenPasses == 0 || mc.TokenWaitCycles == 0 {
		t.Errorf("token accounting empty: %+v", mc)
	}
}

// TestTokenFairnessUnderSaturation: with every node permanently backlogged,
// round-robin token rotation serves the ring evenly — per-node grant counts
// may differ by at most one rotation.
func TestTokenFairnessUnderSaturation(t *testing.T) {
	eng := sim.NewEngine(9)
	const nodes = 32
	n := New(eng, nodes, tokenParams())
	grants := make([]int, nodes)
	n.Subscribe(func(m Msg, _ sim.Time) { grants[m.Src]++ })
	stop := sim.Time(20000)
	for c := 0; c < nodes; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			for p.Now() < stop {
				n.Send(p, Msg{Src: c}, nil)
			}
		})
	}
	if err := eng.RunUntil(stop); err != nil {
		t.Fatal(err)
	}
	eng.Shutdown()
	min, max := grants[0], grants[0]
	for _, g := range grants[1:] {
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if min == 0 {
		t.Fatalf("a node was starved: grants = %v", grants)
	}
	if max-min > 1 {
		t.Errorf("unfair service: per-node grants range [%d,%d], want spread <= 1 (%v)", min, max, grants)
	}
	if n.Stats.Collisions != 0 {
		t.Errorf("Collisions = %d under token passing", n.Stats.Collisions)
	}
	// Saturated goodput: one hop + one message per grant, so the channel
	// must carry at least stop/(MsgCycles+1) messages (minus ramp-up).
	minMsgs := uint64(stop)/uint64(n.p.MsgCycles+n.p.TokenHopCycles) - uint64(nodes)
	if n.Stats.Messages < minMsgs {
		t.Errorf("Messages = %d, want >= %d at saturation", n.Stats.Messages, minMsgs)
	}
}

// TestTokenLoneSenderPaysRotation pins the protocol's cost model: after
// its first message, a lone sender pays a full ring rotation per message.
func TestTokenLoneSenderPaysRotation(t *testing.T) {
	eng := sim.NewEngine(1)
	const nodes = 16
	n := New(eng, nodes, tokenParams())
	var commits []sim.Time
	n.Subscribe(func(_ Msg, at sim.Time) { commits = append(commits, at) })
	eng.Go("n0", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Send(p, Msg{Src: 0}, nil)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// First grant: one hop from the initial token position. Subsequent
	// messages: full rotation (16 hops) + 5-cycle message.
	want := []sim.Time{6, 27, 48}
	if len(commits) != len(want) {
		t.Fatalf("commits = %v, want %v", commits, want)
	}
	for i := range want {
		if commits[i] != want[i] {
			t.Errorf("commit %d at %d, want %d", i, commits[i], want[i])
		}
	}
}

// TestTokenCancelWhileQueued: a withdrawal while waiting for the token is
// honored and does not derail the rotation.
func TestTokenCancelWhileQueued(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 8, tokenParams())
	var commits int
	n.Subscribe(func(Msg, sim.Time) { commits++ })
	var tok Token
	eng.Go("blocker", func(p *sim.Proc) {
		n.Send(p, Msg{Src: 0}, nil) // wins the first grant
	})
	eng.Go("victim", func(p *sim.Proc) {
		p.Sleep(1)
		if n.Send(p, Msg{Src: 1}, &tok) {
			t.Error("canceled Send reported commit")
		}
	})
	eng.Go("bystander", func(p *sim.Proc) {
		p.Sleep(1)
		if !n.Send(p, Msg{Src: 2}, nil) {
			t.Error("bystander send failed")
		}
	})
	eng.Go("canceler", func(p *sim.Proc) {
		p.Sleep(3)
		if !tok.Cancel() {
			t.Error("Cancel returned false for a token-queued request")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if commits != 2 {
		t.Errorf("commits = %d, want 2 (victim withdrew)", commits)
	}
	if n.Stats.Withdrawn != 1 {
		t.Errorf("Withdrawn = %d, want 1", n.Stats.Withdrawn)
	}
}

// TestTokenDeterministicReplay: token arbitration uses no randomness at
// all, so two runs are trivially identical — but the commit order must
// also be identical across runs with the engine's process scheduling in
// play, like the backoff MAC's replay guarantee.
func TestTokenDeterministicReplay(t *testing.T) {
	runOnce := func() []int {
		eng := sim.NewEngine(123)
		n := New(eng, 16, tokenParams())
		var order []int
		n.Subscribe(func(m Msg, _ sim.Time) { order = append(order, m.Src) })
		for c := 0; c < 16; c++ {
			c := c
			eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
				for i := 0; i < 4; i++ {
					n.Send(p, Msg{Src: c}, nil)
					p.Sleep(sim.Time(p.Engine().Rand().Intn(7)))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("token commit order not deterministic")
		}
	}
}
