// Transceiver energy accounting.
//
// Every cycle a transceiver drives the medium costs energy, priced from
// the rfmodel scaling argument through package channel (mW over Gb/s is
// pJ/bit): ordinary and Bulk frames at the Data transceiver's ~1 pJ/bit,
// tone-init frames at the Tone transceiver's 2 pJ/bit. The Network charges
// the ledger at the three points a transceiver actually transmits — a
// first-attempt grant, a retransmission grant, and the partial frame
// burned before a collision is detected — and mirrors every charge into a
// per-node ledger, so the total is exactly the sum of the per-node
// transceiver budgets (pinned by TestEnergyLedgerConservation).
//
// The ledger is live on every configuration, ideal channel included:
// transmissions cost energy whether or not they can corrupt. It is kept
// outside Stats so the golden-conformance rendering of wireless.Stats is
// byte-identical to the pre-energy simulator.
package wireless

import (
	"fmt"

	"wisync/internal/channel"
)

// Frame sizes (Section 4.1): an ordinary message carries a 64-bit datum,
// an 11-bit BM address, a Bulk bit and a Tone bit; a Bulk frame appends
// three more data words.
const (
	MsgBits  = 77
	BulkBits = MsgBits + 3*64
)

// EnergyStats is the Data-channel transceiver energy ledger, in picojoules,
// plus the delivery-reliability counters of the channel-error model. It is
// reported alongside Stats (kernels.Result.Energy, apps.Result.Energy) and
// stays zero-valued on wired configurations.
type EnergyStats struct {
	// TxPJ is the energy of first-attempt transmissions that occupied the
	// channel (committed or corrupted; a frame burns the same energy
	// either way).
	TxPJ float64
	// RetxPJ is the energy of retransmission attempts after corrupted
	// deliveries.
	RetxPJ float64
	// CollisionPJ is the energy of the partial frames transmitted during
	// the collision-detection cycles, summed over all colliding senders.
	CollisionPJ float64
	// Retransmissions counts corrupted deliveries that were resubmitted
	// through the MAC.
	Retransmissions uint64
	// DeliveryFailures counts transmissions that exhausted the
	// retransmission budget; their senders observe committed == false.
	DeliveryFailures uint64
	// FaultedSends counts sends completed as failures by the fault
	// injector — the sender's transceiver was inside an outage window at
	// submit or grant time, or fail-stopped with the message still
	// queued. Their senders observe committed == false. Always zero
	// without a fault plan.
	FaultedSends uint64
}

// TotalPJ is the full transceiver energy spent on the Data channel.
func (e EnergyStats) TotalPJ() float64 { return e.TxPJ + e.RetxPJ + e.CollisionPJ }

func (e EnergyStats) String() string {
	s := fmt.Sprintf("total=%.1fpJ tx=%.1fpJ retx=%.1fpJ collision=%.1fpJ retransmissions=%d failures=%d",
		e.TotalPJ(), e.TxPJ, e.RetxPJ, e.CollisionPJ, e.Retransmissions, e.DeliveryFailures)
	// Only faulty runs mention the injector, so every no-fault rendering is
	// byte-identical to the pre-fault simulator.
	if e.FaultedSends > 0 {
		s += fmt.Sprintf(" faulted=%d", e.FaultedSends)
	}
	return s
}

// Add accumulates o into e (sweep-level aggregation).
func (e *EnergyStats) Add(o EnergyStats) {
	e.TxPJ += o.TxPJ
	e.RetxPJ += o.RetxPJ
	e.CollisionPJ += o.CollisionPJ
	e.Retransmissions += o.Retransmissions
	e.DeliveryFailures += o.DeliveryFailures
	e.FaultedSends += o.FaultedSends
}

// frameBits returns the frame size of msg on the medium.
func frameBits(msg Msg) float64 {
	if msg.Kind == KindBulk {
		return BulkBits
	}
	return MsgBits
}

// frameEnergyPJ prices one full frame of msg: tone-init frames are driven
// by the Tone transceiver circuitry, everything else by the Data
// transceiver.
func frameEnergyPJ(msg Msg) float64 {
	if msg.Kind == KindToneInit {
		return frameBits(msg) * channel.TonePJPerBit
	}
	return frameBits(msg) * channel.DataPJPerBit
}

// chargeTx charges a granted transmission's full frame to its sender: a
// first attempt lands in TxPJ, a retransmission in RetxPJ.
func (n *Network) chargeTx(req *request) {
	pj := frameEnergyPJ(req.msg)
	n.energyPerNode[req.msg.Src] += pj
	if req.retx > 0 {
		n.Energy.RetxPJ += pj
	} else {
		n.Energy.TxPJ += pj
	}
}

// chargeCollision charges one colliding sender for the partial frame it
// drove before detection: CollisionCycles of the frame's full duration
// (MsgCycles, or BulkCycles for a Bulk frame).
func (n *Network) chargeCollision(req *request) {
	dur := n.p.MsgCycles
	if req.msg.Kind == KindBulk {
		dur = n.p.BulkCycles
	}
	pj := frameEnergyPJ(req.msg) * float64(n.p.CollisionCycles) / float64(dur)
	n.energyPerNode[req.msg.Src] += pj
	n.Energy.CollisionPJ += pj
}

// EnergyPerNode returns a copy of the per-node transceiver ledger in
// picojoules. Its sum equals Energy.TotalPJ up to float association.
func (n *Network) EnergyPerNode() []float64 {
	out := make([]float64, len(n.energyPerNode))
	copy(out, n.energyPerNode)
	return out
}

// Channel returns the channel-error model between the Network and its MAC.
func (n *Network) Channel() channel.Model { return n.ch }
