package wireless

import (
	"fmt"
	"testing"

	"wisync/internal/sim"
)

// adaptiveTestParams shrinks the decision window so the synthetic
// schedules below cross switch boundaries quickly.
func adaptiveTestParams() Params {
	p := DefaultParams()
	p.MAC = MACAdaptive
	p.AdaptiveWindow = 16
	p.AdaptiveCollisionRate = 0.1
	return p
}

// TestAdaptiveMACSwitchesUnderBurstSchedule drives the switcher through a
// synthetic two-phase schedule: synchronized 32-node bursts (collision
// storms that a random-access MAC resolves expensively) followed by a
// sparse single-sender phase (where token rotation is pure overhead). The
// MAC must move to token during the storm, return to backoff in the sparse
// phase, and not flap within either sustained regime (hysteresis).
func TestAdaptiveMACSwitchesUnderBurstSchedule(t *testing.T) {
	eng := sim.NewEngine(11)
	const nodes = 32
	const rounds = 8
	const roundGap = sim.Time(400)
	n := New(eng, nodes, adaptiveTestParams())
	am := n.mac.(*adaptiveMAC)

	// Record the active protocol at every commit.
	var modes []MACKind
	n.Subscribe(func(Msg, sim.Time) { modes = append(modes, am.Mode()) })

	for c := 0; c < nodes; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			// Phase 1: every node transmits at the same cycle each round.
			for r := 0; r < rounds; r++ {
				if start := sim.Time(r) * roundGap; start > p.Now() {
					p.Sleep(start - p.Now())
				}
				n.Send(p, Msg{Src: c}, nil)
			}
			// Phase 2: only node 0 keeps sending, back to back.
			if c == 0 {
				if start := sim.Time(rounds) * roundGap; start > p.Now() {
					p.Sleep(start - p.Now())
				}
				for i := 0; i < 48; i++ {
					n.Send(p, Msg{Src: c}, nil)
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	mc := n.MACCounters()
	if mc.Grants != nodes*rounds+48 {
		t.Fatalf("Grants = %d, want %d", mc.Grants, nodes*rounds+48)
	}
	if mc.Collisions == 0 {
		t.Error("no collisions recorded: the storm phase never exercised backoff")
	}
	if mc.TokenPasses == 0 {
		t.Error("no token passes recorded: the MAC never entered token mode")
	}
	if mc.ModeSwitches < 2 {
		t.Errorf("ModeSwitches = %d, want >= 2 (storm -> token, sparse -> backoff)", mc.ModeSwitches)
	}
	if mc.ModeSwitches > 6 {
		t.Errorf("ModeSwitches = %d: protocol is flapping, hysteresis broken", mc.ModeSwitches)
	}
	sawToken := false
	for _, m := range modes[:nodes*rounds] {
		if m == MACToken {
			sawToken = true
			break
		}
	}
	if !sawToken {
		t.Error("token mode never active during the storm phase")
	}
	if final := modes[len(modes)-1]; final != MACBackoff {
		t.Errorf("final mode = %v, want backoff after the sparse phase", final)
	}
	if am.Mode() != MACBackoff {
		t.Errorf("resting mode = %v, want backoff", am.Mode())
	}
}

// TestAdaptiveMACStaysInBackoffWhenUncontended: sparse traffic must never
// trigger a switch — the collision rate stays at zero.
func TestAdaptiveMACStaysInBackoffWhenUncontended(t *testing.T) {
	eng := sim.NewEngine(2)
	// Default thresholds: only a sustained collision rate (>25% over 32
	// grants) justifies the token; coincidental same-slot arrivals from
	// drifting periodic senders must not.
	p := DefaultParams()
	p.MAC = MACAdaptive
	n := New(eng, 16, p)
	for c := 0; c < 4; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			// Staggered starts: sparse means no simultaneous arrivals.
			p.Sleep(sim.Time(1 + 17*c))
			for i := 0; i < 20; i++ {
				n.Send(p, Msg{Src: c}, nil)
				p.Sleep(sim.Time(50 + 13*c))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	mc := n.MACCounters()
	if mc.ModeSwitches != 0 {
		t.Errorf("ModeSwitches = %d under sparse traffic, want 0", mc.ModeSwitches)
	}
	if mc.TokenPasses != 0 {
		t.Errorf("TokenPasses = %d, want 0 (never left backoff)", mc.TokenPasses)
	}
	if n.Stats.Messages != 80 {
		t.Errorf("Messages = %d, want 80", n.Stats.Messages)
	}
}

// TestAdaptiveMACDeliversEverythingAcrossSwitches hammers the switcher
// with alternating storm and quiet phases and checks nothing is lost or
// reordered per sender across backlog migrations.
func TestAdaptiveMACDeliversEverythingAcrossSwitches(t *testing.T) {
	eng := sim.NewEngine(17)
	const nodes = 24
	const phases = 6
	n := New(eng, nodes, adaptiveTestParams())
	perSender := make([][]uint64, nodes)
	n.Subscribe(func(m Msg, _ sim.Time) {
		perSender[m.Src] = append(perSender[m.Src], m.Val)
	})
	var sent int
	for c := 0; c < nodes; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
			seq := uint64(0)
			for ph := 0; ph < phases; ph++ {
				if start := sim.Time(ph) * 700; start > p.Now() {
					p.Sleep(start - p.Now())
				}
				// Even phases: synchronized burst from everyone. Odd
				// phases: only low nodes trickle.
				msgs := 2
				if ph%2 == 1 {
					if c >= 4 {
						continue
					}
					msgs = 6
				}
				for i := 0; i < msgs; i++ {
					if !n.Send(p, Msg{Src: c, Val: seq}, nil) {
						t.Errorf("node %d seq %d failed", c, seq)
					}
					seq++
					sent++
					if ph%2 == 1 {
						p.Sleep(40)
					}
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var delivered int
	for c, vals := range perSender {
		for i, v := range vals {
			if v != uint64(i) {
				t.Fatalf("node %d commit order %v not FIFO across mode switches", c, vals)
			}
		}
		delivered += len(vals)
	}
	if delivered != sent {
		t.Errorf("delivered %d of %d messages", delivered, sent)
	}
}

// TestAdaptiveMACDeterministicReplay: mode switches depend only on
// simulated state, so a replay is bit-identical.
func TestAdaptiveMACDeterministicReplay(t *testing.T) {
	runOnce := func() ([]int, MACStats) {
		eng := sim.NewEngine(123)
		n := New(eng, 16, adaptiveTestParams())
		var order []int
		n.Subscribe(func(m Msg, _ sim.Time) { order = append(order, m.Src) })
		for c := 0; c < 16; c++ {
			c := c
			eng.Go(fmt.Sprintf("n%d", c), func(p *sim.Proc) {
				for i := 0; i < 8; i++ {
					n.Send(p, Msg{Src: c}, nil)
					p.Sleep(sim.Time(p.Engine().Rand().Intn(7)))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return order, n.MACCounters()
	}
	a, sa := runOnce()
	b, sb := runOnce()
	if sa != sb {
		t.Fatalf("MAC counters differ across replays: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("adaptive commit order not deterministic")
		}
	}
}
