package wireless

import (
	"math"
	"testing"

	"wisync/internal/channel"
	"wisync/internal/sim"
)

func lossyParams(ber float64, retries int) Params {
	p := DefaultParams()
	p.Channel = channel.Params{Profile: channel.Uniform, BER: ber, MaxRetries: retries}
	return p
}

// TestRetransmissionRedelivers pins the NACK path: at a BER high enough to
// corrupt some frames, every send still commits (budget permitting), each
// corrupted attempt re-occupies the channel, and the retransmission energy
// is charged separately from first attempts.
func TestRetransmissionRedelivers(t *testing.T) {
	eng := sim.NewEngine(3)
	n := New(eng, 16, lossyParams(1e-3, 50))
	const sends = 200
	var commits int
	n.Subscribe(func(Msg, sim.Time) { commits++ })
	eng.Go("tx", func(p *sim.Proc) {
		for i := 0; i < sends; i++ {
			if !n.Send(p, Msg{Src: i % 16, Addr: uint32(i)}, nil) {
				t.Errorf("send %d failed with a 50-retry budget", i)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if commits != sends {
		t.Fatalf("%d commits, want %d", commits, sends)
	}
	if n.Energy.Retransmissions == 0 {
		t.Fatal("no retransmissions at BER 1e-3 over 200 frames; test is vacuous")
	}
	if n.Energy.DeliveryFailures != 0 {
		t.Fatalf("%d delivery failures, want 0", n.Energy.DeliveryFailures)
	}
	if n.Energy.RetxPJ <= 0 || n.Energy.TxPJ <= 0 {
		t.Fatalf("energy split TxPJ=%g RetxPJ=%g, want both positive", n.Energy.TxPJ, n.Energy.RetxPJ)
	}
	// Every attempt — first or retry — occupied the full frame duration.
	attempts := sends + int(n.Energy.Retransmissions)
	if want := sim.Time(attempts) * n.p.MsgCycles; n.Stats.BusyCycles != want {
		t.Fatalf("BusyCycles = %d, want %d (%d attempts)", n.Stats.BusyCycles, want, attempts)
	}
	// Stats.Messages counts committed deliveries only.
	if n.Stats.Messages != sends {
		t.Fatalf("Messages = %d, want %d", n.Stats.Messages, sends)
	}
}

// TestRetransmissionExhaustion pins the failure path: a hostile channel
// (every frame corrupts with near certainty) exhausts the budget, Send
// reports committed == false, and no subscriber ever sees the frame.
func TestRetransmissionExhaustion(t *testing.T) {
	eng := sim.NewEngine(1)
	// BER 0.5 corrupts a 77-bit broadcast with probability ~1: survival
	// per attempt is 0.5^(77*15) — effectively zero.
	n := New(eng, 16, lossyParams(0.5, 3))
	var delivered int
	n.Subscribe(func(Msg, sim.Time) { delivered++ })
	eng.Go("tx", func(p *sim.Proc) {
		if n.Send(p, Msg{Src: 0, Addr: 1}, nil) {
			t.Error("send committed on a channel that corrupts every frame")
		}
		// 1 attempt + 3 retries, 5 cycles each.
		if p.Now() != 20 {
			t.Errorf("sender resumed at %d, want 20", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("%d deliveries of a never-committed frame", delivered)
	}
	if n.Energy.DeliveryFailures != 1 || n.Energy.Retransmissions != 3 {
		t.Fatalf("ledger %+v, want 3 retransmissions and 1 failure", n.Energy)
	}
	if n.Stats.Messages != 0 {
		t.Fatalf("Messages = %d, want 0", n.Stats.Messages)
	}
}

// TestEnergyLedgerConservation pins that the per-node ledger and the
// aggregate ledger agree: under contention (collisions), corruption
// (retransmissions) and mixed frame kinds, the sum of per-node charges
// equals TotalPJ.
func TestEnergyLedgerConservation(t *testing.T) {
	eng := sim.NewEngine(11)
	n := New(eng, 8, lossyParams(2e-3, 50))
	for i := 0; i < 8; i++ {
		i := i
		eng.Go("tx", func(p *sim.Proc) {
			for j := 0; j < 25; j++ {
				kind := KindStore
				if j%5 == 0 {
					kind = KindBulk
				}
				n.Send(p, Msg{Src: i, Addr: uint32(j), Kind: kind}, nil)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Collisions == 0 {
		t.Fatal("no collisions; conservation test does not cover the collision charge")
	}
	if n.Energy.Retransmissions == 0 {
		t.Fatal("no retransmissions; conservation test does not cover the retry charge")
	}
	var perNode float64
	for _, pj := range n.EnergyPerNode() {
		perNode += pj
	}
	total := n.Energy.TotalPJ()
	if diff := math.Abs(perNode - total); diff > 1e-6*total {
		t.Fatalf("per-node sum %g != ledger total %g", perNode, total)
	}
	if total <= 0 {
		t.Fatal("zero total energy after 200 sends")
	}
}

// TestIdealChannelUnperturbed pins the golden-safety property at the
// wireless level: constructing a Network with the default (ideal) channel
// consumes no extra engine entropy and the ledger's reliability counters
// stay zero, so every pre-channel trace is reproduced exactly.
func TestIdealChannelUnperturbed(t *testing.T) {
	draw := func(p Params) uint64 {
		eng := sim.NewEngine(99)
		New(eng, 8, p)
		return eng.Rand().Uint64()
	}
	// The engine RNG state after construction must match a Network built
	// before the channel model existed: exactly one fork (the MAC rng).
	ref := func() uint64 {
		eng := sim.NewEngine(99)
		eng.Rand().Fork()
		return eng.Rand().Uint64()
	}()
	if got := draw(DefaultParams()); got != ref {
		t.Fatal("ideal channel consumed engine entropy at construction")
	}
	if got := draw(lossyParams(1e-3, 0)); got == ref {
		t.Fatal("lossy channel did not fork its own rng")
	}

	eng := sim.NewEngine(5)
	n := New(eng, 8, DefaultParams())
	eng.Go("tx", func(p *sim.Proc) {
		for j := 0; j < 50; j++ {
			if !n.Send(p, Msg{Src: j % 8}, nil) {
				t.Error("ideal-channel send failed")
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Energy.Retransmissions != 0 || n.Energy.DeliveryFailures != 0 {
		t.Fatalf("ideal channel produced reliability events: %+v", n.Energy)
	}
	if n.Energy.TxPJ <= 0 {
		t.Fatal("ideal channel charged no transmission energy; the ledger must run on every config")
	}
}

// TestEnergyStatsString smoke-checks the summary rendering used by the
// CLI # energy lines.
func TestEnergyStatsString(t *testing.T) {
	e := EnergyStats{TxPJ: 1, RetxPJ: 2, CollisionPJ: 3, Retransmissions: 4, DeliveryFailures: 5}
	want := "total=6.0pJ tx=1.0pJ retx=2.0pJ collision=3.0pJ retransmissions=4 failures=5"
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	var sum EnergyStats
	sum.Add(e)
	sum.Add(e)
	if sum.TotalPJ() != 12 || sum.Retransmissions != 8 {
		t.Fatalf("Add: %+v", sum)
	}
}
