package wireless

import (
	"sort"

	"wisync/internal/sim"
)

// backoffMAC is the paper's arbitration scheme (Section 5.3) and the
// default MAC: carrier sensing with busy deferral (per Params.Defer),
// slot-level collision detection, and exponential backoff (per
// Params.Backoff) on collision. The code is the pre-refactor Network
// arbitration moved behind the MAC interface unchanged — the golden
// conformance suite and the pre-refactor trace tests pin it bit-for-bit.
type backoffMAC struct {
	n *Network
	// slots maps a future cycle to the requests contending in it;
	// scheduled marks slots whose arbitration event already exists.
	slots     map[sim.Time][]*request
	scheduled map[sim.Time]bool
	// waitq holds busy-deferred senders under DeferFIFO.
	waitq   []*request
	backoff []int // per-node persistent exponent (BackoffPersistent)
	// sharedExp is the chip-wide contention exponent for
	// BackoffAdaptive: every node observes the same channel, so the
	// estimate is global (Section 5.3).
	sharedExp int
	stats     MACStats
	// releaseHeadFn is the cached method value scheduleRelease schedules;
	// arbFree recycles slot-arbitration continuations and slotsFree the
	// per-slot request slices, so steady-state contention allocates
	// nothing in the MAC.
	releaseHeadFn func()
	arbFree       []*arbCont
	slotsFree     [][]*request
}

// arbCont is a recycled slot-arbitration event: the "resolve contention
// slot s" firing of enqueue, which would otherwise capture the slot in a
// fresh closure per contention cycle.
type arbCont struct {
	m    *backoffMAC
	slot sim.Time
	fn   func() // cached method value of run
}

func (c *arbCont) run() {
	m, slot := c.m, c.slot
	m.arbFree = append(m.arbFree, c)
	m.arbitrate(slot)
}

func newBackoffMAC(n *Network) *backoffMAC {
	m := &backoffMAC{
		n:         n,
		slots:     make(map[sim.Time][]*request),
		scheduled: make(map[sim.Time]bool),
		backoff:   make([]int, n.nodes),
	}
	m.releaseHeadFn = m.releaseHead
	return m
}

func (m *backoffMAC) Kind() MACKind { return MACBackoff }

// Submit routes a (re)transmission attempt: straight into the current slot
// when the channel is free, otherwise per the deferral policy.
func (m *backoffMAC) Submit(req *request) {
	n := m.n
	now := n.eng.Now()
	if n.busyUntil <= now {
		m.enqueue(req, now)
		return
	}
	if n.p.Defer == DeferFIFO {
		m.waitq = append(m.waitq, req)
		return
	}
	m.enqueue(req, n.busyUntil)
}

func (m *backoffMAC) enqueue(req *request, slot sim.Time) {
	q, ok := m.slots[slot]
	if !ok {
		if k := len(m.slotsFree); k > 0 {
			q = m.slotsFree[k-1]
			m.slotsFree = m.slotsFree[:k-1]
		}
	}
	m.slots[slot] = append(q, req)
	if !m.scheduled[slot] {
		m.scheduled[slot] = true
		var c *arbCont
		if k := len(m.arbFree); k > 0 {
			c = m.arbFree[k-1]
			m.arbFree = m.arbFree[:k-1]
		} else {
			c = &arbCont{m: m}
			c.fn = c.run
		}
		c.slot = slot
		m.n.eng.ScheduleAt(slot, sim.PrioLate, c.fn)
	}
}

// recycleSlot returns a drained slot slice's backing array to the pool.
// The caller must be done iterating any alias of it; elements are cleared
// so pooled arrays do not pin completed requests.
func (m *backoffMAC) recycleSlot(reqs []*request) {
	if cap(reqs) == 0 {
		return
	}
	reqs = reqs[:cap(reqs)]
	for i := range reqs {
		reqs[i] = nil
	}
	m.slotsFree = append(m.slotsFree, reqs[:0])
}

// arbitrate resolves the contention slot at the current cycle. It runs at
// PrioLate so every request registered during the cycle participates, and
// after commit deliveries (PrioNormal), so withdrawals triggered by a
// commit in the same cycle take effect first.
func (m *backoffMAC) arbitrate(slot sim.Time) {
	n := m.n
	delete(m.scheduled, slot)
	reqs := m.slots[slot]
	delete(m.slots, slot)
	live := reqs[:0]
	for _, r := range reqs {
		if r.state != reqPending {
			continue
		}
		if n.inj != nil && n.inj.FailStopped(r.msg.Src, uint64(slot)) {
			// The sender's transceiver fail-stopped while the request was
			// waiting for this slot: it cannot drive the medium, so it is
			// excluded from contention and the send fails.
			n.failPending(r)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		m.recycleSlot(reqs)
		return
	}
	if slot < n.busyUntil {
		// The channel became busy after these requests were queued
		// (an earlier slot had a winner); defer them.
		for _, r := range live {
			if n.p.Defer == DeferFIFO {
				m.waitq = append(m.waitq, r)
			} else {
				m.enqueue(r, n.busyUntil)
			}
		}
		m.recycleSlot(reqs)
		return
	}
	if len(live) == 1 {
		n.transmit(live[0], slot)
		m.recycleSlot(reqs)
		return
	}
	// Collision: detected cycle 2, channel free cycle 3. Every collider
	// drove the medium for those detection cycles; charge each the
	// corresponding fraction of its frame energy.
	n.Stats.Collisions++
	m.stats.Collisions++
	for _, r := range live {
		n.chargeCollision(r)
	}
	n.busyUntil = slot + n.p.CollisionCycles
	n.Stats.BusyCycles += n.p.CollisionCycles
	m.scheduleRelease(n.busyUntil)
	if m.sharedExp < n.p.MaxBackoffExp {
		m.sharedExp++
	}
	for _, r := range live {
		exp := 0
		switch n.p.Backoff {
		case BackoffPerMessage:
			r.attempts++
			exp = r.attempts
			if exp > n.p.MaxBackoffExp {
				exp = n.p.MaxBackoffExp
			}
		case BackoffAdaptive:
			exp = m.sharedExp
		default: // persistent (Section 5.3)
			src := r.msg.Src
			if m.backoff[src] < n.p.MaxBackoffExp {
				m.backoff[src]++
			}
			exp = m.backoff[src]
		}
		window := 1 << exp
		if n.p.ConstantBackoffWindow > 0 {
			window = n.p.ConstantBackoffWindow
		}
		wait := sim.Time(n.rng.Intn(window))
		m.enqueue(r, slot+n.p.CollisionCycles+wait)
	}
	m.recycleSlot(reqs)
}

// Granted rewards a successful transmission: the winner's backoff exponent
// (or the shared contention estimate) decays.
func (m *backoffMAC) Granted(req *request) {
	m.stats.Grants++
	switch m.n.p.Backoff {
	case BackoffPersistent:
		if src := req.msg.Src; m.backoff[src] > 0 {
			m.backoff[src]--
		}
	case BackoffAdaptive:
		if m.sharedExp > 0 {
			m.sharedExp--
		}
	}
}

// GrantAborted: the channel is still free, so the next deferred sender
// restarts in this very slot.
func (m *backoffMAC) GrantAborted() { m.releaseHead() }

func (m *backoffMAC) TxScheduled(end sim.Time) { m.scheduleRelease(end) }

// scheduleRelease arranges for the oldest deferred sender to restart at the
// end of the current busy period. It is scheduled after same-cycle commit
// delivery (by sequence order) and before slot arbitration (by priority),
// so withdrawn requests are skipped and the released sender still contends
// with any new same-cycle arrivals.
func (m *backoffMAC) scheduleRelease(at sim.Time) {
	if m.n.p.Defer != DeferFIFO {
		return
	}
	m.n.eng.ScheduleAt(at, sim.PrioNormal, m.releaseHeadFn)
}

func (m *backoffMAC) releaseHead() {
	n := m.n
	if n.busyUntil > n.eng.Now() {
		return // a new busy period already started
	}
	for len(m.waitq) > 0 {
		head := m.waitq[0]
		m.waitq = m.waitq[1:]
		if head.state != reqPending {
			continue // withdrawn while queued
		}
		if n.inj != nil && n.inj.FailStopped(head.msg.Src, uint64(n.eng.Now())) {
			n.failPending(head) // dead sender: excluded from contention
			continue
		}
		m.enqueue(head, n.eng.Now())
		return
	}
}

func (m *backoffMAC) Backlog() int {
	q := len(m.waitq)
	for _, reqs := range m.slots {
		q += len(reqs)
	}
	return q
}

func (m *backoffMAC) Counters() MACStats { return m.stats }

// drain removes every queued request — busy-deferred and future contention
// slots alike — in deterministic order (FIFO queue first, then slots by
// cycle) for an adaptive mode switch. Arbitration events already scheduled
// for emptied slots fire as no-ops; the scheduled-marker map is left
// intact so a later re-enqueue into such a slot reuses the pending event.
func (m *backoffMAC) drain() []*request {
	var out []*request
	for _, r := range m.waitq {
		if r.state == reqPending {
			out = append(out, r)
		}
	}
	m.waitq = nil
	slots := make([]sim.Time, 0, len(m.slots))
	for s := range m.slots {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		for _, r := range m.slots[s] {
			if r.state == reqPending {
				out = append(out, r)
			}
		}
		delete(m.slots, s)
	}
	return out
}
