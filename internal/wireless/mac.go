package wireless

import (
	"encoding/json"
	"fmt"

	"wisync/internal/sim"
)

// MACKind selects the channel's medium-access-control protocol. The WNoC
// literature treats the MAC as the key design axis of a shared wireless
// channel (Abadal et al., "Medium Access Control in Wireless
// Network-on-Chip: A Context Analysis"): random-access families win under
// light, bursty traffic, token families win under sustained saturation,
// and traffic-aware designs (Mansoor et al.) switch between the two.
type MACKind uint8

const (
	// MACBackoff is the paper's design (Section 5.3): carrier sensing
	// with busy deferral plus binary exponential backoff on collisions.
	// It is the default and reproduces the paper's channel behavior
	// exactly.
	MACBackoff MACKind = iota
	// MACToken is collision-free round-robin token passing: a virtual
	// token rotates over the nodes and only the holder may transmit, so
	// simultaneous arrivals serialize without ever colliding, at the cost
	// of token-rotation latency for sparse senders.
	MACToken
	// MACAdaptive is a traffic-aware switcher: it runs MACBackoff while
	// the channel is lightly contended and hands the backlog to MACToken
	// when the observed collision rate over a window crosses a threshold,
	// returning to backoff once contention drains.
	MACAdaptive
)

// MACKinds lists the selectable protocols in presentation order.
var MACKinds = []MACKind{MACBackoff, MACToken, MACAdaptive}

func (k MACKind) String() string {
	switch k {
	case MACBackoff:
		return "backoff"
	case MACToken:
		return "token"
	case MACAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("MACKind(%d)", int(k))
}

// ParseMACKind resolves a -mac flag value.
func ParseMACKind(s string) (MACKind, bool) {
	for _, k := range MACKinds {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Valid reports whether k names a selectable protocol.
func (k MACKind) Valid() bool { return k <= MACAdaptive }

// MarshalJSON renders the protocol as its flag name; unknown values are an
// error so a corrupt kind cannot produce a plausible canonical form.
func (k MACKind) MarshalJSON() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("wireless: cannot marshal invalid %v", k)
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a protocol name as ParseMACKind does.
func (k *MACKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("wireless: mac must be a name string: %w", err)
	}
	v, ok := ParseMACKind(s)
	if !ok {
		return fmt.Errorf("wireless: unknown mac %q", s)
	}
	*k = v
	return nil
}

// MACStats are the per-protocol arbitration counters, kept separate from
// the channel-level Stats so the golden-conformance rendering of Stats is
// unchanged by the MAC refactor. Counters irrelevant to the selected
// protocol stay zero (a backoff run never passes a token; a token run
// never collides).
type MACStats struct {
	// Grants counts transmissions the MAC granted the channel to and
	// that actually transmitted; it equals committed messages. Grants
	// abandoned at the prepare hook are counted by Stats.SkippedGrants,
	// not here (the channel was never occupied and backoff state does
	// not decay).
	Grants uint64
	// Collisions counts collision events resolved by exponential backoff.
	Collisions uint64
	// TokenPasses counts token hops between consecutive grants.
	TokenPasses uint64
	// TokenWaitCycles is the total time transmissions spent waiting for
	// the token to reach their node.
	TokenWaitCycles uint64
	// ModeSwitches counts adaptive backoff<->token transitions.
	ModeSwitches uint64
	// TokenRegens counts token regenerations after a detected loss: the
	// ring path crossed a fail-stopped node, or a fault-plan token_loss
	// event corrupted a handoff. Always zero without a fault plan.
	TokenRegens uint64
}

func (s *MACStats) add(o MACStats) {
	s.Grants += o.Grants
	s.Collisions += o.Collisions
	s.TokenPasses += o.TokenPasses
	s.TokenWaitCycles += o.TokenWaitCycles
	s.ModeSwitches += o.ModeSwitches
	s.TokenRegens += o.TokenRegens
}

// MAC is the channel arbitration policy: it decides when each submitted
// transmission may occupy the shared medium. The Network owns the physical
// channel model (busy periods, commits, delivery, the prepare hook) and
// calls back into the MAC at the three protocol-defining points —
// channel-idle contention (Submit), grant time (Granted / GrantAborted)
// and busy-period end (TxScheduled schedules the follow-up). A MAC starts
// a transmission by calling Network.transmit; everything after the grant
// is protocol-independent.
//
// Implementations live in this package (the request type is internal) and
// are selected through Params.MAC; see MACKind for the protocol catalog.
type MAC interface {
	// Kind identifies the protocol.
	Kind() MACKind
	// Submit routes a transmission attempt at the current cycle. The MAC
	// must eventually start the request (Network.transmit), unless it is
	// withdrawn first.
	Submit(req *request)
	// Granted is called when req is about to occupy the channel, before
	// the commit is scheduled: the protocol updates its contention state
	// (backoff decrement, token position).
	Granted(req *request)
	// GrantAborted is called when a granted request was abandoned at the
	// prepare hook: the channel is still free in this very cycle and the
	// MAC may start the next sender in the same slot.
	GrantAborted()
	// TxScheduled is called after a transmission's commit has been
	// scheduled; end is the cycle the busy period ends. The MAC arranges
	// its busy-end follow-up (releasing a deferred sender, re-arming the
	// token scan).
	TxScheduled(end sim.Time)
	// Backlog returns the number of submitted-but-not-granted requests
	// the MAC is holding.
	Backlog() int
	// Counters returns the per-protocol counter snapshot.
	Counters() MACStats
}

// newMAC builds the protocol selected by k for n.
func newMAC(n *Network, k MACKind) MAC {
	switch k {
	case MACToken:
		return newTokenMAC(n)
	case MACAdaptive:
		return newAdaptiveMAC(n)
	default:
		return newBackoffMAC(n)
	}
}
