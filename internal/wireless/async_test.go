package wireless

import (
	"fmt"
	"reflect"
	"testing"

	"wisync/internal/sim"
)

// TestSendAsyncMirrorsSend drives the same transmission scenario through
// the blocking Send (one process per message) and through SendAsync
// (continuation chains, no processes) and asserts the completions are
// identical: same nodes, same commit/withdraw outcomes, same cycles, in
// the same order, with the same channel statistics. The scenario covers
// every completion path: clean commits, a same-slot collision with
// backoff, FIFO deferral behind a busy channel, a grant-abandoned message
// (prepare hook), and a transfer withdrawn while deferred.
func TestSendAsyncMirrorsSend(t *testing.T) {
	type done struct {
		Node      int
		At        sim.Time
		Committed bool
	}
	const nodes = 8
	sends := []struct {
		node  int
		start sim.Time
	}{{0, 0}, {1, 0}, {2, 3}, {3, 5}, {4, 5}, {5, 6}, {6, 6}, {7, 40}}

	run := func(async bool) ([]done, Stats) {
		eng := sim.NewEngine(7)
		n := New(eng, nodes, Params{})
		// Node 3's message is stale at grant time and must be abandoned.
		n.SetPrepare(func(m Msg) bool { return m.Val != 99 })
		var results []done
		var cancelTok Token
		for _, sd := range sends {
			sd := sd
			msg := Msg{Src: sd.node, Addr: uint32(sd.node), Val: uint64(sd.node)}
			if sd.node == 3 {
				msg.Val = 99
			}
			var tok *Token
			if sd.node == 5 {
				tok = &cancelTok
			}
			if async {
				eng.ScheduleAt(sd.start, sim.PrioNormal, func() {
					n.SendAsync(msg, tok, func(committed bool) {
						results = append(results, done{sd.node, eng.Now(), committed})
					})
				})
			} else {
				eng.Go(fmt.Sprintf("n%d", sd.node), func(p *sim.Proc) {
					p.SleepUntil(sd.start)
					ok := n.Send(p, msg, tok)
					results = append(results, done{sd.node, eng.Now(), ok})
				})
			}
		}
		// Withdraw node 5's transfer while it is still deferred behind the
		// busy channel.
		eng.ScheduleAt(8, sim.PrioNormal, func() { cancelTok.Cancel() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return results, n.Stats
	}

	blocking, blockingStats := run(false)
	async, asyncStats := run(true)
	if !reflect.DeepEqual(blocking, async) {
		t.Errorf("completions diverge:\nblocking: %+v\nasync:    %+v", blocking, async)
	}
	if blockingStats != asyncStats {
		t.Errorf("stats diverge:\nblocking: %+v\nasync:    %+v", blockingStats, asyncStats)
	}
	// The scenario must genuinely exercise the non-commit completions.
	if asyncStats.Withdrawn == 0 {
		t.Error("scenario exercised no withdrawal; move the Cancel earlier")
	}
	if asyncStats.SkippedGrants == 0 {
		t.Error("scenario exercised no grant abandon; check the prepare hook")
	}
	var fails int
	for _, d := range async {
		if !d.Committed {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("%d non-committed completions, want 2 (abandon + withdrawal)", fails)
	}
}
