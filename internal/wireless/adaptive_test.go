package wireless

import (
	"fmt"
	"testing"

	"wisync/internal/sim"
)

// TestAdaptiveBackoffSharedEstimate exercises the Section 5.3 reactive
// policy: after a burst, the shared exponent is already raised, so new
// messages back off appropriately from their first collision; after quiet
// successes it decays again.
func TestAdaptiveBackoffSharedEstimate(t *testing.T) {
	eng := sim.NewEngine(5)
	p := DefaultParams()
	p.Backoff = BackoffAdaptive
	n := New(eng, 32, p)
	for c := 0; c < 32; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
			for i := 0; i < 3; i++ {
				if !n.Send(pp, Msg{Src: c}, nil) {
					t.Errorf("node %d send failed", c)
				}
				pp.Sleep(sim.Time(pp.Engine().Rand().Intn(20)))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Messages != 96 {
		t.Errorf("Messages = %d, want 96", n.Stats.Messages)
	}
	// After the storm drains with successes, the shared estimate decays.
	if exp := n.mac.(*backoffMAC).sharedExp; exp > p.MaxBackoffExp {
		t.Errorf("sharedExp = %d beyond cap %d", exp, p.MaxBackoffExp)
	}
}

// TestAdaptiveNoWorseThanPersistentUnderBurst compares total drain time of
// a synchronized 32-message burst under the two policies; adaptive must be
// competitive (its whole point).
func TestAdaptiveNoWorseThanPersistentUnderBurst(t *testing.T) {
	drain := func(pol BackoffPolicy) sim.Time {
		eng := sim.NewEngine(7)
		p := DefaultParams()
		p.Backoff = pol
		n := New(eng, 32, p)
		for c := 0; c < 32; c++ {
			c := c
			eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
				n.Send(pp, Msg{Src: c}, nil)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	pers, adap := drain(BackoffPersistent), drain(BackoffAdaptive)
	t.Logf("32-burst drain: persistent %d, adaptive %d cycles", pers, adap)
	if adap > 2*pers {
		t.Errorf("adaptive (%d) much worse than persistent (%d)", adap, pers)
	}
}
