// Package wireless models the WiSync Data channel (Section 4.1): a single
// 19 Gb/s wireless channel shared by all nodes, slotted at 1 ns (one
// processor cycle).
//
// A message carries a 64-bit datum, an 11-bit BM address, a Bulk bit and a
// Tone bit (77 bits total) and occupies the channel for 5 cycles; Bulk
// messages carry four data words in 15 cycles. If two or more nodes start
// transmitting in the same slot they collide: the collision is detected in
// the second cycle and the channel is free again in the third, so a
// collision costs 2 cycles. Colliding nodes retry under binary exponential
// backoff (Section 5.3). A node that finds the channel busy defers to the
// cycle at which the channel is next expected to be free — all nodes can
// compute it because the first cycle of every message carries the Bulk bit.
//
// Deferred senders drain according to Params.Defer. The default, DeferFIFO,
// lets the backlog drain in deferral order at full channel rate: collisions
// happen between messages that start in the same idle slot (genuinely
// simultaneous arrivals), while queued senders restart cleanly. This is
// calibrated to the paper's observed behavior — under the synchronized
// bursts of a fetch&inc barrier, the channel must run near capacity (e.g.,
// 256 arrivals in roughly 256 message times in Figure 7), with collision
// losses visible but secondary. DeferContend is the pessimistic pure-CSMA
// alternative where every deferred sender re-contends at busy-end; it is
// kept as an ablation.
//
// Committed messages are delivered to all subscribers at the commit cycle;
// the channel provides a total order of commits, which is what makes the
// replicated Broadcast Memories of package bmem consistent.
//
// Arbitration is pluggable: the busy-deferral, collision and backoff
// behavior described above is the default MAC protocol (Params.MAC ==
// MACBackoff), selected among the protocols of the MACKind catalog —
// collision-free token passing and a traffic-adaptive switcher are the
// alternatives. The Network owns the physical channel (busy periods,
// commits, delivery); the MAC interface owns every arbitration decision.
package wireless

import (
	"fmt"

	"wisync/internal/channel"
	"wisync/internal/fault"
	"wisync/internal/sim"
)

// Kind labels what a message does at the receiving Broadcast Memories.
type Kind uint8

// Message kinds.
const (
	// KindStore writes Val to Addr in every BM.
	KindStore Kind = iota
	// KindRMW is the broadcast-write half of a read-modify-write.
	KindRMW
	// KindBulk writes Val and BulkVals to four consecutive addresses.
	KindBulk
	// KindToneInit announces the first arrival at a tone barrier (the
	// message with the Tone bit set; the data field is immaterial).
	KindToneInit
	// KindAlloc allocates Addr in every BM and tags it with PID.
	KindAlloc
	// KindFree deallocates Addr in every BM.
	KindFree
)

func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindRMW:
		return "rmw"
	case KindBulk:
		return "bulk"
	case KindToneInit:
		return "tone-init"
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	}
	return "?"
}

// Msg is one wireless Data-channel message.
type Msg struct {
	Src      int
	Addr     uint32
	Val      uint64
	BulkVals [3]uint64
	Kind     Kind
	PID      uint16
	// Op, when non-nil on a KindRMW message, is the read-modify-write
	// operation the BM controllers apply at commit time (grant-time RMW
	// evaluation; see bmem). Every replica applies it to the same
	// committed value, so the result is identical chip-wide.
	Op func(uint64) (uint64, bool)
}

// BackoffPolicy selects how the exponential backoff exponent i evolves.
type BackoffPolicy uint8

const (
	// BackoffPersistent is the Section 5.3 design: a per-node i
	// incremented at every collision and decremented at every successful
	// transmission, persisting across messages. This is the default.
	BackoffPersistent BackoffPolicy = iota
	// BackoffPerMessage is classic Ethernet binary exponential backoff
	// [32]: every message starts at i=0 and increments i on each of its
	// own collisions (ablation).
	BackoffPerMessage
	// BackoffAdaptive is the reactive policy the paper sketches but does
	// not explore (Section 5.3): every node observes every collision and
	// success (broadcast medium), so all nodes share a contention
	// estimate and start new transmissions with a window already matched
	// to it, instead of discovering contention one collision at a time.
	BackoffAdaptive
)

// DeferPolicy selects what a sender does when it finds the channel busy.
type DeferPolicy uint8

const (
	// DeferFIFO queues deferred senders and releases them one per busy-
	// end, draining backlog at channel rate (default; see package doc).
	DeferFIFO DeferPolicy = iota
	// DeferContend makes every deferred sender re-contend at the first
	// free cycle, pure 1-persistent CSMA (ablation).
	DeferContend
)

// Params configures the channel timing.
type Params struct {
	// MsgCycles is the duration of an ordinary message (5: four transfer
	// cycles plus the collision-listen cycle).
	MsgCycles sim.Time
	// BulkCycles is the duration of a Bulk message (15: the trailing
	// three words need no collision check, address or control bits).
	BulkCycles sim.Time
	// CollisionCycles is how long a collision occupies the channel (2:
	// detected in the second cycle, free in the third).
	CollisionCycles sim.Time
	// MaxBackoffExp caps the exponential backoff exponent i. Zero means
	// auto: log2(nodes)+1, so the maximum window tracks the worst-case
	// number of simultaneous contenders.
	MaxBackoffExp int
	// Backoff selects the backoff policy.
	Backoff BackoffPolicy
	// Defer selects the busy-channel deferral discipline.
	Defer DeferPolicy
	// ConstantBackoffWindow, if nonzero, replaces exponential backoff
	// with a fixed window of that size (ablation).
	ConstantBackoffWindow int
	// MAC selects the arbitration protocol (default MACBackoff, the
	// paper's design; the Backoff/Defer/ConstantBackoffWindow knobs above
	// configure it). MACToken and MACAdaptive are the alternatives.
	MAC MACKind
	// TokenHopCycles is the token-passing latency per ring hop for
	// MACToken and the token mode of MACAdaptive (default 1: the token is
	// a one-bit tone-like signal, so a hop fits in one channel slot).
	TokenHopCycles sim.Time
	// AdaptiveWindow is how many grants MACAdaptive observes between
	// protocol-switch decisions (default 32).
	AdaptiveWindow int
	// AdaptiveCollisionRate is the collision-rate threshold above which
	// MACAdaptive hands the channel to the token protocol (default 0.25).
	AdaptiveCollisionRate float64
	// Channel configures the channel-error model underneath the MAC. The
	// zero value (and the default) is the ideal error-free channel the
	// paper assumes; see package channel for the lossy profiles.
	Channel channel.Params
	// TokenTimeout is the bounded token-loss detection window for
	// MACToken and the token mode of MACAdaptive: when the token is lost
	// (the ring path crosses a fail-stopped node, or a scheduled
	// token_loss event corrupts a handoff), every node observes the
	// channel silent for this many cycles, agrees the token died, and the
	// ring regenerates it. Zero means auto: nodes*TokenHopCycles +
	// MsgCycles, the longest legitimate token silence (a full rotation
	// plus one message time).
	TokenTimeout sim.Time `json:",omitempty"`
	// Faults is the deterministic fault-injection plan (nil, the default:
	// no faults). It rides the config into canonicalization, so two sweep
	// points with different plans digest — and therefore memoize —
	// separately. See package fault.
	Faults *fault.Plan `json:",omitempty"`
}

// DefaultParams returns the Table 1 channel configuration.
func DefaultParams() Params {
	return Params{
		MsgCycles:             5,
		BulkCycles:            15,
		CollisionCycles:       2,
		Backoff:               BackoffPersistent,
		Defer:                 DeferFIFO,
		MAC:                   MACBackoff,
		TokenHopCycles:        1,
		AdaptiveWindow:        32,
		AdaptiveCollisionRate: 0.25,
		Channel:               channel.DefaultParams(),
	}
}

type reqState uint8

const (
	reqPending reqState = iota
	reqTransmitting
	reqDone
	reqCanceled
)

type request struct {
	n *Network
	// Exactly one of p and then is set: p is a blocking sender parked in
	// Send (or SendParked), then the completion callback of a SendAsync.
	p         *sim.Proc
	then      func(committed bool)
	msg       Msg
	start     sim.Time
	state     reqState
	committed bool
	attempts  int // collisions suffered by this message
	retx      int // retransmissions after corrupted deliveries
	// epoch counts the record's trips through the freelist. A Token
	// snapshots it at issue time, so a Cancel that outlives the message —
	// the record may already carry a different sender's message — is
	// recognized as stale and refused.
	epoch uint64
}

// deliverCont is a recycled async-completion delivery: the event that
// hands a SendAsync outcome to its callback, pooled on the Network so a
// continuation sender costs no closure per message. Outcome fields
// (state, committed) are read at fire time, exactly as the closure this
// replaces did — a withdrawal landing between resume and delivery is
// still observed.
type deliverCont struct {
	n   *Network
	req *request
	fn  func() // cached method value of run
}

func (c *deliverCont) run() {
	n, req := c.n, c.req
	c.req = nil
	n.deliverFree = append(n.deliverFree, c)
	then := req.then
	req.then = nil
	if req.state == reqCanceled {
		n.Stats.Withdrawn++
		then(false) // canceled records stay with the MAC backlog; not pooled
		return
	}
	committed := req.committed
	n.freeRequest(req) // before then: the callback may start the next send
	then(committed)
}

// resume returns control to the sender at the current cycle: a parked
// blocking sender is dispatched directly (an allocation-free process
// event), a continuation sender's completion callback is scheduled. Both
// land at the same (time, priority, sequence) position, so the two sender
// styles are interchangeable without affecting simulated results.
func (r *request) resume() {
	if r.p != nil {
		r.p.Wake(0)
		return
	}
	n := r.n
	var c *deliverCont
	if k := len(n.deliverFree); k > 0 {
		c = n.deliverFree[k-1]
		n.deliverFree = n.deliverFree[:k-1]
	} else {
		c = &deliverCont{n: n}
		c.fn = c.run
	}
	c.req = r
	n.eng.Schedule(0, c.fn)
}

// Token allows the owner of an in-flight Send to withdraw it (used when a
// pending RMW loses atomicity: the write must not be broadcast).
type Token struct {
	req   *request
	epoch uint64 // req.epoch at issue; stale once the record is recycled
}

// Cancel withdraws the transfer if it has not yet won the channel. It
// reports whether the transfer was withdrawn; false means the message is
// already transmitting or committed, or Cancel was called twice. A Token
// held past its message's completion stays safe: the pooled record's epoch
// has moved on, so the stale Cancel is refused even if the record already
// carries another sender's message.
func (t *Token) Cancel() bool {
	r := t.req
	if r == nil || r.epoch != t.epoch || r.state != reqPending {
		return false
	}
	r.state = reqCanceled
	r.resume()
	return true
}

// Stats accumulates channel counters.
type Stats struct {
	Messages      uint64
	Collisions    uint64 // collision events (2+ nodes in one slot)
	Withdrawn     uint64
	SkippedGrants uint64   // RMWs abandoned at grant (write would not happen)
	BusyCycles    sim.Time // cycles the channel carried a message or collision
	LatencySum    sim.Time // sum over messages of commit - request time
}

// Utilization returns the fraction of cycles in [0, now] the channel was
// busy.
func (s *Stats) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(now)
}

// MeanLatency returns the average request-to-commit latency in cycles.
func (s *Stats) MeanLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Messages)
}

// Network is the Data channel.
type Network struct {
	eng       *sim.Engine
	p         Params
	nodes     int
	rng       *sim.Rand
	busyUntil sim.Time
	mac       MAC
	subs      []func(Msg, sim.Time)
	prepare   func(Msg) bool
	// deliverFree and commitFree recycle the per-message scheduling
	// continuations (async completion delivery, transmission commit), and
	// reqFree recycles the request records themselves (epoch-validated; see
	// request.epoch), so the steady-state Send/SendAsync message path
	// allocates nothing.
	deliverFree []*deliverCont
	commitFree  []*commitCont
	reqFree     []*request
	// ch decides per-transmission delivery outcomes; chRng feeds its draws
	// and is forked from the engine only for non-ideal profiles, so the
	// default channel consumes no entropy and perturbs no golden trace.
	ch    channel.Model
	chRng *sim.Rand
	// energyPerNode mirrors every Energy charge onto the spending node.
	energyPerNode []float64
	// inj answers fault-plan queries at the submit and grant commit
	// points. It is nil without a plan, so the default no-fault path
	// evaluates no predicates, schedules no events and forks no rng —
	// every golden trace is untouched.
	inj *fault.Injector
	// Stats is exported for harness reporting.
	Stats Stats
	// Energy is the transceiver energy ledger plus the channel-error
	// delivery counters. Kept out of Stats so the golden rendering of
	// Stats is unchanged by the channel model's existence.
	Energy EnergyStats
}

// New creates a Data channel for the given node count.
func New(eng *sim.Engine, nodes int, p Params) *Network {
	if p.MsgCycles == 0 {
		p = DefaultParams()
	}
	if p.MaxBackoffExp == 0 {
		p.MaxBackoffExp = 1
		for v := 1; v < nodes; v <<= 1 {
			p.MaxBackoffExp++
		}
	}
	if p.TokenHopCycles == 0 {
		p.TokenHopCycles = 1
	}
	if p.AdaptiveWindow == 0 {
		p.AdaptiveWindow = 32
	}
	if p.AdaptiveCollisionRate == 0 {
		p.AdaptiveCollisionRate = 0.25
	}
	if p.TokenTimeout == 0 {
		p.TokenTimeout = sim.Time(nodes)*p.TokenHopCycles + p.MsgCycles
	}
	ch, err := channel.New(nodes, p.Channel)
	if err != nil {
		// Channel params are validated by config.Validate before any
		// machine is built; reaching here is a programming error.
		panic(fmt.Sprintf("wireless: %v", err))
	}
	n := &Network{
		eng:           eng,
		p:             p,
		nodes:         nodes,
		rng:           eng.Rand().Fork(),
		ch:            ch,
		energyPerNode: make([]float64, nodes),
	}
	if !ch.Ideal() {
		n.chRng = eng.Rand().Fork()
	}
	n.inj = fault.NewInjector(p.Faults)
	n.mac = newMAC(n, p.MAC)
	return n
}

// NodeFailStopped reports whether node's transceiver has permanently
// fail-stopped at the current cycle. Always false without a fault plan.
// Cores guard their broadcast retry loops on it so a dead transceiver
// surfaces as a fault record instead of an infinite retry spin.
func (n *Network) NodeFailStopped(node int) bool {
	return n.inj != nil && n.inj.FailStopped(node, uint64(n.eng.Now()))
}

// Params returns the channel configuration.
func (n *Network) Params() Params { return n.p }

// Subscribe registers fn to be called at the commit cycle of every message,
// in subscription order. Subscribers run in engine (event) context.
func (n *Network) Subscribe(fn func(Msg, sim.Time)) {
	n.subs = append(n.subs, fn)
}

// SetPrepare installs the transmission-start check. When it returns false
// for a message that just won the channel, the transfer is abandoned
// without occupying any cycles — "the write is attempted, and it fails"
// (Section 4.2.1): a read-modify-write whose update is stale never
// broadcasts, so the channel carries only useful commits. The hook must be
// side-effect free.
func (n *Network) SetPrepare(fn func(Msg) bool) { n.prepare = fn }

// QueueLen returns the number of senders the MAC is currently holding
// (busy-deferred, backoff-delayed, or waiting for the token).
func (n *Network) QueueLen() int { return n.mac.Backlog() }

// MAC returns the channel's arbitration protocol.
func (n *Network) MAC() MAC { return n.mac }

// MACCounters returns the per-protocol arbitration counters.
func (n *Network) MACCounters() MACStats { return n.mac.Counters() }

// Send transmits msg, blocking p until the message commits at all receivers
// or the transfer is withdrawn through tok (which may be nil). It reports
// whether the message committed.
func (n *Network) Send(p *sim.Proc, msg Msg, tok *Token) bool {
	req := n.newRequest(msg)
	req.p = p
	if tok != nil {
		tok.req = req
		tok.epoch = req.epoch
	}
	n.submit(req)
	p.Park("wireless tx")
	if req.state == reqCanceled {
		n.Stats.Withdrawn++
		return false // canceled records stay with the MAC backlog; not pooled
	}
	committed := req.committed
	n.freeRequest(req)
	return committed
}

// SendAsync transmits msg without a sending process: then runs as an
// engine event at the cycle the message commits at all receivers
// (committed=true) or is withdrawn through tok / abandoned at grant
// (committed=false). It is the continuation mirror of Send — then fires at
// exactly the (time, priority, sequence) position where Send's parked
// process would have been dispatched — for protocol models that run as
// engine-scheduled continuation chains.
func (n *Network) SendAsync(msg Msg, tok *Token, then func(committed bool)) {
	req := n.newRequest(msg)
	if tok != nil {
		tok.req = req
		tok.epoch = req.epoch
	}
	req.then = then
	n.submit(req)
}

// SendParked transmits msg on behalf of p, which the caller must park in
// the same event (before any other event can run). Continuation chains
// that end in a transmission use it so the commit dispatches the sender
// directly — the same allocation-free completion as a blocking Send, with
// the submission itself deferred into the chain. The transfer cannot be
// withdrawn (no Token), so p always resumes at the commit (or
// grant-abandon) cycle.
func (n *Network) SendParked(p *sim.Proc, msg Msg) {
	req := n.newRequest(msg)
	req.p = p
	n.submit(req)
}

func (n *Network) newRequest(msg Msg) *request {
	if msg.Src < 0 || msg.Src >= n.nodes {
		panic(fmt.Sprintf("wireless: bad source node %d", msg.Src))
	}
	if k := len(n.reqFree); k > 0 {
		r := n.reqFree[k-1]
		n.reqFree = n.reqFree[:k-1]
		r.msg = msg
		r.start = n.eng.Now()
		r.state = reqPending
		r.committed = false
		r.attempts = 0
		r.retx = 0
		return r
	}
	return &request{n: n, msg: msg, start: n.eng.Now()}
}

// freeRequest returns a finished record to the pool. Only completion paths
// that left no aliases behind may call it: a request that ran to commit (or
// grant-abandon) was removed from every MAC queue before transmit, so the
// completing Send / async delivery holds the sole reference. Canceled
// requests are NEVER freed — the MAC structures still hold them (backlog
// entries are lazily skipped by state), and recycling would let a stale
// queue entry transmit a different message.
func (n *Network) freeRequest(r *request) {
	r.epoch++
	r.p = nil
	r.then = nil
	r.msg = Msg{} // drop the payload and the RMW Op closure
	n.reqFree = append(n.reqFree, r)
}

// submit hands a (re)transmission attempt to the MAC, which decides when
// it may occupy the channel. A sender whose transceiver is inside an
// outage window fails immediately instead of entering arbitration.
func (n *Network) submit(req *request) {
	if n.inj != nil && n.inj.Down(req.msg.Src, uint64(n.eng.Now())) {
		n.failSend(req)
		return
	}
	n.mac.Submit(req)
}

// failSend completes req as a fault-injected delivery failure without the
// message ever entering the MAC. The completion is delivered as an engine
// event in the same cycle so a blocking sender has parked before it is
// woken; the state guard lets a same-cycle withdrawal win.
func (n *Network) failSend(req *request) {
	n.eng.Schedule(0, func() {
		if req.state != reqPending {
			return
		}
		req.state = reqDone
		req.committed = false
		n.Energy.FaultedSends++
		req.resume()
	})
}

// failPending completes a queued request whose sender's transceiver has
// fail-stopped, from MAC sweep context (an engine event; the sender is
// already parked). The caller removes the record from its queue.
func (n *Network) failPending(req *request) {
	req.state = reqDone
	req.committed = false
	n.Energy.FaultedSends++
	req.resume()
}

// transmit starts req's transmission at slot (the current cycle). It is
// the grant point every MAC funnels into: the prepare hook may abandon the
// transfer, otherwise the channel goes busy for the message duration and
// the commit is scheduled. The MAC is called back at the protocol-relevant
// points (Granted / GrantAborted / TxScheduled).
func (n *Network) transmit(req *request, slot sim.Time) {
	if n.inj != nil && n.inj.Down(req.msg.Src, uint64(slot)) {
		// The sender's transceiver went down while the message was queued:
		// the grant is wasted, the channel stays free, and the send
		// completes as a fault-injected failure.
		req.state = reqDone
		req.committed = false
		n.Energy.FaultedSends++
		req.resume()
		n.mac.GrantAborted()
		return
	}
	if n.prepare != nil && !n.prepare(req.msg) {
		// Abandoned at grant: no transmission, channel still free.
		// The next deferred sender restarts in this very slot.
		req.state = reqDone
		req.committed = false
		n.Stats.SkippedGrants++
		req.resume()
		n.mac.GrantAborted()
		return
	}
	req.state = reqTransmitting
	dur := n.p.MsgCycles
	if req.msg.Kind == KindBulk {
		dur = n.p.BulkCycles
	}
	n.busyUntil = slot + dur
	n.Stats.BusyCycles += dur
	n.chargeTx(req)
	n.mac.Granted(req)
	var c *commitCont
	if k := len(n.commitFree); k > 0 {
		c = n.commitFree[k-1]
		n.commitFree = n.commitFree[:k-1]
	} else {
		c = &commitCont{n: n}
		c.fn = c.run
	}
	c.req = req
	n.eng.ScheduleAt(slot+dur, sim.PrioNormal, c.fn)
	n.mac.TxScheduled(slot + dur)
}

// commitCont is a recycled commit event: the end-of-transmission firing of
// transmit, pooled on the Network.
type commitCont struct {
	n   *Network
	req *request
	fn  func() // cached method value of run
}

func (c *commitCont) run() {
	n, req := c.n, c.req
	c.req = nil
	n.commitFree = append(n.commitFree, c)
	n.commit(req)
}

func (n *Network) commit(req *request) {
	if !n.ch.Ideal() {
		bits := MsgBits
		if req.msg.Kind == KindBulk {
			bits = BulkBits
		}
		if n.ch.Corrupts(n.chRng, req.msg.Src, bits) {
			// At least one receiver CRC-failed the frame and NACKed: no
			// BM applies it (the channel's total order stays consistent
			// because it is all-or-nothing per transmission). The frame
			// still occupied its cycles — BusyCycles and the energy
			// ledger already charged it at transmit.
			if req.retx < n.ch.MaxRetries() {
				req.retx++
				n.Energy.Retransmissions++
				req.state = reqPending
				// Through submit, not the MAC directly: an outage that
				// started mid-flight applies to the retransmission too.
				n.submit(req)
				return
			}
			// Budget exhausted: the send completes as a delivery failure
			// and the sender observes committed == false.
			n.Energy.DeliveryFailures++
			req.state = reqDone
			req.committed = false
			req.resume()
			return
		}
	}
	req.state = reqDone
	req.committed = true
	n.Stats.Messages++
	n.Stats.LatencySum += n.eng.Now() - req.start
	for _, fn := range n.subs {
		fn(req.msg, n.eng.Now())
	}
	req.resume()
}
