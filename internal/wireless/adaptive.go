package wireless

import "wisync/internal/sim"

// adaptiveMAC is a traffic-aware protocol switcher in the style of Mansoor
// et al.'s traffic-adaptive WNoC MAC: random access while the channel is
// lightly loaded, token passing under sustained contention. It runs the
// backoff MAC and watches the collision rate over a window of grants; when
// the rate crosses Params.AdaptiveCollisionRate it hands the entire
// backlog to the token MAC. In token mode it watches the ring occupancy
// instead and returns to backoff once a full window completes with at most
// one sender queued behind each grant (the contention that justified the
// token is gone).
//
// Hysteresis comes from the window: a switch can happen at most once per
// AdaptiveWindow grants, the window counters reset at every switch, and
// the two directions use different signals (collision rate up, ring
// occupancy down), so the protocol cannot flap on the boundary of a single
// threshold. Switches migrate every queued request to the incoming MAC in
// deterministic order at the switch cycle; in-flight token events die
// through the epoch counter, in-flight backoff slot events fire as no-ops.
type adaptiveMAC struct {
	n       *Network
	backoff *backoffMAC
	token   *tokenMAC
	active  MAC
	inToken bool
	// Window accounting. winCollBase snapshots the channel collision
	// counter at window start (collisions happen inside the backoff MAC's
	// slot arbitration, invisible to the wrapper except through stats).
	winGrants   int
	winCollBase uint64
	winMaxQueue int
	switches    uint64
}

func newAdaptiveMAC(n *Network) *adaptiveMAC {
	m := &adaptiveMAC{n: n, backoff: newBackoffMAC(n), token: newTokenMAC(n)}
	m.active = m.backoff
	return m
}

func (m *adaptiveMAC) Kind() MACKind { return MACAdaptive }

// Mode reports which protocol is currently arbitrating.
func (m *adaptiveMAC) Mode() MACKind { return m.active.Kind() }

func (m *adaptiveMAC) Submit(req *request) { m.active.Submit(req) }

func (m *adaptiveMAC) Granted(req *request) {
	m.active.Granted(req)
	m.winGrants++
	if m.inToken && m.token.Backlog() > m.winMaxQueue {
		m.winMaxQueue = m.token.Backlog()
	}
}

func (m *adaptiveMAC) GrantAborted() { m.active.GrantAborted() }

// TxScheduled is the switch point: a transmission just started, so neither
// sub-MAC has a grant in flight and the backlog can migrate atomically.
func (m *adaptiveMAC) TxScheduled(end sim.Time) {
	m.evaluate()
	m.active.TxScheduled(end)
}

func (m *adaptiveMAC) evaluate() {
	if m.winGrants < m.n.p.AdaptiveWindow {
		return
	}
	if !m.inToken {
		coll := m.n.Stats.Collisions - m.winCollBase
		rate := float64(coll) / float64(coll+uint64(m.winGrants))
		if rate > m.n.p.AdaptiveCollisionRate {
			m.switchMode()
		}
	} else if m.winMaxQueue <= 1 {
		m.switchMode()
	}
	m.winGrants = 0
	m.winCollBase = m.n.Stats.Collisions
	m.winMaxQueue = 0
}

func (m *adaptiveMAC) switchMode() {
	var moved []*request
	if m.inToken {
		moved = m.token.drain()
		m.active = m.backoff
	} else {
		moved = m.backoff.drain()
		m.active = m.token
	}
	m.inToken = !m.inToken
	m.switches++
	for _, r := range moved {
		m.active.Submit(r)
	}
}

func (m *adaptiveMAC) Backlog() int { return m.active.Backlog() }

func (m *adaptiveMAC) Counters() MACStats {
	s := m.backoff.Counters()
	s.add(m.token.Counters())
	s.ModeSwitches = m.switches
	return s
}
