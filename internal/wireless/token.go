package wireless

import "wisync/internal/sim"

// tokenMAC is collision-free round-robin token passing, the token family
// of the WNoC MAC design space. A virtual token parks at the node that
// transmitted last; when the channel is free the MAC walks the ring from
// the holder's successor and grants the first node with a pending message,
// charging Params.TokenHopCycles per hop traversed. Only the token holder
// ever starts a transmission, so simultaneous arrivals serialize without
// collisions and the channel drains a synchronized storm at full rate
// (one hop plus one message time per sender). The cost is rotation
// latency: a lone sender pays a full ring traversal per message, which is
// where carrier-sense backoff wins — see the MAC comparison sweep.
type tokenMAC struct {
	n       *Network
	pending [][]*request // per-node FIFO of submitted requests
	holder  int          // node the token parks at (last to transmit)
	npend   int          // queued entries across all nodes (incl. stale)
	// armed marks an in-flight scan or token traversal, gating grants to
	// one at a time. epoch invalidates in-flight events when an adaptive
	// switch drains the queues.
	armed bool
	epoch uint64
	stats MACStats
}

func newTokenMAC(n *Network) *tokenMAC {
	return &tokenMAC{
		n:       n,
		pending: make([][]*request, n.nodes),
		// Park the initial token so the scan starts at node 0.
		holder: n.nodes - 1,
	}
}

func (m *tokenMAC) Kind() MACKind { return MACToken }

func (m *tokenMAC) Submit(req *request) {
	m.pending[req.msg.Src] = append(m.pending[req.msg.Src], req)
	m.npend++
	m.arm()
}

// arm schedules a ring scan at the cycle the channel is next free, unless
// a scan or token traversal is already in flight.
func (m *tokenMAC) arm() {
	if m.armed || m.npend == 0 {
		return
	}
	m.armed = true
	at := m.n.eng.Now()
	if m.n.busyUntil > at {
		at = m.n.busyUntil
	}
	epoch := m.epoch
	// PrioLate, like slot arbitration: requests submitted earlier in the
	// same cycle (commit deliveries run at PrioNormal) participate.
	m.n.eng.ScheduleAt(at, sim.PrioLate, func() { m.scan(epoch) })
}

// scan walks the ring from the holder's successor and starts the token
// toward the first node with a live pending request.
func (m *tokenMAC) scan(epoch uint64) {
	if epoch != m.epoch {
		return // queues were drained by an adaptive mode switch
	}
	m.armed = false
	n := m.n
	now := n.eng.Now()
	if n.busyUntil > now {
		m.arm() // a new busy period started since this scan was armed
		return
	}
	for step := 1; step <= n.nodes; step++ {
		src := (m.holder + step) % n.nodes
		q := m.pending[src]
		for len(q) > 0 && q[0].state != reqPending {
			q = q[1:] // withdrawn while queued
			m.npend--
		}
		m.pending[src] = q
		if len(q) == 0 {
			continue
		}
		wait := sim.Time(step) * n.p.TokenHopCycles
		m.stats.TokenPasses += uint64(step)
		m.stats.TokenWaitCycles += uint64(wait)
		m.armed = true
		e := m.epoch
		n.eng.ScheduleAt(now+wait, sim.PrioLate, func() { m.deliver(src, e) })
		return
	}
}

// deliver runs when the token arrives at src: the head request transmits.
func (m *tokenMAC) deliver(src int, epoch uint64) {
	if epoch != m.epoch {
		return
	}
	m.armed = false
	q := m.pending[src]
	for len(q) > 0 && q[0].state != reqPending {
		q = q[1:]
		m.npend--
	}
	if len(q) == 0 {
		// The chosen sender withdrew during the token flight; the hop
		// cost is sunk, rescan for the next sender.
		m.pending[src] = q
		m.arm()
		return
	}
	req := q[0]
	m.pending[src] = q[1:]
	m.npend--
	m.holder = src
	m.n.transmit(req, m.n.eng.Now())
}

func (m *tokenMAC) Granted(*request) { m.stats.Grants++ }

// GrantAborted: the channel is still free and the token is already at the
// holder, so the next sender can be granted in this very cycle.
func (m *tokenMAC) GrantAborted() { m.arm() }

func (m *tokenMAC) TxScheduled(sim.Time) { m.arm() }

// Backlog counts live queued requests. It recounts rather than returning
// npend: withdrawn entries are only trimmed when a scan reaches them, and
// a stale count would both over-report QueueLen and delay the adaptive
// MAC's occupancy-based switch back to backoff.
func (m *tokenMAC) Backlog() int {
	live := 0
	for _, q := range m.pending {
		for _, r := range q {
			if r.state == reqPending {
				live++
			}
		}
	}
	return live
}

func (m *tokenMAC) Counters() MACStats { return m.stats }

// drain removes every queued request in token service order (round-robin
// from the holder's successor) for an adaptive mode switch, and bumps the
// epoch so any in-flight scan or token traversal event dies stale.
func (m *tokenMAC) drain() []*request {
	var out []*request
	for step := 1; step <= m.n.nodes; step++ {
		src := (m.holder + step) % m.n.nodes
		for _, r := range m.pending[src] {
			if r.state == reqPending {
				out = append(out, r)
			}
		}
		m.pending[src] = nil
	}
	m.npend = 0
	m.armed = false
	m.epoch++
	return out
}
