package wireless

import "wisync/internal/sim"

// tokenMAC is collision-free round-robin token passing, the token family
// of the WNoC MAC design space. A virtual token parks at the node that
// transmitted last; when the channel is free the MAC walks the ring from
// the holder's successor and grants the first node with a pending message,
// charging Params.TokenHopCycles per hop traversed. Only the token holder
// ever starts a transmission, so simultaneous arrivals serialize without
// collisions and the channel drains a synchronized storm at full rate
// (one hop plus one message time per sender). The cost is rotation
// latency: a lone sender pays a full ring traversal per message, which is
// where carrier-sense backoff wins — see the MAC comparison sweep.
type tokenMAC struct {
	n       *Network
	pending [][]*request // per-node FIFO of submitted requests
	holder  int          // node the token parks at (last to transmit)
	npend   int          // queued entries across all nodes (incl. stale)
	// armed marks an in-flight scan or token traversal, gating grants to
	// one at a time. epoch invalidates in-flight events when an adaptive
	// switch drains the queues.
	armed bool
	epoch uint64
	// excluded marks fail-stopped nodes the ring has already detected and
	// reconfigured around: their queued sends were failed, the token
	// skips them without timing out again, and they never rejoin. Nil
	// without a fault plan.
	excluded []bool
	stats    MACStats
}

func newTokenMAC(n *Network) *tokenMAC {
	m := &tokenMAC{
		n:       n,
		pending: make([][]*request, n.nodes),
		// Park the initial token so the scan starts at node 0.
		holder: n.nodes - 1,
	}
	if n.inj != nil {
		m.excluded = make([]bool, n.nodes)
	}
	return m
}

func (m *tokenMAC) Kind() MACKind { return MACToken }

func (m *tokenMAC) Submit(req *request) {
	m.pending[req.msg.Src] = append(m.pending[req.msg.Src], req)
	m.npend++
	m.arm()
}

// arm schedules a ring scan at the cycle the channel is next free, unless
// a scan or token traversal is already in flight.
func (m *tokenMAC) arm() {
	if m.armed || m.npend == 0 {
		return
	}
	m.armed = true
	at := m.n.eng.Now()
	if m.n.busyUntil > at {
		at = m.n.busyUntil
	}
	epoch := m.epoch
	// PrioLate, like slot arbitration: requests submitted earlier in the
	// same cycle (commit deliveries run at PrioNormal) participate.
	m.n.eng.ScheduleAt(at, sim.PrioLate, func() { m.scan(epoch) })
}

// scan walks the ring from the holder's successor and starts the token
// toward the first node with a live pending request.
func (m *tokenMAC) scan(epoch uint64) {
	if epoch != m.epoch {
		return // queues were drained by an adaptive mode switch
	}
	m.armed = false
	n := m.n
	now := n.eng.Now()
	if n.busyUntil > now {
		m.arm() // a new busy period started since this scan was armed
		return
	}
	for step := 1; step <= n.nodes; step++ {
		src := (m.holder + step) % n.nodes
		q := m.pending[src]
		for len(q) > 0 && q[0].state != reqPending {
			q = q[1:] // withdrawn while queued
			m.npend--
		}
		m.pending[src] = q
		if n.inj != nil && n.inj.FailStopped(src, uint64(now)) {
			if m.failNode(src, step) {
				return // token lost crossing the dead node; regenerating
			}
			continue // already excluded: the ring skips it
		}
		if len(q) == 0 {
			continue
		}
		wait := sim.Time(step) * n.p.TokenHopCycles
		m.stats.TokenPasses += uint64(step)
		m.stats.TokenWaitCycles += uint64(wait)
		m.armed = true
		e := m.epoch
		n.eng.ScheduleAt(now+wait, sim.PrioLate, func() { m.deliver(src, e) })
		return
	}
}

// failNode handles the token path crossing fail-stopped node src: every
// queued send from the dead transceiver completes as a fault-injected
// failure, and — the first time only — the token is lost at the dead node
// and must be regenerated. It returns true when a regeneration was
// started (the caller's scan is over); false once the ring has been
// reconfigured to skip src.
func (m *tokenMAC) failNode(src, step int) bool {
	q := m.pending[src]
	for len(q) > 0 {
		if q[0].state == reqPending {
			m.n.failPending(q[0])
		}
		q = q[1:]
		m.npend--
	}
	m.pending[src] = q
	if m.excluded[src] {
		return false
	}
	// The token cannot traverse a dead transceiver: it is lost here, the
	// ring detects the silence after the bounded timeout, reconfigures
	// around src, and regenerates the token at the dead node's position
	// (so the recovery scan resumes from its successor — no live node is
	// skipped, because every node between the old holder and src had an
	// empty queue).
	m.excluded[src] = true
	m.stats.TokenPasses += uint64(step)
	m.holder = src
	m.regenerate()
	return true
}

// regenerate schedules a token regeneration after the bounded
// TokenTimeout: all nodes observe the channel silent for the longest
// legitimate token silence, unanimously declare the token lost, and the
// scan restarts from the last holder's successor. armed stays set so no
// second grant path can start inside the window; the epoch guard kills
// the regeneration if an adaptive switch drains this MAC first.
func (m *tokenMAC) regenerate() {
	m.stats.TokenRegens++
	m.armed = true
	e := m.epoch
	m.n.eng.ScheduleAt(m.n.eng.Now()+m.n.p.TokenTimeout, sim.PrioLate, func() {
		if e != m.epoch {
			return
		}
		m.armed = false
		m.arm()
	})
}

// deliver runs when the token arrives at src: the head request transmits.
func (m *tokenMAC) deliver(src int, epoch uint64) {
	if epoch != m.epoch {
		return
	}
	n := m.n
	if n.inj != nil {
		if n.inj.TokenLost(uint64(n.eng.Now())) {
			// A scheduled token_loss event corrupted this handoff: the
			// token never arrives. The holder is unchanged — after the
			// timeout the scan repeats from the same position.
			m.regenerate()
			return
		}
		if n.inj.FailStopped(src, uint64(n.eng.Now())) {
			// src died while the token was in flight: the handoff lands on
			// a dead transceiver and the token is lost there.
			if !m.failNode(src, 0) {
				m.armed = false
				m.arm() // already excluded somehow; keep the ring turning
			}
			return
		}
	}
	m.armed = false
	q := m.pending[src]
	for len(q) > 0 && q[0].state != reqPending {
		q = q[1:]
		m.npend--
	}
	if len(q) == 0 {
		// The chosen sender withdrew during the token flight; the hop
		// cost is sunk, rescan for the next sender.
		m.pending[src] = q
		m.arm()
		return
	}
	req := q[0]
	m.pending[src] = q[1:]
	m.npend--
	m.holder = src
	m.n.transmit(req, m.n.eng.Now())
}

func (m *tokenMAC) Granted(*request) { m.stats.Grants++ }

// GrantAborted: the channel is still free and the token is already at the
// holder, so the next sender can be granted in this very cycle.
func (m *tokenMAC) GrantAborted() { m.arm() }

func (m *tokenMAC) TxScheduled(sim.Time) { m.arm() }

// Backlog counts live queued requests. It recounts rather than returning
// npend: withdrawn entries are only trimmed when a scan reaches them, and
// a stale count would both over-report QueueLen and delay the adaptive
// MAC's occupancy-based switch back to backoff.
func (m *tokenMAC) Backlog() int {
	live := 0
	for _, q := range m.pending {
		for _, r := range q {
			if r.state == reqPending {
				live++
			}
		}
	}
	return live
}

func (m *tokenMAC) Counters() MACStats { return m.stats }

// drain removes every queued request in token service order (round-robin
// from the holder's successor) for an adaptive mode switch, and bumps the
// epoch so any in-flight scan or token traversal event dies stale.
func (m *tokenMAC) drain() []*request {
	var out []*request
	for step := 1; step <= m.n.nodes; step++ {
		src := (m.holder + step) % m.n.nodes
		for _, r := range m.pending[src] {
			if r.state == reqPending {
				out = append(out, r)
			}
		}
		m.pending[src] = nil
	}
	m.npend = 0
	m.armed = false
	m.epoch++
	return out
}
