package wireless

import (
	"fmt"
	"testing"

	"wisync/internal/sim"
)

// commitTrace runs a fixed contended scenario — 16 nodes, 4 messages each,
// seeded random inter-send sleeps, one mid-flight cancellation — and
// returns the full commit trace as "src.msg@cycle" entries. The scenario
// covers every arbitration path: idle-slot wins, busy deferral, collisions
// with backoff retries, and a withdrawal while queued.
func commitTrace(p Params, seed uint64) []string {
	eng := sim.NewEngine(seed)
	n := New(eng, 16, p)
	var trace []string
	n.Subscribe(func(m Msg, at sim.Time) {
		trace = append(trace, fmt.Sprintf("%d.%d@%d", m.Src, m.Val, at))
	})
	var tok Token
	for c := 0; c < 16; c++ {
		c := c
		eng.Go(fmt.Sprintf("n%d", c), func(pp *sim.Proc) {
			for i := 0; i < 4; i++ {
				t := &Token{}
				if c == 3 && i == 2 {
					t = &tok
				}
				n.Send(pp, Msg{Src: c, Val: uint64(i)}, t)
				pp.Sleep(sim.Time(pp.Engine().Rand().Intn(9)))
			}
		})
	}
	eng.Go("canceler", func(pp *sim.Proc) {
		pp.Sleep(7)
		tok.Cancel()
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return trace
}

// preRefactorTraces were recorded from the monolithic pre-MAC-refactor
// arbitration code (PR 2 state, commit 7a52ee1) with the scenario above.
// The default backoff MAC must reproduce them bit-for-bit: the refactor
// moved the arbitration logic behind the MAC interface without changing a
// single decision, random draw, or event position. The four scenarios
// cover the default configuration (two seeds) plus the DeferContend /
// BackoffPerMessage and BackoffAdaptive ablations, all of which are now
// served by the same backoff MAC implementation.
var preRefactorTraces = []struct {
	name string
	p    func() Params
	seed uint64
	want []string
}{
	{"default-s123", DefaultParams, 123, []string{
		"9.0@17", "10.0@22", "11.0@27", "14.0@32", "15.0@37", "2.0@42", "12.0@47", "13.0@52", "6.0@57", "3.0@62", "4.0@71", "5.0@80", "9.1@85", "10.1@90", "11.1@95", "15.1@100", "3.1@113", "0.0@120", "2.1@141", "4.1@154", "9.2@159", "10.2@164", "15.2@171", "5.1@176", "13.1@187", "7.0@192", "8.0@197", "3.2@208", "2.2@219", "14.1@226", "1.0@237", "3.3@244", "10.3@251", "6.1@260", "14.2@265", "2.3@270", "15.3@275", "5.2@280", "0.1@285", "1.1@290", "13.2@295", "9.3@300", "8.1@305", "6.2@310", "14.3@315", "12.1@320", "11.2@325", "7.1@330", "4.2@335", "0.2@342", "1.2@347", "8.2@354", "12.2@361", "4.3@368", "7.2@373", "5.3@378", "0.3@383", "13.3@388", "8.3@393", "12.3@398", "6.3@403", "7.3@408", "1.3@413", "11.3@418"}},
	{"default-s7", DefaultParams, 7, []string{
		"1.0@19", "7.0@26", "15.0@33", "6.0@38", "5.0@43", "12.0@48", "8.0@53", "3.0@58", "14.0@63", "9.0@68", "2.0@75", "13.0@80", "4.0@85", "1.1@90", "6.1@103", "5.1@108", "12.1@113", "8.1@118", "3.1@123", "9.1@128", "14.1@133", "2.1@138", "13.1@143", "0.0@150", "10.0@155", "11.0@162", "1.2@167", "6.2@172", "3.2@185", "9.2@190", "14.2@195", "13.2@200", "15.1@211", "12.2@224", "3.3@231", "7.1@238", "9.3@243", "13.3@250", "4.1@255", "10.1@264", "11.1@269", "12.3@274", "15.2@279", "2.2@284", "7.2@289", "6.3@294", "14.3@299", "4.2@304", "1.3@311", "5.2@318", "8.2@325", "15.3@330", "2.3@335", "7.3@340", "4.3@345", "8.3@352", "11.2@357", "5.3@362", "0.1@367", "10.2@372", "11.3@377", "0.2@382", "10.3@387", "0.3@394"}},
	{"contend-permsg-s123", func() Params {
		p := DefaultParams()
		p.Defer = DeferContend
		p.Backoff = BackoffPerMessage
		return p
	}, 123, []string{
		"13.0@17", "13.1@32", "0.0@42", "0.1@53", "10.0@62", "10.1@69", "0.2@78", "10.2@85", "0.3@92", "15.0@103", "15.1@110", "8.0@126", "8.1@141", "6.0@148", "8.2@169", "2.0@176", "3.0@192", "7.0@202", "7.1@224", "14.0@233", "10.3@240", "14.1@249", "6.1@267", "12.0@291", "4.0@298", "2.1@305", "5.0@314", "8.3@327", "2.2@334", "5.1@341", "11.0@348", "5.2@355", "9.0@372", "9.1@383", "9.2@395", "7.2@402", "9.3@410", "13.2@417", "1.0@428", "1.1@445", "14.2@450", "5.3@457", "14.3@464", "3.1@471", "3.2@480", "3.3@496", "11.1@503", "7.3@512", "11.2@519", "2.3@526", "11.3@533", "6.2@538", "1.2@545", "15.2@552", "15.3@563", "1.3@577", "12.1@582", "12.2@589", "13.3@594", "12.3@602", "6.3@615", "4.1@632", "4.2@638", "4.3@643"}},
	{"adaptive-backoff-s5", func() Params {
		p := DefaultParams()
		p.Backoff = BackoffAdaptive
		return p
	}, 5, []string{
		"2.0@13", "4.0@18", "5.0@23", "12.0@34", "13.0@39", "15.0@44", "3.0@53", "6.0@58", "1.0@63", "9.0@68", "14.0@77", "7.0@82", "5.1@91", "10.0@96", "13.1@101", "15.1@106", "11.0@111", "0.0@116", "3.1@121", "6.1@126", "1.1@131", "9.1@136", "2.1@141", "4.1@146", "5.2@159", "10.1@164", "13.2@169", "15.2@174", "11.1@179", "0.1@184", "14.1@199", "12.1@206", "4.2@211", "7.1@218", "10.2@223", "15.3@230", "1.2@239", "6.2@244", "2.2@249", "3.2@256", "4.3@261", "14.2@272", "11.2@279", "10.3@284", "13.3@289", "1.3@294", "6.3@299", "0.2@304", "9.2@309", "2.3@314", "3.3@319", "12.2@324", "7.2@329", "8.0@338", "11.3@343", "0.3@348", "9.3@353", "14.3@358", "7.3@363", "5.3@368", "12.3@373", "8.1@378", "8.2@388", "8.3@393"}},
}

// TestDefaultMACMatchesPreRefactorTraces proves the MAC extraction is
// behavior-preserving: the default (backoff) MAC reproduces the commit
// traces recorded before the arbitration logic moved behind the interface.
func TestDefaultMACMatchesPreRefactorTraces(t *testing.T) {
	for _, sc := range preRefactorTraces {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := commitTrace(sc.p(), sc.seed)
			if len(got) != len(sc.want) {
				t.Fatalf("trace length %d, want %d\n got: %v", len(got), len(sc.want), got)
			}
			for i := range got {
				if got[i] != sc.want[i] {
					t.Fatalf("trace[%d] = %s, want %s (default MAC diverged from pre-refactor arbitration)",
						i, got[i], sc.want[i])
				}
			}
		})
	}
}
