package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean(0) did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanLEQMean(t *testing.T) {
	// AM-GM inequality as a property test.
	err := quick.Check(func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 50); got != 2 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup(_, 0) not +Inf")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer-name", 42)
	out := tb.String()
	for _, want := range []string{"# My Title", "name", "alpha", "1.50", "beta-longer-name", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("%d lines, want 5:\n%s", len(lines), out)
	}
}
