// Package stats provides the small statistics and reporting helpers used by
// the benchmark harness: means, geometric means, speedups, and fixed-width
// text tables shaped like the paper's figures and tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which indicate a harness bug).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns base/x: how many times faster x is than base.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	return base / x
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Table accumulates rows for fixed-width text output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
