package config

import "testing"

func TestKindProperties(t *testing.T) {
	cases := []struct {
		k              Kind
		bm, tone, tree bool
		name           string
	}{
		{Baseline, false, false, false, "Baseline"},
		{BaselinePlus, false, false, true, "Baseline+"},
		{WiSyncNoT, true, false, false, "WiSyncNoT"},
		{WiSync, true, true, false, "WiSync"},
	}
	for _, c := range cases {
		if c.k.HasBM() != c.bm || c.k.HasTone() != c.tone || c.k.TreeBroadcast() != c.tree {
			t.Errorf("%v: HasBM=%v HasTone=%v Tree=%v", c.k, c.k.HasBM(), c.k.HasTone(), c.k.TreeBroadcast())
		}
		if c.k.String() != c.name {
			t.Errorf("String() = %q, want %q", c.k.String(), c.name)
		}
	}
	if len(Kinds) != 4 {
		t.Errorf("Kinds has %d entries", len(Kinds))
	}
}

func TestDefaultsMatchTable1(t *testing.T) {
	c := New(WiSync, 64)
	if c.L1RT != 2 || c.L2RT != 6 || c.MemRT != 110 || c.HopLatency != 4 {
		t.Errorf("wired defaults = %+v", c)
	}
	if c.BMRT != 2 || c.BMEntries != 2048 {
		t.Errorf("BM defaults = RT %d, entries %d", c.BMRT, c.BMEntries)
	}
	if c.Wireless.MsgCycles != 5 || c.Wireless.BulkCycles != 15 || c.Wireless.CollisionCycles != 2 {
		t.Errorf("wireless defaults = %+v", c.Wireless)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestVariantsMatchTable6(t *testing.T) {
	base := New(WiSync, 64)
	cases := []struct {
		v      Variant
		l2, bm int
		hop    uint64
	}{
		{Default, 6, 2, 4},
		{SlowNet, 6, 2, 6},
		{SlowNetL2, 12, 2, 6},
		{FastNet, 6, 2, 2},
		{SlowBMEM, 6, 4, 4},
	}
	for _, c := range cases {
		got := base.WithVariant(c.v)
		if int(got.L2RT) != c.l2 || int(got.BMRT) != c.bm || got.HopLatency != c.hop {
			t.Errorf("%v: L2 %d BM %d hop %d, want %d %d %d",
				c.v, got.L2RT, got.BMRT, got.HopLatency, c.l2, c.bm, c.hop)
		}
	}
	if len(Variants) != 5 {
		t.Errorf("Variants has %d entries", len(Variants))
	}
}

func TestValidate(t *testing.T) {
	bad := New(WiSync, 64)
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("0 cores validated")
	}
	bad = New(WiSync, 64)
	bad.Cores = 512
	if bad.Validate() == nil {
		t.Error("512 cores validated")
	}
	bad = New(WiSync, 64)
	bad.BMEntries = 0
	if bad.Validate() == nil {
		t.Error("WiSync with 0 BM entries validated")
	}
	ok := New(Baseline, 64)
	ok.BMEntries = 0 // irrelevant without BM
	if err := ok.Validate(); err != nil {
		t.Errorf("baseline without BM entries: %v", err)
	}
}

func TestWithSeed(t *testing.T) {
	c := New(WiSync, 16).WithSeed(42)
	if c.Seed != 42 {
		t.Errorf("Seed = %d", c.Seed)
	}
}
