package config

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"wisync/internal/channel"
	"wisync/internal/fault"
	"wisync/internal/wireless"
)

func mustDigest(t *testing.T, c Config) string {
	t.Helper()
	d, err := c.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	return d
}

// TestDigestFieldOrderIndependence pins that the digest depends on the
// configuration, not on how its JSON was spelled: the same fields in
// scrambled order, with different whitespace, decode to the same digest.
func TestDigestFieldOrderIndependence(t *testing.T) {
	base := New(WiSync, 64)
	canonical, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Scramble: decode the canonical form into a generic map and re-encode
	// it (Go maps marshal with sorted keys, a different order than the
	// struct's declaration order), then decode that back into a Config.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(canonical, &m); err != nil {
		t.Fatal(err)
	}
	scrambled, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(scrambled) == string(canonical) {
		t.Fatalf("scrambling produced the canonical byte order; test is vacuous")
	}
	var c2 Config
	if err := json.Unmarshal(scrambled, &c2); err != nil {
		t.Fatal(err)
	}
	if got, want := mustDigest(t, c2), mustDigest(t, base); got != want {
		t.Fatalf("digest depends on JSON field order: %s vs %s", got, want)
	}
}

// TestDigestRoundTrip pins marshal -> unmarshal -> digest identity for
// every kind, and that re-encoding the canonical form reproduces it byte
// for byte.
func TestDigestRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		for _, v := range Variants {
			c := New(k, 128).WithVariant(v).WithSeed(7).WithMAC(wireless.MACToken)
			b, err := c.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			var c2 Config
			if err := json.Unmarshal(b, &c2); err != nil {
				t.Fatal(err)
			}
			if c2 != c {
				t.Fatalf("%v/%v: round-trip changed the config:\n%+v\n%+v", k, v, c, c2)
			}
			b2, err := c2.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(b2) != string(b) {
				t.Fatalf("%v/%v: canonical form not reproducible:\n%s\n%s", k, v, b, b2)
			}
			if mustDigest(t, c2) != mustDigest(t, c) {
				t.Fatalf("%v/%v: round-trip changed the digest", k, v)
			}
		}
	}
}

// TestDigestExcludesSeedAndShards pins the two deliberate exclusions: the
// seed is the cache key's other half, and sharding is bit-identical by
// construction, so neither may split the content address.
func TestDigestExcludesSeedAndShards(t *testing.T) {
	base := New(WiSync, 64)
	if mustDigest(t, base.WithSeed(42)) != mustDigest(t, base) {
		t.Fatal("seed leaked into the digest")
	}
	if mustDigest(t, base.WithShards(4)) != mustDigest(t, base) {
		t.Fatal("shard count leaked into the digest")
	}
}

// enumSizes lists the valid value count of every enum-typed field, so the
// flip test can bump them within range (out-of-range enums refuse to
// marshal, by design).
var enumSizes = map[reflect.Type]int64{
	reflect.TypeOf(Kind(0)):                   int64(len(Kinds)),
	reflect.TypeOf(wireless.MACKind(0)):       int64(len(wireless.MACKinds)),
	reflect.TypeOf(wireless.BackoffPolicy(0)): 3,
	reflect.TypeOf(wireless.DeferPolicy(0)):   2,
	reflect.TypeOf(channel.Profile(0)):        int64(len(channel.Profiles)),
}

// leafPaths enumerates every leaf field path of t, recursing into nested
// structs (the wireless and tone parameter structs).
func leafPaths(t reflect.Type, prefix string) []string {
	if t.Kind() != reflect.Struct {
		return []string{prefix}
	}
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		out = append(out, leafPaths(f.Type, prefix+"."+f.Name)...)
	}
	return out
}

// fieldAt navigates a dot path like ".Wireless.MsgCycles" to the
// addressable leaf value inside c.
func fieldAt(c *Config, path string) reflect.Value {
	v := reflect.ValueOf(c).Elem()
	for _, name := range strings.Split(strings.TrimPrefix(path, "."), ".") {
		v = v.FieldByName(name)
	}
	return v
}

// TestDigestFieldFlips walks every leaf field of Config (including the
// nested wireless and tone parameter structs) and asserts that flipping it
// moves the digest — except Seed and Shards, covered above. A future field
// that does not move the digest fails loudly: silently excluding a new
// sweep-relevant knob from the content address would serve wrong cached
// results.
func TestDigestFieldFlips(t *testing.T) {
	base := New(WiSync, 64)
	baseDigest := mustDigest(t, base)
	paths := leafPaths(reflect.TypeOf(base), "")
	if len(paths) < 15 {
		t.Fatalf("only %d leaf fields found; the walk is broken", len(paths))
	}
	for _, path := range paths {
		if path == ".Seed" || path == ".Shards" {
			continue // digest-excluded by design, pinned above
		}
		if path == ".Abort" {
			continue // host-side control (json:"-"), digest-excluded by design
		}
		c := base
		flipOne(t, fieldAt(&c, path), path)
		if mustDigest(t, c) == baseDigest {
			t.Errorf("flipping %s did not move the digest", path)
		}
	}
}

// flipOne bumps one leaf field to a different valid value.
func flipOne(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	if n, ok := enumSizes[v.Type()]; ok {
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt((v.Int() + 1) % n)
		default:
			v.SetUint(uint64((int64(v.Uint()) + 1) % n))
		}
		return
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Ptr:
		// Optional sub-configs (the fault plan): nil -> a non-nil zero
		// value, which serializes as an explicit empty object.
		v.Set(reflect.New(v.Type().Elem()))
	default:
		t.Fatalf("field %s: unflippable kind %v — extend the test", path, v.Kind())
	}
}

// TestEnumJSONRejectsUnknownNames pins that decode-time validation catches
// bad names for every enum the job vocabulary exposes.
func TestEnumJSONRejectsUnknownNames(t *testing.T) {
	var k Kind
	if err := json.Unmarshal([]byte(`"Quantum"`), &k); err == nil {
		t.Fatal("unknown kind name decoded")
	}
	if err := json.Unmarshal([]byte(`3`), &k); err == nil {
		t.Fatal("numeric kind decoded; names are the wire form")
	}
	var v Variant
	if err := json.Unmarshal([]byte(`"Turbo"`), &v); err == nil {
		t.Fatal("unknown variant name decoded")
	}
	var m wireless.MACKind
	if err := json.Unmarshal([]byte(`"aloha"`), &m); err == nil {
		t.Fatal("unknown mac name decoded")
	}
	if _, err := Kind(9).MarshalJSON(); err == nil {
		t.Fatal("invalid kind marshaled")
	}
}

// TestValidateCentralized pins the job-level checks the service leans on.
func TestValidateCentralized(t *testing.T) {
	good := New(WiSync, 64)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		func() Config { c := good; c.Kind = 9; return c }(),
		func() Config { c := good; c.Cores = 0; return c }(),
		func() Config { c := good; c.Cores = 1000; return c }(),
		func() Config { c := good; c.Shards = 65; return c }(),
		func() Config { c := good; c.Wireless.MAC = 9; return c }(),
		func() Config { c := good; c.Wireless.Backoff = 9; return c }(),
		func() Config { c := good; c.Wireless.Defer = 9; return c }(),
		func() Config { c := good; c.Wireless.MsgCycles = 0; return c }(),
		func() Config { c := good; c.Tone.TableSize = 0; return c }(),
		func() Config { c := good; c.L1Sets = 0; return c }(),
		func() Config { c := good; c.Wireless.Channel.Profile = 9; return c }(),
		func() Config { c := good; c.Wireless.Channel.BER = -1; return c }(),
		func() Config { c := good; c.Wireless.Channel.BER = 1; return c }(),
		func() Config {
			c := good
			c.Wireless.Channel.MaxRetries = channel.MaxRetriesCap + 1
			return c
		}(),
		func() Config { // burst channel with good state dirtier than bad
			c := good
			c.Wireless.Channel = channel.Params{Profile: channel.Burst, BER: 1e-5, BERGood: 1e-3}
			return c
		}(),
		func() Config { // fault plan naming a node the machine doesn't have
			c := good
			return c.WithFaults(&fault.Plan{Outages: []fault.Outage{{Node: 64, At: 100}}})
		}(),
		func() Config { // fault plan killing every transceiver
			c := New(WiSync, 2)
			return c.WithFaults(&fault.Plan{Outages: []fault.Outage{{Node: 0, At: 0}, {Node: 1, At: 0}}})
		}(),
		func() Config { // fault plan on a wired machine
			c := New(Baseline, 64)
			return c.WithFaults(&fault.Plan{Outages: []fault.Outage{{Node: 3, At: 100}}})
		}(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}
