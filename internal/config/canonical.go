// Canonical serialization and content addressing.
//
// The sweep service memoizes completed points in a content-addressed cache,
// which is only sound if two configurations that simulate identically hash
// identically and any configuration change that could move a result moves
// the hash. This file defines that canonical form: Config marshals to JSON
// with enum fields rendered as their flag names (so job documents read
// naturally and unknown names fail at decode time, not inside a worker),
// and Digest condenses the result-relevant fields to a hex SHA-256.
//
// Seed and Shards are deliberately excluded from the digest: Seed is the
// other half of the cache key (the service keys entries by
// (digest, seed)), and Shards only partitions the engine's event storage —
// sharded runs are bit-identical at every count, pinned by
// TestGoldenShardInvariance. The execution mode (task vs thread) never
// reaches Config at all and is excluded for the same reason.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// ParseKind resolves a machine-kind name (case-insensitive), e.g. from a
// -config flag or a sweep-job document.
func ParseKind(s string) (Kind, bool) {
	for _, k := range Kinds {
		if strings.EqualFold(k.String(), s) {
			return k, true
		}
	}
	return 0, false
}

// ParseVariant resolves a Table 6 variant name (case-insensitive).
func ParseVariant(s string) (Variant, bool) {
	for _, v := range Variants {
		if strings.EqualFold(v.String(), s) {
			return v, true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its flag name. Unknown values are an
// error, not a silent numeric fallback: a corrupt kind must not produce a
// plausible-looking canonical form.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < Baseline || k > WiSync {
		return nil, fmt.Errorf("config: cannot marshal invalid %v", k)
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a kind name as ParseKind does.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("config: kind must be a name string: %w", err)
	}
	v, ok := ParseKind(s)
	if !ok {
		return fmt.Errorf("config: unknown kind %q (one of: %s)", s, kindNames())
	}
	*k = v
	return nil
}

// MarshalJSON renders the variant as its flag name.
func (v Variant) MarshalJSON() ([]byte, error) {
	if v < Default || v > SlowBMEM {
		return nil, fmt.Errorf("config: cannot marshal invalid %v", v)
	}
	return json.Marshal(v.String())
}

// UnmarshalJSON accepts a variant name as ParseVariant does.
func (v *Variant) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("config: variant must be a name string: %w", err)
	}
	p, ok := ParseVariant(s)
	if !ok {
		return fmt.Errorf("config: unknown variant %q", s)
	}
	*v = p
	return nil
}

func kindNames() string {
	var names []string
	for _, k := range Kinds {
		names = append(names, k.String())
	}
	return strings.Join(names, " ")
}

// CanonicalJSON renders the configuration in its canonical wire form: one
// JSON object with fields in struct declaration order and enums as names.
// Decoding it (in any field order) and re-encoding reproduces it byte for
// byte, which is what makes the form safe to digest.
func (c Config) CanonicalJSON() ([]byte, error) {
	return json.Marshal(c)
}

// Digest returns the content address of the configuration as a hex
// SHA-256 over its canonical JSON with Seed and Shards zeroed (see the
// file comment for why those two fields are excluded). Configurations
// that simulate identically share a digest; flipping any result-relevant
// field changes it (pinned by TestDigestFieldFlips).
func (c Config) Digest() (string, error) {
	c.Seed = 0
	c.Shards = 0
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
