// Package config captures the architecture configurations of the paper's
// evaluation as data: the general and WiSync parameters of Table 1, the
// four machine kinds of Table 2, and the memory/network sensitivity
// variants of Table 6.
package config

import (
	"fmt"

	"wisync/internal/channel"
	"wisync/internal/fault"
	"wisync/internal/sim"
	"wisync/internal/tone"
	"wisync/internal/wireless"
)

// Kind selects one of the four compared machines (Table 2).
type Kind int

// Machine kinds.
const (
	// Baseline is a plain manycore: CAS locks and a centralized
	// sense-reversing barrier over the cache hierarchy.
	Baseline Kind = iota
	// BaselinePlus adds virtual-tree broadcast in the NoC, MCS locks and
	// tournament barriers.
	BaselinePlus
	// WiSyncNoT is WiSync without the Tone channel: all synchronization
	// uses the wireless Data channel.
	WiSyncNoT
	// WiSync is the full design: Data channel plus Tone-channel barriers.
	WiSync
)

// Kinds lists all four configurations in presentation order.
var Kinds = []Kind{Baseline, BaselinePlus, WiSyncNoT, WiSync}

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case BaselinePlus:
		return "Baseline+"
	case WiSyncNoT:
		return "WiSyncNoT"
	case WiSync:
		return "WiSync"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// HasBM reports whether the configuration includes Broadcast Memories and
// the wireless Data channel.
func (k Kind) HasBM() bool { return k == WiSyncNoT || k == WiSync }

// HasTone reports whether the configuration includes the Tone channel.
func (k Kind) HasTone() bool { return k == WiSync }

// TreeBroadcast reports whether the NoC supports virtual-tree multicast.
func (k Kind) TreeBroadcast() bool { return k == BaselinePlus }

// Variant selects a Table 6 sensitivity configuration.
type Variant int

// Sensitivity variants (Table 6).
const (
	Default Variant = iota
	SlowNet
	SlowNetL2
	FastNet
	SlowBMEM
)

// Variants lists the Table 6 rows in order.
var Variants = []Variant{Default, SlowNet, SlowNetL2, FastNet, SlowBMEM}

func (v Variant) String() string {
	switch v {
	case Default:
		return "Default"
	case SlowNet:
		return "SlowNet"
	case SlowNetL2:
		return "SlowNet+L2"
	case FastNet:
		return "FastNet"
	case SlowBMEM:
		return "SlowBMEM"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config is a full machine configuration.
type Config struct {
	Kind  Kind
	Cores int
	// Seed drives all simulation randomness; same seed, same run.
	Seed uint64
	// Shards partitions the simulated cores' local events across this many
	// engine shards for intra-point host parallelism (sim.ConfigureShards).
	// 0 (the default) is the unsharded engine; any value produces
	// bit-identical simulated results, only wall-clock time changes.
	Shards int

	// Wired hierarchy (Table 1 / Table 6).
	L1RT       sim.Time
	L2RT       sim.Time
	MemRT      sim.Time
	HopLatency uint64
	L1Sets     int
	L1Ways     int
	MemCtrlOcc sim.Time

	// WiSync hardware (Table 1).
	BMRT      sim.Time
	BMEntries int
	Wireless  wireless.Params
	Tone      tone.Params

	// Budget, when nonzero, bounds a run's simulated cycles: the
	// machine's guarded run loop aborts with a structured core.BudgetError
	// once the clock reaches it. Result-relevant (a budgeted point may
	// yield an error row an unbounded run would not), so it participates
	// in the digest; the zero default serializes to nothing, keeping
	// every pre-budget digest unchanged.
	Budget sim.Time `json:",omitempty"`
	// Watchdog, when nonzero, is the progress-watchdog window in cycles:
	// when no workload operation completes for a full window the run
	// aborts with a structured core.LivelockError carrying the parked
	// cores' last-operation breadcrumbs. Digested like Budget.
	Watchdog sim.Time `json:",omitempty"`
	// Abort, when non-nil, is polled by the guarded run loop between run
	// chunks; a true return aborts the run with core.ErrAborted. It
	// threads server job deadlines and client cancellation into a point.
	// Host-side control only — it never alters simulated behavior before
	// the abort — so it is excluded from serialization and the digest.
	Abort *AbortCheck `json:"-"`
}

// AbortCheck wraps an abort-polling function behind a pointer so Config
// stays ==-comparable (func fields are not comparable; pointers are).
type AbortCheck struct{ F func() bool }

// New returns the default (Table 1) configuration of the given kind and
// core count. The paper evaluates 16-256 cores with a default of 64.
func New(kind Kind, cores int) Config {
	return Config{
		Kind:       kind,
		Cores:      cores,
		Seed:       1,
		L1RT:       2,
		L2RT:       6,
		MemRT:      110,
		HopLatency: 4,
		L1Sets:     256,
		L1Ways:     2,
		MemCtrlOcc: 8,
		BMRT:       2,
		BMEntries:  2048,
		Wireless:   wireless.DefaultParams(),
		Tone:       tone.DefaultParams(),
	}
}

// WithVariant applies a Table 6 sensitivity variant.
func (c Config) WithVariant(v Variant) Config {
	switch v {
	case SlowNet:
		c.HopLatency = 6
	case SlowNetL2:
		c.HopLatency = 6
		c.L2RT = 12
	case FastNet:
		c.HopLatency = 2
	case SlowBMEM:
		c.BMRT = 4
	}
	return c
}

// WithSeed returns the configuration with a different random seed.
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = seed
	return c
}

// WithShards returns the configuration with a different engine shard
// count (0 = unsharded).
func (c Config) WithShards(n int) Config {
	c.Shards = n
	return c
}

// WithMAC returns the configuration with a different Data-channel
// arbitration protocol (the paper's carrier-sense backoff is the default;
// token passing and the traffic-adaptive switcher are the alternatives).
func (c Config) WithMAC(k wireless.MACKind) Config {
	c.Wireless.MAC = k
	return c
}

// WithChannel returns the configuration with a different channel-error
// model under the Data channel (the paper's ideal channel is the default).
func (c Config) WithChannel(p channel.Params) Config {
	c.Wireless.Channel = p
	return c
}

// WithFaults returns the configuration with a deterministic fault-
// injection plan (nil, or an empty plan: no faults). The plan is
// normalized in place so equal schedules serialize — and digest —
// identically.
func (c Config) WithFaults(p *fault.Plan) Config {
	p.Normalize()
	if p.Empty() {
		p = nil
	}
	c.Wireless.Faults = p
	return c
}

// WithBudget returns the configuration with a simulated-cycle budget
// (0 = unbounded).
func (c Config) WithBudget(b sim.Time) Config {
	c.Budget = b
	return c
}

// WithWatchdog returns the configuration with a progress-watchdog window
// (0 = disabled).
func (c Config) WithWatchdog(w sim.Time) Config {
	c.Watchdog = w
	return c
}

// Validate reports configuration errors. It is the single authority on
// what a runnable machine configuration looks like: the cmds and the sweep
// service all reject jobs through it, so a malformed job is a usage error
// or an HTTP 400 — never a panic inside a sweep worker.
func (c Config) Validate() error {
	if c.Kind < Baseline || c.Kind > WiSync {
		return fmt.Errorf("config: unknown machine kind %v", c.Kind)
	}
	if c.Cores < 1 || c.Cores > 256 {
		return fmt.Errorf("config: %d cores outside supported range [1,256]", c.Cores)
	}
	if c.L1RT == 0 || c.L2RT == 0 || c.MemRT == 0 {
		return fmt.Errorf("config: zero cache latency")
	}
	if c.L1Sets < 1 || c.L1Ways < 1 {
		return fmt.Errorf("config: L1 geometry %dx%d invalid", c.L1Sets, c.L1Ways)
	}
	if c.Kind.HasBM() && c.BMEntries == 0 {
		return fmt.Errorf("config: WiSync configuration with no BM entries")
	}
	if c.Shards < 0 || c.Shards > 64 {
		return fmt.Errorf("config: %d shards outside supported range [0,64]", c.Shards)
	}
	if !c.Wireless.MAC.Valid() {
		return fmt.Errorf("config: unknown MAC protocol %v", c.Wireless.MAC)
	}
	if c.Wireless.Backoff > wireless.BackoffAdaptive {
		return fmt.Errorf("config: unknown backoff policy %d", c.Wireless.Backoff)
	}
	if c.Wireless.Defer > wireless.DeferContend {
		return fmt.Errorf("config: unknown defer policy %d", c.Wireless.Defer)
	}
	if c.Kind.HasBM() && (c.Wireless.MsgCycles == 0 || c.Wireless.BulkCycles == 0) {
		return fmt.Errorf("config: zero wireless message duration")
	}
	if err := c.Wireless.Channel.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.Wireless.Faults.Validate(c.Cores); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if c.Wireless.Faults != nil && !c.Kind.HasBM() {
		return fmt.Errorf("config: fault plan on wired configuration %v (no transceivers to fail)", c.Kind)
	}
	if c.Kind.HasTone() && c.Tone.TableSize < 1 {
		return fmt.Errorf("config: tone table size %d invalid", c.Tone.TableSize)
	}
	return nil
}
