package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, path string) (*Journal, []Entry) {
	t.Helper()
	j, entries, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, entries
}

func payload(s string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"job":%q}`, s))
}

// TestJournalReplayIncomplete pins the core contract: jobs appended but
// not completed before the "crash" (Close) are exactly the ones the next
// Open returns, in acceptance order, payloads intact.
func TestJournalReplayIncomplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, entries := open(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh log replayed %d entries", len(entries))
	}
	a, err := j.Append(payload("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Append(payload("b"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := j.Append(payload("c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Complete(b); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, entries := open(t, path)
	if len(entries) != 2 || entries[0].ID != a || entries[1].ID != c {
		t.Fatalf("replay: %+v (want ids %d,%d)", entries, a, c)
	}
	if string(entries[0].Payload) != string(payload("a")) || string(entries[1].Payload) != string(payload("c")) {
		t.Fatalf("replayed payloads corrupted: %+v", entries)
	}
	// IDs stay monotonic across the restart: a new job can never collide
	// with a replayed one.
	d, err := j2.Append(payload("d"))
	if err != nil {
		t.Fatal(err)
	}
	if d <= c {
		t.Fatalf("post-replay id %d not above replayed max %d", d, c)
	}
}

// TestJournalTornTail pins crash tolerance: a partial final line — the
// signature of a crash mid-append — is dropped on replay, the records
// before it are intact, and the compaction rewrite removes the torn bytes.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	a, _ := j.Append(payload("a"))
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"job","id":7,"payl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, entries := open(t, path)
	if len(entries) != 1 || entries[0].ID != a {
		t.Fatalf("replay over torn tail: %+v", entries)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"id":7`) {
		t.Fatalf("compaction kept the torn bytes: %q", b)
	}
}

// TestJournalCompactionAtOpen pins that Open folds completed records
// away: after append+complete cycles and a reopen, the file holds only
// the incomplete jobs.
func TestJournalCompactionAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	for i := 0; i < 10; i++ {
		id, _ := j.Append(payload(fmt.Sprintf("j%d", i)))
		if i != 7 {
			if err := j.Complete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()

	_, entries := open(t, path)
	if len(entries) != 1 || string(entries[0].Payload) != string(payload("j7")) {
		t.Fatalf("replay: %+v", entries)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimRight(string(b), "\n"), "\n") + 1
	if lines != 1 {
		t.Fatalf("compacted log has %d lines:\n%s", lines, b)
	}
}

// TestJournalAutoCompaction pins the runtime bound: a long-lived process
// completing thousands of jobs keeps a small log — completion records are
// folded away every compactEvery, not accumulated until restart.
func TestJournalAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	keep, _ := j.Append(payload("keeper"))
	for i := 0; i < 3*compactEvery; i++ {
		id, err := j.Append(payload("churn"))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Complete(id); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: the file may hold up to ~2*compactEvery live lines
	// between compactions, never 6*compactEvery lifetime lines.
	if fi.Size() > int64(3*compactEvery*64) {
		t.Fatalf("log grew unbounded: %d bytes after %d completions", fi.Size(), 3*compactEvery)
	}
	// The long-lived job survived every compaction.
	j.Close()
	_, entries := open(t, path)
	if len(entries) != 1 || entries[0].ID != keep {
		t.Fatalf("keeper lost across compactions: %+v", entries)
	}
}

// TestJournalCompleteUnknown pins idempotence: completing an unknown or
// already-completed ID is a harmless no-op.
func TestJournalCompleteUnknown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	if err := j.Complete(999); err != nil {
		t.Fatal(err)
	}
	id, _ := j.Append(payload("x"))
	if err := j.Complete(id); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete(id); err != nil {
		t.Fatal(err)
	}
	if n := j.Pending(); n != 0 {
		t.Fatalf("pending=%d", n)
	}
}

// TestJournalConcurrent pins mutual exclusion under the race detector:
// concurrent appenders and completers never corrupt the log, and a replay
// accounts for every job exactly once.
func TestJournalConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	const n = 50
	ids := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := j.Append(payload(fmt.Sprintf("g%d", i)))
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			ids[i] = id
			if i%2 == 0 {
				if err := j.Complete(id); err != nil {
					t.Errorf("complete %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if n2 := j.Pending(); n2 != n/2 {
		t.Fatalf("pending=%d, want %d", n2, n/2)
	}
	j.Close()
	_, entries := open(t, path)
	if len(entries) != n/2 {
		t.Fatalf("replayed %d, want %d", len(entries), n/2)
	}
}

// TestJournalClosed pins the closed state: appends and completes after
// Close fail loudly instead of writing to a dead handle.
func TestJournalClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := open(t, path)
	j.Close()
	if _, err := j.Append(payload("x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Complete(0); err == nil {
		t.Fatal("Complete after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
