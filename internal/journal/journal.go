// Package journal is the sweep service's job write-ahead log: the record
// that lets an accepted job survive the process that accepted it.
//
// The contract is small and strict. A job is appended — and the line
// fsync'd — before any of its rows are streamed to the client, so by the
// time a caller can observe partial output the job is already durable. A
// completion record is appended when the last row has been delivered.
// On Open the log is replayed: jobs with no completion record are the
// ones a previous process accepted and died holding, and they are
// returned to the caller for re-execution (re-running them is safe —
// every sweep point is deterministic and content-addressed, so a replay
// redoes only the points the durable cache doesn't already hold).
//
// The format is one JSON object per line. A crash can tear the final
// line; replay treats the first undecodable line as the end of the log
// and drops it — a torn append means the client never got a single row
// of that job, so losing the record loses nothing the client could have
// observed. Replay also compacts: the log is atomically rewritten to
// hold only the still-incomplete jobs, and at runtime a bounded number
// of completion records may accumulate before the next compaction folds
// them away, so the file stays proportional to the live job count, not
// the lifetime job count.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// compactEvery bounds how many completed-job record pairs may accumulate
// in the live log before Complete folds them away.
const compactEvery = 256

// record is one WAL line. Op is "job" (Payload set) or "done".
type record struct {
	Op      string          `json:"op"`
	ID      uint64          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Entry is one incomplete job recovered by Open, in acceptance order.
type Entry struct {
	ID      uint64
	Payload json.RawMessage
}

// Journal is an append-only, fsync'd job log. Construct with Open; all
// methods are safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	nextID  uint64
	pending map[uint64]json.RawMessage
	// doneSinceCompact counts completion records written since the last
	// compaction; crossing compactEvery triggers the next one.
	doneSinceCompact int
	closed           bool
}

// Open replays the log at path (created if absent), compacts it down to
// its incomplete jobs, and returns those jobs in acceptance order. The
// returned journal appends with IDs strictly above every replayed one.
func Open(path string) (*Journal, []Entry, error) {
	j := &Journal{path: path, pending: make(map[uint64]json.RawMessage)}
	entries, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	return j, entries, nil
}

// replay scans the existing log, populating pending and nextID. A missing
// file is an empty log. The first undecodable line is treated as a torn
// tail: everything from it on is ignored (and dropped by compaction).
func (j *Journal) replay() ([]Entry, error) {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", j.path, err)
	}
	defer f.Close()

	var order []uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: the crash interrupted this append
		}
		switch rec.Op {
		case "job":
			if rec.ID >= j.nextID {
				j.nextID = rec.ID + 1
			}
			if _, dup := j.pending[rec.ID]; !dup {
				j.pending[rec.ID] = rec.Payload
				order = append(order, rec.ID)
			}
		case "done":
			delete(j.pending, rec.ID)
		default:
			// Unknown op from a future version: preserve ID monotonicity,
			// otherwise ignore.
			if rec.ID >= j.nextID {
				j.nextID = rec.ID + 1
			}
		}
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return nil, fmt.Errorf("journal: reading %s: %w", j.path, err)
	}

	var entries []Entry
	for _, id := range order {
		if payload, ok := j.pending[id]; ok {
			entries = append(entries, Entry{ID: id, Payload: payload})
		}
	}
	return entries, nil
}

// compactLocked atomically rewrites the log to hold exactly the pending
// jobs, fsyncs it, and swaps it in place of the old file. The journal's
// append handle is reopened on the new file. Callers hold j.mu (or, at
// Open time, exclusive ownership).
func (j *Journal) compactLocked() error {
	if err := os.MkdirAll(filepath.Dir(j.path), 0o755); err != nil {
		return fmt.Errorf("journal: creating log dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	// Rewrite in ID order — acceptance order — so a replay of the
	// compacted log resumes jobs oldest-first.
	for _, e := range j.pendingOrdered() {
		if err := enc.Encode(record{Op: "job", ID: e.ID, Payload: e.Payload}); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compaction: %w", err)
	}
	j.f = f
	j.doneSinceCompact = 0
	return nil
}

// pendingOrdered returns the pending jobs sorted by ID.
func (j *Journal) pendingOrdered() []Entry {
	entries := make([]Entry, 0, len(j.pending))
	for id, payload := range j.pending {
		entries = append(entries, Entry{ID: id, Payload: payload})
	}
	for i := 1; i < len(entries); i++ {
		for k := i; k > 0 && entries[k].ID < entries[k-1].ID; k-- {
			entries[k], entries[k-1] = entries[k-1], entries[k]
		}
	}
	return entries
}

// Append durably records an accepted job and returns its ID. The line is
// fsync'd before Append returns: once a caller holds the ID, the job
// survives any crash.
func (j *Journal) Append(payload json.RawMessage) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	id := j.nextID
	j.nextID++
	if err := j.writeLocked(record{Op: "job", ID: id, Payload: payload}); err != nil {
		return 0, err
	}
	j.pending[id] = payload
	return id, nil
}

// Complete durably records that job id delivered its last row. Completing
// an unknown or already-completed ID is a no-op. Every compactEvery
// completions the log is folded down to its pending jobs.
func (j *Journal) Complete(id uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if _, ok := j.pending[id]; !ok {
		return nil
	}
	if err := j.writeLocked(record{Op: "done", ID: id}); err != nil {
		return err
	}
	delete(j.pending, id)
	j.doneSinceCompact++
	if j.doneSinceCompact >= compactEvery {
		return j.compactLocked()
	}
	return nil
}

// writeLocked appends one fsync'd line. Caller holds j.mu.
func (j *Journal) writeLocked(rec record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Pending reports the number of incomplete jobs on record.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Close releases the log file. Pending jobs stay on disk for the next
// Open to replay.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
