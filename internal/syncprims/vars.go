package syncprims

import "wisync/internal/core"

// cacheVar is a synchronization variable in regular coherent memory.
type cacheVar struct {
	addr uint64
}

func (v *cacheVar) Load(t *core.Thread) uint64     { return t.Read(v.addr) }
func (v *cacheVar) Store(t *core.Thread, x uint64) { t.Write(v.addr, x) }

func (v *cacheVar) CAS(t *core.Thread, old, nv uint64) bool {
	return t.CAS(v.addr, old, nv)
}

func (v *cacheVar) FetchAdd(t *core.Thread, d uint64) uint64 {
	return t.FetchAdd(v.addr, d)
}

func (v *cacheVar) SpinUntil(t *core.Thread, cond func(uint64) bool) uint64 {
	return t.SpinUntil(v.addr, cond)
}

func (v *cacheVar) InBM() bool { return false }

// bmVar is a broadcast variable in the Broadcast Memory.
type bmVar struct {
	addr uint32
}

func (v *bmVar) Load(t *core.Thread) uint64     { return t.BMLoad(v.addr) }
func (v *bmVar) Store(t *core.Thread, x uint64) { t.BMStore(v.addr, x) }

func (v *bmVar) CAS(t *core.Thread, old, nv uint64) bool {
	return t.BMCAS(v.addr, old, nv)
}

func (v *bmVar) FetchAdd(t *core.Thread, d uint64) uint64 {
	return t.BMFetchAdd(v.addr, d)
}

func (v *bmVar) SpinUntil(t *core.Thread, cond func(uint64) bool) uint64 {
	return t.BMSpinUntil(v.addr, cond)
}

func (v *bmVar) InBM() bool { return true }
