package syncprims

import (
	"fmt"

	"wisync/internal/core"
)

// This file is the continuation-form face of the synchronization
// primitives: every primitive the blocking interfaces in syncprims.go
// expose has a task-style method driven by completion callbacks, so
// workloads running as core.Tasks synchronize through the same objects —
// and therefore the same allocated variables, the same protocol traffic,
// and the same simulated timing — as their blocking twins. A primitive
// obtained from the Factory implements both faces; within one simulation a
// workload uses one face consistently.

// TaskBarrier is the continuation form of Barrier: then runs once all
// participants have arrived.
type TaskBarrier interface {
	WaitTask(t *core.Task, then func())
}

// TaskLock is the continuation form of Lock.
type TaskLock interface {
	AcquireTask(t *core.Task, then func())
	ReleaseTask(t *core.Task, then func())
}

// TaskVar is the continuation form of Var.
type TaskVar interface {
	LoadTask(t *core.Task, then func(uint64))
	StoreTask(t *core.Task, v uint64, then func())
	CASTask(t *core.Task, old, nv uint64, then func(bool))
	FetchAddTask(t *core.Task, delta uint64, then func(uint64))
	SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64))
}

// NewTaskBarrier allocates a barrier (exactly as NewBarrier would — the
// allocation sequence is identical) and returns its continuation face.
func (f *Factory) NewTaskBarrier(participants []int) TaskBarrier {
	return AsTaskBarrier(f.NewBarrier(participants))
}

// NewTaskLock allocates a lock and returns its continuation face.
func (f *Factory) NewTaskLock() TaskLock {
	return AsTaskLock(f.NewLock())
}

// NewTaskVar allocates a variable and returns its continuation face.
func (f *Factory) NewTaskVar(init uint64) TaskVar {
	return AsTaskVar(f.NewVar(init))
}

// AsTaskBarrier returns b's continuation face. Every barrier the Factory
// builds implements both faces; the conversion lets a kernel allocate once
// and run in either execution mode.
func AsTaskBarrier(b Barrier) TaskBarrier {
	tb, ok := b.(TaskBarrier)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", b))
	}
	return tb
}

// AsTaskLock returns l's continuation face. Every lock the Factory builds
// implements both faces; the conversion lets a workload allocate once and
// run in either execution mode.
func AsTaskLock(l Lock) TaskLock {
	tl, ok := l.(TaskLock)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", l))
	}
	return tl
}

// AsTaskVar returns v's continuation face.
func AsTaskVar(v Var) TaskVar {
	tv, ok := v.(TaskVar)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", v))
	}
	return tv
}

// ---- Variables ----

func (v *cacheVar) LoadTask(t *core.Task, then func(uint64)) { t.Read(v.addr, then) }
func (v *cacheVar) StoreTask(t *core.Task, x uint64, then func()) {
	t.Write(v.addr, x, then)
}
func (v *cacheVar) CASTask(t *core.Task, old, nv uint64, then func(bool)) {
	t.CAS(v.addr, old, nv, then)
}
func (v *cacheVar) FetchAddTask(t *core.Task, d uint64, then func(uint64)) {
	t.FetchAdd(v.addr, d, then)
}
func (v *cacheVar) SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64)) {
	t.SpinUntil(v.addr, cond, then)
}

func (v *bmVar) LoadTask(t *core.Task, then func(uint64)) { t.BMLoad(v.addr, then) }
func (v *bmVar) StoreTask(t *core.Task, x uint64, then func()) {
	t.BMStore(v.addr, x, then)
}
func (v *bmVar) CASTask(t *core.Task, old, nv uint64, then func(bool)) {
	t.BMCAS(v.addr, old, nv, then)
}
func (v *bmVar) FetchAddTask(t *core.Task, d uint64, then func(uint64)) {
	t.BMFetchAdd(v.addr, d, then)
}
func (v *bmVar) SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64)) {
	t.BMSpinUntil(v.addr, cond, then)
}

// ---- Locks ----

// The lock task faces run on per-core recycled step structs, exactly like
// the barriers below: a core holds at most one pending operation on a given
// lock at a time, so each (lock, core) pair owns a single state machine
// whose continuations are method values cached at construction. The steps
// slices are allocated lazily on first task-mode use, so thread-mode
// workloads pay nothing. This removes the per-operation closure tree from
// the lock hot path — radiosity's serialized hot locks acquire millions of
// times per run.

// lockFree and lockTaken are the shared spin predicates (capture-free, so
// they never allocate).
func lockFree(x uint64) bool  { return x == 0 }
func lockTaken(x uint64) bool { return x != 0 }

// spinStep is spinLock's continuation form: the test-and-test&set retry
// loop of Acquire, step by step.
type spinStep struct {
	l    *spinLock
	t    *core.Task
	tv   TaskVar
	then func()

	onFreeFn func(uint64)
	onCASFn  func(bool)
}

func (l *spinLock) AcquireTask(t *core.Task, then func()) {
	if l.steps == nil {
		l.steps = make([]*spinStep, t.M.Cfg.Cores)
	}
	s := l.steps[t.Core]
	if s == nil {
		t.M.Eng.StepPoolMiss()
		s = &spinStep{l: l, tv: AsTaskVar(l.v)}
		s.onFreeFn = s.onFree
		s.onCASFn = s.onCAS
		l.steps[t.Core] = s
	} else {
		t.M.Eng.StepPoolHit()
	}
	s.t, s.then = t, then
	s.attempt()
}

func (s *spinStep) attempt() { s.tv.SpinUntilTask(s.t, lockFree, s.onFreeFn) }

func (s *spinStep) onFree(uint64) { s.tv.CASTask(s.t, 0, 1, s.onCASFn) }

func (s *spinStep) onCAS(ok bool) {
	if !ok {
		s.attempt()
		return
	}
	then := s.then
	s.then = nil
	then()
}

func (l *spinLock) ReleaseTask(t *core.Task, then func()) {
	AsTaskVar(l.v).StoreTask(t, 0, then)
}

// mcsStep is mcsLock's continuation form: the queue-lock protocol of
// Acquire/Release with each memory operation a continuation. One struct
// serves both operations — a core never has an acquire and a release of
// the same lock in flight together.
type mcsStep struct {
	l    *mcsLock
	t    *core.Task
	me   int
	pred uint64
	then func()

	// Acquire chain.
	afterInitFn   func()
	onSwapFn      func(uint64)
	afterLockedFn func()
	afterLinkFn   func()
	onAcqSpinFn   func(uint64)
	// Release chain.
	onNextFn    func(uint64)
	onTailCASFn func(bool)
	handoffFn   func(uint64)
	doneFn      func()
}

func (l *mcsLock) step(t *core.Task) *mcsStep {
	if l.steps == nil {
		l.steps = make([]*mcsStep, len(l.locked))
	}
	s := l.steps[t.Core]
	if s == nil {
		t.M.Eng.StepPoolMiss()
		s = &mcsStep{l: l, me: t.Core}
		s.afterInitFn = s.afterInit
		s.onSwapFn = s.onSwap
		s.afterLockedFn = s.afterLocked
		s.afterLinkFn = s.afterLink
		s.onAcqSpinFn = s.onAcqSpin
		s.onNextFn = s.onNext
		s.onTailCASFn = s.onTailCAS
		s.handoffFn = s.handoff
		s.doneFn = s.done
		l.steps[t.Core] = s
	} else {
		t.M.Eng.StepPoolHit()
	}
	s.t = t
	return s
}

func (l *mcsLock) AcquireTask(t *core.Task, then func()) {
	s := l.step(t)
	s.then = then
	t.Instr(8) // qnode setup and pointer arithmetic
	t.Write(l.next[s.me], 0, s.afterInitFn)
}

func (s *mcsStep) afterInit() { s.t.Swap(s.l.tail, uint64(s.me+1), s.onSwapFn) }

func (s *mcsStep) onSwap(pred uint64) {
	if pred == 0 {
		s.done()
		return
	}
	s.pred = pred
	s.t.Write(s.l.locked[s.me], 1, s.afterLockedFn)
}

func (s *mcsStep) afterLocked() {
	s.t.Write(s.l.next[s.pred-1], uint64(s.me+1), s.afterLinkFn)
}

func (s *mcsStep) afterLink() {
	s.t.SpinUntil(s.l.locked[s.me], lockFree, s.onAcqSpinFn)
}

func (s *mcsStep) onAcqSpin(uint64) { s.done() }

func (l *mcsLock) ReleaseTask(t *core.Task, then func()) {
	s := l.step(t)
	s.then = then
	t.Instr(6)
	t.Read(l.next[s.me], s.onNextFn)
}

func (s *mcsStep) onNext(succ uint64) {
	if succ != 0 {
		s.handoff(succ)
		return
	}
	s.t.CAS(s.l.tail, uint64(s.me+1), 0, s.onTailCASFn)
}

func (s *mcsStep) onTailCAS(ok bool) {
	if ok {
		s.done()
		return
	}
	// A successor is linking itself; wait for the link.
	s.t.SpinUntil(s.l.next[s.me], lockTaken, s.handoffFn)
}

func (s *mcsStep) handoff(succ uint64) { s.t.Write(s.l.locked[succ-1], 0, s.doneFn) }

func (s *mcsStep) done() {
	then := s.then
	s.then = nil
	then()
}

// ---- Barriers ----

// The barrier task faces run on per-core recycled step structs: a core
// waits on one episode of one barrier at a time, so each (barrier, core)
// pair owns a single state machine whose continuations are method values
// cached at construction. The steps slices are sized like the barriers'
// per-core episode arrays and allocated lazily on first task-mode use, so
// thread-mode workloads pay nothing. This removes the per-episode closure
// captures from the barrier hot path — the pattern the kernels and apps
// interpreters use for their own loops (see kernels.readRanger,
// apps.appTask).

// centralStep is centralBarrier's continuation form: the CAS retry loop,
// last-arriver release and release-flag spin of Wait, step by step.
type centralStep struct {
	b    *centralBarrier
	t    *core.Task
	ep   uint64
	c    uint64 // count value observed by the pending CAS
	then func()

	onReadFn   func(uint64)
	onCASFn    func(bool)
	zeroDoneFn func()
	condFn     func(uint64) bool
	onSpinFn   func(uint64)
}

func (b *centralBarrier) WaitTask(t *core.Task, then func()) {
	b.ep[t.Core]++
	if b.steps == nil {
		b.steps = make([]*centralStep, len(b.ep))
	}
	s := b.steps[t.Core]
	if s == nil {
		t.M.Eng.StepPoolMiss()
		s = &centralStep{b: b}
		s.onReadFn = s.onRead
		s.onCASFn = s.onCAS
		s.zeroDoneFn = s.zeroDone
		s.condFn = s.cond
		s.onSpinFn = s.onSpin
		b.steps[t.Core] = s
	} else {
		t.M.Eng.StepPoolHit()
	}
	s.t, s.ep, s.then = t, b.ep[t.Core], then
	s.arrive()
}

func (s *centralStep) arrive() { s.t.Read(s.b.count, s.onReadFn) }

func (s *centralStep) onRead(c uint64) {
	s.c = c
	s.t.CAS(s.b.count, c, c+1, s.onCASFn)
}

func (s *centralStep) onCAS(ok bool) {
	if !ok {
		s.t.Instr(4)
		s.arrive()
		return
	}
	if s.c+1 == s.b.n {
		s.t.Write(s.b.count, 0, s.zeroDoneFn)
		return
	}
	s.t.SpinUntil(s.b.release, s.condFn, s.onSpinFn)
}

func (s *centralStep) zeroDone() {
	then := s.then
	s.then = nil
	s.t.Write(s.b.release, s.ep, then)
}

func (s *centralStep) cond(v uint64) bool { return v >= s.ep }

func (s *centralStep) onSpin(uint64) {
	then := s.then
	s.then = nil
	then()
}

// tournamentBarrier in continuation form: the per-round winner/loser state
// machine of Wait.
func (b *tournamentBarrier) WaitTask(t *core.Task, then func()) {
	idx := t.Core
	if idx >= b.n {
		panic(fmt.Sprintf("syncprims: thread %d beyond tournament size %d", idx, b.n))
	}
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	// wakeFrom releases every beaten opponent from round r down, one write
	// continuation at a time, then runs then.
	var wakeFrom func(r int)
	wakeFrom = func(r int) {
		for ; r >= 0; r-- {
			partner := idx + 1<<r
			if partner < b.n {
				rr := r
				t.Write(b.wake[partner], ep, func() { wakeFrom(rr - 1) })
				return
			}
		}
		then()
	}
	var round func(r int)
	round = func(r int) {
		if r == b.rounds {
			// Champion (never lost): wake everyone beaten, in reverse
			// round order.
			wakeFrom(b.rounds - 1)
			return
		}
		t.Instr(10) // round bookkeeping: role/partner/flag computation
		if idx&((1<<(r+1))-1) == 0 {
			// Potential winner of round r: wait for the partner (or take
			// a bye if it does not exist).
			partner := idx + 1<<r
			if partner < b.n {
				t.SpinUntil(b.arrive[r*b.n+idx], func(v uint64) bool { return v >= ep },
					func(uint64) { round(r + 1) })
				return
			}
			round(r + 1)
			return
		}
		// Loser of round r: report to the winner, then sleep until woken,
		// then wake the opponents beaten in earlier rounds.
		winner := idx - 1<<r
		lose := r
		t.Write(b.arrive[r*b.n+winner], ep, func() {
			t.SpinUntil(b.wake[idx], func(v uint64) bool { return v >= ep },
				func(uint64) { wakeFrom(lose - 1) })
		})
	}
	round(0)
}

// dataStep is dataBarrier's continuation form: fetch&inc arrival,
// last-arriver release store, local-replica spin.
type dataStep struct {
	b    *dataBarrier
	t    *core.Task
	ep   uint64
	then func()

	onArriveFn func(uint64)
	condFn     func(uint64) bool
	onSpinFn   func(uint64)
}

func (b *dataBarrier) WaitTask(t *core.Task, then func()) {
	b.ep[t.Core]++
	if b.steps == nil {
		b.steps = make([]*dataStep, len(b.ep))
	}
	s := b.steps[t.Core]
	if s == nil {
		t.M.Eng.StepPoolMiss()
		s = &dataStep{b: b}
		s.onArriveFn = s.onArrive
		s.condFn = s.cond
		s.onSpinFn = s.onSpin
		b.steps[t.Core] = s
	} else {
		t.M.Eng.StepPoolHit()
	}
	s.t, s.ep, s.then = t, b.ep[t.Core], then
	t.BMFetchAdd(b.addr, 1, s.onArriveFn)
}

func (s *dataStep) onArrive(old uint64) {
	if (old&0xffffffff)+1 == s.b.n {
		// Last arriver: zero the count and publish the episode in one
		// wireless message.
		then := s.then
		s.then = nil
		s.t.BMStore(s.b.addr, s.ep<<32, then)
		return
	}
	s.t.BMSpinUntil(s.b.addr, s.condFn, s.onSpinFn)
}

func (s *dataStep) cond(v uint64) bool { return v>>32 >= s.ep }

func (s *dataStep) onSpin(uint64) {
	then := s.then
	s.then = nil
	then()
}

// toneStep is toneBarrier's continuation form: tone_st, then the tone_ld
// spin.
type toneStep struct {
	b    *toneBarrier
	t    *core.Task
	then func()

	afterStoreFn func()
	afterWaitFn  func()
}

func (b *toneBarrier) WaitTask(t *core.Task, then func()) {
	if b.steps == nil {
		b.steps = make([]*toneStep, len(b.sense))
	}
	s := b.steps[t.Core]
	if s == nil {
		t.M.Eng.StepPoolMiss()
		s = &toneStep{b: b}
		s.afterStoreFn = s.afterStore
		s.afterWaitFn = s.afterWait
		b.steps[t.Core] = s
	} else {
		t.M.Eng.StepPoolHit()
	}
	s.t, s.then = t, then
	t.ToneStore(b.addr, s.afterStoreFn)
}

func (s *toneStep) afterStore() {
	s.t.ToneWait(s.b.addr, s.b.sense[s.t.Core], s.afterWaitFn)
}

func (s *toneStep) afterWait() {
	then := s.then
	s.then = nil
	s.b.sense[s.t.Core] ^= 1
	then()
}
