package syncprims

import (
	"fmt"

	"wisync/internal/core"
)

// This file is the continuation-form face of the synchronization
// primitives: every primitive the blocking interfaces in syncprims.go
// expose has a task-style method driven by completion callbacks, so
// workloads running as core.Tasks synchronize through the same objects —
// and therefore the same allocated variables, the same protocol traffic,
// and the same simulated timing — as their blocking twins. A primitive
// obtained from the Factory implements both faces; within one simulation a
// workload uses one face consistently.

// TaskBarrier is the continuation form of Barrier: then runs once all
// participants have arrived.
type TaskBarrier interface {
	WaitTask(t *core.Task, then func())
}

// TaskLock is the continuation form of Lock.
type TaskLock interface {
	AcquireTask(t *core.Task, then func())
	ReleaseTask(t *core.Task, then func())
}

// TaskVar is the continuation form of Var.
type TaskVar interface {
	LoadTask(t *core.Task, then func(uint64))
	StoreTask(t *core.Task, v uint64, then func())
	CASTask(t *core.Task, old, nv uint64, then func(bool))
	FetchAddTask(t *core.Task, delta uint64, then func(uint64))
	SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64))
}

// NewTaskBarrier allocates a barrier (exactly as NewBarrier would — the
// allocation sequence is identical) and returns its continuation face.
func (f *Factory) NewTaskBarrier(participants []int) TaskBarrier {
	return AsTaskBarrier(f.NewBarrier(participants))
}

// NewTaskLock allocates a lock and returns its continuation face.
func (f *Factory) NewTaskLock() TaskLock {
	l := f.NewLock()
	tl, ok := l.(TaskLock)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", l))
	}
	return tl
}

// NewTaskVar allocates a variable and returns its continuation face.
func (f *Factory) NewTaskVar(init uint64) TaskVar {
	return AsTaskVar(f.NewVar(init))
}

// AsTaskBarrier returns b's continuation face. Every barrier the Factory
// builds implements both faces; the conversion lets a kernel allocate once
// and run in either execution mode.
func AsTaskBarrier(b Barrier) TaskBarrier {
	tb, ok := b.(TaskBarrier)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", b))
	}
	return tb
}

// AsTaskVar returns v's continuation face.
func AsTaskVar(v Var) TaskVar {
	tv, ok := v.(TaskVar)
	if !ok {
		panic(fmt.Sprintf("syncprims: %T has no continuation form", v))
	}
	return tv
}

// ---- Variables ----

func (v *cacheVar) LoadTask(t *core.Task, then func(uint64)) { t.Read(v.addr, then) }
func (v *cacheVar) StoreTask(t *core.Task, x uint64, then func()) {
	t.Write(v.addr, x, then)
}
func (v *cacheVar) CASTask(t *core.Task, old, nv uint64, then func(bool)) {
	t.CAS(v.addr, old, nv, then)
}
func (v *cacheVar) FetchAddTask(t *core.Task, d uint64, then func(uint64)) {
	t.FetchAdd(v.addr, d, then)
}
func (v *cacheVar) SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64)) {
	t.SpinUntil(v.addr, cond, then)
}

func (v *bmVar) LoadTask(t *core.Task, then func(uint64)) { t.BMLoad(v.addr, then) }
func (v *bmVar) StoreTask(t *core.Task, x uint64, then func()) {
	t.BMStore(v.addr, x, then)
}
func (v *bmVar) CASTask(t *core.Task, old, nv uint64, then func(bool)) {
	t.BMCAS(v.addr, old, nv, then)
}
func (v *bmVar) FetchAddTask(t *core.Task, d uint64, then func(uint64)) {
	t.BMFetchAdd(v.addr, d, then)
}
func (v *bmVar) SpinUntilTask(t *core.Task, cond func(uint64) bool, then func(uint64)) {
	t.BMSpinUntil(v.addr, cond, then)
}

// ---- Locks ----

// spinLock in continuation form: the same test-and-test&set loop as
// Acquire, with each blocking step a continuation.
func (l *spinLock) AcquireTask(t *core.Task, then func()) {
	tv := AsTaskVar(l.v)
	var attempt func()
	attempt = func() {
		tv.SpinUntilTask(t, func(x uint64) bool { return x == 0 }, func(uint64) {
			tv.CASTask(t, 0, 1, func(ok bool) {
				if ok {
					then()
					return
				}
				attempt()
			})
		})
	}
	attempt()
}

func (l *spinLock) ReleaseTask(t *core.Task, then func()) {
	AsTaskVar(l.v).StoreTask(t, 0, then)
}

// mcsLock in continuation form: the queue-lock protocol of Acquire/Release
// with each memory operation a continuation.
func (l *mcsLock) AcquireTask(t *core.Task, then func()) {
	me := t.Core
	t.Instr(8) // qnode setup and pointer arithmetic
	t.Write(l.next[me], 0, func() {
		t.Swap(l.tail, uint64(me+1), func(pred uint64) {
			if pred == 0 {
				then()
				return
			}
			t.Write(l.locked[me], 1, func() {
				t.Write(l.next[pred-1], uint64(me+1), func() {
					t.SpinUntil(l.locked[me], func(x uint64) bool { return x == 0 },
						func(uint64) { then() })
				})
			})
		})
	})
}

func (l *mcsLock) ReleaseTask(t *core.Task, then func()) {
	me := t.Core
	t.Instr(6)
	handoff := func(succ uint64) { t.Write(l.locked[succ-1], 0, then) }
	t.Read(l.next[me], func(succ uint64) {
		if succ != 0 {
			handoff(succ)
			return
		}
		t.CAS(l.tail, uint64(me+1), 0, func(ok bool) {
			if ok {
				then()
				return
			}
			// A successor is linking itself; wait for the link.
			t.SpinUntil(l.next[me], func(x uint64) bool { return x != 0 }, handoff)
		})
	})
}

// ---- Barriers ----

// centralBarrier in continuation form: the CAS retry loop, last-arriver
// release and release-flag spin of Wait, step by step.
func (b *centralBarrier) WaitTask(t *core.Task, then func()) {
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	var arrive func()
	arrive = func() {
		t.Read(b.count, func(c uint64) {
			t.CAS(b.count, c, c+1, func(ok bool) {
				if !ok {
					t.Instr(4)
					arrive()
					return
				}
				if c+1 == b.n {
					t.Write(b.count, 0, func() {
						t.Write(b.release, ep, then)
					})
					return
				}
				t.SpinUntil(b.release, func(v uint64) bool { return v >= ep },
					func(uint64) { then() })
			})
		})
	}
	arrive()
}

// tournamentBarrier in continuation form: the per-round winner/loser state
// machine of Wait.
func (b *tournamentBarrier) WaitTask(t *core.Task, then func()) {
	idx := t.Core
	if idx >= b.n {
		panic(fmt.Sprintf("syncprims: thread %d beyond tournament size %d", idx, b.n))
	}
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	// wakeFrom releases every beaten opponent from round r down, one write
	// continuation at a time, then runs then.
	var wakeFrom func(r int)
	wakeFrom = func(r int) {
		for ; r >= 0; r-- {
			partner := idx + 1<<r
			if partner < b.n {
				rr := r
				t.Write(b.wake[partner], ep, func() { wakeFrom(rr - 1) })
				return
			}
		}
		then()
	}
	var round func(r int)
	round = func(r int) {
		if r == b.rounds {
			// Champion (never lost): wake everyone beaten, in reverse
			// round order.
			wakeFrom(b.rounds - 1)
			return
		}
		t.Instr(10) // round bookkeeping: role/partner/flag computation
		if idx&((1<<(r+1))-1) == 0 {
			// Potential winner of round r: wait for the partner (or take
			// a bye if it does not exist).
			partner := idx + 1<<r
			if partner < b.n {
				t.SpinUntil(b.arrive[r*b.n+idx], func(v uint64) bool { return v >= ep },
					func(uint64) { round(r + 1) })
				return
			}
			round(r + 1)
			return
		}
		// Loser of round r: report to the winner, then sleep until woken,
		// then wake the opponents beaten in earlier rounds.
		winner := idx - 1<<r
		lose := r
		t.Write(b.arrive[r*b.n+winner], ep, func() {
			t.SpinUntil(b.wake[idx], func(v uint64) bool { return v >= ep },
				func(uint64) { wakeFrom(lose - 1) })
		})
	}
	round(0)
}

// dataBarrier in continuation form: fetch&inc arrival, last-arriver
// release store, local-replica spin.
func (b *dataBarrier) WaitTask(t *core.Task, then func()) {
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	t.BMFetchAdd(b.addr, 1, func(old uint64) {
		if (old&0xffffffff)+1 == b.n {
			// Last arriver: zero the count and publish the episode in one
			// wireless message.
			t.BMStore(b.addr, ep<<32, then)
			return
		}
		t.BMSpinUntil(b.addr, func(v uint64) bool { return v>>32 >= ep },
			func(uint64) { then() })
	})
}

// toneBarrier in continuation form: tone_st, then the tone_ld spin.
func (b *toneBarrier) WaitTask(t *core.Task, then func()) {
	s := b.sense[t.Core]
	t.ToneStore(b.addr, func() {
		t.ToneWait(b.addr, s, func() {
			b.sense[t.Core] ^= 1
			then()
		})
	})
}
