package syncprims

import "wisync/internal/core"

// Eureka is an OR-barrier (Section 4.3.2): it fires as soon as any
// participant triggers it — a parallel search hit, an overflow, an
// exception. It is reusable through per-core generation counters (the
// sense-reversing idea with an epoch instead of a boolean).
type Eureka struct {
	v   Var
	gen []uint64
}

// NewEureka allocates an OR-barrier.
func (f *Factory) NewEureka() *Eureka {
	return &Eureka{v: f.NewVar(0), gen: make([]uint64, f.m.Cfg.Cores)}
}

// Trigger fires the eureka for the current generation. Multiple triggers of
// one generation are idempotent.
func (e *Eureka) Trigger(t *core.Thread) {
	gen := e.gen[t.Core]
	if e.v.Load(t) > gen {
		return // already fired
	}
	e.v.Store(t, gen+1)
}

// Triggered polls whether the current generation has fired.
func (e *Eureka) Triggered(t *core.Thread) bool {
	return e.v.Load(t) > e.gen[t.Core]
}

// WaitTriggered blocks until the current generation fires.
func (e *Eureka) WaitTriggered(t *core.Thread) {
	gen := e.gen[t.Core]
	e.v.SpinUntil(t, func(v uint64) bool { return v > gen })
}

// Ack consumes the current generation locally, re-arming the eureka for
// reuse by this thread.
func (e *Eureka) Ack(t *core.Thread) { e.gen[t.Core]++ }

// PC is a single-producer single-consumer channel (Section 4.3.4): a data
// area plus a full/empty flag. On WiSync machines with word count 4 the
// producer uses one Bulk store (15 cycles) instead of four messages.
type PC struct {
	words  int
	bulk   bool
	bmData uint32 // contiguous BM words when bulk
	data   []Var  // otherwise
	flag   Var
}

// NewPC allocates a producer-consumer channel carrying the given number of
// 64-bit words (1..4).
func (f *Factory) NewPC(words int) *PC {
	if words < 1 || words > 4 {
		panic("syncprims: PC carries 1..4 words")
	}
	pc := &PC{words: words, flag: f.NewVar(0)}
	if words == 4 && f.m.Cfg.Kind.HasBM() {
		if base, err := f.m.BM.AllocBareContiguous(f.pid, 4); err == nil {
			pc.bulk = true
			pc.bmData = base
			return pc
		}
		f.Spills++
	}
	pc.data = make([]Var, words)
	for i := range pc.data {
		pc.data[i] = f.NewVar(0)
	}
	return pc
}

// Produce publishes vals (len == words): wait for the slot to be empty,
// write the data, set the flag.
func (pc *PC) Produce(t *core.Thread, vals []uint64) {
	pc.flag.SpinUntil(t, func(v uint64) bool { return v == 0 })
	if pc.bulk {
		var four [4]uint64
		copy(four[:], vals)
		t.BMBulkStore(pc.bmData, four)
	} else {
		for i, v := range vals {
			pc.data[i].Store(t, v)
		}
	}
	pc.flag.Store(t, 1)
}

// Consume blocks until data is available, reads it into out (len == words),
// and clears the flag.
func (pc *PC) Consume(t *core.Thread, out []uint64) {
	pc.flag.SpinUntil(t, func(v uint64) bool { return v == 1 })
	if pc.bulk {
		four := t.BMBulkLoad(pc.bmData)
		copy(out, four[:])
	} else {
		for i := range out {
			out[i] = pc.data[i].Load(t)
		}
	}
	pc.flag.Store(t, 0)
}

// Multicast is the single-producer multiple-consumer pattern of Section
// 4.3.5 / Figure 4(d): data plus a reader count and a toggling flag packed
// as a sense-reversing release.
type Multicast struct {
	data    Var
	count   Var
	flag    Var
	readers uint64
	sense   []uint64
}

// NewMulticast allocates a multicast slot with the given reader count.
func (f *Factory) NewMulticast(readers int) *Multicast {
	return &Multicast{
		data:    f.NewVar(0),
		count:   f.NewVar(0),
		flag:    f.NewVar(0),
		readers: uint64(readers),
		sense:   make([]uint64, f.m.Cfg.Cores),
	}
}

// Produce publishes val to all readers and waits until every reader took
// it: write data, set count to N, toggle the flag, spin on count == 0.
func (mc *Multicast) Produce(t *core.Thread, val uint64) {
	s := mc.sense[t.Core] ^ 1
	mc.sense[t.Core] = s
	mc.data.Store(t, val)
	mc.count.Store(t, mc.readers)
	mc.flag.Store(t, s)
	mc.count.SpinUntil(t, func(v uint64) bool { return v == 0 })
}

// Consume blocks for the next published value and acknowledges it: spin on
// the flag toggle, read data, fetch&add(count, -1).
func (mc *Multicast) Consume(t *core.Thread) uint64 {
	s := mc.sense[t.Core] ^ 1
	mc.sense[t.Core] = s
	mc.flag.SpinUntil(t, func(v uint64) bool { return v == s })
	v := mc.data.Load(t)
	mc.count.FetchAdd(t, ^uint64(0)) // -1
	return v
}

// Reducer accumulates values from many threads into one variable with
// fetch&add — the tight reduction loop of Section 4.3.5.
type Reducer struct {
	v Var
}

// NewReducer allocates a reduction variable initialized to init.
func (f *Factory) NewReducer(init uint64) *Reducer { return &Reducer{v: f.NewVar(init)} }

// Add contributes delta.
func (r *Reducer) Add(t *core.Thread, delta uint64) { r.v.FetchAdd(t, delta) }

// AddTask is Add in continuation form.
func (r *Reducer) AddTask(t *core.Task, delta uint64, then func()) {
	AsTaskVar(r.v).FetchAddTask(t, delta, func(uint64) { then() })
}

// Value reads the current total.
func (r *Reducer) Value(t *core.Thread) uint64 { return r.v.Load(t) }

// TaskReducer is the continuation form of Reducer: the same reduction
// variable driven through the task ISA. Obtain one with Reducer.AsTask; the
// two faces are interchangeable within the bit-identical-modes contract of
// the package.
type TaskReducer struct {
	v TaskVar
}

// AsTask returns the reducer's continuation face.
func (r *Reducer) AsTask() TaskReducer { return TaskReducer{v: AsTaskVar(r.v)} }

// Add contributes delta; then receives the total before the add. Taking the
// fetch&add continuation directly (instead of a niladic wrapper like
// AddTask's) lets hot callers reuse one cached continuation with no per-op
// capture.
func (r TaskReducer) Add(t *core.Task, delta uint64, then func(uint64)) {
	r.v.FetchAddTask(t, delta, then)
}

// Value reads the current total.
func (r TaskReducer) Value(t *core.Task, then func(uint64)) { r.v.LoadTask(t, then) }

// Var exposes the underlying variable (for draining or resetting).
func (r *Reducer) Var() Var { return r.v }
