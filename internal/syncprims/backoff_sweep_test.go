package syncprims

import (
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// TestBackoffPolicySweep logs the WiSyncNoT data-barrier cost under the
// available MAC disciplines, documenting the calibration choice (DESIGN.md):
// the FIFO deferral drain is what reproduces the paper's near-capacity
// channel under synchronized fetch&inc bursts. Run with -v for the table.
func TestBackoffPolicySweep(t *testing.T) {
	const cores, episodes = 64, 5
	run := func(def wireless.DeferPolicy, pol wireless.BackoffPolicy, cap int) sim.Time {
		cfg := config.New(config.WiSyncNoT, cores)
		cfg.Wireless.Defer = def
		cfg.Wireless.Backoff = pol
		cfg.Wireless.MaxBackoffExp = cap
		m := core.NewMachine(cfg)
		f := NewFactory(m)
		b := f.NewBarrier(nil)
		m.SpawnAll(func(th *core.Thread) {
			for e := 0; e < episodes; e++ {
				b.Wait(th)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now() / episodes
	}
	fifoDefault := run(wireless.DeferFIFO, wireless.BackoffPersistent, 0)
	for _, c := range []struct {
		name string
		def  wireless.DeferPolicy
		pol  wireless.BackoffPolicy
		cap  int
	}{
		{"fifo/persistent/auto", wireless.DeferFIFO, wireless.BackoffPersistent, 0},
		{"fifo/permsg/auto", wireless.DeferFIFO, wireless.BackoffPerMessage, 0},
		{"contend/persistent/6", wireless.DeferContend, wireless.BackoffPersistent, 6},
		{"contend/persistent/10", wireless.DeferContend, wireless.BackoffPersistent, 10},
		{"contend/permsg/10", wireless.DeferContend, wireless.BackoffPerMessage, 10},
	} {
		t.Logf("%-22s %5d cycles/barrier", c.name, run(c.def, c.pol, c.cap))
	}
	// The default must keep a 64-arrival barrier within ~2x of the
	// 64-message channel floor (64*5 = 320 cycles).
	if fifoDefault > 650 {
		t.Errorf("default MAC: %d cycles/barrier, want <= 650", fifoDefault)
	}
}
