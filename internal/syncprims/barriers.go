package syncprims

import (
	"fmt"

	"wisync/internal/core"
)

// centralBarrier is the Baseline barrier: a centralized sense-reversing
// barrier [16] with the arrival count incremented by a CAS retry loop (CAS
// is the Baseline machine's only atomic, Table 2) and a release flag on a
// separate cache line. Episode numbers replace the boolean sense so the
// barrier is trivially reusable. Under simultaneous arrivals the CAS loop
// serializes one full load+CAS round trip per arriver — the cost the paper
// measures for Baseline in Figure 7.
type centralBarrier struct {
	count   uint64
	release uint64
	n       uint64
	ep      []uint64 // per-core episode
	// steps holds the per-core recycled task-face state machines,
	// allocated lazily on first task-mode use (task.go).
	steps []*centralStep
}

func newCentralBarrier(m *core.Machine, participants int) *centralBarrier {
	return &centralBarrier{
		count:   m.AllocLine(),
		release: m.AllocLine(),
		n:       uint64(participants),
		ep:      make([]uint64, m.Cfg.Cores),
	}
}

func (b *centralBarrier) Wait(t *core.Thread) {
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	var arrived uint64
	for {
		c := t.Read(b.count)
		if t.CAS(b.count, c, c+1) {
			arrived = c + 1
			break
		}
		t.Instr(4)
	}
	if arrived == b.n {
		t.Write(b.count, 0)
		t.Write(b.release, ep)
		return
	}
	t.SpinUntil(b.release, func(v uint64) bool { return v >= ep })
}

// tournamentBarrier is the Baseline+ barrier [31]: threads play a
// single-elimination tournament; at each round the statically-determined
// loser sets the winner's arrival flag and spins on its own wakeup flag.
// The champion then wakes its beaten opponents in reverse order, and each
// woken thread wakes the opponents it beat. Every flag lives on its own
// line, so all spinning is local.
type tournamentBarrier struct {
	n      int
	rounds int
	// arrive[r*n+idx] is the flag the round-r loser sets for winner idx.
	arrive []uint64
	// wake[idx] releases thread idx.
	wake []uint64
	ep   []uint64
}

func newTournamentBarrier(m *core.Machine, participants int) *tournamentBarrier {
	rounds := 0
	for v := 1; v < participants; v <<= 1 {
		rounds++
	}
	b := &tournamentBarrier{
		n:      participants,
		rounds: rounds,
		arrive: make([]uint64, rounds*participants),
		wake:   make([]uint64, participants),
		ep:     make([]uint64, m.Cfg.Cores),
	}
	for i := range b.arrive {
		b.arrive[i] = m.AllocLine()
	}
	for i := range b.wake {
		b.wake[i] = m.AllocLine()
	}
	return b
}

func (b *tournamentBarrier) Wait(t *core.Thread) {
	idx := t.Core
	if idx >= b.n {
		panic(fmt.Sprintf("syncprims: thread %d beyond tournament size %d", idx, b.n))
	}
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	lose := b.rounds
	for r := 0; r < b.rounds; r++ {
		t.Instr(10) // round bookkeeping: role/partner/flag computation
		if idx&((1<<(r+1))-1) == 0 {
			// Potential winner of round r: wait for the partner
			// (or take a bye if it does not exist).
			partner := idx + 1<<r
			if partner < b.n {
				t.SpinUntil(b.arrive[r*b.n+idx], func(v uint64) bool { return v >= ep })
			}
			continue
		}
		// Loser of round r: report to the winner, then sleep.
		lose = r
		winner := idx - 1<<r
		t.Write(b.arrive[r*b.n+winner], ep)
		t.SpinUntil(b.wake[idx], func(v uint64) bool { return v >= ep })
		break
	}
	// Wake everyone this thread beat, in reverse round order.
	for r := lose - 1; r >= 0; r-- {
		partner := idx + 1<<r
		if partner < b.n {
			t.Write(b.wake[partner], ep)
		}
	}
}

// dataBarrier is the WiSync Data-channel barrier (Section 4.3.2): a
// sense-reversing barrier in one 64-bit BM entry — arrival count in the
// low half, release episode in the high half, exactly the packing the
// paper suggests. Arrivals fetch&inc over the wireless channel; waiting
// spins on the local BM replica.
type dataBarrier struct {
	addr uint32
	n    uint64
	ep   []uint64
	// steps holds the per-core recycled task-face state machines (task.go).
	steps []*dataStep
}

func (b *dataBarrier) Wait(t *core.Thread) {
	b.ep[t.Core]++
	ep := b.ep[t.Core]
	old := t.BMFetchAdd(b.addr, 1)
	if (old&0xffffffff)+1 == b.n {
		// Last arriver: zero the count and publish the episode in one
		// wireless message.
		t.BMStore(b.addr, ep<<32)
		return
	}
	t.BMSpinUntil(b.addr, func(v uint64) bool { return v>>32 >= ep })
}

// toneBarrier is the WiSync Tone-channel barrier (Section 4.3.3, Figure
// 4(c)): tone_st on arrival, then spin with tone_ld on the local BM entry,
// which the tone controllers toggle when the channel falls silent.
type toneBarrier struct {
	addr  uint32
	sense []uint64
	// steps holds the per-core recycled task-face state machines (task.go).
	steps []*toneStep
}

func (b *toneBarrier) Wait(t *core.Thread) {
	s := b.sense[t.Core]
	t.ToneStore(b.addr)
	t.ToneWait(b.addr, s)
	b.sense[t.Core] ^= 1
}
