package syncprims

import (
	"errors"

	"wisync/internal/bmem"
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/tone"
)

// Factory builds primitives appropriate for a machine's configuration
// (Table 2). Allocation happens at setup time and consumes no simulated
// cycles; programs that allocate dynamically can use the core ISA directly.
type Factory struct {
	m   *core.Machine
	pid uint16
	// Spills counts variables that fell back to cached memory because
	// the BM was full (Section 4.2; exercised by dedup/fluidanimate).
	Spills int
}

// NewFactory returns a factory for PID 1, the single-program case.
func NewFactory(m *core.Machine) *Factory { return &Factory{m: m, pid: 1} }

// NewFactoryPID returns a factory allocating under the given PID.
func NewFactoryPID(m *core.Machine, pid uint16) *Factory {
	return &Factory{m: m, pid: pid}
}

// Machine returns the machine this factory allocates on.
func (f *Factory) Machine() *core.Machine { return f.m }

// NewVar allocates a shared synchronization variable with the given initial
// value. On WiSync machines it lives in Broadcast Memory, transparently
// spilling to cached memory when the BM is full.
func (f *Factory) NewVar(init uint64) Var {
	if f.m.Cfg.Kind.HasBM() {
		if addr, err := f.m.BM.AllocBare(f.pid, false); err == nil {
			f.m.BM.Poke(addr, init)
			return &bmVar{addr: addr}
		} else if !errors.Is(err, bmem.ErrFull) {
			panic(err)
		}
		f.Spills++
	}
	v := &cacheVar{addr: f.m.AllocLine()}
	f.m.Mem.Poke(v.addr, init)
	return v
}

// NewLock allocates a lock: CAS spinlock (Baseline), MCS (Baseline+), or a
// wireless test&set lock in BM (WiSync, spilling to a cache CAS lock when
// the BM is full).
func (f *Factory) NewLock() Lock {
	switch f.m.Cfg.Kind {
	case config.BaselinePlus:
		return newMCSLock(f.m)
	default:
		return &spinLock{v: f.NewVar(0)}
	}
}

// NewBarrier allocates a barrier for the given participant cores:
// centralized (Baseline), tournament (Baseline+), Data-channel fetch&inc
// (WiSyncNoT), or Tone-channel (WiSync, falling back to the Data channel if
// the tone tables are full). Participants must be known up front for tone
// barriers (Section 4.4); pass nil for "all cores".
func (f *Factory) NewBarrier(participants []int) Barrier {
	if participants == nil {
		participants = make([]int, f.m.Cfg.Cores)
		for i := range participants {
			participants[i] = i
		}
	}
	n := len(participants)
	switch f.m.Cfg.Kind {
	case config.Baseline:
		return newCentralBarrier(f.m, n)
	case config.BaselinePlus:
		return newTournamentBarrier(f.m, n)
	case config.WiSync:
		addr, err := f.m.Tone.AllocateBare(f.pid, participants)
		if err == nil {
			b := &toneBarrier{addr: addr, sense: make([]uint64, f.m.Cfg.Cores)}
			for i := range b.sense {
				b.sense[i] = 1
			}
			return b
		}
		if !errors.Is(err, tone.ErrTableFull) && !errors.Is(err, tone.ErrPIDQuota) && !errors.Is(err, bmem.ErrFull) {
			panic(err)
		}
		fallthrough
	case config.WiSyncNoT:
		addr, err := f.m.BM.AllocBare(f.pid, false)
		if err != nil {
			// BM full: even barriers spill to cached memory.
			f.Spills++
			return newCentralBarrier(f.m, n)
		}
		return &dataBarrier{addr: addr, n: uint64(n), ep: make([]uint64, f.m.Cfg.Cores)}
	}
	panic("syncprims: unknown configuration kind")
}
