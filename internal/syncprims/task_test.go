package syncprims

import (
	"fmt"
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
)

// The syncprim equivalence tests drive each primitive's blocking and
// continuation faces through the same workload and assert identical
// simulated outcomes: final cycle count, protocol counters, and the
// functional state the primitive protects.

// lockResult captures everything a lock workload can observe.
type lockResult struct {
	Cycles  uint64
	Counter uint64
	MemHits uint64
	MemMiss uint64
	Txns    uint64
	NetMsgs uint64
}

// runLockThreads hammers a critical section with blocking threads: each
// thread increments an unprotected Go counter under the lock; any mutual-
// exclusion failure shows up as a lost update in the simulated interleave.
func runLockThreads(cfg config.Config, rounds int) lockResult {
	m := core.NewMachine(cfg)
	l := NewFactory(m).NewLock()
	var counter uint64
	m.SpawnAll(func(t *core.Thread) {
		for i := 0; i < rounds; i++ {
			l.Acquire(t)
			counter++
			t.Instr(20)
			l.Release(t)
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return lockResultOf(m, counter)
}

// runLockTasks is the same workload in continuation form.
func runLockTasks(cfg config.Config, rounds int) lockResult {
	m := core.NewMachine(cfg)
	l := NewFactory(m).NewTaskLock()
	var counter uint64
	m.SpawnAllTasks(func(t *core.Task) {
		i := 0
		var loop func()
		loop = func() {
			if i == rounds {
				t.Finish()
				return
			}
			i++
			l.AcquireTask(t, func() {
				counter++
				t.Instr(20)
				l.ReleaseTask(t, loop)
			})
		}
		loop()
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return lockResultOf(m, counter)
}

func lockResultOf(m *core.Machine, counter uint64) lockResult {
	r := lockResult{
		Cycles:  uint64(m.Now()),
		Counter: counter,
		MemHits: m.Mem.Stats.L1Hits,
		MemMiss: m.Mem.Stats.L1Misses,
		Txns:    m.Mem.Stats.Transactions,
	}
	if m.Net != nil {
		r.NetMsgs = m.Net.Stats.Messages
	}
	return r
}

// TestLockTaskEquivalence covers the spinLock (Baseline: CAS/backoff over
// cached memory; WiSync: wireless test&set) and the Baseline+ MCS queue
// lock in both execution modes.
func TestLockTaskEquivalence(t *testing.T) {
	const rounds = 4
	for _, k := range config.Kinds {
		for _, seed := range []uint64{1, 42} {
			cfg := config.New(k, 8).WithSeed(seed)
			thread := runLockThreads(cfg, rounds)
			task := runLockTasks(cfg, rounds)
			if thread != task {
				t.Errorf("%v seed %d: lock execution modes diverged\nthread: %+v\n  task: %+v",
					k, seed, thread, task)
			}
			if want := uint64(8 * rounds); task.Counter != want {
				t.Errorf("%v seed %d: counter = %d, want %d (mutual exclusion broken?)",
					k, seed, task.Counter, want)
			}
		}
	}
}

// TestBarrierTaskEquivalence drives each barrier implementation directly
// (not through a kernel): per-episode phase counters must observe full
// synchronization, and both modes must finish at the same cycle.
func TestBarrierTaskEquivalence(t *testing.T) {
	const episodes = 5
	run := func(cfg config.Config, task bool) (uint64, string) {
		m := core.NewMachine(cfg)
		b := NewFactory(m).NewBarrier(nil)
		phase := make([]int, m.Cfg.Cores)
		check := func(core int) {
			phase[core]++
			for c, p := range phase {
				if p < phase[core]-1 || p > phase[core]+1 {
					panic(fmt.Sprintf("core %d at phase %d while core %d at %d", core, phase[core], c, p))
				}
			}
		}
		if task {
			tb := AsTaskBarrier(b)
			m.SpawnAllTasks(func(t *core.Task) {
				n := 0
				var loop func()
				loop = func() {
					if n == episodes {
						t.Finish()
						return
					}
					n++
					t.Instr(10 * (1 + t.Core%3))
					tb.WaitTask(t, func() { check(t.Core); loop() })
				}
				loop()
			})
		} else {
			m.SpawnAll(func(t *core.Thread) {
				for n := 0; n < episodes; n++ {
					t.Instr(10 * (1 + t.Core%3))
					b.Wait(t)
					check(t.Core)
				}
			})
		}
		if err := m.Run(); err != nil {
			panic(err)
		}
		net := ""
		if m.Net != nil {
			net = fmt.Sprintf("%+v/%+v", m.Net.Stats, m.Net.MACCounters())
		}
		return uint64(m.Now()), fmt.Sprintf("mem=%+v net=%s", m.Mem.Stats, net)
	}
	for _, k := range config.Kinds {
		for _, seed := range []uint64{1, 42} {
			cfg := config.New(k, 16).WithSeed(seed)
			cycThread, ctrThread := run(cfg, false)
			cycTask, ctrTask := run(cfg, true)
			if cycThread != cycTask || ctrThread != ctrTask {
				t.Errorf("%v seed %d barrier modes diverged:\nthread: cyc=%d %s\n  task: cyc=%d %s",
					k, seed, cycThread, ctrThread, cycTask, ctrTask)
			}
		}
	}
}
