package syncprims

import (
	"fmt"
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/sim"
)

func newMachine(t *testing.T, kind config.Kind, cores int) *core.Machine {
	t.Helper()
	return core.NewMachine(config.New(kind, cores))
}

func forAllKinds(t *testing.T, cores int, fn func(t *testing.T, m *core.Machine)) {
	for _, k := range config.Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			fn(t, newMachine(t, k, cores))
		})
	}
}

func TestBarrierSynchronizesAllKinds(t *testing.T) {
	const cores, episodes = 16, 4
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		b := f.NewBarrier(nil)
		phase := make([]int, cores)
		m.SpawnAll(func(th *core.Thread) {
			for e := 0; e < episodes; e++ {
				th.Compute(th.Proc().Engine().Rand().Intn(100))
				phase[th.Core] = e
				b.Wait(th)
				for j := 0; j < cores; j++ {
					if phase[j] < e {
						t.Errorf("thread %d passed episode %d while %d is at %d",
							th.Core, e, j, phase[j])
					}
				}
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBarrierNoThreadReleasedEarly(t *testing.T) {
	// One thread arrives very late; nobody may be released before it.
	const cores = 8
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		b := f.NewBarrier(nil)
		const lateArrival = 5000
		var releases []sim.Time
		m.SpawnAll(func(th *core.Thread) {
			if th.Core == cores-1 {
				th.Compute(lateArrival)
			}
			b.Wait(th)
			releases = append(releases, th.Proc().Now())
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(releases) != cores {
			t.Fatalf("released %d, want %d", len(releases), cores)
		}
		for _, r := range releases {
			if r < lateArrival {
				t.Errorf("release at %d before late arrival at %d", r, lateArrival)
			}
		}
	})
}

func TestLockMutualExclusionAllKinds(t *testing.T) {
	const cores, iters = 16, 8
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		l := f.NewLock()
		var inside, maxInside, total int
		m.SpawnAll(func(th *core.Thread) {
			for i := 0; i < iters; i++ {
				th.Compute(th.Proc().Engine().Rand().Intn(60))
				l.Acquire(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				total++
				th.Compute(20)
				th.Sync() // make the hold time architectural
				inside--
				l.Release(th)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if maxInside != 1 {
			t.Errorf("max threads inside critical section = %d", maxInside)
		}
		if total != cores*iters {
			t.Errorf("total entries = %d, want %d", total, cores*iters)
		}
	})
}

func TestLockContendedHandoffProgress(t *testing.T) {
	// All threads pile on the lock at once; everyone must get it.
	const cores = 32
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		l := f.NewLock()
		var got int
		m.SpawnAll(func(th *core.Thread) {
			l.Acquire(th)
			got++
			l.Release(th)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got != cores {
			t.Errorf("acquisitions = %d, want %d", got, cores)
		}
	})
}

func TestVarCASAndFetchAdd(t *testing.T) {
	const cores = 8
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		v := f.NewVar(0)
		m.SpawnAll(func(th *core.Thread) {
			for i := 0; i < 10; i++ {
				v.FetchAdd(th, 1)
			}
			// CAS loop adds 5 more per thread.
			for added := 0; added < 5; {
				old := v.Load(th)
				if v.CAS(th, old, old+1) {
					added++
				}
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		// Check final value through a fresh reader thread.
		var final uint64
		m.Spawn("reader", 0, 1, func(th *core.Thread) { final = v.Load(th) })
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if final != cores*15 {
			t.Errorf("final = %d, want %d", final, cores*15)
		}
	})
}

func TestVarBackendSelection(t *testing.T) {
	mW := newMachine(t, config.WiSync, 4)
	if v := NewFactory(mW).NewVar(0); !v.InBM() {
		t.Error("WiSync variable not in BM")
	}
	mB := newMachine(t, config.Baseline, 4)
	if v := NewFactory(mB).NewVar(0); v.InBM() {
		t.Error("Baseline variable in BM")
	}
}

func TestBMSpillToCachedMemory(t *testing.T) {
	cfg := config.New(config.WiSync, 4)
	cfg.BMEntries = 4
	m := core.NewMachine(cfg)
	f := NewFactory(m)
	vars := make([]Var, 8)
	for i := range vars {
		vars[i] = f.NewVar(uint64(i))
	}
	if f.Spills == 0 {
		t.Fatal("no spills with an overfull BM")
	}
	inBM := 0
	for _, v := range vars {
		if v.InBM() {
			inBM++
		}
	}
	if inBM != 4 {
		t.Errorf("vars in BM = %d, want 4", inBM)
	}
	// Spilled variables still work.
	m.SpawnAll(func(th *core.Thread) {
		for _, v := range vars {
			v.FetchAdd(th, 1)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	m.Spawn("reader", 0, 1, func(th *core.Thread) {
		for _, v := range vars {
			sum += v.Load(th)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// sum(init) = 0+1+..+7 = 28, plus 4 increments each = 32.
	if sum != 28+32 {
		t.Errorf("sum = %d, want 60", sum)
	}
}

func TestBarrierCostOrderingAcrossKinds(t *testing.T) {
	// The paper's central result in miniature: with simultaneous
	// arrivals, barrier cost must order WiSync < WiSyncNoT < Baseline+ <
	// Baseline at 64 cores.
	const cores, episodes = 64, 5
	cost := map[config.Kind]sim.Time{}
	for _, k := range config.Kinds {
		m := newMachine(t, k, cores)
		f := NewFactory(m)
		b := f.NewBarrier(nil)
		m.SpawnAll(func(th *core.Thread) {
			for e := 0; e < episodes; e++ {
				b.Wait(th)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		cost[k] = m.Now()
	}
	t.Logf("barrier cost (cycles for %d episodes): %v", episodes, cost)
	if !(cost[config.WiSync] < cost[config.WiSyncNoT]) {
		t.Errorf("WiSync (%d) not faster than WiSyncNoT (%d)", cost[config.WiSync], cost[config.WiSyncNoT])
	}
	if !(cost[config.WiSyncNoT] < cost[config.BaselinePlus]) {
		t.Errorf("WiSyncNoT (%d) not faster than Baseline+ (%d)", cost[config.WiSyncNoT], cost[config.BaselinePlus])
	}
	if !(cost[config.BaselinePlus] < cost[config.Baseline]) {
		t.Errorf("Baseline+ (%d) not faster than Baseline (%d)", cost[config.BaselinePlus], cost[config.Baseline])
	}
}

func TestEurekaFiresForAll(t *testing.T) {
	const cores = 8
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		e := f.NewEureka()
		found := -1
		var woken int
		m.SpawnAll(func(th *core.Thread) {
			if th.Core == 3 {
				th.Compute(500)
				found = th.Core
				e.Trigger(th)
				return
			}
			e.WaitTriggered(th)
			if found != 3 {
				t.Errorf("thread %d woke before the trigger", th.Core)
			}
			woken++
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if woken != cores-1 {
			t.Errorf("woken = %d, want %d", woken, cores-1)
		}
	})
}

func TestEurekaReuse(t *testing.T) {
	m := newMachine(t, config.WiSync, 4)
	f := NewFactory(m)
	e := f.NewEureka()
	var fired int
	m.SpawnAll(func(th *core.Thread) {
		for round := 0; round < 3; round++ {
			if th.Core == 0 {
				th.Compute(200)
				e.Trigger(th)
			} else {
				e.WaitTriggered(th)
				fired++
			}
			e.Ack(th)
			// Simple rendezvous so rounds don't overlap: everyone
			// waits out the round window.
			th.Compute(1000)
			th.Sync()
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3*3 {
		t.Errorf("fired = %d, want 9", fired)
	}
}

func TestProducerConsumer(t *testing.T) {
	const items = 20
	forAllKinds(t, 2, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		pc := f.NewPC(1)
		var got []uint64
		m.Spawn("producer", 0, 1, func(th *core.Thread) {
			for i := 1; i <= items; i++ {
				pc.Produce(th, []uint64{uint64(i * 11)})
			}
		})
		m.Spawn("consumer", 1, 1, func(th *core.Thread) {
			buf := make([]uint64, 1)
			for i := 0; i < items; i++ {
				pc.Consume(th, buf)
				got = append(got, buf[0])
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != items {
			t.Fatalf("consumed %d items, want %d", len(got), items)
		}
		for i, v := range got {
			if v != uint64((i+1)*11) {
				t.Fatalf("item %d = %d, want %d (order broken)", i, v, (i+1)*11)
			}
		}
	})
}

func TestProducerConsumerBulk(t *testing.T) {
	// 4-word transfers use a single Bulk message on WiSync.
	m := newMachine(t, config.WiSync, 2)
	f := NewFactory(m)
	pc := f.NewPC(4)
	var got [][]uint64
	m.Spawn("producer", 0, 1, func(th *core.Thread) {
		for i := 0; i < 5; i++ {
			pc.Produce(th, []uint64{uint64(i), uint64(i + 1), uint64(i + 2), uint64(i + 3)})
		}
	})
	m.Spawn("consumer", 1, 1, func(th *core.Thread) {
		for i := 0; i < 5; i++ {
			buf := make([]uint64, 4)
			pc.Consume(th, buf)
			got = append(got, buf)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		for j := range b {
			if b[j] != uint64(i+j) {
				t.Fatalf("batch %d = %v", i, b)
			}
		}
	}
}

func TestMulticastDelivery(t *testing.T) {
	const readers = 7
	forAllKinds(t, readers+1, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		mc := f.NewMulticast(readers)
		const rounds = 4
		recv := make([][]uint64, readers+1)
		m.SpawnAll(func(th *core.Thread) {
			if th.Core == 0 {
				for r := 1; r <= rounds; r++ {
					mc.Produce(th, uint64(r*100))
				}
				return
			}
			for r := 0; r < rounds; r++ {
				recv[th.Core] = append(recv[th.Core], mc.Consume(th))
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for c := 1; c <= readers; c++ {
			for r := 0; r < rounds; r++ {
				if recv[c][r] != uint64((r+1)*100) {
					t.Fatalf("reader %d round %d = %d", c, r, recv[c][r])
				}
			}
		}
	})
}

func TestReducerTotals(t *testing.T) {
	const cores = 16
	forAllKinds(t, cores, func(t *testing.T, m *core.Machine) {
		f := NewFactory(m)
		r := f.NewReducer(0)
		m.SpawnAll(func(th *core.Thread) {
			for i := 0; i < 10; i++ {
				r.Add(th, uint64(th.Core))
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var got uint64
		m.Spawn("reader", 0, 1, func(th *core.Thread) { got = r.Value(th) })
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		want := uint64(10 * cores * (cores - 1) / 2)
		if got != want {
			t.Errorf("reduction = %d, want %d", got, want)
		}
	})
}

func TestTournamentBarrierNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 7, 12, 24} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			m := newMachine(t, config.BaselinePlus, n)
			f := NewFactory(m)
			b := f.NewBarrier(nil)
			var through int
			m.SpawnAll(func(th *core.Thread) {
				for e := 0; e < 3; e++ {
					th.Compute(th.Proc().Engine().Rand().Intn(50))
					b.Wait(th)
				}
				through++
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if through != n {
				t.Errorf("through = %d, want %d", through, n)
			}
		})
	}
}

func TestToneBarrierFallsBackWhenTablesFull(t *testing.T) {
	cfg := config.New(config.WiSync, 4)
	cfg.Tone.TableSize = 1
	cfg.Tone.MaxPerPID = 1
	m := core.NewMachine(cfg)
	f := NewFactory(m)
	b1 := f.NewBarrier(nil) // takes the single tone slot
	b2 := f.NewBarrier(nil) // must fall back to the Data channel
	if _, ok := b1.(*toneBarrier); !ok {
		t.Fatalf("first barrier is %T, want toneBarrier", b1)
	}
	if _, ok := b2.(*dataBarrier); !ok {
		t.Fatalf("second barrier is %T, want dataBarrier", b2)
	}
	m.SpawnAll(func(th *core.Thread) {
		b1.Wait(th)
		b2.Wait(th)
		b1.Wait(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRunsAcrossMachines(t *testing.T) {
	run := func() sim.Time {
		m := newMachine(t, config.WiSync, 16)
		f := NewFactory(m)
		b := f.NewBarrier(nil)
		l := f.NewLock()
		v := f.NewVar(0)
		m.SpawnAll(func(th *core.Thread) {
			for i := 0; i < 5; i++ {
				th.Compute(th.Proc().Engine().Rand().Intn(100))
				l.Acquire(th)
				v.FetchAdd(th, 1)
				l.Release(th)
				b.Wait(th)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different end times: %d vs %d", a, b)
	}
}
