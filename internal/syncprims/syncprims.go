// Package syncprims implements the synchronization primitives the paper's
// evaluation compares (Table 2), against a backend-neutral interface:
//
//   - Baseline: CAS spinlocks and a centralized sense-reversing barrier
//     over the cache hierarchy.
//   - Baseline+: MCS queue locks [31] and tournament barriers [31], plus
//     the virtual-tree NoC broadcast (enabled inside package mem).
//   - WiSyncNoT: test&set locks and fetch&inc barriers in Broadcast Memory
//     over the wireless Data channel.
//   - WiSync: the same locks, but barriers through the Tone channel.
//
// It also provides the higher-level idioms of Section 4.3: OR-barriers
// (eurekas), producer-consumer channels (with Bulk transfers), reductions,
// and multicast.
//
// Workload code obtains primitives from a Factory, which picks the
// implementation matching the machine's configuration, including the
// paper's overflow rule: when the BM fills up, variables transparently
// spill to regular cached memory (Section 4.2, as exercised by dedup and
// fluidanimate).
package syncprims

import (
	"wisync/internal/core"
)

// Barrier blocks each participant until all participants arrive.
type Barrier interface {
	Wait(t *core.Thread)
}

// Lock is a mutual exclusion lock.
type Lock interface {
	Acquire(t *core.Thread)
	Release(t *core.Thread)
}

// Var is a 64-bit shared synchronization variable.
type Var interface {
	Load(t *core.Thread) uint64
	Store(t *core.Thread, v uint64)
	// CAS performs compare-and-swap and reports whether it swapped.
	CAS(t *core.Thread, old, nv uint64) bool
	// FetchAdd atomically adds delta, returning the previous value.
	FetchAdd(t *core.Thread, delta uint64) uint64
	// SpinUntil spins (hardware-faithfully for the backend) until cond
	// holds, returning the satisfying value.
	SpinUntil(t *core.Thread, cond func(uint64) bool) uint64
	// InBM reports whether the variable lives in Broadcast Memory.
	InBM() bool
}
