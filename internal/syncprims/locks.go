package syncprims

import "wisync/internal/core"

// spinLock is a test-and-test&set lock over any Var backend: spin until
// free, then attempt an atomic grab. On a cache backend the spinning is
// local (cached copy) and the grab is a coherence RMW; on the BM backend
// the spinning is local-replica polling and the grab is a wireless T&S
// (the WiSync lock of Table 2).
type spinLock struct {
	v Var
	// steps are the per-core recycled continuation state machines of the
	// task face (see task.go), allocated lazily on first task-mode use.
	steps []*spinStep
}

func (l *spinLock) Acquire(t *core.Thread) {
	for {
		l.v.SpinUntil(t, func(x uint64) bool { return x == 0 })
		if l.v.CAS(t, 0, 1) {
			return
		}
	}
}

func (l *spinLock) Release(t *core.Thread) {
	l.v.Store(t, 0)
}

// mcsLock is the queue-based lock of Mellor-Crummey and Scott [31], used by
// Baseline+. Each thread spins on its own qnode line; lock handoff writes
// only the successor's line, so contention never storms the directory.
type mcsLock struct {
	tail uint64 // 0 = free, otherwise core+1
	// per-core qnode fields, each on its own cache line
	locked []uint64
	next   []uint64
	// steps are the per-core recycled continuation state machines of the
	// task face (see task.go), allocated lazily on first task-mode use.
	steps []*mcsStep
}

func newMCSLock(m *core.Machine) *mcsLock {
	n := m.Cfg.Cores
	l := &mcsLock{
		tail:   m.AllocLine(),
		locked: make([]uint64, n),
		next:   make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		l.locked[i] = m.AllocLine()
		l.next[i] = m.AllocLine()
	}
	return l
}

func (l *mcsLock) Acquire(t *core.Thread) {
	me := t.Core
	t.Instr(8) // qnode setup and pointer arithmetic
	t.Write(l.next[me], 0)
	pred := t.Swap(l.tail, uint64(me+1))
	if pred == 0 {
		return
	}
	t.Write(l.locked[me], 1)
	t.Write(l.next[pred-1], uint64(me+1))
	t.SpinUntil(l.locked[me], func(x uint64) bool { return x == 0 })
}

func (l *mcsLock) Release(t *core.Thread) {
	me := t.Core
	t.Instr(6)
	succ := t.Read(l.next[me])
	if succ == 0 {
		if t.CAS(l.tail, uint64(me+1), 0) {
			return
		}
		// A successor is linking itself; wait for the link.
		succ = t.SpinUntil(l.next[me], func(x uint64) bool { return x != 0 })
	}
	t.Write(l.locked[succ-1], 0)
}
