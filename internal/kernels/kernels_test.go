package kernels

import (
	"math"
	"testing"

	"wisync/internal/config"
)

func TestTightLoopRunsOnAllKinds(t *testing.T) {
	for _, k := range config.Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r := TightLoop(config.New(k, 16), 3)
			if r.Iterations != 3 || r.Cycles == 0 {
				t.Fatalf("result = %+v", r)
			}
			if r.CyclesPerIteration() < 20 {
				t.Errorf("cycles/iter = %.0f, implausibly low", r.CyclesPerIteration())
			}
		})
	}
}

func TestTightLoopOrderingAt64(t *testing.T) {
	// 25 iterations amortize the cold-start misses the way the paper's
	// steady-state measurement does.
	per := map[config.Kind]float64{}
	for _, k := range config.Kinds {
		per[k] = TightLoop(config.New(k, 64), 25).CyclesPerIteration()
	}
	t.Logf("TightLoop cycles/iter at 64 cores: %v", per)
	if !(per[config.WiSync] < per[config.WiSyncNoT] &&
		per[config.WiSyncNoT] < per[config.BaselinePlus] &&
		per[config.BaselinePlus] < per[config.Baseline]) {
		t.Errorf("Figure 7 ordering violated: %v", per)
	}
	// Paper shape: WiSyncNoT 2-6x WiSync; Baseline+ several times
	// WiSyncNoT; Baseline about two orders of magnitude above WiSync.
	if r := per[config.WiSyncNoT] / per[config.WiSync]; r < 1.5 || r > 8 {
		t.Errorf("WiSyncNoT/WiSync = %.1f, want roughly 2-6", r)
	}
	if r := per[config.BaselinePlus] / per[config.WiSync]; r < 4 || r > 25 {
		t.Errorf("Baseline+/WiSync = %.1f, want roughly 5-15", r)
	}
	if r := per[config.Baseline] / per[config.WiSync]; r < 40 {
		t.Errorf("Baseline/WiSync = %.1f, want order(s) of magnitude", r)
	}
}

// sequential references for the Livermore loops, mirroring the kernels'
// data generators and the phase-staged (Jacobi) update order of the
// parallel decomposition.
func refLivermore2(n, passes int) []float64 {
	x := seqVector(2*n, 3)
	v := seqVector(2*n, 7)
	for pass := 0; pass < passes; pass++ {
		ii := n
		ipntp := 0
		for ii > 1 {
			ipnt := ipntp
			ipntp += ii
			ii /= 2
			staged := make([]float64, ii)
			for e := 0; e < ii; e++ {
				k := ipnt + 1 + 2*e
				staged[e] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
			}
			copy(x[ipntp:ipntp+ii], staged)
		}
	}
	return x
}

func refLivermore6(n int) []float64 {
	w := seqVector(n, 13)
	bm := seqVector(n*8, 17)
	for i := 1; i < n; i++ {
		var s float64
		for k := 0; k < i; k++ {
			s += bm[(k*7+i)%(n*8)] * w[i-k-1]
		}
		w[i] += s
	}
	return w
}

func TestLivermore2MatchesSequential(t *testing.T) {
	for _, k := range []config.Kind{config.Baseline, config.WiSync} {
		r, x := Livermore2(config.New(k, 8), 64, 2)
		want := refLivermore2(64, 2)
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: x[%d] = %v, want %v", k, i, x[i], want[i])
			}
		}
		if r.Cycles == 0 {
			t.Error("zero cycles")
		}
	}
}

func TestLivermore3MatchesSequential(t *testing.T) {
	n := 256
	z := seqVector(n, 5)
	xv := seqVector(n, 11)
	var want float64
	for i := 0; i < n; i++ {
		want += z[i] * xv[i]
	}
	for _, k := range []config.Kind{config.Baseline, config.WiSync} {
		_, got := Livermore3(config.New(k, 8), n, 1)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("%v: inner product = %v, want %v", k, got, want)
		}
	}
}

func TestLivermore6MatchesSequential(t *testing.T) {
	for _, k := range []config.Kind{config.Baseline, config.WiSync} {
		_, w := Livermore6(config.New(k, 8), 48)
		want := refLivermore6(48)
		for i := range want {
			if math.Abs(w[i]-want[i]) > 1e-6*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("%v: w[%d] = %v, want %v", k, i, w[i], want[i])
			}
		}
	}
}

func TestLivermoreBarrierDominanceShrinksWithN(t *testing.T) {
	// Figure 8 property: the WiSync advantage over Baseline+ shrinks as
	// the vector grows (compute amortizes the barriers).
	speedup := func(n int) float64 {
		rb, _ := Livermore3(config.New(config.BaselinePlus, 16), n, 2)
		rw, _ := Livermore3(config.New(config.WiSync, 16), n, 2)
		return float64(rb.Cycles) / float64(rw.Cycles)
	}
	small, large := speedup(64), speedup(8192)
	t.Logf("Baseline+/WiSync on loop3: n=64 %.2fx, n=8192 %.2fx", small, large)
	if small <= large {
		t.Errorf("advantage did not shrink: %.2f (small) vs %.2f (large)", small, large)
	}
	if small < 1.2 {
		t.Errorf("small-vector advantage %.2fx too small", small)
	}
}

func TestCASKernelRuns(t *testing.T) {
	for _, kind := range []CASKind{FIFO, LIFO, ADD} {
		r := CASKernel(config.New(config.WiSync, 16), kind, 256, 20000)
		if r.Successes == 0 {
			t.Errorf("%v: no successful CASes", kind)
		}
		if r.Per1000 <= 0 {
			t.Errorf("%v: throughput %v", kind, r.Per1000)
		}
	}
}

func TestCASThroughputGapGrowsWithContention(t *testing.T) {
	// Figure 9 property: WiSync and Baseline are comparable at large
	// critical sections; WiSync pulls far ahead at small ones.
	gap := func(cs int) float64 {
		b := CASKernel(config.New(config.Baseline, 64), ADD, cs, 50000)
		w := CASKernel(config.New(config.WiSync, 64), ADD, cs, 50000)
		return w.Per1000 / b.Per1000
	}
	relaxed, contended := gap(16384), gap(16)
	t.Logf("WiSync/Baseline ADD throughput: cs=16K %.2fx, cs=16 %.2fx", relaxed, contended)
	if relaxed > 2.5 {
		t.Errorf("gap at 16K instructions = %.2fx, want near parity", relaxed)
	}
	if contended < 4 {
		t.Errorf("gap at 16 instructions = %.2fx, want >= 4x", contended)
	}
}

func TestCASDemandLimitedRegimeMatchesDemand(t *testing.T) {
	// At very large critical sections throughput equals offered load:
	// cores * 1000 / (csInstr/2 cycles).
	cs := 16384
	r := CASKernel(config.New(config.Baseline, 64), ADD, cs, 200000)
	demand := 64.0 * 1000 / (float64(cs) / 2)
	if r.Per1000 < 0.5*demand || r.Per1000 > 1.2*demand {
		t.Errorf("throughput %.2f/1000cyc vs offered %.2f", r.Per1000, demand)
	}
}

func TestChunkPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, p := range []int{1, 3, 16, 64} {
			total := 0
			prevHi := 0
			for w := 0; w < p; w++ {
				lo, hi := chunk(n, w, p)
				if lo != prevHi {
					t.Fatalf("chunk(%d,%d,%d): gap at %d", n, w, p, lo)
				}
				total += hi - lo
				prevHi = hi
			}
			if total != n {
				t.Fatalf("chunks of %d over %d sum to %d", n, p, total)
			}
		}
	}
}
