package kernels

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/mem"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
	"wisync/internal/wireless"
)

// CASKind selects one of the lock-free CAS kernels of Table 3.
type CASKind int

// CAS kernel kinds.
const (
	// FIFO enqueues and dequeues nodes from a shared queue: CASes split
	// between a head and a tail pointer.
	FIFO CASKind = iota
	// LIFO pushes and pops a shared stack: all CASes target the top
	// pointer.
	LIFO
	// ADD only inserts nodes taken from private pools: all CASes target
	// the tail pointer.
	ADD
)

func (k CASKind) String() string {
	switch k {
	case FIFO:
		return "FIFO"
	case LIFO:
		return "LIFO"
	case ADD:
		return "ADD"
	}
	return fmt.Sprintf("CASKind(%d)", int(k))
}

// CASResult reports a CAS kernel execution.
type CASResult struct {
	Cfg       config.Config
	Kind      CASKind
	Duration  sim.Time
	Successes uint64
	Failures  uint64
	// Per1000 is the Figure 9 metric: successful CASes per 1000 cycles.
	Per1000 float64
	// Mem, Net, MAC and Energy expose the machine's protocol counters
	// (see Result).
	Mem    mem.Stats
	Net    wireless.Stats
	MAC    wireless.MACStats
	Energy wireless.EnergyStats
	// Faults lists the workload threads halted by a fail-stopped
	// transceiver (nil without a fault plan): the surviving cores kept
	// the kernel running in a degraded configuration.
	Faults []core.Fault
}

func (r CASResult) String() string {
	return fmt.Sprintf("%s/%s/%d cores: %.2f CAS/1000cyc (%d ok, %d failed)",
		r.Kind, r.Cfg.Kind, r.Cfg.Cores, r.Per1000, r.Successes, r.Failures)
}

// CASKernel runs one of the lock-free kernels for the given duration:
// every thread executes csInstr instructions of private work between
// operations on the shared structure, each operation being a load of the
// shared pointer, a couple of private node updates, and a CAS retried until
// it succeeds (Section 6). Figure 9 compares Baseline and WiSync only —
// the kernels use no locks or barriers, so the other configurations are
// redundant — but any configuration can be passed.
func CASKernel(cfg config.Config, kind CASKind, csInstr int, duration sim.Time) CASResult {
	return CASKernelExec(cfg, kind, csInstr, duration, ExecTask)
}

// CASKernelExec is CASKernel with an explicit execution mode.
func CASKernelExec(cfg config.Config, kind CASKind, csInstr int, duration sim.Time, exec Exec) CASResult {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	// Shared pointers. FIFO has distinct head and tail; LIFO and ADD hit
	// a single word.
	vars := []syncprims.Var{f.NewVar(1)}
	if kind == FIFO {
		vars = append(vars, f.NewVar(1))
	}
	// Per-thread private node lines (pool updates touch own cache).
	nodeLines := make([]uint64, cfg.Cores)
	for i := range nodeLines {
		nodeLines[i] = m.AllocLine()
	}
	var successes, failures uint64
	threadRand := func(core int) *sim.Rand {
		return sim.NewRand(uint64(core)*2654435761 + cfg.Seed + uint64(kind)*7919)
	}
	if exec == ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			rng := threadRand(t.Core)
			// Stagger thread starts across one work period and jitter each
			// period by +-12%, or the threads arrive at the shared pointer
			// in lockstep convoys that no real system exhibits.
			t.Instr(rng.Intn(csInstr + 1))
			op := 0
			for {
				t.Instr(csInstr - csInstr/8 + rng.Intn(csInstr/4+1))
				// Pick the target pointer: FIFO alternates enqueue
				// (tail) and dequeue (head); LIFO/ADD use one pointer.
				v := vars[0]
				if kind == FIFO && op%2 == 1 {
					v = vars[1]
				}
				op++
				// Prepare the private node. ADD builds a full node from
				// the pool each time; LIFO's pop half and FIFO's dequeue
				// half touch less private state.
				t.Write(nodeLines[t.Core], rng.Uint64())
				switch {
				case kind == ADD:
					t.Instr(8)
				case op%2 == 1:
					t.Instr(2)
				default:
					t.Instr(4)
				}
				// Lock-free update loop with standard exponential backoff
				// on failure. Without backoff a deep retry queue is a
				// stable congestion attractor: every queued CAS is stale
				// by the time it is granted, and throughput collapses to
				// one success per queue rotation.
				backoff := 8
				for {
					old := v.Load(t)
					if v.CAS(t, old, old+1) {
						successes++
						break
					}
					failures++
					t.Instr(backoff + rng.Intn(backoff))
					if backoff < 2048 {
						backoff *= 2
					}
				}
			}
		})
	} else {
		tvars := make([]syncprims.TaskVar, len(vars))
		for i, v := range vars {
			tvars[i] = syncprims.AsTaskVar(v)
		}
		m.SpawnAllTasks(func(t *core.Task) {
			s := newCASStep(t, kind, tvars, nodeLines[t.Core], csInstr,
				threadRand(t.Core), &successes, &failures)
			t.Instr(s.rng.Intn(csInstr + 1))
			s.period()
		})
	}
	if err := m.RunUntil(duration); err != nil {
		panic(err)
	}
	r := CASResult{
		Cfg:       cfg,
		Kind:      kind,
		Duration:  duration,
		Successes: successes,
		Failures:  failures,
		Per1000:   1000 * float64(successes) / float64(duration),
		Mem:       m.Mem.Stats,
		Faults:    m.Faults(),
	}
	if m.Net != nil {
		r.Net = m.Net.Stats
		r.MAC = m.Net.MACCounters()
		r.Energy = m.Net.Energy
	}
	return r
}

// casStep is one task's recycled state machine for the CAS-kernel work
// period: private work, node preparation, then the lock-free update loop
// with exponential backoff. The closure form captured the target variable,
// the backoff state and the loaded value in fresh closures on every
// operation; here they are struct fields and the continuations are method
// values cached at construction, so the steady state allocates nothing.
// The period never finishes on its own — RunUntil's horizon cuts the run,
// exactly as it kills the blocking threads.
type casStep struct {
	t       *core.Task
	kind    CASKind
	vars    []syncprims.TaskVar
	node    uint64
	csInstr int
	rng     *sim.Rand

	op      int
	backoff int
	v       syncprims.TaskVar

	successes, failures *uint64

	afterWriteFn func()
	onLoadFn     func(uint64)
	onCASFn      func(bool)
}

func newCASStep(t *core.Task, kind CASKind, vars []syncprims.TaskVar, node uint64,
	csInstr int, rng *sim.Rand, successes, failures *uint64) *casStep {
	t.M.Eng.StepPoolMiss()
	s := &casStep{t: t, kind: kind, vars: vars, node: node, csInstr: csInstr,
		rng: rng, successes: successes, failures: failures}
	s.afterWriteFn = s.afterWrite
	s.onLoadFn = s.onLoad
	s.onCASFn = s.onCAS
	return s
}

// period runs one work period: the jittered private work, the target
// pointer choice (FIFO alternates enqueue/dequeue), and the private node
// write.
func (s *casStep) period() {
	if s.op > 0 {
		// Reuse of the recycled struct; the first period ran on the
		// fresh allocation counted in newCASStep.
		s.t.M.Eng.StepPoolHit()
	}
	s.t.Instr(s.csInstr - s.csInstr/8 + s.rng.Intn(s.csInstr/4+1))
	s.v = s.vars[0]
	if s.kind == FIFO && s.op%2 == 1 {
		s.v = s.vars[1]
	}
	s.op++
	s.t.Write(s.node, s.rng.Uint64(), s.afterWriteFn)
}

func (s *casStep) afterWrite() {
	// Prepare the private node. ADD builds a full node from the pool each
	// time; LIFO's pop half and FIFO's dequeue half touch less private
	// state.
	switch {
	case s.kind == ADD:
		s.t.Instr(8)
	case s.op%2 == 1:
		s.t.Instr(2)
	default:
		s.t.Instr(4)
	}
	s.backoff = 8
	s.attempt()
}

func (s *casStep) attempt() { s.v.LoadTask(s.t, s.onLoadFn) }

func (s *casStep) onLoad(old uint64) {
	s.v.CASTask(s.t, old, old+1, s.onCASFn)
}

func (s *casStep) onCAS(ok bool) {
	if ok {
		*s.successes++
		s.period()
		return
	}
	*s.failures++
	s.t.Instr(s.backoff + s.rng.Intn(s.backoff))
	if s.backoff < 2048 {
		s.backoff *= 2
	}
	s.attempt()
}
