package kernels

import (
	"fmt"
	"testing"

	"wisync/internal/config"
)

// The equivalence suite proves the continuation-form (ExecTask) kernels
// are bit-identical to their blocking (ExecThread) twins: every reported
// metric and every mem/net/MAC protocol counter must match exactly, across
// seeds and all four architectures. Together with the golden-conformance
// suite in package harness (whose committed file predates the conversion),
// this pins that the task rewrite moved no simulated result.

var equivSeeds = []uint64{1, 42}

// equivConfigs enumerates the (kind, seed) matrix at 16 cores — small
// enough to run under -race in the short CI job, while still exercising
// every synchronization substrate.
func equivConfigs() []config.Config {
	var cfgs []config.Config
	for _, k := range config.Kinds {
		for _, seed := range equivSeeds {
			cfgs = append(cfgs, config.New(k, 16).WithSeed(seed))
		}
	}
	return cfgs
}

// mustEqual asserts two kernel results (any printable struct) match
// field-for-field.
func mustEqual(t *testing.T, what string, cfg config.Config, thread, task any) {
	t.Helper()
	a, b := fmt.Sprintf("%+v", thread), fmt.Sprintf("%+v", task)
	if a != b {
		t.Errorf("%s on %v/%dc seed %d: thread and task execution diverged\nthread: %s\n  task: %s",
			what, cfg.Kind, cfg.Cores, cfg.Seed, a, b)
	}
}

func TestTightLoopExecEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		mustEqual(t, "tightloop", cfg,
			TightLoopExec(cfg, 6, ExecThread),
			TightLoopExec(cfg, 6, ExecTask))
	}
}

func TestLivermore2ExecEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		rThread, xThread := Livermore2Exec(cfg, 48, 1, ExecThread)
		rTask, xTask := Livermore2Exec(cfg, 48, 1, ExecTask)
		mustEqual(t, "livermore2", cfg, rThread, rTask)
		mustEqual(t, "livermore2 vector", cfg, xThread, xTask)
	}
}

func TestLivermore3ExecEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		rThread, sThread := Livermore3Exec(cfg, 96, 2, ExecThread)
		rTask, sTask := Livermore3Exec(cfg, 96, 2, ExecTask)
		mustEqual(t, "livermore3", cfg, rThread, rTask)
		if sThread != sTask {
			t.Errorf("livermore3 on %v seed %d: inner product %v vs %v", cfg.Kind, cfg.Seed, sThread, sTask)
		}
	}
}

func TestLivermore6ExecEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		rThread, wThread := Livermore6Exec(cfg, 24, ExecThread)
		rTask, wTask := Livermore6Exec(cfg, 24, ExecTask)
		mustEqual(t, "livermore6", cfg, rThread, rTask)
		mustEqual(t, "livermore6 vector", cfg, wThread, wTask)
	}
}

func TestCASKernelExecEquivalence(t *testing.T) {
	// All three CAS kinds: the FIFO/LIFO/ADD kernels drive the CAS/backoff
	// retry loop — the contended-update path — under an open-ended
	// RunUntil horizon.
	for _, kind := range []CASKind{FIFO, LIFO, ADD} {
		for _, cfg := range equivConfigs() {
			mustEqual(t, fmt.Sprintf("cas-%v", kind), cfg,
				CASKernelExec(cfg, kind, 128, 8000, ExecThread),
				CASKernelExec(cfg, kind, 128, 8000, ExecTask))
		}
	}
}

// TestExecEquivalenceLargerPoint spot-checks one bigger configuration per
// kernel family (64 cores), where contention storms and MAC arbitration
// are qualitatively different from the 16-core matrix. Skipped in -short
// mode; the 16-core matrix above still runs there (and under -race).
func TestExecEquivalenceLargerPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core equivalence points")
	}
	for _, k := range []config.Kind{config.Baseline, config.WiSync} {
		cfg := config.New(k, 64)
		mustEqual(t, "tightloop", cfg,
			TightLoopExec(cfg, 8, ExecThread),
			TightLoopExec(cfg, 8, ExecTask))
		mustEqual(t, "cas-fifo", cfg,
			CASKernelExec(cfg, FIFO, 128, 20000, ExecThread),
			CASKernelExec(cfg, FIFO, 128, 20000, ExecTask))
	}
}
