package kernels

import (
	"testing"

	"wisync/internal/config"
)

// TestCASBaselineScalesWithDemand pins the Baseline demand-limited regime:
// at a large critical section the offered load scales linearly with cores
// until the hot line saturates, and the uncontended cases match demand
// exactly. This guards against reintroducing the retry-queue congestion
// collapse (see the backoff note in CASKernel).
func TestCASBaselineScalesWithDemand(t *testing.T) {
	get := func(cores int) float64 {
		return CASKernel(config.New(config.Baseline, cores), ADD, 16384, 200000).Per1000
	}
	demandPerCore := 1000.0 / (16384.0 / 2)
	one, four, sixtyFour := get(1), get(4), get(64)
	t.Logf("per1000: 1 core %.2f, 4 cores %.2f, 64 cores %.2f (demand/core %.3f)",
		one, four, sixtyFour, demandPerCore)
	if one < 0.8*demandPerCore || one > 1.2*demandPerCore {
		t.Errorf("1 core: %.2f, want ~%.2f", one, demandPerCore)
	}
	if four < 0.8*4*demandPerCore || four > 1.2*4*demandPerCore {
		t.Errorf("4 cores: %.2f, want ~%.2f", four, 4*demandPerCore)
	}
	if sixtyFour < 0.6*64*demandPerCore {
		t.Errorf("64 cores: %.2f, collapsed well below demand %.2f", sixtyFour, 64*demandPerCore)
	}
}
