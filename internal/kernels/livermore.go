package kernels

import (
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/syncprims"
)

// Livermore2 is Livermore loop 2, an excerpt from an incomplete Cholesky
// conjugate gradient: log2(n) wavefront phases, the k-th processing half
// the elements of the previous one, with a global barrier between phases.
// Small vectors are barrier-dominated; large vectors amortize. It returns
// the result vector alongside timing so tests can validate against the
// sequential reference.
func Livermore2(cfg config.Config, n int, passes int) (Result, []float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	x := seqVector(2*n, 3)
	v := seqVector(2*n, 7)
	xBase := m.AllocArray(2 * n)
	vBase := m.AllocArray(2 * n)

	// Each phase computes into a staging buffer and publishes after a
	// barrier (the wavefront's first output index coincides with the last
	// element's read index, so in-place parallel updates would race; this
	// is the data alignment step of Sampson et al. [37]).
	staged := make([][]float64, cfg.Cores)
	m.SpawnAll(func(t *core.Thread) {
		for pass := 0; pass < passes; pass++ {
			ii := n
			ipntp := 0
			for ii > 1 {
				ipnt := ipntp
				ipntp += ii
				ii /= 2
				// Elements k = ipnt+1, ipnt+3, ... (ii of them);
				// writes land at i = ipntp, ipntp+1, ...
				lo, hi := chunk(ii, t.Core, cfg.Cores)
				staged[t.Core] = staged[t.Core][:0]
				for e := lo; e < hi; e++ {
					k := ipnt + 1 + 2*e
					staged[t.Core] = append(staged[t.Core],
						x[k]-v[k]*x[k-1]-v[k+1]*x[k+1])
				}
				// Timing: reads of x and v over the strided range,
				// ~8 instructions per element.
				if hi > lo {
					readRange(t, xBase, ipnt+2*lo, ipnt+2*hi, 4)
					readRange(t, vBase, ipnt+2*lo, ipnt+2*hi, 4)
				}
				b.Wait(t)
				for e := lo; e < hi; e++ {
					x[ipntp+e] = staged[t.Core][e-lo]
				}
				if hi > lo {
					readRange(t, xBase, ipntp+lo, ipntp+hi, 1)
				}
				b.Wait(t)
			}
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return result(m, passes), x
}

// Livermore3 is Livermore loop 3, an inner product: each thread forms a
// partial sum over its chunk, then a reduction combines the partials
// (fetch&add on the Broadcast Memory for WiSync; a coherent RMW for the
// wired machines) and a barrier closes each pass.
func Livermore3(cfg config.Config, n int, passes int) (Result, float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	red := f.NewReducer(0)
	z := seqVector(n, 5)
	xv := seqVector(n, 11)
	zBase := m.AllocArray(n)
	xBase := m.AllocArray(n)
	partials := make([]float64, cfg.Cores)

	m.SpawnAll(func(t *core.Thread) {
		lo, hi := chunk(n, t.Core, cfg.Cores)
		for pass := 0; pass < passes; pass++ {
			var q float64
			for k := lo; k < hi; k++ {
				q += z[k] * xv[k]
			}
			partials[t.Core] = q
			readRange(t, zBase, lo, hi, 1)
			readRange(t, xBase, lo, hi, 1)
			// The reduction variable carries the partial count in
			// fixed point; the functional sum is mirrored in
			// partials.
			red.Add(t, uint64(int64(q)))
			b.Wait(t)
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return result(m, passes), sum
}

// Livermore6 is Livermore loop 6, a general linear recurrence: step i needs
// all previous w values, so the inner loop parallelizes across threads with
// a barrier per step — n-1 barriers whose enclosed work grows linearly.
// This is the kernel where Baseline+ approaches WiSync at large n (Figure
// 8(c)/(f)): the loop body eventually dominates.
func Livermore6(cfg config.Config, n int) (Result, []float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	w := seqVector(n, 13)
	bm := seqVector(n*8, 17) // b(k,i) sampled row-wise
	wBase := m.AllocArray(n)
	bBase := m.AllocArray(n * 8)
	partials := make([]float64, cfg.Cores)

	m.SpawnAll(func(t *core.Thread) {
		for i := 1; i < n; i++ {
			lo, hi := chunk(i, t.Core, cfg.Cores)
			var acc float64
			for k := lo; k < hi; k++ {
				acc += bm[(k*7+i)%(n*8)] * w[i-k-1]
			}
			partials[t.Core] = acc
			if hi > lo {
				// b(k,i) and w(i-k-1) sweeps.
				readRange(t, bBase, lo, hi, 2)
				readRange(t, wBase, i-hi, i-lo, 2)
			}
			b.Wait(t)
			if t.Core == 0 {
				var s float64
				for _, p := range partials {
					s += p
				}
				for c := range partials {
					partials[c] = 0
				}
				w[i] += s
				t.Write(wBase+uint64(i)*8, 0)
			}
			b.Wait(t)
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return result(m, n-1), w
}

// seqVector builds a deterministic pseudo-random vector of small values.
func seqVector(n int, seed uint64) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(s>>60) / 16 // [0, 1)
	}
	return v
}
