package kernels

import (
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/syncprims"
)

// Livermore2 is Livermore loop 2, an excerpt from an incomplete Cholesky
// conjugate gradient: log2(n) wavefront phases, the k-th processing half
// the elements of the previous one, with a global barrier between phases.
// Small vectors are barrier-dominated; large vectors amortize. It returns
// the result vector alongside timing so tests can validate against the
// sequential reference.
func Livermore2(cfg config.Config, n int, passes int) (Result, []float64) {
	return Livermore2Exec(cfg, n, passes, ExecTask)
}

// Livermore2Exec is Livermore2 with an explicit execution mode.
func Livermore2Exec(cfg config.Config, n int, passes int, exec Exec) (Result, []float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	x := seqVector(2*n, 3)
	v := seqVector(2*n, 7)
	xBase := m.AllocArray(2 * n)
	vBase := m.AllocArray(2 * n)

	// Each phase computes into a staging buffer and publishes after a
	// barrier (the wavefront's first output index coincides with the last
	// element's read index, so in-place parallel updates would race; this
	// is the data alignment step of Sampson et al. [37]).
	staged := make([][]float64, cfg.Cores)

	// stage computes this thread's slice of the wavefront [lo, hi) of
	// ipnt into the staging buffer — the functional half, shared by both
	// execution modes.
	stage := func(core, ipnt, lo, hi int) {
		staged[core] = staged[core][:0]
		for e := lo; e < hi; e++ {
			k := ipnt + 1 + 2*e
			staged[core] = append(staged[core],
				x[k]-v[k]*x[k-1]-v[k+1]*x[k+1])
		}
	}
	// publish copies the staged slice into x after the barrier.
	publish := func(core, ipntp, lo, hi int) {
		for e := lo; e < hi; e++ {
			x[ipntp+e] = staged[core][e-lo]
		}
	}

	if exec == ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			for pass := 0; pass < passes; pass++ {
				ii := n
				ipntp := 0
				for ii > 1 {
					ipnt := ipntp
					ipntp += ii
					ii /= 2
					// Elements k = ipnt+1, ipnt+3, ... (ii of them);
					// writes land at i = ipntp, ipntp+1, ...
					lo, hi := chunk(ii, t.Core, cfg.Cores)
					stage(t.Core, ipnt, lo, hi)
					// Timing: reads of x and v over the strided range,
					// ~8 instructions per element.
					if hi > lo {
						readRange(t, xBase, ipnt+2*lo, ipnt+2*hi, 4)
						readRange(t, vBase, ipnt+2*lo, ipnt+2*hi, 4)
					}
					b.Wait(t)
					publish(t.Core, ipntp, lo, hi)
					if hi > lo {
						readRange(t, xBase, ipntp+lo, ipntp+hi, 1)
					}
					b.Wait(t)
				}
			}
		})
	} else {
		tb := syncprims.AsTaskBarrier(b)
		m.SpawnAllTasks(func(t *core.Task) {
			rr := newReadRanger(t)
			pass, ii, ipnt, ipntp, lo, hi := 0, 0, 0, 0, 0, 0
			var startPass, wave, afterStage func()
			startPass = func() {
				if pass == passes {
					t.Finish()
					return
				}
				pass++
				ii = n
				ipntp = 0
				wave()
			}
			wave = func() {
				if ii <= 1 {
					startPass()
					return
				}
				ipnt = ipntp
				ipntp += ii
				ii /= 2
				lo, hi = chunk(ii, t.Core, cfg.Cores)
				stage(t.Core, ipnt, lo, hi)
				if hi > lo {
					rlo, rhi := ipnt+2*lo, ipnt+2*hi
					rr.run(xBase, rlo, rhi, 4, func() {
						rr.run(vBase, rlo, rhi, 4, func() {
							tb.WaitTask(t, afterStage)
						})
					})
					return
				}
				tb.WaitTask(t, afterStage)
			}
			afterStage = func() {
				publish(t.Core, ipntp, lo, hi)
				if hi > lo {
					rr.run(xBase, ipntp+lo, ipntp+hi, 1, func() {
						tb.WaitTask(t, wave)
					})
					return
				}
				tb.WaitTask(t, wave)
			}
			startPass()
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return result(m, passes), x
}

// Livermore3 is Livermore loop 3, an inner product: each thread forms a
// partial sum over its chunk, then a reduction combines the partials
// (fetch&add on the Broadcast Memory for WiSync; a coherent RMW for the
// wired machines) and a barrier closes each pass.
func Livermore3(cfg config.Config, n int, passes int) (Result, float64) {
	return Livermore3Exec(cfg, n, passes, ExecTask)
}

// Livermore3Exec is Livermore3 with an explicit execution mode.
func Livermore3Exec(cfg config.Config, n int, passes int, exec Exec) (Result, float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	red := f.NewReducer(0)
	z := seqVector(n, 5)
	xv := seqVector(n, 11)
	zBase := m.AllocArray(n)
	xBase := m.AllocArray(n)
	partials := make([]float64, cfg.Cores)

	if exec == ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			lo, hi := chunk(n, t.Core, cfg.Cores)
			for pass := 0; pass < passes; pass++ {
				var q float64
				for k := lo; k < hi; k++ {
					q += z[k] * xv[k]
				}
				partials[t.Core] = q
				readRange(t, zBase, lo, hi, 1)
				readRange(t, xBase, lo, hi, 1)
				// The reduction variable carries the partial count in
				// fixed point; the functional sum is mirrored in
				// partials.
				red.Add(t, uint64(int64(q)))
				b.Wait(t)
			}
		})
	} else {
		tb := syncprims.AsTaskBarrier(b)
		m.SpawnAllTasks(func(t *core.Task) {
			rr := newReadRanger(t)
			lo, hi := chunk(n, t.Core, cfg.Cores)
			pass := 0
			var iter func()
			iter = func() {
				if pass == passes {
					t.Finish()
					return
				}
				pass++
				var q float64
				for k := lo; k < hi; k++ {
					q += z[k] * xv[k]
				}
				partials[t.Core] = q
				rr.run(zBase, lo, hi, 1, func() {
					rr.run(xBase, lo, hi, 1, func() {
						red.AddTask(t, uint64(int64(q)), func() {
							tb.WaitTask(t, iter)
						})
					})
				})
			}
			iter()
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return result(m, passes), sum
}

// Livermore6 is Livermore loop 6, a general linear recurrence: step i needs
// all previous w values, so the inner loop parallelizes across threads with
// a barrier per step — n-1 barriers whose enclosed work grows linearly.
// This is the kernel where Baseline+ approaches WiSync at large n (Figure
// 8(c)/(f)): the loop body eventually dominates.
func Livermore6(cfg config.Config, n int) (Result, []float64) {
	return Livermore6Exec(cfg, n, ExecTask)
}

// Livermore6Exec is Livermore6 with an explicit execution mode.
func Livermore6Exec(cfg config.Config, n int, exec Exec) (Result, []float64) {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	w := seqVector(n, 13)
	bm := seqVector(n*8, 17) // b(k,i) sampled row-wise
	wBase := m.AllocArray(n)
	bBase := m.AllocArray(n * 8)
	partials := make([]float64, cfg.Cores)

	// accumulate computes this thread's partial of step i; reduce is the
	// serial core-0 section between the two barriers. Shared by both
	// execution modes.
	accumulate := func(core, i, lo, hi int) {
		var acc float64
		for k := lo; k < hi; k++ {
			acc += bm[(k*7+i)%(n*8)] * w[i-k-1]
		}
		partials[core] = acc
	}
	reduce := func(i int) {
		var s float64
		for _, p := range partials {
			s += p
		}
		for c := range partials {
			partials[c] = 0
		}
		w[i] += s
	}

	if exec == ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			for i := 1; i < n; i++ {
				lo, hi := chunk(i, t.Core, cfg.Cores)
				accumulate(t.Core, i, lo, hi)
				if hi > lo {
					// b(k,i) and w(i-k-1) sweeps.
					readRange(t, bBase, lo, hi, 2)
					readRange(t, wBase, i-hi, i-lo, 2)
				}
				b.Wait(t)
				if t.Core == 0 {
					reduce(i)
					t.Write(wBase+uint64(i)*8, 0)
				}
				b.Wait(t)
			}
		})
	} else {
		tb := syncprims.AsTaskBarrier(b)
		m.SpawnAllTasks(func(t *core.Task) {
			rr := newReadRanger(t)
			i := 1
			var step, serial, next func()
			step = func() {
				if i >= n {
					t.Finish()
					return
				}
				lo, hi := chunk(i, t.Core, cfg.Cores)
				accumulate(t.Core, i, lo, hi)
				if hi > lo {
					rl, rh, wl, wh := lo, hi, i-hi, i-lo
					rr.run(bBase, rl, rh, 2, func() {
						rr.run(wBase, wl, wh, 2, func() {
							tb.WaitTask(t, serial)
						})
					})
					return
				}
				tb.WaitTask(t, serial)
			}
			serial = func() {
				if t.Core == 0 {
					reduce(i)
					t.Write(wBase+uint64(i)*8, 0, func() {
						tb.WaitTask(t, next)
					})
					return
				}
				tb.WaitTask(t, next)
			}
			next = func() { i++; step() }
			step()
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return result(m, n-1), w
}

// seqVector builds a deterministic pseudo-random vector of small values.
func seqVector(n int, seed uint64) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(s>>60) / 16 // [0, 1)
	}
	return v
}
