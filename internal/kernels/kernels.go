// Package kernels implements the synchronization-intensive kernels of the
// paper's evaluation (Table 3): the TightLoop barrier microbenchmark,
// Livermore loops 2, 3 and 6 [30] parallelized with barrier phases per
// Sampson et al. [37], and the FIFO/LIFO/ADD lock-free CAS kernels.
//
// The kernels are timing-directed with a functional mirror: array values
// live in ordinary Go slices (validated against sequential references in
// tests), while every array traversal charges real cache-line accesses
// through the simulated MOESI hierarchy and every synchronization operation
// runs on the real primitives of package syncprims. One simulated thread
// runs per core.
package kernels

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/mem"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
	"wisync/internal/wireless"
)

// result assembles a Result from a finished machine, capturing the
// machine-level protocol counters alongside the headline timing.
func result(m *core.Machine, iters int) Result {
	r := Result{
		Cfg:             m.Cfg,
		Cycles:          m.Now(),
		Iterations:      iters,
		DataChannelUtil: m.DataChannelUtilization(),
		Mem:             m.Mem.Stats,
	}
	if m.Net != nil {
		r.Net = m.Net.Stats
		r.MAC = m.Net.MACCounters()
		r.Energy = m.Net.Energy
	}
	r.Faults = m.Faults()
	return r
}

// Result reports one kernel execution.
type Result struct {
	Cfg        config.Config
	Cycles     sim.Time
	Iterations int
	// DataChannelUtil is the wireless Data channel utilization (0 for
	// wired configurations).
	DataChannelUtil float64
	// Mem and Net expose the machine's protocol counters. The golden-
	// conformance suite pins them exactly, so any change to transaction
	// ordering — not just to end-to-end cycle counts — is detected.
	// Net is zero on wired configurations.
	Mem mem.Stats
	Net wireless.Stats
	// MAC holds the Data channel's per-protocol arbitration counters
	// (grants, collisions, token waits, mode switches). It lives outside
	// Net so the golden rendering of wireless.Stats is independent of the
	// MAC catalog.
	MAC wireless.MACStats
	// Energy is the Data channel's transceiver energy ledger and
	// channel-error delivery counters (zero on wired configurations;
	// reliability counters zero under the default ideal channel).
	Energy wireless.EnergyStats
	// Faults lists the workload threads halted by a fail-stopped
	// transceiver (nil without a fault plan): the kernel completed in a
	// degraded configuration rather than livelocking.
	Faults []core.Fault
}

// CyclesPerIteration returns the average iteration time.
func (r Result) CyclesPerIteration() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Iterations)
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%d cores: %d cycles, %.0f cycles/iter",
		r.Cfg.Kind, r.Cfg.Cores, r.Cycles, r.CyclesPerIteration())
}

// wordsPerLine is how many 64-bit elements share a cache line.
const wordsPerLine = mem.LineBytes / 8

// Exec selects the workload-thread execution mode of a kernel run. It is
// core.Exec, shared with package apps: ExecTask runs workload threads in
// continuation form on the engine goroutine (the default and the fast
// path), ExecThread as blocking goroutines (the readable reference and the
// equivalence baseline). Both modes produce bit-identical simulated results
// (pinned by the equivalence suite in this package and the golden-
// conformance suite in package harness); they differ only in simulator
// wall-clock cost.
type Exec = core.Exec

const (
	ExecTask   = core.ExecTask
	ExecThread = core.ExecThread
)

// readRange charges cache accesses for a sequential sweep over elements
// [lo, hi) of the array starting at base, plus instrs per element of
// computation.
func readRange(t *core.Thread, base uint64, lo, hi, instrsPerElem int) {
	if hi <= lo {
		return
	}
	firstLine := base + uint64(lo)*8
	lastLine := base + uint64(hi-1)*8
	for a := firstLine &^ (mem.LineBytes - 1); a <= lastLine; a += mem.LineBytes {
		t.Read(a)
	}
	t.Instr((hi - lo) * instrsPerElem)
}

// readRanger is readRange in continuation form — the same line reads in
// the same order, then the same instruction charge, then `then` — as a
// recycled step struct: each task allocates one ranger and reuses it for
// every range sweep, so the steady state captures nothing per call (the
// closure form allocated a step closure, an onRead closure, and their
// shared capture record per range). A ranger runs one sweep at a time; the
// completion continuation may start the next sweep on the same ranger.
type readRanger struct {
	t      *core.Task
	a      uint64 // next line address
	last   uint64 // last line address
	instrs int    // instruction charge once the sweep completes
	then   func()
	used   bool // a sweep already ran; later runs are pool reuses

	onReadFn func(uint64)
}

func newReadRanger(t *core.Task) *readRanger {
	t.M.Eng.StepPoolMiss()
	r := &readRanger{t: t}
	r.onReadFn = r.onRead
	return r
}

// run charges cache accesses for a sequential sweep over elements [lo, hi)
// of the array starting at base, plus instrsPerElem instructions per
// element, then runs then.
func (r *readRanger) run(base uint64, lo, hi, instrsPerElem int, then func()) {
	if hi <= lo {
		then()
		return
	}
	if r.used {
		r.t.M.Eng.StepPoolHit()
	}
	r.used = true
	r.a = (base + uint64(lo)*8) &^ (mem.LineBytes - 1)
	r.last = base + uint64(hi-1)*8
	r.instrs = (hi - lo) * instrsPerElem
	r.then = then
	r.step()
}

func (r *readRanger) onRead(uint64) { r.step() }

func (r *readRanger) step() {
	if r.a > r.last {
		then := r.then
		r.then = nil
		r.t.Instr(r.instrs)
		then()
		return
	}
	addr := r.a
	r.a += mem.LineBytes
	r.t.Read(addr, r.onReadFn)
}

// TightLoop runs the paper's TightLoop kernel (Section 6): every thread
// sums a 50-element private array into a local variable, then synchronizes
// at a global barrier, repeated iters times. It reports cycles/iteration —
// the Figure 7 metric.
func TightLoop(cfg config.Config, iters int) Result {
	return TightLoopExec(cfg, iters, ExecTask)
}

// TightLoopExec is TightLoop with an explicit execution mode.
func TightLoopExec(cfg config.Config, iters int, exec Exec) Result {
	const elems = 50
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	b := f.NewBarrier(nil)
	// Per-thread private arrays on distinct lines.
	arrays := make([]uint64, cfg.Cores)
	for i := range arrays {
		arrays[i] = m.AllocArray(elems)
	}
	if exec == ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			for it := 0; it < iters; it++ {
				// Sum the private array: 2 instructions (load+add) per
				// element on the 2-issue core, one line fetch per 8
				// elements (L1 hits after the first iteration).
				readRange(t, arrays[t.Core], 0, elems, 2)
				b.Wait(t)
			}
		})
	} else {
		tb := syncprims.AsTaskBarrier(b)
		m.SpawnAllTasks(func(t *core.Task) {
			rr := newReadRanger(t)
			it := 0
			var iter, afterRead func()
			iter = func() {
				if it == iters {
					t.Finish()
					return
				}
				it++
				rr.run(arrays[t.Core], 0, elems, 2, afterRead)
			}
			afterRead = func() { tb.WaitTask(t, iter) }
			iter()
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return result(m, iters)
}

// chunk returns the [lo, hi) slice of an n-element range assigned to
// worker w of p workers.
func chunk(n, w, p int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}
