package sim

import "testing"

// BenchmarkScheduleDrain measures raw event-queue throughput: callback
// events pushed at scattered timestamps, then drained in order. ns/op is
// the cost of one schedule + one dispatch; allocs/op must stay 0 — events
// are stored by value in the queue's reused slice.
func BenchmarkScheduleDrain(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		for j := 0; j < batch; j++ {
			// Scattered but deterministic offsets exercise real heap
			// movement rather than FIFO order.
			e.Schedule(Time(j*13%257), nop)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcSwitch measures a full process context switch: two
// processes whose sleep intervals interleave, so every Sleep misses the
// zero-handoff fast path and the control token crosses goroutines once per
// operation.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	body := func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(2)
		}
	}
	e.Go("even", body)
	e.Go("odd", func(p *Proc) {
		p.Sleep(1)
		body(p)
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepFastPath measures the zero-handoff Sleep: a single process
// whose wake-up is always the next event, so Sleep collapses into an
// inline clock advance — no channel operation, no scheduler trip, no
// allocation.
func BenchmarkSleepFastPath(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	e.Go("solo", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(2)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
