package sim

import "testing"

// BenchmarkScheduleDrain measures raw event-queue throughput: callback
// events pushed at scattered timestamps, then drained in order. ns/op is
// the cost of one schedule + one dispatch; allocs/op must stay 0 — events
// are stored by value in the queue's reused slices. The variants pin both
// levels of the composite queue and their merge:
//
//   - wheel: offsets within the wheel horizon, the simulator's dominant
//     2–110-cycle sleep regime — O(1) bucket pushes, bitmap-scan pops.
//   - heap: offsets past the horizon, so every event takes the 4-ary heap
//     fallback and crosses into the wheel window only as the clock chases
//     it (pure far-future scheduling).
//   - mixed: offsets straddling the horizon, exercising the wheel/heap
//     min-merge on every pop.
func BenchmarkScheduleDrain(b *testing.B) {
	run := func(span int, base Time) func(b *testing.B) {
		return func(b *testing.B) {
			e := NewEngine(1)
			nop := func() {}
			const batch = 512
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n += batch {
				for j := 0; j < batch; j++ {
					// Scattered but deterministic offsets exercise real
					// queue movement rather than FIFO order.
					e.Schedule(base+Time(j*13%span), nop)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("wheel", run(251, 0))
	b.Run("heap", run(1021, wheelSpan))
	b.Run("mixed", run(1021, 0))
}

// BenchmarkProcSwitch measures a full process context switch: two
// processes whose sleep intervals interleave, so every Sleep misses the
// zero-handoff fast path and the control token crosses goroutines once per
// operation.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	body := func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(2)
		}
	}
	e.Go("even", body)
	e.Go("odd", func(p *Proc) {
		p.Sleep(1)
		body(p)
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepFastPath measures the zero-handoff Sleep: a single process
// whose wake-up is always the next event, so Sleep collapses into an
// inline clock advance — no channel operation, no scheduler trip, no
// allocation.
func BenchmarkSleepFastPath(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	e.Go("solo", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(2)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
