package sim

// This file holds the continuation ("async") mirrors of the blocking
// process primitives in syncutil.go. Hardware models written as engine-
// scheduled continuations — chains of callback events instead of a
// goroutine that sleeps its way through a transaction — use these where
// blocking code uses WaitQueue and Resource.
//
// The mirrors are built so that converting a blocking model to
// continuation form is bit-identical by construction. The blocking
// primitives consume exactly one event-queue sequence number per suspension
// (Sleep and Wake each schedule one dispatch; a free Acquire and a busy
// enqueue schedule none), and the mirrors consume sequence numbers at
// exactly the same execution points: a scheduled callback and a process
// dispatch with the same delay produce events with identical
// (time, priority, sequence) keys, so the engine pops them — and therefore
// runs the model's next step — at exactly the same position in the total
// event order. Only the goroutine that executes the step changes, and with
// it the cost: a continuation step is a heap push and a function call
// (~50 ns) where a forced process switch pays a Go-scheduler park/unpark
// (~700 ns). See the package comment's execution-model section.

// AsyncWaitQueue is the continuation mirror of WaitQueue: a FIFO list of
// completion callbacks blocked on a condition. Waking schedules each
// callback as an ordinary engine event after the given delay — the same
// (time, priority, sequence) position at which WaitQueue would have
// dispatched a parked process. The zero value is an empty queue ready to
// use; like WaitQueue, the backing array is a head-indexed deque reused
// across wake/wait cycles.
type AsyncWaitQueue struct {
	fns  []func()
	head int
}

// Wait enqueues then to run when the queue is woken.
func (q *AsyncWaitQueue) Wait(then func()) { q.fns = append(q.fns, then) }

// Len returns the number of waiting continuations.
func (q *AsyncWaitQueue) Len() int { return len(q.fns) - q.head }

// WakeAll schedules every waiter to run after d cycles, in FIFO order.
func (q *AsyncWaitQueue) WakeAll(e *Engine, d Time) {
	for i := q.head; i < len(q.fns); i++ {
		e.Schedule(d, q.fns[i])
		q.fns[i] = nil
	}
	q.fns = q.fns[:0]
	q.head = 0
}

// WakeOne schedules the oldest waiter to run after d cycles. It reports
// whether a continuation was woken.
func (q *AsyncWaitQueue) WakeOne(e *Engine, d Time) bool {
	if q.Len() == 0 {
		return false
	}
	fn := q.fns[q.head]
	q.fns[q.head] = nil
	q.head++
	q.fns, q.head = compact(q.fns, q.head)
	e.Schedule(d, fn)
	return true
}

// AsyncResource is the continuation mirror of Resource: a FIFO mutual-
// exclusion resource in simulation time whose waiters are completion
// callbacks instead of parked processes. The zero value is free.
//
// Grant positions match Resource exactly: a free Acquire runs `then`
// inline (where the blocking Acquire returned without an event), and a
// Release with waiters schedules the next grant at the release cycle (where
// the blocking Release woke the next parked process with Wake(0)).
type AsyncResource struct {
	held bool
	q    AsyncWaitQueue
	// BusyCycles accumulates total time the resource was held, for
	// utilization statistics. Updated on Release.
	BusyCycles Time
	acquiredAt Time
}

// Acquire grants the resource to the caller and runs then at the grant
// cycle: immediately (inline, no event) when the resource is free,
// otherwise as a scheduled continuation when a Release hands it over.
// Ownership is granted in request order.
func (r *AsyncResource) Acquire(e *Engine, then func()) {
	if !r.held {
		r.held = true
		r.acquiredAt = e.now
		then()
		return
	}
	r.q.Wait(then)
}

// Release hands the resource to the oldest waiter (whose continuation runs
// as an event at the current cycle), or frees it. Only the holder's
// continuation chain may call Release.
func (r *AsyncResource) Release(e *Engine) {
	if !r.held {
		panic("sim: Release of a free AsyncResource")
	}
	r.BusyCycles += e.now - r.acquiredAt
	if r.q.Len() == 0 {
		r.held = false
		return
	}
	// The next holder's grant event runs at this same cycle, so charging
	// its hold time from now matches the blocking Resource, which set
	// acquiredAt when the woken process resumed in the release cycle.
	r.acquiredAt = e.now
	r.q.WakeOne(e, 0)
}

// QueueLen returns the number of continuations waiting for the resource.
func (r *AsyncResource) QueueLen() int { return r.q.Len() }

// Held reports whether the resource is currently owned.
func (r *AsyncResource) Held() bool { return r.held }
