// Package sim implements a deterministic, single-threaded discrete-event
// simulation engine with cooperative processes.
//
// The engine advances a cycle-resolution clock and executes events in
// (time, priority, sequence) order, so identical inputs always produce
// identical simulations. Hardware models are written either as plain
// callback events or as processes: goroutines that run one at a time,
// hand control back to the engine whenever they sleep or park, and are
// resumed by scheduled events. The engine owns all randomness through a
// seeded splitmix64 generator, keeping collision backoff and workload
// jitter reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a simulation timestamp in processor cycles (1 ns at 1 GHz).
type Time uint64

// Priority orders events that fire on the same cycle. Lower runs first.
// Most events use PrioNormal; arbiters that must observe every request
// registered during a cycle run at PrioLate.
type Priority int8

const (
	// PrioNormal is the default event priority.
	PrioNormal Priority = 0
	// PrioLate runs after all same-cycle PrioNormal events. Channel
	// arbiters use it so that every transmit request registered during a
	// cycle participates in that cycle's contention slot.
	PrioLate Priority = 1
)

type event struct {
	t    Time
	prio Priority
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *Rand
	handoff chan struct{}
	procs   map[*Proc]struct{}
	current *Proc
	pv      any
	pstack  []byte
	stopped bool
}

// NewEngine returns an engine whose random stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:     NewRand(seed),
		handoff: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Schedule runs fn after d cycles at normal priority.
func (e *Engine) Schedule(d Time, fn func()) { e.ScheduleAt(e.now+d, PrioNormal, fn) }

// ScheduleAt runs fn at absolute time t with the given priority. Scheduling
// in the past is an error and panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(t Time, prio Priority, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{t: t, prio: prio, seq: e.seq, fn: fn})
}

// DeadlockError reports that the event queue drained while processes were
// still parked, i.e. the simulated system deadlocked.
type DeadlockError struct {
	// Parked lists "name: reason" for every stuck process.
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d process(es) parked: %v", len(d.Parked), d.Parked)
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes are still alive afterwards, and propagates any panic raised
// inside a process.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		e.step()
	}
	return e.checkDeadlock()
}

// RunUntil executes all events with timestamp <= t, then advances the clock
// to t. Processes still running are left parked; call Shutdown to reclaim
// their goroutines.
func (e *Engine) RunUntil(t Time) error {
	for len(e.events) > 0 && e.events[0].t <= t {
		e.step()
		if e.pv != nil {
			e.rethrow()
		}
	}
	if e.now < t {
		e.now = t
	}
	return nil
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	e.now = ev.t
	ev.fn()
	if e.pv != nil {
		e.rethrow()
	}
}

func (e *Engine) rethrow() {
	pv, st := e.pv, e.pstack
	e.pv, e.pstack = nil, nil
	panic(fmt.Sprintf("sim: process panic: %v\n%s", pv, st))
}

func (e *Engine) checkDeadlock() error {
	if len(e.procs) == 0 {
		return nil
	}
	var parked []string
	for p := range e.procs {
		parked = append(parked, p.name+": "+p.reason)
	}
	sort.Strings(parked)
	return &DeadlockError{Parked: parked}
}

// Shutdown terminates every live process goroutine (running their defers)
// and marks the engine stopped. It must be called after RunUntil when
// processes may still be alive, or the goroutines leak.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.handoff
	}
	e.procs = make(map[*Proc]struct{})
	e.pv, e.pstack = nil, nil
	e.stopped = true
}

// Stopped reports whether Shutdown has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Live returns the number of processes that have been started and have not
// yet finished.
func (e *Engine) Live() int { return len(e.procs) }

func (e *Engine) dispatch(p *Proc) {
	if p.done || p.killed {
		return
	}
	if !p.parked {
		panic("sim: dispatch of a process that is not parked (double wake?)")
	}
	prev := e.current
	e.current = p
	p.parked = false
	p.wakeQueued = false
	p.resume <- struct{}{}
	<-e.handoff
	e.current = prev
	if p.done {
		delete(e.procs, p)
	}
}
