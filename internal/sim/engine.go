// Package sim implements a deterministic, single-threaded discrete-event
// simulation engine with cooperative processes.
//
// # Execution model
//
// The engine advances a cycle-resolution clock and executes events in
// (time, priority, sequence) order, so identical inputs always produce
// identical simulations. Events live in a two-level queue (see "Timing
// wheel" below); scheduling one is an append into a reused slice, never a
// per-event heap allocation. Hardware models are written in one of two
// styles:
//
//   - Callback events (Schedule/ScheduleAt): plain functions the engine
//     invokes inline from its run loop. This is the fast path — one event
//     costs a heap push, a pop, and a function call.
//
//   - Processes (Go): goroutines with blocking control flow (Sleep, Park,
//     Resource.Acquire) for models whose logic does not flatten naturally
//     into callbacks — OS cases, multi-step protocol transactions. Exactly
//     one process runs at a time, enforced by a single control token.
//
// Process switches ride the Go scheduler, which makes them ~100x more
// expensive than callbacks, so the engine avoids them at three levels:
//
//  1. Zero-handoff Sleep: when a sleeping process's own wake-up would be
//     the very next event popped (nothing precedes it in the (time,
//     priority, sequence) order), the process advances the clock inline
//     and keeps running without parking. Chains of Sleeps with no
//     interleaved foreign events therefore cost one function call each
//     instead of two channel sends and a scheduler round trip. The fast
//     path is bounded by the run horizon (RunUntil's limit), so a process
//     can never advance the clock past the window the caller asked for.
//
//  2. Direct baton passing: a process that must block runs the scheduler
//     loop itself (runEvents), executing callback events inline and
//     handing the token straight to the next process over its resume
//     channel — one rendezvous per switch instead of two, because the
//     engine goroutine stays parked while processes pass control among
//     themselves.
//
//  3. Self-dispatch: if the blocking process pops its own wake-up (an
//     inline callback — an arbiter grant, an invalidation — re-woke it),
//     it just keeps running; no channel operation at all.
//
// All three are order-preserving by construction: they only short-circuit
// the exact dispatch the event queue would have performed next, so results
// are bit-identical to a naive engine-centric loop.
//
// # Continuations
//
// Multi-step protocol transactions used to be the stronghold of the
// process style: a directory transaction sleeps several times (request
// flight, queueing, hold, reply), and under contention every one of those
// sleeps is a forced process switch. Such models are instead written as
// engine-scheduled continuation chains: each suspension schedules the next
// step as a plain callback event, and the initiating process — which must
// suspend anyway, because its thread is architecturally stalled — parks
// once and is dispatched directly by the chain's final reply event.
// AsyncWaitQueue and AsyncResource (async.go) are the continuation mirrors
// of WaitQueue and Resource for blocking inside such chains, and
// wireless.Network.SendAsync/SendParked are the channel's equivalents.
//
// The two styles compose bit-identically by construction, so a model can
// be converted from blocking to continuation form without moving a single
// simulated result: every blocking suspension consumes exactly one event
// sequence number at the point it blocks (Sleep and Wake schedule one
// dispatch; a free Acquire and a busy enqueue schedule none), and the
// mirrors consume sequence numbers at the same execution points, so every
// step of the converted model runs at exactly the same (time, priority,
// sequence) position as the blocking original — only on the engine-driving
// goroutine rather than its own. The golden-conformance suite in package
// harness pins this equivalence end to end.
//
// # Tasks
//
// Workload threads can run in the same continuation form. A Task (task.go)
// is the goroutine-free counterpart of a Proc: it is spawned with GoTask at
// the same sequence position as Go, advances exclusively through completion
// callbacks (SleepThen, the async hardware-model mirrors, WaitQueue.WaitFn),
// and retires with Finish. A workload of Tasks runs entirely on the
// goroutine driving the engine — zero process switches — while consuming
// sequence numbers at exactly the points its blocking twin would, so the
// two execution modes are interchangeable without moving a simulated
// result.
//
// Continuation chains get the same inline collapse Sleep enjoys: SleepThen
// has a zero-handoff fast path that, when the continuation would be the
// very next event popped, skips the event queue entirely — the clock
// advances inline and the continuation lands in the engine's trampoline
// slot (cont), which the scheduler loop drains after each callback event.
// The trampoline keeps arbitrarily long uncontended chains at constant
// stack depth: each continuation returns to the scheduler before the next
// one runs, so continuation-form loops never recurse.
//
// # Timing wheel
//
// Event storage is hierarchical: a small timing wheel of one-cycle buckets
// in front of a typed 4-ary min-heap (queue.go). The simulator's sleeps
// are overwhelmingly short — cache round trips, channel slots, backoff
// windows and barrier episodes land 2–110 cycles ahead — so almost every
// event is scheduled within the wheel horizon (256 cycles) and costs an
// O(1) bucket append and a bitmap-scan pop, no comparisons. The rare
// far-future event (an application's long compute phase, an open-ended run
// horizon) falls back to the heap, and first/pop merge the two levels by
// comparing their minima, so the composite dispatches in exactly the
// (time, priority, sequence) order a single heap would — the fuzz/oracle
// suite in queue_fuzz_test.go drives both against container/heap,
// including events that cross the horizon between push and pop and
// same-tick priority ties. Within a bucket, PrioNormal and PrioLate events
// live in separate FIFOs (sequence numbers are monotone, so FIFO order is
// dispatch order). SchedStats reports the wheel-hit / heap-fallback split,
// surfaced by wisync-bench -v.
//
// # Determinism
//
// The engine owns all randomness through a seeded splitmix64 generator,
// keeping collision backoff and workload jitter reproducible. Every event
// gets a unique, monotonically increasing sequence number, so the event
// order is a strict total order: same seed, same schedule, same results —
// regardless of whether sleeps take the fast or slow path, and regardless
// of how many engines run concurrently (engines share no state; see
// package harness for the sweep-level worker pool built on that).
package sim

import (
	"fmt"
	"sort"
)

// Time is a simulation timestamp in processor cycles (1 ns at 1 GHz).
type Time uint64

// maxTime is the largest representable timestamp, used as the run limit
// when no horizon applies.
const maxTime = ^Time(0)

// Priority orders events that fire on the same cycle. Lower runs first.
// Most events use PrioNormal; arbiters that must observe every request
// registered during a cycle run at PrioLate.
type Priority int8

const (
	// PrioNormal is the default event priority.
	PrioNormal Priority = 0
	// PrioLate runs after all same-cycle PrioNormal events. Channel
	// arbiters use it so that every transmit request registered during a
	// cycle participates in that cycle's contention slot.
	PrioLate Priority = 1
)

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now Time
	q   eventQueue
	seq uint64
	// limit is the inclusive ceiling for the Sleep fast path: a process
	// may only self-advance the clock to times t <= limit, the horizon of
	// the innermost Run/RunUntil (matching runEvents' pop condition).
	limit   Time
	rng     *Rand
	handoff chan struct{}
	procs   map[*Proc]struct{}
	tasks   map[*Task]struct{}
	// cont is the trampoline slot for the SleepThen fast path: a
	// continuation that must run immediately after the current event, at
	// constant stack depth. runEvents drains it after every callback event.
	cont    func()
	pv      any
	pstack  []byte
	stopped bool
	// sh is the sharded local-event store (shard.go), nil in the default
	// unsharded engine. Core-local timers routed through LocalSleepThen
	// live there instead of q; runEvents merges the two populations in
	// exact (time, priority, sequence) order.
	sh *shardSet
	// Recycled-step pool counters, reported by workload layers through
	// StepPoolHit/StepPoolMiss.
	stepPoolHits   uint64
	stepPoolMisses uint64
}

// NewEngine returns an engine whose random stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:     NewRand(seed),
		limit:   maxTime,
		handoff: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
		tasks:   make(map[*Task]struct{}),
	}
}

// SchedStats are the engine's scheduling-internals counters: how events were
// stored (timing wheel vs heap fallback) and how the workload layers'
// recycled continuation steps were obtained (pool reuse vs fresh
// allocation). They describe simulator mechanics, not simulated behavior —
// two execution modes of the same workload produce identical simulated
// results but different SchedStats — and exist so sweeps are diagnosable
// without a profiler (wisync-bench -v).
type SchedStats struct {
	// WheelEvents counts events stored in the timing wheel (scheduled
	// within wheelSpan cycles of the clock).
	WheelEvents uint64
	// HeapEvents counts far-future events that fell back to the 4-ary heap.
	HeapEvents uint64
	// StepPoolHits counts recycled-step reuses reported by workload layers
	// via StepPoolHit; StepPoolMisses counts the fresh allocations.
	StepPoolHits   uint64
	StepPoolMisses uint64
	// Sharded-mode counters, zero in the unsharded engine. HorizonAdvances
	// counts drain rounds (conservative horizon computations that moved
	// shard heaps into sorted outboxes); CrossShardMsgs counts local events
	// handed across the shard boundary into the globally ordered dispatch;
	// BarrierStalls counts shard-rounds where a shard had nothing to
	// contribute inside the horizon while a sibling did.
	HorizonAdvances uint64
	CrossShardMsgs  uint64
	BarrierStalls   uint64
}

// Add accumulates other into s, for aggregating counters across sweep
// points.
func (s *SchedStats) Add(other SchedStats) {
	s.WheelEvents += other.WheelEvents
	s.HeapEvents += other.HeapEvents
	s.StepPoolHits += other.StepPoolHits
	s.StepPoolMisses += other.StepPoolMisses
	s.HorizonAdvances += other.HorizonAdvances
	s.CrossShardMsgs += other.CrossShardMsgs
	s.BarrierStalls += other.BarrierStalls
}

// SchedStats returns the engine's scheduling counters.
func (e *Engine) SchedStats() SchedStats {
	s := SchedStats{
		WheelEvents:    e.q.wheelHits,
		HeapEvents:     e.q.heapFallbacks,
		StepPoolHits:   e.stepPoolHits,
		StepPoolMisses: e.stepPoolMisses,
	}
	if e.sh != nil {
		s.HorizonAdvances = e.sh.drains
		s.CrossShardMsgs = e.sh.dispatched
		s.BarrierStalls = e.sh.stalls
	}
	return s
}

// StepPoolHit records one recycled-step reuse. Workload layers that keep
// per-task step structs (kernels, apps, core's recycled operations) report
// through these so -v sweeps can confirm the steady state allocates
// nothing.
func (e *Engine) StepPoolHit() { e.stepPoolHits++ }

// StepPoolMiss records one fresh step allocation.
func (e *Engine) StepPoolMiss() { e.stepPoolMisses++ }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending returns the number of scheduled events, for instrumentation.
func (e *Engine) Pending() int {
	n := e.q.len()
	if e.sh != nil {
		n += e.sh.pending()
	}
	return n
}

// Schedule runs fn after d cycles at normal priority.
func (e *Engine) Schedule(d Time, fn func()) { e.ScheduleAt(e.now+d, PrioNormal, fn) }

// ScheduleAt runs fn at absolute time t with the given priority. Scheduling
// in the past is an error and panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(t Time, prio Priority, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	key := e.seq
	if prio == PrioLate {
		key |= prioBit
	}
	e.q.push(event{t: t, key: key, fn: fn}, e.now)
}

// scheduleProc enqueues a dispatch of p after d cycles. Unlike Schedule it
// captures no closure: the event record carries the process pointer, so the
// Sleep/Wake hot path is allocation-free.
func (e *Engine) scheduleProc(d Time, p *Proc) {
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: wake of %s after %d cycles overflows the clock", p.name, d))
	}
	e.seq++
	e.q.push(event{t: t, key: e.seq, p: p}, e.now)
}

// DeadlockError reports that the event queue drained while processes were
// still parked, i.e. the simulated system deadlocked.
type DeadlockError struct {
	// Parked lists "name: reason" for every stuck process.
	Parked []string
	// Now is the simulated time at which the queue drained.
	Now Time
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d, %d process(es) parked: %v", d.Now, len(d.Parked), d.Parked)
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes are still alive afterwards, and propagates any panic raised
// inside a process.
func (e *Engine) Run() error {
	e.limit = maxTime
	for e.runEvents(nil) == tokenPassed {
		<-e.handoff
		if e.pv != nil {
			e.rethrow()
		}
	}
	if e.pv != nil {
		e.rethrow()
	}
	return e.checkDeadlock()
}

// RunBounded executes all events with timestamp <= t but, unlike RunUntil,
// leaves the clock at the last executed event. Guarded runs (core's
// budget/watchdog loop) chunk the simulation with it so that a run which
// completes mid-chunk finishes at exactly the same cycle an unchunked Run
// would have — event order and final time are bit-identical by
// construction.
func (e *Engine) RunBounded(t Time) error {
	e.limit = t
	for e.runEvents(nil) == tokenPassed {
		<-e.handoff
		if e.pv != nil {
			e.limit = maxTime
			e.rethrow()
		}
	}
	e.limit = maxTime
	return nil
}

// RunUntil executes all events with timestamp <= t, then advances the clock
// to t. Processes still running are left parked; call Shutdown to reclaim
// their goroutines.
func (e *Engine) RunUntil(t Time) error {
	e.limit = t
	for e.runEvents(nil) == tokenPassed {
		<-e.handoff
		if e.pv != nil {
			e.limit = maxTime
			e.rethrow()
		}
	}
	e.limit = maxTime
	if e.now < t {
		e.now = t
	}
	return nil
}

// tokenState reports where the control token went after a runEvents call.
type tokenState uint8

const (
	// tokenDone: the caller keeps the token — the queue is drained, the
	// next event lies past the run horizon, or a process panic is pending
	// and must travel to the engine for rethrow.
	tokenDone tokenState = iota
	// tokenPassed: the token was handed to another process over its resume
	// channel; the caller must block until woken.
	tokenPassed
	// tokenSelf: the next event was the calling process's own wake-up; the
	// caller keeps the token and simply continues running.
	tokenSelf
)

// runEvents is the scheduler loop. The caller must hold the control token:
// exactly one goroutine — the engine's, or that of a process that is about
// to block — executes engine code at any instant, so no locking is needed
// anywhere in the simulator.
//
// Callback events are run inline on the caller's goroutine. When a process
// must run, the token is handed directly over its resume channel: direct
// proc-to-proc baton passing makes a context switch one channel rendezvous
// instead of two, because the engine goroutine stays parked while processes
// pass control among themselves. self is the calling process (nil for the
// engine loop); popping self's own wake-up returns tokenSelf instead of
// deadlocking on a send-to-self, and costs no channel operation at all.
func (e *Engine) runEvents(self *Proc) tokenState {
	for {
		if e.pv != nil {
			return tokenDone
		}
		// Sharded mode: dispatch the earliest local event whenever it
		// precedes the global queue head. Local events are plain callbacks
		// (never process dispatches), so the proc logic below is untouched.
		if e.sh != nil && e.sh.qCount+e.sh.outCount != 0 && e.dispatchLocal() {
			continue
		}
		head := e.q.first()
		if head == nil || head.t > e.limit {
			return tokenDone
		}
		ev := e.q.pop()
		e.now = ev.t
		if ev.p == nil {
			ev.fn()
			// Trampoline: drain continuations parked by the SleepThen
			// fast path. Each runs with the stack already unwound to
			// here, so continuation-form loops never recurse.
			for e.cont != nil {
				fn := e.cont
				e.cont = nil
				fn()
			}
			continue
		}
		p := ev.p
		if p.done || p.killed {
			continue
		}
		if !p.parked {
			panic("sim: dispatch of a process that is not parked (double wake?)")
		}
		p.parked = false
		p.wakeQueued = false
		if p == self {
			return tokenSelf
		}
		p.resume <- struct{}{}
		return tokenPassed
	}
}

func (e *Engine) rethrow() {
	pv, st := e.pv, e.pstack
	e.pv, e.pstack = nil, nil
	panic(fmt.Sprintf("sim: process panic: %v\n%s", pv, st))
}

func (e *Engine) checkDeadlock() error {
	if len(e.procs) == 0 && len(e.tasks) == 0 {
		return nil
	}
	return &DeadlockError{Parked: e.Breadcrumbs(), Now: e.now}
}

// CheckDeadlock reports a *DeadlockError if any process or task is still
// alive, and nil otherwise. Run calls it automatically when the queue
// drains; watchdog/budget guards call it explicitly after RunUntil to tell
// a genuine deadlock (queue empty, threads parked) from a livelock or
// budget overrun (events still flowing).
func (e *Engine) CheckDeadlock() error { return e.checkDeadlock() }

// Breadcrumbs returns one "name: reason" line per live process or task, in
// sorted order — the last-operation trail used in deadlock, livelock, and
// budget diagnostics. It must be called before Shutdown, which clears the
// live sets.
func (e *Engine) Breadcrumbs() []string {
	var parked []string
	for p := range e.procs {
		parked = append(parked, p.name+": "+p.reason)
	}
	for t := range e.tasks {
		parked = append(parked, t.name+": "+t.reasonLine())
	}
	sort.Strings(parked)
	return parked
}

// Shutdown terminates every live process goroutine (running their defers)
// and marks the engine stopped. It must be called after RunUntil when
// processes may still be alive, or the goroutines leak.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.handoff
	}
	e.procs = make(map[*Proc]struct{})
	e.tasks = make(map[*Task]struct{})
	e.pv, e.pstack = nil, nil
	if e.sh != nil {
		e.sh.clearAll()
	}
	e.stopped = true
}

// Stopped reports whether Shutdown has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Live returns the number of processes and tasks that have been started
// and have not yet finished.
func (e *Engine) Live() int { return len(e.procs) + len(e.tasks) }
