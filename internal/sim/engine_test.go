package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestSameCyclePriority(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.ScheduleAt(5, PrioLate, func() { got = append(got, "late") })
	e.ScheduleAt(5, PrioNormal, func() { got = append(got, "normal") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "normal" || got[1] != "late" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(3, PrioNormal, func() {})
	})
	_ = e.Run()
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Go("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(7)
		times = append(times, p.Now())
		p.Sleep(0)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 0 || times[1] != 7 || times[2] != 7 {
		t.Fatalf("times = %v", times)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i))
			got = append(got, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0@0", "p1@1", "p2@2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		var res Resource
		for i := 0; i < 5; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Time(e.Rand().Intn(4)))
				res.Acquire(p, "res")
				log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
				p.Sleep(3)
				res.Release(p)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine(1)
	var p1 *Proc
	var woke Time
	p1 = e.Go("waiter", func(p *Proc) {
		p.Park("waiting for signal")
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(20)
		p1.Wake(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 25 {
		t.Fatalf("woke at %d, want 25", woke)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Go("stuck", func(p *Proc) { p.Park("never woken") })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck: never woken" {
		t.Fatalf("Parked = %v", de.Parked)
	}
	e.Shutdown()
}

func TestDoubleWakePanics(t *testing.T) {
	e := NewEngine(1)
	var p1 *Proc
	p1 = e.Go("waiter", func(p *Proc) { p.Park("x") })
	e.Go("waker", func(p *Proc) {
		p.Sleep(1)
		p1.Wake(0)
		defer func() {
			if recover() == nil {
				t.Error("double Wake did not panic")
			}
		}()
		p1.Wake(0)
	})
	defer func() { recover() }()
	_ = e.Run()
}

func TestRunUntilAndShutdown(t *testing.T) {
	e := NewEngine(1)
	var steps int
	var cleaned bool
	e.Go("worker", func(p *Proc) {
		defer func() { cleaned = true }()
		for {
			p.Sleep(10)
			steps++
		}
	})
	if err := e.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
	if e.Now() != 55 {
		t.Fatalf("Now = %d, want 55", e.Now())
	}
	e.Shutdown()
	if !cleaned {
		t.Fatal("defer did not run on Shutdown")
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown", e.Live())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Go("bomb", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate")
		}
	}()
	_ = e.Run()
}

func TestWaitQueue(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // deterministic enqueue order
			q.Wait(p, "queued")
			order = append(order, p.Name())
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(10)
		if q.Len() != 3 {
			t.Errorf("Len = %d, want 3", q.Len())
		}
		q.WakeAll(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestWaitQueueWakeOneAndRemove(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var woken []string
	procs := make([]*Proc, 3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i] = e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i))
			q.Wait(p, "queued")
			woken = append(woken, p.Name())
		})
	}
	e.Go("ctl", func(p *Proc) {
		p.Sleep(10)
		if !q.Remove(procs[0]) {
			t.Error("Remove(w0) = false")
		}
		procs[0].Wake(0) // removed waiters must be woken manually
		q.WakeOne(0)     // wakes w1
		q.WakeOne(0)     // wakes w2
		if q.WakeOne(0) {
			t.Error("WakeOne on empty queue = true")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if woken[i] != want[i] {
			t.Fatalf("woken = %v, want %v", woken, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	var r Resource
	var order []string
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // request order p0..p3
			r.Acquire(p, "bank")
			order = append(order, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
			p.Sleep(10)
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0@0", "p1@10", "p2@20", "p3@30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if r.BusyCycles != 40 {
		t.Fatalf("BusyCycles = %d, want 40", r.BusyCycles)
	}
}

func TestResourceReleaseByNonOwnerPanics(t *testing.T) {
	e := NewEngine(1)
	var r Resource
	e.Go("owner", func(p *Proc) {
		r.Acquire(p, "res")
		p.Sleep(5)
		r.Release(p)
	})
	e.Go("thief", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("Release by non-owner did not panic")
			}
		}()
		r.Release(p)
	})
	defer func() { recover() }()
	_ = e.Run()
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(7).Uint64() == NewRand(8).Uint64() {
		t.Fatal("different seeds produced identical first value")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(3)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.25, 1)
		if v < 75 || v > 125 {
			t.Fatalf("Jitter = %v outside [75,125]", v)
		}
	}
	if v := r.Jitter(0.5, 0.9, 1); v != 1 {
		t.Fatalf("Jitter floor = %v, want 1", v)
	}
}

func TestForkIndependentStreams(t *testing.T) {
	r := NewRand(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

// TestManyProcsStress runs a few hundred processes through a contended
// resource to shake out handoff bugs.
func TestManyProcsStress(t *testing.T) {
	e := NewEngine(99)
	var r Resource
	var count int
	const n = 300
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(e.Rand().Intn(50)))
			r.Acquire(p, "res")
			p.Sleep(1)
			count++
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}
