package sim

// WaitQueue is a FIFO list of parked processes. Hardware models use it to
// block processes on a condition and wake them when the condition changes.
// The zero value is an empty queue ready to use.
type WaitQueue struct {
	ps []*Proc
}

// Wait parks p on the queue until some other event wakes it.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.ps = append(q.ps, p)
	p.Park(reason)
}

// Len returns the number of waiting processes.
func (q *WaitQueue) Len() int { return len(q.ps) }

// WakeAll wakes every waiter after d cycles, in FIFO order.
func (q *WaitQueue) WakeAll(d Time) {
	for _, p := range q.ps {
		p.Wake(d)
	}
	q.ps = nil
}

// WakeOne wakes the oldest waiter after d cycles. It reports whether a
// process was woken.
func (q *WaitQueue) WakeOne(d Time) bool {
	if len(q.ps) == 0 {
		return false
	}
	p := q.ps[0]
	q.ps = q.ps[1:]
	p.Wake(d)
	return true
}

// Remove drops p from the queue without waking it. It reports whether p was
// found. The caller is responsible for waking p by other means.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i, w := range q.ps {
		if w == p {
			q.ps = append(q.ps[:i], q.ps[i+1:]...)
			return true
		}
	}
	return false
}

// Resource is a FIFO mutual-exclusion resource in simulation time, used to
// model structures that serve one transaction at a time (a directory line,
// an L2 bank, a memory controller port). The zero value is free.
type Resource struct {
	owner *Proc
	q     []*Proc
	// BusyCycles accumulates total time the resource was held, for
	// utilization statistics. Updated on Release.
	BusyCycles Time
	acquiredAt Time
}

// Acquire blocks p until it owns the resource. Ownership is granted in
// request order.
func (r *Resource) Acquire(p *Proc, reason string) {
	if r.owner == nil {
		r.owner = p
		r.acquiredAt = p.eng.now
		return
	}
	r.q = append(r.q, p)
	p.Park(reason)
	// The releaser set r.owner = p before waking us.
	r.acquiredAt = p.eng.now
}

// Release hands the resource to the oldest waiter, or frees it. Only the
// current owner may call Release.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic("sim: Release by non-owner")
	}
	r.BusyCycles += p.eng.now - r.acquiredAt
	if len(r.q) == 0 {
		r.owner = nil
		return
	}
	next := r.q[0]
	r.q = r.q[1:]
	r.owner = next
	next.Wake(0)
}

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.q) }

// Held reports whether the resource is currently owned.
func (r *Resource) Held() bool { return r.owner != nil }
