package sim

// WaitQueue is a FIFO list of suspended waiters — parked processes and/or
// task continuations. Hardware models use it to block workload threads on
// a condition and wake them when the condition changes; because both
// waiter styles live in one queue, a spin list serves blocking Procs and
// continuation-form Tasks with identical FIFO semantics. The zero value is
// an empty queue ready to use.
//
// Waking consumes one event sequence number per waiter regardless of
// style (Proc.Wake and Engine.Schedule produce events with identical
// (time, priority, sequence) keys), so the two styles are interchangeable
// without affecting simulated results.
//
// The queue is a head-indexed deque over a reused backing array: spin loops
// park and wake the same threads over and over, and re-growing the queue
// each round is measurable garbage on hot coherence lines.
type WaitQueue struct {
	ws   []waiter
	head int
	eng  *Engine
}

// waiter is one suspended entry: a parked process or a continuation.
type waiter struct {
	p  *Proc
	fn func()
}

func (w waiter) wake(e *Engine, d Time) {
	if w.p != nil {
		w.p.Wake(d)
		return
	}
	e.Schedule(d, w.fn)
}

// Wait parks p on the queue until some other event wakes it.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.eng = p.eng
	q.ws = append(q.ws, waiter{p: p})
	p.Park(reason)
}

// WaitFn enqueues the continuation fn to run when the queue is woken. It
// is the task-style counterpart of Wait: the caller's task is considered
// suspended until fn fires.
func (q *WaitQueue) WaitFn(e *Engine, fn func()) {
	q.eng = e
	q.ws = append(q.ws, waiter{fn: fn})
}

// Len returns the number of waiters.
func (q *WaitQueue) Len() int { return len(q.ws) - q.head }

// WakeAll wakes every waiter after d cycles, in FIFO order.
func (q *WaitQueue) WakeAll(d Time) {
	for i := q.head; i < len(q.ws); i++ {
		q.ws[i].wake(q.eng, d)
		q.ws[i] = waiter{}
	}
	q.ws = q.ws[:0]
	q.head = 0
}

// WakeOne wakes the oldest waiter after d cycles. It reports whether a
// waiter was woken.
func (q *WaitQueue) WakeOne(d Time) bool {
	if q.Len() == 0 {
		return false
	}
	w := q.ws[q.head]
	q.ws[q.head] = waiter{}
	q.head++
	q.ws, q.head = compact(q.ws, q.head)
	w.wake(q.eng, d)
	return true
}

// compact reclaims a deque's dead prefix once it reaches half the backing
// array, keeping memory proportional to live waiters rather than to total
// traffic through the queue. Amortized O(1) per operation. Shared by the
// process wait lists here and their continuation mirrors in async.go.
func compact[T any](ps []T, head int) ([]T, int) {
	if head*2 < len(ps) {
		return ps, head
	}
	n := copy(ps, ps[head:])
	var zero T
	for i := n; i < len(ps); i++ {
		ps[i] = zero
	}
	return ps[:n], 0
}

// Remove drops p from the queue without waking it. It reports whether p was
// found. The caller is responsible for waking p by other means.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i := q.head; i < len(q.ws); i++ {
		if q.ws[i].p == p {
			copy(q.ws[i:], q.ws[i+1:])
			q.ws[len(q.ws)-1] = waiter{}
			q.ws = q.ws[:len(q.ws)-1]
			if q.head == len(q.ws) {
				q.ws = q.ws[:0]
				q.head = 0
			}
			return true
		}
	}
	return false
}

// Resource is a FIFO mutual-exclusion resource in simulation time, used to
// model structures that serve one transaction at a time (a directory line,
// an L2 bank, a memory controller port). The zero value is free. Like
// WaitQueue, the waiter list is a head-indexed deque over a reused array.
type Resource struct {
	owner *Proc
	q     []*Proc
	head  int
	// BusyCycles accumulates total time the resource was held, for
	// utilization statistics. Updated on Release.
	BusyCycles Time
	acquiredAt Time
}

// Acquire blocks p until it owns the resource. Ownership is granted in
// request order.
func (r *Resource) Acquire(p *Proc, reason string) {
	if r.owner == nil {
		r.owner = p
		r.acquiredAt = p.eng.now
		return
	}
	r.q = append(r.q, p)
	p.Park(reason)
	// The releaser set r.owner = p before waking us.
	r.acquiredAt = p.eng.now
}

// Release hands the resource to the oldest waiter, or frees it. Only the
// current owner may call Release.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic("sim: Release by non-owner")
	}
	r.BusyCycles += p.eng.now - r.acquiredAt
	if r.head == len(r.q) {
		r.owner = nil
		r.q = r.q[:0]
		r.head = 0
		return
	}
	next := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.q, r.head = compact(r.q, r.head)
	r.owner = next
	next.Wake(0)
}

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.q) - r.head }

// Held reports whether the resource is currently owned.
func (r *Resource) Held() bool { return r.owner != nil }
