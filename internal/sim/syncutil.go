package sim

// WaitQueue is a FIFO list of parked processes. Hardware models use it to
// block processes on a condition and wake them when the condition changes.
// The zero value is an empty queue ready to use.
//
// The queue is a head-indexed deque over a reused backing array: spin loops
// park and wake the same processes over and over, and re-growing the queue
// each round is measurable garbage on hot coherence lines.
type WaitQueue struct {
	ps   []*Proc
	head int
}

// Wait parks p on the queue until some other event wakes it.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.ps = append(q.ps, p)
	p.Park(reason)
}

// Len returns the number of waiting processes.
func (q *WaitQueue) Len() int { return len(q.ps) - q.head }

// WakeAll wakes every waiter after d cycles, in FIFO order.
func (q *WaitQueue) WakeAll(d Time) {
	for i := q.head; i < len(q.ps); i++ {
		q.ps[i].Wake(d)
		q.ps[i] = nil
	}
	q.ps = q.ps[:0]
	q.head = 0
}

// WakeOne wakes the oldest waiter after d cycles. It reports whether a
// process was woken.
func (q *WaitQueue) WakeOne(d Time) bool {
	if q.Len() == 0 {
		return false
	}
	p := q.ps[q.head]
	q.ps[q.head] = nil
	q.head++
	q.ps, q.head = compact(q.ps, q.head)
	p.Wake(d)
	return true
}

// compact reclaims a deque's dead prefix once it reaches half the backing
// array, keeping memory proportional to live waiters rather than to total
// traffic through the queue. Amortized O(1) per operation. Shared by the
// process wait lists here and their continuation mirrors in async.go.
func compact[T any](ps []T, head int) ([]T, int) {
	if head*2 < len(ps) {
		return ps, head
	}
	n := copy(ps, ps[head:])
	var zero T
	for i := n; i < len(ps); i++ {
		ps[i] = zero
	}
	return ps[:n], 0
}

// Remove drops p from the queue without waking it. It reports whether p was
// found. The caller is responsible for waking p by other means.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i := q.head; i < len(q.ps); i++ {
		if q.ps[i] == p {
			copy(q.ps[i:], q.ps[i+1:])
			q.ps[len(q.ps)-1] = nil
			q.ps = q.ps[:len(q.ps)-1]
			if q.head == len(q.ps) {
				q.ps = q.ps[:0]
				q.head = 0
			}
			return true
		}
	}
	return false
}

// Resource is a FIFO mutual-exclusion resource in simulation time, used to
// model structures that serve one transaction at a time (a directory line,
// an L2 bank, a memory controller port). The zero value is free. Like
// WaitQueue, the waiter list is a head-indexed deque over a reused array.
type Resource struct {
	owner *Proc
	q     []*Proc
	head  int
	// BusyCycles accumulates total time the resource was held, for
	// utilization statistics. Updated on Release.
	BusyCycles Time
	acquiredAt Time
}

// Acquire blocks p until it owns the resource. Ownership is granted in
// request order.
func (r *Resource) Acquire(p *Proc, reason string) {
	if r.owner == nil {
		r.owner = p
		r.acquiredAt = p.eng.now
		return
	}
	r.q = append(r.q, p)
	p.Park(reason)
	// The releaser set r.owner = p before waking us.
	r.acquiredAt = p.eng.now
}

// Release hands the resource to the oldest waiter, or frees it. Only the
// current owner may call Release.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic("sim: Release by non-owner")
	}
	r.BusyCycles += p.eng.now - r.acquiredAt
	if r.head == len(r.q) {
		r.owner = nil
		r.q = r.q[:0]
		r.head = 0
		return
	}
	next := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.q, r.head = compact(r.q, r.head)
	r.owner = next
	next.Wake(0)
}

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.q) - r.head }

// Held reports whether the resource is currently owned.
func (r *Resource) Held() bool { return r.owner != nil }
