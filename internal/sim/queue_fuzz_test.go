package sim

import (
	"container/heap"
	"testing"
)

// refHeap is the straightforward container/heap implementation the typed
// 4-ary queue replaced. It is the oracle: both queues must dispatch the
// same events in the same (time, priority, sequence) order under any
// interleaving of schedules and pops.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return before(&h[i], &h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// queueOracle drives the production queue and the reference heap through
// the same operation stream and fails on the first divergence. Each byte of
// ops is one operation: low bits pick push-vs-pop, the rest perturb the
// timestamp and priority, reproducing the engine's real usage — monotone
// base time, small forward offsets, occasional PrioLate, interleaved pops
// (including pops that empty the queue, exercising slot zeroing).
func queueOracle(t *testing.T, ops []byte) {
	t.Helper()
	var q eventQueue
	ref := &refHeap{}
	var seq uint64
	var now Time // tracks the engine clock: pops advance it, pushes are >= now

	for i, op := range ops {
		if op&3 == 3 && q.len() > 0 {
			got := q.pop()
			want := heap.Pop(ref).(event)
			if got.t != want.t || got.key != want.key {
				t.Fatalf("op %d: pop order diverged: got (t=%d key=%#x), reference (t=%d key=%#x)",
					i, got.t, got.key, want.t, want.key)
			}
			if got.t < now {
				t.Fatalf("op %d: pop went back in time: %d < %d", i, got.t, now)
			}
			now = got.t
			// The vacated tail slot must be zeroed, or the popped
			// event's closure (and everything it captures) stays pinned
			// by the backing array.
			if n := len(q.ev); n < cap(q.ev) {
				if tail := q.ev[:n+1][n]; tail.fn != nil || tail.p != nil {
					t.Fatalf("op %d: popped slot %d not zeroed", i, n)
				}
			}
			continue
		}
		seq++
		ev := event{t: now + Time(op>>3), key: seq, fn: func() {}}
		if op&4 != 0 {
			ev.key |= prioBit
		}
		q.push(ev)
		heap.Push(ref, ev)
	}
	// Drain both completely: the tail of the stream must agree too.
	for q.len() > 0 {
		got := q.pop()
		want := heap.Pop(ref).(event)
		if got.t != want.t || got.key != want.key {
			t.Fatalf("drain: pop order diverged: got (t=%d key=%#x), reference (t=%d key=%#x)",
				got.t, got.key, want.t, want.key)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("drain: production queue empty, reference still holds %d events", ref.Len())
	}
}

// FuzzEventQueueMatchesReferenceHeap fuzzes the 4-ary heap against
// container/heap. The seed corpus covers the interesting shapes: pure
// FIFO, same-cycle bursts with mixed priorities, push/pop churn, and
// repeated emptying.
func FuzzEventQueueMatchesReferenceHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 3, 3})                // same-slot burst, drain
	f.Add([]byte{8, 16, 24, 3, 32, 3, 3, 3})       // monotone pushes with pops
	f.Add([]byte{4, 0, 4, 0, 3, 3, 4, 3, 3})       // PrioLate vs PrioNormal ties
	f.Add([]byte{255, 7, 3, 255, 7, 3, 255, 7, 3}) // far/near alternation, churn
	f.Add([]byte{1, 3, 1, 3, 1, 3, 1, 3})          // empty-refill cycles
	f.Fuzz(queueOracle)
}

// TestEventQueueRandomOracle runs the same oracle over long seeded random
// streams, so heavy randomized coverage happens on every plain `go test`
// run, not only under `go test -fuzz`.
func TestEventQueueRandomOracle(t *testing.T) {
	rng := NewRand(20260728)
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(512)
		ops := make([]byte, n)
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		queueOracle(t, ops)
	}
}
