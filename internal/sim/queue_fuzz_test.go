package sim

import (
	"container/heap"
	"testing"
)

// refHeap is a straightforward container/heap implementation of the event
// order. It is the oracle: the composite wheel+heap queue must dispatch the
// same events in the same (time, priority, sequence) order under any
// interleaving of schedules and pops.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return before(&h[i], &h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// checkZeroedSlots asserts every vacated slot in the production queue is
// zeroed — the heap's popped tail slot and the consumed prefix of every
// wheel bucket — or the popped events' closures (and everything they
// capture) stay pinned by the backing arrays.
func checkZeroedSlots(t *testing.T, q *eventQueue, opIdx int) {
	t.Helper()
	if n := len(q.h.ev); n < cap(q.h.ev) {
		if tail := q.h.ev[:n+1][n]; tail.fn != nil || tail.p != nil {
			t.Fatalf("op %d: popped heap slot %d not zeroed", opIdx, n)
		}
	}
	for i := range q.w.b {
		b := &q.w.b[i]
		for j := 0; j < b.normal.head; j++ {
			if ev := &b.normal.ev[j]; ev.fn != nil || ev.p != nil {
				t.Fatalf("op %d: consumed wheel slot (bucket %d, normal %d) not zeroed", opIdx, i, j)
			}
		}
		for j := 0; j < b.late.head; j++ {
			if ev := &b.late.ev[j]; ev.fn != nil || ev.p != nil {
				t.Fatalf("op %d: consumed wheel slot (bucket %d, late %d) not zeroed", opIdx, i, j)
			}
		}
	}
}

// queueOracle drives the production wheel+heap composite and the reference
// heap through the same operation stream and fails on the first divergence.
// Each byte of ops is one operation, reproducing the engine's real usage —
// monotone base time, pushes never in the past, interleaved pops (including
// pops that empty the queue):
//
//	op&3 == 3: pop
//	op&3 == 2: far-future push at now + 200 + (op>>3)*97 — offsets from
//	           just inside the wheel horizon to ~12x past it, so events
//	           land in the heap and cross the horizon as the clock
//	           advances toward them
//	otherwise: near push at now + op>>3 (0..31 cycles, the wheel's bread
//	           and butter), PrioLate when op&4 is set
func queueOracle(t *testing.T, ops []byte) {
	t.Helper()
	var q eventQueue
	ref := &refHeap{}
	var seq uint64
	var now Time // tracks the engine clock: pops advance it, pushes are >= now

	for i, op := range ops {
		if op&3 == 3 && q.len() > 0 {
			got := q.pop()
			want := heap.Pop(ref).(event)
			if got.t != want.t || got.key != want.key {
				t.Fatalf("op %d: pop order diverged: got (t=%d key=%#x), reference (t=%d key=%#x)",
					i, got.t, got.key, want.t, want.key)
			}
			if got.t < now {
				t.Fatalf("op %d: pop went back in time: %d < %d", i, got.t, now)
			}
			now = got.t
			checkZeroedSlots(t, &q, i)
			continue
		}
		seq++
		d := Time(op >> 3)
		if op&3 == 2 {
			d = 200 + Time(op>>3)*97
		}
		ev := event{t: now + d, key: seq, fn: func() {}}
		if op&4 != 0 {
			ev.key |= prioBit
		}
		q.push(ev, now)
		heap.Push(ref, ev)
	}
	// Drain both completely: the tail of the stream must agree too, and
	// every heap-fallback event is eventually popped after crossing the
	// wheel horizon.
	for q.len() > 0 {
		got := q.pop()
		want := heap.Pop(ref).(event)
		if got.t != want.t || got.key != want.key {
			t.Fatalf("drain: pop order diverged: got (t=%d key=%#x), reference (t=%d key=%#x)",
				got.t, got.key, want.t, want.key)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("drain: production queue empty, reference still holds %d events", ref.Len())
	}
}

// FuzzEventQueueMatchesReferenceHeap fuzzes the wheel+heap composite
// against container/heap. The seed corpus covers the interesting shapes:
// pure FIFO, same-cycle bursts with mixed priorities, push/pop churn,
// repeated emptying, and far-future events that cross the wheel horizon —
// alone, racing near events, and in same-tick priority ties.
func FuzzEventQueueMatchesReferenceHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 3, 3})                   // same-slot burst, drain
	f.Add([]byte{8, 16, 24, 3, 32, 3, 3, 3})          // monotone pushes with pops
	f.Add([]byte{4, 0, 4, 0, 3, 3, 4, 3, 3})          // PrioLate vs PrioNormal ties
	f.Add([]byte{255, 7, 3, 255, 7, 3, 255, 7, 3})    // far/near alternation, churn
	f.Add([]byte{1, 3, 1, 3, 1, 3, 1, 3})             // empty-refill cycles
	f.Add([]byte{2, 10, 3, 3, 2, 3})                  // horizon-crossing heap events
	f.Add([]byte{2, 2, 2, 3, 3, 3, 3})                // heap-only burst, full drain
	f.Add([]byte{250, 2, 6, 3, 3, 3, 250, 6, 2, 3})   // far bursts with late bits
	f.Add([]byte{2, 0, 8, 3, 3, 3, 2, 4, 3, 3, 3, 3}) // wheel/heap merge at the boundary
	f.Fuzz(queueOracle)
}

// TestEventQueueRandomOracle runs the same oracle over long seeded random
// streams, so heavy randomized coverage happens on every plain `go test`
// run, not only under `go test -fuzz`.
func TestEventQueueRandomOracle(t *testing.T) {
	rng := NewRand(20260728)
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(512)
		ops := make([]byte, n)
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		queueOracle(t, ops)
	}
}
