package sim

import (
	"fmt"
	"testing"
)

// shardOracleTrace drives one engine through a deterministic pseudo-random
// mix of core-local timers (LocalSleepThen), global callback events at both
// priorities, blocking processes and rng draws, and records the dispatch
// trace. The workload is rng-steered, so any ordering divergence between
// shard counts snowballs into a trace mismatch within a few events.
func shardOracleTrace(t *testing.T, shards, cores, steps int) ([]string, SchedStats) {
	t.Helper()
	eng := NewEngine(7)
	eng.ConfigureShards(shards)
	var trace []string
	emit := func(tag string, core, step int) {
		trace = append(trace, fmt.Sprintf("%s %d:%d @%d", tag, core, step, eng.Now()))
	}
	var chain func(core, step int) func()
	chain = func(core, step int) func() {
		return func() {
			emit("local", core, step)
			if step >= steps {
				return
			}
			d := Time(eng.Rand().Intn(60))
			if step%5 == 2 {
				// A same-cycle PrioLate arbiter and a far global event, so
				// the merge constantly interleaves local and global
				// populations at equal and differing times.
				eng.ScheduleAt(eng.Now(), PrioLate, func() { emit("late", core, step) })
				eng.Schedule(d+300, func() { emit("far", core, step) })
			}
			// Tail position: the chain continuation is the payload's last
			// simulation action, as the SleepThen contract requires.
			eng.LocalSleepThen(core, d+1, chain(core, step+1))
		}
	}
	for c := 0; c < cores; c++ {
		c := c
		eng.ScheduleAt(Time(c%13), PrioNormal, chain(c, 0))
	}
	// Blocking processes exercise the Sleep fast-path guard and the
	// proc-dispatch interleaving against shard events.
	for i := 0; i < 8; i++ {
		i := i
		eng.Go(fmt.Sprintf("proc%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(Time(eng.Rand().Intn(40)))
				emit("proc", i, s)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return trace, eng.SchedStats()
}

// TestShardOracle pins the sharded engine's dispatch order to the unsharded
// engine's: the trace (event identity and timestamp, in dispatch order)
// must be identical at every shard count, including a shard count that does
// not divide the core count. With enough cores in flight the drain rounds
// cross the parallel threshold, so running this under -race also exercises
// the concurrent drain path.
func TestShardOracle(t *testing.T) {
	const cores, steps = 192, 40
	want, _ := shardOracleTrace(t, 0, cores, steps)
	if len(want) == 0 {
		t.Fatal("empty oracle trace")
	}
	var statsAt4 *SchedStats
	for _, shards := range []int{1, 2, 4, 7} {
		got, st := shardOracleTrace(t, shards, cores, steps)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: event %d = %q, want %q", shards, i, got[i], want[i])
			}
		}
		if st.CrossShardMsgs == 0 || st.HorizonAdvances == 0 {
			t.Fatalf("shards=%d: no shard traffic recorded: %+v", shards, st)
		}
		if shards == 4 {
			statsAt4 = &st
		}
	}
	// Shard diagnostics must be deterministic: a repeat run at the same
	// shard count reports identical counters regardless of whether drain
	// rounds ran serially or on goroutines.
	_, again := shardOracleTrace(t, 4, cores, steps)
	if again != *statsAt4 {
		t.Fatalf("shards=4 diagnostics not reproducible: %+v vs %+v", again, *statsAt4)
	}
}

// TestShardRunUntil pins the horizon semantics: local events past the
// RunUntil limit stay queued (reported by Pending) and dispatch on a later
// run, exactly like global events.
func TestShardRunUntil(t *testing.T) {
	eng := NewEngine(1)
	eng.ConfigureShards(2)
	var fired []Time
	for c := 0; c < 4; c++ {
		c := c
		eng.ScheduleAt(0, PrioNormal, func() {
			eng.LocalSleepThen(c, Time(50+10*c), func() { fired = append(fired, eng.Now()) })
		})
	}
	if err := eng.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 50 {
		t.Fatalf("after RunUntil(55): fired=%v, want [50]", fired)
	}
	if p := eng.Pending(); p != 3 {
		t.Fatalf("Pending() = %d, want 3", p)
	}
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("after RunUntil(200): fired=%v, want 4 events", fired)
	}
}

// TestShardUnshardedIdentity pins that ConfigureShards(0) leaves the engine
// on the legacy path (Shards reports 0, LocalSleepThen aliases SleepThen).
func TestShardUnshardedIdentity(t *testing.T) {
	eng := NewEngine(1)
	if eng.Shards() != 0 {
		t.Fatalf("fresh engine Shards() = %d", eng.Shards())
	}
	eng.ConfigureShards(3)
	if eng.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", eng.Shards())
	}
	eng.ConfigureShards(0)
	if eng.Shards() != 0 {
		t.Fatalf("Shards() = %d after reset, want 0", eng.Shards())
	}
}

// TestSetShardsPendingLocalEvents is the regression test for the
// mid-run-reconfiguration bugfix: with local events queued, SetShards must
// return an error (so a long-running service can reject the job), while
// ConfigureShards keeps its panic contract for harness programming errors.
// Once the events drain, reconfiguration works again.
func TestSetShardsPendingLocalEvents(t *testing.T) {
	eng := NewEngine(1)
	eng.ConfigureShards(2)
	ran := false
	eng.ScheduleAt(0, PrioNormal, func() {
		eng.LocalSleepThen(0, 100, func() { ran = true })
	})
	if err := eng.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetShards(4); err == nil {
		t.Fatal("SetShards succeeded with local events pending")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ConfigureShards did not panic with local events pending")
			}
		}()
		eng.ConfigureShards(4)
	}()
	if eng.Shards() != 2 {
		t.Fatalf("failed reconfiguration changed the shard count to %d", eng.Shards())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("pending local event never fired")
	}
	if err := eng.SetShards(4); err != nil {
		t.Fatalf("SetShards after drain: %v", err)
	}
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", eng.Shards())
	}
}
