package sim

// event is one scheduled entry in the engine's queue. Exactly one of p and
// fn is set: p marks a process-dispatch event (the allocation-free path used
// by Sleep, Wake and Go), fn a plain callback. Events are stored by value in
// the queue's slice, so scheduling never heap-allocates an event record —
// the slice itself is the engine's reusable pool of records.
//
// key packs (priority, sequence) into one word: the priority bit sits above
// the 63-bit sequence counter, so the engine's (time, priority, sequence)
// total order is just (t, key) — one comparison fewer per heap step, and a
// 32-byte event moves in two fewer words.
type event struct {
	t   Time
	key uint64
	p   *Proc
	fn  func()
}

// prioBit is the key bit that marks a PrioLate event. Sequence numbers stay
// below it for any feasible event count.
const prioBit = uint64(1) << 63

// before is the engine's total event order: (time, priority, sequence).
// The sequence strictly increases per engine, so no two events compare
// equal and the order is deterministic.
func before(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

// eventQueue is a 4-ary min-heap of events over a typed slice. Compared to
// container/heap it avoids the interface boxing (one heap allocation per
// Push) and the indirect Less/Swap calls; the 4-ary layout halves the tree
// depth, trading a few extra comparisons per level for far fewer cache-line
// moves. Popped slots are zeroed so the closures and processes they
// referenced are collectable.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// min returns the next event without removing it. It must not be called on
// an empty queue.
func (q *eventQueue) min() *event { return &q.ev[0] }

// push inserts ev, sifting it up with moves instead of pairwise swaps.
func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, event{})
	h := q.ev
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed: a dangling copy would pin the event's closure (and everything it
// captures) for the queue's lifetime.
//
// The hole left at the root is filled bottom-up: first the hole descends
// along the min-child path to a leaf (no comparisons against the displaced
// tail element), then the tail element drops into the hole and sifts up.
// Because the tail is usually one of the largest events (it was pushed
// most recently, at the latest time), the sift-up almost always terminates
// immediately — this saves the per-level comparison a classic sift-down
// spends proving the tail element must keep descending.
func (q *eventQueue) pop() event {
	h := q.ev
	top := h[0]
	n := len(h) - 1
	ev := h[n]
	h[n] = event{}
	h = h[:n]
	q.ev = h
	if n == 0 {
		return top
	}
	// Descend the hole to a leaf along min children.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(&h[j], &h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		i = m
	}
	// Drop the tail element into the hole and sift it up.
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	return top
}
