package sim

import "math/bits"

// event is one scheduled entry in the engine's queue. Exactly one of p and
// fn is set: p marks a process-dispatch event (the allocation-free path used
// by Sleep, Wake and Go), fn a plain callback. Events are stored by value in
// the queue's slices, so scheduling never heap-allocates an event record —
// the slices themselves are the engine's reusable pool of records.
//
// key packs (priority, sequence) into one word: the priority bit sits above
// the 63-bit sequence counter, so the engine's (time, priority, sequence)
// total order is just (t, key) — one comparison fewer per heap step, and a
// 32-byte event moves in two fewer words.
type event struct {
	t   Time
	key uint64
	p   *Proc
	fn  func()
}

// prioBit is the key bit that marks a PrioLate event. Sequence numbers stay
// below it for any feasible event count.
const prioBit = uint64(1) << 63

// before is the engine's total event order: (time, priority, sequence).
// The sequence strictly increases per engine, so no two events compare
// equal and the order is deterministic.
func before(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

// eventQueue is the engine's event storage: a timing wheel for near-future
// events backed by a 4-ary min-heap for everything past the wheel horizon.
// The hierarchy matches the engine's workload: hardware models and workload
// threads sleep mostly 2–110 cycles (cache round trips, channel slots,
// backoff windows, barrier episodes), which the wheel dispatches in O(1)
// with no comparisons, while the rare long sleep — an application's
// 100k-cycle compute phase, a far-off horizon event — falls back to the
// heap. wheelHits and heapFallbacks count the routing decisions, exposed
// through Engine.SchedStats for sweep diagnostics.
//
// Both levels dispatch in exact (time, priority, sequence) order and first/
// pop merge them by comparing their minima, so the composite is
// order-identical to a single heap (pinned by the fuzz/oracle suite in
// queue_fuzz_test.go).
type eventQueue struct {
	w wheel
	h heapQueue

	wheelHits     uint64
	heapFallbacks uint64
}

// len returns the total number of queued events.
func (q *eventQueue) len() int { return q.w.count + len(q.h.ev) }

// first returns the next event to dispatch without removing it, or nil if
// the queue is empty. The pointer is valid until the next queue mutation.
func (q *eventQueue) first() *event {
	if q.w.count == 0 {
		if len(q.h.ev) == 0 {
			return nil
		}
		return &q.h.ev[0]
	}
	wm := q.w.min()
	if len(q.h.ev) == 0 || before(wm, &q.h.ev[0]) {
		return wm
	}
	return &q.h.ev[0]
}

// push routes ev to the wheel when its timestamp lies within the wheel
// horizon of the current clock, and to the heap otherwise. The caller
// guarantees ev.t >= now, so every wheel entry satisfies the window
// invariant t in [now, now+wheelSpan) — each bucket therefore holds at most
// one distinct timestamp at any moment.
func (q *eventQueue) push(ev event, now Time) {
	if ev.t-now < wheelSpan {
		q.wheelHits++
		q.w.push(ev)
		return
	}
	q.heapFallbacks++
	q.h.push(ev)
}

// pop removes and returns the minimum event across both levels.
func (q *eventQueue) pop() event {
	if q.w.count == 0 {
		return q.h.pop()
	}
	if len(q.h.ev) == 0 || before(q.w.min(), &q.h.ev[0]) {
		return q.w.pop()
	}
	return q.h.pop()
}

// ---- Timing wheel ----

// wheelSpan is the wheel horizon in cycles: events scheduled less than
// wheelSpan cycles ahead land in a bucket, the rest fall back to the heap.
// 256 covers the simulator's observed sleep distribution (2–110 cycles for
// protocol steps, spins and backoff; see the sizing note on eventQueue)
// with headroom, while keeping the bucket array small enough that a fresh
// engine's zero-fill is negligible next to machine construction.
const (
	wheelBits  = 8
	wheelSpan  = 1 << wheelBits
	wheelMask  = wheelSpan - 1
	wheelWords = wheelSpan / 64
)

// fifo is one bucket's ordered event list. Events arrive in increasing
// sequence order (the engine's sequence counter is monotone), so FIFO order
// is dispatch order; consumed slots are zeroed so popped closures are
// collectable, and the backing array is reused once the bucket drains.
type fifo struct {
	ev   []event
	head int
}

func (f *fifo) empty() bool { return f.head == len(f.ev) }

func (f *fifo) push(ev event) { f.ev = append(f.ev, ev) }

func (f *fifo) pop() event {
	ev := f.ev[f.head]
	f.ev[f.head] = event{}
	f.head++
	if f.head == len(f.ev) {
		f.ev = f.ev[:0]
		f.head = 0
	}
	return ev
}

// bucket holds one timestamp's events, split by priority: every PrioNormal
// event precedes every PrioLate event of the same cycle, and within a
// priority FIFO order is sequence order, so the bucket minimum is always
// the head of normal, falling back to the head of late.
type bucket struct {
	normal fifo
	late   fifo
}

func (b *bucket) empty() bool { return b.normal.empty() && b.late.empty() }

func (b *bucket) min() *event {
	if !b.normal.empty() {
		return &b.normal.ev[b.normal.head]
	}
	return &b.late.ev[b.late.head]
}

// wheel is a single-level timing wheel of wheelSpan one-cycle buckets with
// an occupancy bitmap. The zero value is an empty, usable wheel. minIdx
// caches the bucket holding the minimum event; it is maintained eagerly —
// set unconditionally by the push that makes the wheel non-empty, updated
// by pushes that beat the cached minimum, re-scanned when the minimum
// bucket drains — so min() is two branches. minIdx is meaningless (stale)
// while count is 0 and must not be read then. The window invariant (all
// entries within [now, now+wheelSpan)) makes the circular scan from the
// drained bucket visit buckets in absolute-time order.
type wheel struct {
	b      [wheelSpan]bucket
	occ    [wheelWords]uint64
	count  int
	minIdx int
}

func (w *wheel) min() *event { return w.b[w.minIdx].min() }

func (w *wheel) push(ev event) {
	idx := int(ev.t) & wheelMask
	b := &w.b[idx]
	if b.empty() {
		w.occ[idx>>6] |= 1 << (uint(idx) & 63)
	}
	if ev.key&prioBit != 0 {
		b.late.push(ev)
	} else {
		b.normal.push(ev)
	}
	w.count++
	if w.count == 1 || before(&ev, w.b[w.minIdx].min()) {
		w.minIdx = idx
	}
}

func (w *wheel) pop() event {
	b := &w.b[w.minIdx]
	var ev event
	if !b.normal.empty() {
		ev = b.normal.pop()
	} else {
		ev = b.late.pop()
	}
	w.count--
	if b.empty() {
		w.occ[w.minIdx>>6] &^= 1 << (uint(w.minIdx) & 63)
		if w.count > 0 {
			w.minIdx = w.next(w.minIdx)
		}
		// An emptied wheel leaves minIdx stale; the push that refills it
		// resets the cache unconditionally.
	}
	return ev
}

// next returns the first occupied bucket at or after index from in circular
// order. The caller guarantees the wheel is non-empty, and the window
// invariant guarantees circular order from the previous minimum is
// absolute-time order.
func (w *wheel) next(from int) int {
	wi := from >> 6
	word := w.occ[wi] & (^uint64(0) << (uint(from) & 63))
	for k := 0; ; k++ {
		if word != 0 {
			return ((wi+k)&(wheelWords-1))<<6 + bits.TrailingZeros64(word)
		}
		word = w.occ[(wi+k+1)&(wheelWords-1)]
	}
}

// ---- Heap fallback ----

// heapQueue is a 4-ary min-heap of events over a typed slice. Compared to
// container/heap it avoids the interface boxing (one heap allocation per
// Push) and the indirect Less/Swap calls; the 4-ary layout halves the tree
// depth, trading a few extra comparisons per level for far fewer cache-line
// moves. Popped slots are zeroed so the closures and processes they
// referenced are collectable.
type heapQueue struct {
	ev []event
}

// push inserts ev, sifting it up with moves instead of pairwise swaps.
func (q *heapQueue) push(ev event) {
	q.ev = append(q.ev, event{})
	h := q.ev
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed: a dangling copy would pin the event's closure (and everything it
// captures) for the queue's lifetime.
//
// The hole left at the root is filled bottom-up: first the hole descends
// along the min-child path to a leaf (no comparisons against the displaced
// tail element), then the tail element drops into the hole and sifts up.
// Because the tail is usually one of the largest events (it was pushed
// most recently, at the latest time), the sift-up almost always terminates
// immediately — this saves the per-level comparison a classic sift-down
// spends proving the tail element must keep descending.
func (q *heapQueue) pop() event {
	h := q.ev
	top := h[0]
	n := len(h) - 1
	ev := h[n]
	h[n] = event{}
	h = h[:n]
	q.ev = h
	if n == 0 {
		return top
	}
	// Descend the hole to a leaf along min children.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(&h[j], &h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		i = m
	}
	// Drop the tail element into the hole and sift it up.
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	return top
}
