package sim

import "math"

// Rand is a small deterministic PRNG (splitmix64). It is not safe for
// concurrent use, which is fine: the engine is single-threaded.
type Rand struct {
	s uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns a value drawn uniformly from [mean*(1-spread),
// mean*(1+spread)], never below min. It is used to skew thread arrival
// times in workload models.
func (r *Rand) Jitter(mean float64, spread float64, min float64) float64 {
	v := mean * (1 + spread*(2*r.Float64()-1))
	if v < min {
		v = min
	}
	return v
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Fork returns a new generator seeded from this one, for giving subsystems
// independent deterministic streams.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
