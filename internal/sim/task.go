package sim

import "fmt"

// Task is a continuation-form simulation process: the goroutine-free
// counterpart of Proc for workload code written in completion-callback
// style. A Task has no goroutine and no blocking calls — it advances by
// scheduling continuations on the event queue (directly or through the
// async mirrors of the hardware models), so an entire workload of Tasks
// runs on whichever goroutine is already driving the engine.
//
// Tasks consume event sequence numbers at exactly the same execution
// points as Procs (one per suspension; see the package comment), so a
// workload converted from Proc-backed threads to Tasks produces
// bit-identical simulated results. The golden-conformance suite in
// package harness pins this end to end.
type Task struct {
	eng    *Engine
	name   string
	reason string
	// reasonArg is an optional operand (a BM or memory address) attached by
	// SetReasonArg and rendered only if diagnostics fire, so the hot path
	// never formats a string.
	reasonArg    uint64
	reasonHasArg bool
	done         bool
}

// GoTask starts fn as a new task. Like Go, the task begins running at the
// current simulation time (after already-queued same-cycle events), and the
// start consumes one event sequence number — a Proc and a Task spawned at
// the same point begin at the same (time, priority, sequence) position.
//
// fn runs as an ordinary engine event; it issues its first asynchronous
// operation(s) and returns. The task must call Finish when its workload is
// complete, or Run will report it in the deadlock diagnostics.
func (e *Engine) GoTask(name string, fn func(*Task)) *Task {
	if e.stopped {
		panic("sim: GoTask after Shutdown")
	}
	t := &Task{eng: e, name: name}
	e.tasks[t] = struct{}{}
	e.Schedule(0, func() { fn(t) })
	return t
}

// Name returns the task name given to GoTask.
func (t *Task) Name() string { return t.name }

// Engine returns the engine this task belongs to.
func (t *Task) Engine() *Engine { return t.eng }

// Now returns the current simulation time.
func (t *Task) Now() Time { return t.eng.now }

// Finish retires the task. A task that never finishes before the event
// queue drains is reported by Run as deadlocked, exactly like a parked
// process.
func (t *Task) Finish() {
	if t.done {
		panic("sim: Finish of already-finished task " + t.name)
	}
	t.done = true
	delete(t.eng.tasks, t)
}

// Done reports whether Finish has been called.
func (t *Task) Done() bool { return t.done }

// SetReason records a diagnostic label — typically the operation the task
// last issued — reported by deadlock diagnostics in place of the parked
// reason a Proc carries. Purely informational; a continuation-form model
// has no parked goroutine to name its wait, so the last-issued operation
// is the breadcrumb.
func (t *Task) SetReason(r string) { t.reason = r; t.reasonHasArg = false }

// SetReasonArg records a diagnostic label plus an operand address. The
// address is stored raw and only formatted if deadlock/livelock diagnostics
// actually fire, keeping the per-operation cost to two stores.
func (t *Task) SetReasonArg(r string, arg uint64) {
	t.reason = r
	t.reasonArg = arg
	t.reasonHasArg = true
}

// reasonLine renders the task's breadcrumb for diagnostics.
func (t *Task) reasonLine() string {
	if t.reason == "" {
		return "task not finished"
	}
	if !t.reasonHasArg {
		return t.reason
	}
	return fmt.Sprintf("%s addr=0x%x", t.reason, t.reasonArg)
}

// Sleep runs then after d cycles. It is the continuation mirror of
// Proc.Sleep; see Engine.SleepThen for the contract.
func (t *Task) Sleep(d Time, then func()) { t.eng.SleepThen(d, then) }

// SleepThen is the continuation mirror of Proc.Sleep: it arranges for then
// to run after d cycles, consuming exactly one event sequence number, so a
// continuation-form model suspends at the same (time, priority, sequence)
// position as a blocking model that called Sleep(d).
//
// Like Sleep, it has a zero-cost fast path: when the continuation would be
// the very next event popped (nothing precedes it in the event order and
// the wake time is within the run horizon), no event is pushed at all —
// the clock advances inline and then is handed to the engine's trampoline
// slot, which the scheduler loop drains immediately after the current
// event returns. Chains of uncontended continuations therefore cost one
// function call each instead of a heap push and pop, without growing the
// stack.
//
// SleepThen must be called from event context (inside a callback event or
// a continuation), in tail position — the caller must do no simulation
// work after it returns.
func (e *Engine) SleepThen(d Time, then func()) {
	t := e.now + d
	if t < e.now {
		panic("sim: SleepThen overflows the clock")
	}
	if t <= e.limit && (e.sh == nil || e.sh.minT > t) {
		// Same condition as Proc.Sleep: at equal times this continuation's
		// sequence is the largest, so it only precedes the queue head on a
		// strictly earlier time — or the same time when the head is
		// PrioLate and this continuation is PrioNormal. Sharded mode adds
		// one guard: any queued local event at or before t was sequenced
		// earlier and must dispatch first.
		if head := e.q.first(); head == nil ||
			t < head.t || (t == head.t && head.key >= prioBit) {
			if e.cont != nil {
				panic("sim: SleepThen fast path with a continuation already pending")
			}
			e.seq++
			e.now = t
			e.cont = then
			return
		}
	}
	e.ScheduleAt(t, PrioNormal, then)
}
