package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAsyncResourceMirrorsBlockingResource drives the same contention
// scenario through the blocking Resource (processes) and the AsyncResource
// (continuations) and asserts the grant/release trace is identical: same
// holders, in the same order, at the same cycles. This is the equivalence
// the continuation rewrite of the protocol models rests on.
func TestAsyncResourceMirrorsBlockingResource(t *testing.T) {
	// Each worker: arrive at its own offset, acquire, hold for a worker-
	// specific time, release, and repeat. Offsets force every flavor of
	// contention: free acquires, queued acquires, same-cycle handoffs.
	const workers = 5
	const rounds = 4
	arrival := func(w, r int) Time { return Time(w*3 + r*17) }
	holdFor := func(w, r int) Time { return Time(5 + (w+r)%7) }

	blocking := func() []string {
		var trace []string
		e := NewEngine(1)
		var res Resource
		for w := 0; w < workers; w++ {
			w := w
			e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.SleepUntil(arrival(w, r))
					res.Acquire(p, "res")
					trace = append(trace, fmt.Sprintf("grant w%d@%d", w, e.Now()))
					p.Sleep(holdFor(w, r))
					trace = append(trace, fmt.Sprintf("release w%d@%d", w, e.Now()))
					res.Release(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return append(trace, fmt.Sprintf("busy=%d", res.BusyCycles))
	}()

	async := func() []string {
		var trace []string
		e := NewEngine(1)
		var res AsyncResource
		for w := 0; w < workers; w++ {
			w := w
			r := 0
			var step func()
			step = func() {
				res.Acquire(e, func() {
					trace = append(trace, fmt.Sprintf("grant w%d@%d", w, e.Now()))
					e.Schedule(holdFor(w, r), func() {
						trace = append(trace, fmt.Sprintf("release w%d@%d", w, e.Now()))
						res.Release(e)
						if r++; r < rounds {
							d := Time(0)
							if at := arrival(w, r); at > e.Now() {
								d = at - e.Now()
							}
							e.Schedule(d, step)
						}
					})
				})
			}
			e.Schedule(arrival(w, 0), step)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return append(trace, fmt.Sprintf("busy=%d", res.BusyCycles))
	}()

	if !reflect.DeepEqual(blocking, async) {
		t.Errorf("grant traces diverge:\nblocking: %v\nasync:    %v", blocking, async)
	}
}

// TestAsyncWaitQueueFIFO checks wake order and delays of the continuation
// wait queue against the documented FIFO contract.
func TestAsyncWaitQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var q AsyncWaitQueue
	var got []string
	note := func(tag string) func() {
		return func() { got = append(got, fmt.Sprintf("%s@%d", tag, e.Now())) }
	}
	q.Wait(note("a"))
	q.Wait(note("b"))
	q.Wait(note("c"))
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	e.Schedule(10, func() {
		if !q.WakeOne(e, 2) {
			t.Error("WakeOne found no waiter")
		}
		q.WakeAll(e, 5)
	})
	e.Schedule(30, func() {
		q.Wait(note("d")) // reuse after drain: backing array is recycled
		q.WakeAll(e, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@12", "b@15", "c@15", "d@30"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wake trace = %v, want %v", got, want)
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain, want 0", q.Len())
	}
	if q.WakeOne(e, 0) {
		t.Error("WakeOne on empty queue reported a wake")
	}
}

// TestAsyncResourcePanicsOnFreeRelease pins the misuse check.
func TestAsyncResourcePanicsOnFreeRelease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of a free AsyncResource did not panic")
		}
	}()
	var res AsyncResource
	res.Release(NewEngine(1))
}
