package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Sharded conservative parallel-DES mode.
//
// A single sweep point at 256+ cores is strictly single-threaded in the
// base engine no matter how many host cores are available: one event
// queue, one dispatch loop. But the workload's event population is
// dominated by core-local timers — cache hit latencies, compute-phase
// flushes, protocol pipeline steps, BM retry backoffs — that belong to
// exactly one simulated core and carry a plain callback. Those events
// never need to live in the shared queue: they are partitioned by owning
// core across S shards, each with its own wheel+heap queue (the same
// two-level storage the global queue uses), and bulk-sorted concurrently
// up to a conservative horizon while the dispatch loop remains the only
// consumer.
//
// The design is exact, not approximately ordered:
//
//   - Every local event draws its sequence number from the engine's
//     global counter at the same call site the unsharded engine would, so
//     the (time, priority, sequence) total order over the union of the
//     global queue and all shards is identical to the single-queue order.
//
//   - The dispatch loop (dispatchLocal) only ever runs the minimum of
//     that union: the cached shard minimum (minT, minKey) is compared
//     against the global queue head before every local dispatch, and the
//     Sleep/SleepThen zero-handoff fast paths gain one guard so a process
//     or continuation can never self-advance the clock past a queued
//     local event.
//
//   - Shard workers only move and sort event records; payloads always run
//     serially on the dispatching goroutine. A drain round fires on a
//     condition computed purely from simulation state (outboxes empty,
//     queue population past a threshold, dispatch minimum inside a
//     queue), so whether its per-shard work then runs serially or on
//     goroutines changes wall-clock time only — results and shard
//     diagnostics are byte-identical on any host.
//
// A drain round is the classic conservative-PDES horizon advance: every
// shard concurrently moves its queued events strictly below
// bound = min(global queue head, run limit+1, shard minimum + shardHorizon)
// into a sorted outbox (a wholesale buffer swap — rounds only fire when
// every outbox is empty, so there is never a merge). Between rounds the
// loop consumes outbox heads with an O(S) scan; events scheduled behind an
// outbox's sorted window dispatch straight from their shard queue via the
// same minimum comparison, preserving exact order without re-sorting.
const (
	// shardHorizon bounds how far past the current shard minimum a drain
	// round sorts when neither the global queue head nor the run limit
	// tightens the bound, so an idle global queue cannot pull entire
	// far-future populations into the outboxes. Matching the wheel span
	// aligns the sorted window with the engine's sleep distribution.
	shardHorizon = Time(wheelSpan)

	// parallelDrainMin is the shard-queue population below which bulk
	// rounds are not worth their bookkeeping: small populations dispatch
	// straight from the per-shard wheels at O(1) per event anyway.
	parallelDrainMin = 64
)

// shard is one partition's event storage: a private wheel+heap queue of
// core-local events plus a sorted outbox filled by bulk drain rounds.
// batch is the reusable drain buffer that swaps with out.
//
// mt/mk/mq cache the shard's own minimum — the smaller of its queue head
// and outbox head ((maxTime, ^0) when empty), mq whether it sits in the
// queue — so the set-level minimum scan reads three flat fields per shard
// instead of merging wheel and heap heads. push can only lower the cached
// minimum (one comparison); pops and drains refresh it from the real
// heads.
//
// drained records the last round's contribution, read by the stall
// accounting. The pad keeps neighboring shards off each other's cache
// lines during parallel rounds.
type shard struct {
	q       eventQueue
	out     []event
	outHead int
	batch   []event
	mt      Time
	mk      uint64
	mq      bool
	drained int
	_       [40]byte
}

// drain moves every queued event strictly before (bt, bk) into the outbox.
// The caller guarantees the outbox is empty, so the sorted batch becomes
// the outbox by a buffer swap: drained events are copied exactly once.
// The shard minimum is unchanged (events move within the shard), but its
// location may switch from queue to outbox, so the caller refreshes the
// location caches after the round.
func (s *shard) drain(bt Time, bk uint64) {
	n := 0
	for {
		head := s.q.first()
		if head == nil || head.t > bt || (head.t == bt && head.key >= bk) {
			break
		}
		s.batch = append(s.batch, s.q.pop())
		n++
	}
	s.drained = n
	if n == 0 {
		return
	}
	s.out, s.batch = s.batch, s.out[:0]
	s.outHead = 0
}

// refreshMin recomputes the shard's cached minimum from its queue head
// and outbox head.
func (s *shard) refreshMin() {
	s.mt, s.mk, s.mq = maxTime, ^uint64(0), false
	if s.outHead < len(s.out) {
		ev := &s.out[s.outHead]
		s.mt, s.mk = ev.t, ev.key
	}
	if ev := s.q.first(); ev != nil && (ev.t < s.mt || (ev.t == s.mt && ev.key < s.mk)) {
		s.mt, s.mk, s.mq = ev.t, ev.key, true
	}
}

// shardSet is the engine's sharded local-event store. minT/minKey cache
// the earliest queued local event across every shard ((maxTime, ^0) when
// empty), minShard the shard holding it and minInQueue whether it sits in
// that shard's queue (as opposed to its outbox), so the dispatch loop and
// the zero-handoff fast paths compare against the whole shard population
// in O(1).
type shardSet struct {
	shards     []shard
	qCount     int // events in shard queues
	outCount   int // events in shard outboxes
	minT       Time
	minKey     uint64
	minShard   int
	minInQueue bool
	// par runs drain rounds on goroutines: pointless with one shard or
	// one host core. It never changes which rounds fire.
	par bool

	// Diagnostics, surfaced through SchedStats.
	drains     uint64
	dispatched uint64
	stalls     uint64
}

func (ss *shardSet) pending() int { return ss.qCount + ss.outCount }

func (ss *shardSet) resetMin() {
	ss.minT, ss.minKey, ss.minShard, ss.minInQueue = maxTime, ^uint64(0), 0, false
}

// push files ev under its owning core's shard and updates both cached
// minima with one comparison each.
func (ss *shardSet) push(core int, ev event, now Time) {
	i := core % len(ss.shards)
	s := &ss.shards[i]
	s.q.push(ev, now)
	ss.qCount++
	if ev.t < s.mt || (ev.t == s.mt && ev.key < s.mk) {
		s.mt, s.mk, s.mq = ev.t, ev.key, true
	}
	if ev.t < ss.minT || (ev.t == ss.minT && ev.key < ss.minKey) {
		ss.minT, ss.minKey, ss.minShard, ss.minInQueue = ev.t, ev.key, i, true
	}
}

// rescan recomputes the set-level minimum from the per-shard caches: S
// flat comparisons, no queue access.
func (ss *shardSet) rescan() {
	ss.resetMin()
	for i := range ss.shards {
		s := &ss.shards[i]
		if s.mt < ss.minT || (s.mt == ss.minT && s.mk < ss.minKey) {
			ss.minT, ss.minKey, ss.minShard, ss.minInQueue = s.mt, s.mk, i, s.mq
		}
	}
}

// popMin removes and returns the event matching the cached minimum, then
// re-derives both cache levels (the popped shard from its real heads,
// the set from the flat per-shard caches).
func (ss *shardSet) popMin() event {
	s := &ss.shards[ss.minShard]
	var ev event
	if ss.minInQueue {
		ev = s.q.pop()
		ss.qCount--
	} else {
		ev = s.out[s.outHead]
		s.out[s.outHead] = event{}
		s.outHead++
		if s.outHead == len(s.out) {
			s.out = s.out[:0]
			s.outHead = 0
		}
		ss.outCount--
	}
	if ev.t != ss.minT || ev.key != ss.minKey {
		panic("sim: shard minimum cache out of sync")
	}
	s.refreshMin()
	ss.rescan()
	return ev
}

// clearAll empties every shard, for Shutdown.
func (ss *shardSet) clearAll() {
	for i := range ss.shards {
		s := &ss.shards[i]
		for s.q.len() > 0 {
			s.q.pop()
		}
		clear(s.out)
		s.out, s.outHead = s.out[:0], 0
		clear(s.batch)
		s.batch = s.batch[:0]
		s.drained = 0
		s.mt, s.mk, s.mq = maxTime, ^uint64(0), false
	}
	ss.qCount, ss.outCount = 0, 0
	ss.resetMin()
}

// ConfigureShards switches the engine's local-event store to n shards
// (n >= 1), or back to the unsharded engine (n <= 0, the default). One
// shard exercises the full horizon machinery without host parallelism,
// which is what the bit-identity suites lean on. It must be called before
// any local events are scheduled — in practice right after NewEngine — and
// panics otherwise (a programming error in a harness). Long-running
// callers that must survive bad inputs use SetShards instead.
func (e *Engine) ConfigureShards(n int) {
	if err := e.SetShards(n); err != nil {
		panic(err)
	}
}

// SetShards is ConfigureShards with an error return instead of a panic, so
// the machine-construction path of a long-running service can reject a
// reconfiguration attempt on a live engine without crashing the process.
func (e *Engine) SetShards(n int) error {
	if e.sh != nil && e.sh.pending() != 0 {
		return errors.New("sim: cannot reconfigure shards with local events pending")
	}
	if n <= 0 {
		e.sh = nil
		return nil
	}
	sh := &shardSet{
		shards: make([]shard, n),
		par:    n > 1 && runtime.GOMAXPROCS(0) > 1,
	}
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mt, s.mk = maxTime, ^uint64(0)
	}
	sh.resetMin()
	e.sh = sh
	return nil
}

// Shards returns the configured shard count, 0 when unsharded.
func (e *Engine) Shards() int {
	if e.sh == nil {
		return 0
	}
	return len(e.sh.shards)
}

// LocalSleepThen is SleepThen for an event owned by a single simulated
// core: in the unsharded engine it is exactly SleepThen, and in sharded
// mode the slow path files the continuation under core's shard instead of
// the shared queue. The zero-handoff fast path is preserved verbatim,
// with one extra guard — the clock may not advance past a queued local
// event. Both forms draw one sequence number at this call site, so the
// sharded and unsharded schedules are the same total order.
func (e *Engine) LocalSleepThen(core int, d Time, then func()) {
	sh := e.sh
	if sh == nil {
		e.SleepThen(d, then)
		return
	}
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: local sleep of %d cycles overflows the clock", d))
	}
	if t <= e.limit && sh.minT > t {
		if head := e.q.first(); head == nil || t < head.t || (t == head.t && head.key >= prioBit) {
			if e.cont != nil {
				panic("sim: LocalSleepThen fast path with a continuation already pending")
			}
			e.seq++
			e.now = t
			e.cont = then
			return
		}
	}
	e.seq++
	sh.push(core, event{t: t, key: e.seq, fn: then}, e.now)
}

// dispatchLocal runs the earliest queued local event if and only if it
// precedes every global queue event, returning whether it dispatched one.
// The caller (runEvents) guarantees the shard population is non-empty.
func (e *Engine) dispatchLocal() bool {
	sh := e.sh
	if sh.minT > e.limit {
		return false
	}
	head := e.q.first()
	if head != nil && (head.t < sh.minT || (head.t == sh.minT && head.key < sh.minKey)) {
		return false
	}
	// Bulk horizon advance: only when the population justifies a round
	// and every outbox is empty (so each shard's sorted batch swaps in
	// wholesale — no merging, ever). The condition depends on simulation
	// state alone, keeping rounds — and the diagnostics they feed —
	// host-independent.
	if sh.minInQueue && sh.outCount == 0 && sh.qCount >= parallelDrainMin {
		e.drainShards(head)
	}
	ev := sh.popMin()
	sh.dispatched++
	e.now = ev.t
	ev.fn()
	for e.cont != nil {
		fn := e.cont
		e.cont = nil
		fn()
	}
	return true
}

// drainShards runs one horizon advance: every shard moves its queued
// events strictly before the conservative bound into its outbox,
// concurrently when the host allows it. head is the global queue minimum
// (possibly nil). The bound always lies strictly past the cached shard
// minimum, so the round is never empty.
func (e *Engine) drainShards(head *event) {
	sh := e.sh
	bt, bk := sh.minT+shardHorizon, uint64(0)
	if bt < sh.minT {
		bt, bk = maxTime, ^uint64(0)
	}
	if head != nil && (head.t < bt || (head.t == bt && head.key < bk)) {
		bt, bk = head.t, head.key
	}
	if e.limit != maxTime {
		if lt := e.limit + 1; lt < bt || (lt == bt && bk > 0) {
			bt, bk = lt, 0
		}
	}
	if sh.par {
		// Shard workers touch only their own shard struct and read the
		// immutable bound: no shared mutable state, no locks. Payloads
		// never run here.
		var wg sync.WaitGroup
		for i := 1; i < len(sh.shards); i++ {
			s := &sh.shards[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.drain(bt, bk)
			}()
		}
		sh.shards[0].drain(bt, bk)
		wg.Wait()
	} else {
		for i := range sh.shards {
			sh.shards[i].drain(bt, bk)
		}
	}
	sh.drains++
	// Stall accounting comes from per-shard drain counts, identical in
	// serial and parallel rounds, so diagnostics stay deterministic. The
	// per-shard minimum values are unchanged by a drain; only their
	// queue-vs-outbox location moved, so refresh the location caches.
	moved, idle := 0, 0
	for i := range sh.shards {
		s := &sh.shards[i]
		if s.drained > 0 {
			moved += s.drained
			s.refreshMin()
		} else {
			idle++
		}
	}
	sh.qCount -= moved
	sh.outCount += moved
	if moved > 0 {
		sh.stalls += uint64(idle)
	}
	if sh.minInQueue {
		// The set minimum was drained into its shard's outbox.
		sh.minInQueue = false
	}
}
