package sim

import (
	"strings"
	"testing"
)

// TestTaskMirrorsProcSleepChain proves the core equivalence contract: a
// task advancing through SleepThen continuations observes the exact
// (time, order) schedule of a proc advancing through Sleeps, interleaved
// with a second party.
func TestTaskMirrorsProcSleepChain(t *testing.T) {
	run := func(useTask bool) []string {
		e := NewEngine(1)
		var log []string
		note := func(who string) { log = append(log, who) }
		// A foreign ticker creates interleavings at odd times.
		for i := Time(1); i <= 9; i += 2 {
			tick := i
			e.ScheduleAt(tick, PrioNormal, func() { note("tick") })
		}
		if useTask {
			e.GoTask("w", func(task *Task) {
				n := 0
				var step func()
				step = func() {
					note("w")
					n++
					if n == 5 {
						task.Finish()
						return
					}
					task.Sleep(2, step)
				}
				task.Sleep(2, step)
			})
		} else {
			e.Go("w", func(p *Proc) {
				for n := 0; n < 5; n++ {
					p.Sleep(2)
					note("w")
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	proc := run(false)
	task := run(true)
	if strings.Join(proc, ",") != strings.Join(task, ",") {
		t.Errorf("schedules diverge:\nproc: %v\ntask: %v", proc, task)
	}
}

// TestSleepThenFastPathTrampoline checks that a long chain of uncontended
// continuations runs entirely through the trampoline slot: same results,
// no event-queue growth beyond the initial spawn, and constant stack depth
// (the chain would overflow the stack if each continuation nested).
func TestSleepThenFastPathTrampoline(t *testing.T) {
	e := NewEngine(1)
	const steps = 200000
	n := 0
	e.GoTask("chain", func(task *Task) {
		var step func()
		step = func() {
			n++
			if n == steps {
				task.Finish()
				return
			}
			if e.Pending() != 0 {
				t.Errorf("step %d: %d queued events on the uncontended fast path", n, e.Pending())
			}
			task.Sleep(1, step)
		}
		step()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != steps {
		t.Fatalf("ran %d steps, want %d", n, steps)
	}
	if e.Now() != Time(steps-1) {
		t.Errorf("clock at %d, want %d", e.Now(), steps-1)
	}
}

// TestSleepThenRespectsHorizon verifies that the fast path cannot advance
// the clock past a RunUntil limit.
func TestSleepThenRespectsHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.GoTask("w", func(task *Task) {
		var step func()
		step = func() {
			fired++
			task.Sleep(10, step)
		}
		step()
	})
	if err := e.RunUntil(35); err != nil {
		t.Fatal(err)
	}
	// Steps at 0, 10, 20, 30; the wake at 40 is past the horizon.
	if fired != 4 {
		t.Errorf("fired %d times by cycle 35, want 4", fired)
	}
	if e.Now() != 35 {
		t.Errorf("clock at %d, want 35", e.Now())
	}
	e.Shutdown()
}

// TestTaskDeadlockReported ensures an unfinished task surfaces in the
// deadlock diagnostics like a parked process.
func TestTaskDeadlockReported(t *testing.T) {
	e := NewEngine(1)
	e.GoTask("stuck", func(*Task) {}) // never calls Finish
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || !strings.Contains(de.Parked[0], "stuck") {
		t.Errorf("diagnostics %v, want the stuck task", de.Parked)
	}
}

// TestWaitQueueMixedWaiters drives a queue holding both a parked process
// and a continuation, asserting FIFO wake order across the two styles.
func TestWaitQueueMixedWaiters(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	e.Go("p1", func(p *Proc) {
		q.Wait(p, "mixed")
		order = append(order, "p1")
	})
	e.GoTask("t1", func(task *Task) {
		q.WaitFn(e, func() {
			order = append(order, "t1")
			task.Finish()
		})
	})
	e.Go("p2", func(p *Proc) {
		q.Wait(p, "mixed")
		order = append(order, "p2")
	})
	e.Schedule(5, func() { q.WakeAll(0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "p1,t1,p2" {
		t.Errorf("wake order %s, want p1,t1,p2", got)
	}
	if q.Len() != 0 {
		t.Errorf("queue still holds %d waiters", q.Len())
	}
}

// TestWaitQueueWakeOneMixed checks WakeOne across waiter styles.
func TestWaitQueueWakeOneMixed(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	e.GoTask("t1", func(task *Task) {
		q.WaitFn(e, func() {
			order = append(order, "t1")
			task.Finish()
		})
	})
	e.Go("p1", func(p *Proc) {
		q.Wait(p, "mixed")
		order = append(order, "p1")
	})
	e.Schedule(3, func() { q.WakeOne(0) })
	e.Schedule(7, func() { q.WakeOne(0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "t1,p1" {
		t.Errorf("wake order %s, want t1,p1", got)
	}
}

// TestGoTaskAfterShutdownPanics mirrors the Go-after-Shutdown guard.
func TestGoTaskAfterShutdownPanics(t *testing.T) {
	e := NewEngine(1)
	e.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("GoTask after Shutdown did not panic")
		}
	}()
	e.GoTask("late", func(*Task) {})
}
