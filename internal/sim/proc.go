package sim

import "runtime"

// Proc is a cooperative simulation process. Exactly one process runs at any
// instant; a process yields control by sleeping or parking, and the engine
// resumes it from a scheduled event. All Proc methods must be called from
// the process's own goroutine, except Wake, which is called by whoever
// unblocks it.
type Proc struct {
	eng        *Engine
	name       string
	resume     chan struct{}
	done       bool
	killed     bool
	parked     bool
	wakeQueued bool
	reason     string
}

// Go starts fn as a new process. The process begins running at the current
// simulation time (after already-queued same-cycle events).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	if e.stopped {
		panic("sim: Go after Shutdown")
	}
	p := &Proc{eng: e, name: name, resume: make(chan struct{}), parked: true}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.eng.pv = r
				p.eng.pstack = debugStack()
			}
			p.done = true
			p.eng.handoff <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			return
		}
		fn(p)
	}()
	e.Schedule(0, func() { e.dispatch(p) })
	return p
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.eng.now }

// yield transfers control to the engine and blocks until dispatched again.
func (p *Proc) yield() {
	p.eng.handoff <- struct{}{}
	<-p.resume
	if p.killed {
		runtime.Goexit()
	}
}

// Sleep suspends the process for d cycles. Sleep(0) yields and resumes in
// the same cycle, after other already-queued same-cycle events.
func (p *Proc) Sleep(d Time) {
	p.parked = true
	p.wakeQueued = true
	p.reason = "sleep"
	p.eng.Schedule(d, func() { p.eng.dispatch(p) })
	p.yield()
}

// SleepUntil suspends the process until absolute time t (no-op if t is not
// in the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Park suspends the process indefinitely; some other event must call Wake.
// The reason string is reported in deadlock diagnostics.
func (p *Proc) Park(reason string) {
	p.parked = true
	p.reason = reason
	p.yield()
}

// Wake schedules a parked process to resume after d cycles. Waking a
// process that is not parked, or that already has a wake queued, panics:
// both indicate a bookkeeping bug in the caller.
func (p *Proc) Wake(d Time) {
	if !p.parked || p.wakeQueued {
		panic("sim: Wake of process " + p.name + " that is not parked or already woken")
	}
	p.wakeQueued = true
	p.eng.Schedule(d, func() { p.eng.dispatch(p) })
}

// Parked reports whether the process is currently parked without a pending
// wake event.
func (p *Proc) Parked() bool { return p.parked && !p.wakeQueued }

func debugStack() []byte { return stackBytes() }
