package sim

import (
	"fmt"
	"runtime"
)

// Proc is a cooperative simulation process. Exactly one process runs at any
// instant; a process yields control by sleeping or parking, and the engine
// resumes it from a scheduled event. All Proc methods must be called from
// the process's own goroutine, except Wake, which is called by whoever
// unblocks it.
type Proc struct {
	eng        *Engine
	name       string
	resume     chan struct{}
	done       bool
	killed     bool
	parked     bool
	wakeQueued bool
	reason     string
}

// Go starts fn as a new process. The process begins running at the current
// simulation time (after already-queued same-cycle events).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	if e.stopped {
		panic("sim: Go after Shutdown")
	}
	p := &Proc{eng: e, name: name, resume: make(chan struct{}), parked: true}
	e.procs[p] = struct{}{}
	go func() {
		defer p.exit()
		<-p.resume
		if p.killed {
			return
		}
		fn(p)
	}()
	e.scheduleProc(0, p)
	return p
}

// exit runs as the process goroutine's outermost defer: it records a panic
// for the engine to rethrow, retires the process, and passes the control
// token onward.
func (p *Proc) exit() {
	e := p.eng
	if r := recover(); r != nil {
		e.pv = r
		e.pstack = debugStack()
	}
	p.done = true
	if p.killed {
		// Shutdown resumed us and is blocked on handoff; it owns all
		// remaining bookkeeping.
		e.handoff <- struct{}{}
		return
	}
	delete(e.procs, p)
	// The recover above has already fired, so a panic raised by a callback
	// event run inline below would otherwise escape the goroutine and
	// abort the program. Catch it and route it to the engine like any
	// other process panic.
	defer func() {
		if r := recover(); r != nil {
			e.pv = r
			e.pstack = debugStack()
			e.handoff <- struct{}{}
		}
	}()
	// A dying process cannot be dispatched again (done is set), so run the
	// scheduler with self=nil and hand the token to whoever is next.
	if e.runEvents(nil) == tokenDone {
		e.handoff <- struct{}{}
	}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.eng.now }

// yield passes the control token onward and blocks until dispatched again.
// After the pass, this goroutine touches no engine state until its resume
// channel fires, so the next token holder runs undisturbed. If the next
// runnable event is this process's own wake-up (common when an inline
// callback — a channel arbiter, an invalidation — immediately re-wakes the
// parker), yield returns without any channel traffic.
func (p *Proc) yield() {
	e := p.eng
	switch e.runEvents(p) {
	case tokenSelf:
		return
	case tokenDone:
		e.handoff <- struct{}{}
	}
	<-p.resume
	if p.killed {
		runtime.Goexit()
	}
}

// Sleep suspends the process for d cycles. Sleep(0) yields and resumes in
// the same cycle, after other already-queued same-cycle events.
func (p *Proc) Sleep(d Time) {
	e := p.eng
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: sleep of %d cycles overflows the clock", d))
	}
	// Zero-handoff fast path: if this wake-up would be the very next event
	// the engine pops — nothing else in the queue precedes (t, PrioNormal,
	// next-seq), and t is within the run horizon — then parking and being
	// re-dispatched would execute nothing in between. Advance the clock
	// inline instead. The sequence number is still consumed so event
	// ordering matches the slow path exactly.
	if t <= e.limit && (e.sh == nil || e.sh.minT > t) {
		// At equal times this event's sequence is the largest, so it only
		// precedes the queue head on a strictly earlier time — or the same
		// time when the head is PrioLate and this wake is PrioNormal.
		// Sharded mode adds one guard: any queued local event at or before
		// t was sequenced earlier and must dispatch first.
		if head := e.q.first(); head == nil ||
			t < head.t || (t == head.t && head.key >= prioBit) {
			e.seq++
			e.now = t
			return
		}
	}
	p.parked = true
	p.wakeQueued = true
	p.reason = "sleep"
	e.scheduleProc(d, p)
	p.yield()
}

// SleepUntil suspends the process until absolute time t (no-op if t is not
// in the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Park suspends the process indefinitely; some other event must call Wake.
// The reason string is reported in deadlock diagnostics.
func (p *Proc) Park(reason string) {
	p.parked = true
	p.reason = reason
	p.yield()
}

// Wake schedules a parked process to resume after d cycles. Waking a
// process that is not parked, or that already has a wake queued, panics:
// both indicate a bookkeeping bug in the caller.
func (p *Proc) Wake(d Time) {
	if !p.parked || p.wakeQueued {
		panic("sim: Wake of process " + p.name + " that is not parked or already woken")
	}
	p.wakeQueued = true
	p.eng.scheduleProc(d, p)
}

// Parked reports whether the process is currently parked without a pending
// wake event.
func (p *Proc) Parked() bool { return p.parked && !p.wakeQueued }

func debugStack() []byte { return stackBytes() }
