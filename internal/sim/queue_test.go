package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestPoppedEventsDontPinClosures is a regression test for a memory
// retention bug in the old container/heap event queue: the popped slot in
// the underlying array kept the event's fn closure alive, pinning
// everything the closure captured for the queue's lifetime. The queue must
// zero vacated slots so executed closures are collectable.
func TestPoppedEventsDontPinClosures(t *testing.T) {
	e := NewEngine(1)
	fin := make(chan struct{})
	obj := new([1 << 20]byte)
	runtime.SetFinalizer(obj, func(*[1 << 20]byte) { close(fin) })
	e.Schedule(1, func() { obj[0] = 1 })
	// A later event keeps the queue non-empty across the pop, so the
	// vacated slot is a live array slot rather than a freed slice.
	e.Schedule(2, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	obj = nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-fin:
			return
		case <-deadline:
			t.Fatal("popped event still pins its closure: slot not zeroed")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestEventQueueOrderProperty drives the wheel+heap composite with
// adversarial timestamps — same-cycle bursts, mixed priorities, and offsets
// straddling the wheel horizon — under the engine's monotone-clock
// contract, and checks it pops in exact (time, priority, sequence) order
// against a linear-scan reference.
func TestEventQueueOrderProperty(t *testing.T) {
	rng := NewRand(77)
	var q eventQueue
	var seq uint64
	var now Time
	type ref struct {
		t   Time
		key uint64
	}
	var want []ref
	pushOne := func() {
		seq++
		// Mostly near offsets (wheel), occasionally far past the horizon
		// (heap fallback).
		d := Time(rng.Intn(50))
		if rng.Intn(5) == 0 {
			d = Time(100 + rng.Intn(900))
		}
		key := seq
		if rng.Intn(3) == 0 {
			key |= prioBit
		}
		q.push(event{t: now + d, key: key, fn: func() {}}, now)
		want = append(want, ref{now + d, key})
	}
	popOne := func() {
		best := 0
		for i := 1; i < len(want); i++ {
			if want[i].t < want[best].t ||
				(want[i].t == want[best].t && want[i].key < want[best].key) {
				best = i
			}
		}
		ev := q.pop()
		if ev.t != want[best].t || ev.key != want[best].key {
			t.Fatalf("pop = (%d,%#x), want (%d,%#x)", ev.t, ev.key, want[best].t, want[best].key)
		}
		now = ev.t
		want = append(want[:best], want[best+1:]...)
	}
	// Interleave pushes and pops so both levels are exercised at many
	// sizes, including events that cross the horizon between push and pop.
	for round := 0; round < 2000; round++ {
		if len(want) == 0 || rng.Intn(3) > 0 {
			pushOne()
		} else {
			popOne()
		}
	}
	for len(want) > 0 {
		popOne()
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}

// TestSchedStatsCountRouting checks the wheel-hit / heap-fallback counters:
// near events land in the wheel, far ones in the heap.
func TestSchedStatsCountRouting(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i*7%wheelSpan), func() {})
	}
	for i := 0; i < 3; i++ {
		e.Schedule(wheelSpan+Time(i*1000), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.SchedStats()
	if st.WheelEvents != 10 || st.HeapEvents != 3 {
		t.Fatalf("SchedStats = %+v, want 10 wheel and 3 heap events", st)
	}
	e.StepPoolMiss()
	e.StepPoolHit()
	e.StepPoolHit()
	st = e.SchedStats()
	if st.StepPoolHits != 2 || st.StepPoolMisses != 1 {
		t.Fatalf("SchedStats = %+v, want 2 pool hits and 1 miss", st)
	}
}
