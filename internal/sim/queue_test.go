package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestPoppedEventsDontPinClosures is a regression test for a memory
// retention bug in the old container/heap event queue: the popped slot in
// the underlying array kept the event's fn closure alive, pinning
// everything the closure captured for the queue's lifetime. The queue must
// zero vacated slots so executed closures are collectable.
func TestPoppedEventsDontPinClosures(t *testing.T) {
	e := NewEngine(1)
	fin := make(chan struct{})
	obj := new([1 << 20]byte)
	runtime.SetFinalizer(obj, func(*[1 << 20]byte) { close(fin) })
	e.Schedule(1, func() { obj[0] = 1 })
	// A later event keeps the queue non-empty across the pop, so the
	// vacated slot is a live array slot rather than a freed slice.
	e.Schedule(2, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	obj = nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-fin:
			return
		case <-deadline:
			t.Fatal("popped event still pins its closure: slot not zeroed")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestEventQueueOrderProperty drives the 4-ary heap with adversarial
// timestamps and checks it pops in exact (time, priority, sequence) order.
func TestEventQueueOrderProperty(t *testing.T) {
	rng := NewRand(77)
	var q eventQueue
	var seq uint64
	type ref struct {
		t   Time
		key uint64
	}
	var want []ref
	pushOne := func() {
		seq++
		ts := Time(rng.Intn(50))
		key := seq
		if rng.Intn(3) == 0 {
			key |= prioBit
		}
		q.push(event{t: ts, key: key, fn: func() {}})
		want = append(want, ref{ts, key})
	}
	popOne := func() {
		best := 0
		for i := 1; i < len(want); i++ {
			if want[i].t < want[best].t ||
				(want[i].t == want[best].t && want[i].key < want[best].key) {
				best = i
			}
		}
		ev := q.pop()
		if ev.t != want[best].t || ev.key != want[best].key {
			t.Fatalf("pop = (%d,%#x), want (%d,%#x)", ev.t, ev.key, want[best].t, want[best].key)
		}
		want = append(want[:best], want[best+1:]...)
	}
	// Interleave pushes and pops so the heap is exercised at many sizes.
	for round := 0; round < 2000; round++ {
		if len(want) == 0 || rng.Intn(3) > 0 {
			pushOne()
		} else {
			popOne()
		}
	}
	for len(want) > 0 {
		popOne()
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}
