package sim

import "runtime/debug"

func stackBytes() []byte { return debug.Stack() }
