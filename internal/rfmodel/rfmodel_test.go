package rfmodel

import (
	"math"
	"strings"
	"testing"
)

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestScaleReproducesPaperNumbers(t *testing.T) {
	// Section 2: 65nm (0.23mm2, 31.2mW, 16Gb/s) -> 22nm (0.1mm2, 16mW).
	d := Scale(Yu65, 22)
	if !within(d.AreaMM2, 0.10, 0.005) {
		t.Errorf("area at 22nm = %.4f, want ~0.10", d.AreaMM2)
	}
	if !within(d.PowerMW, 16, 0.5) {
		t.Errorf("power at 22nm = %.2f, want ~16", d.PowerMW)
	}
	if d.BandwidthGbps != 16 {
		t.Errorf("bandwidth changed: %v", d.BandwidthGbps)
	}
}

func TestScaleIsIdentityAtOrAboveNode(t *testing.T) {
	if d := Scale(Yu65, 65); d != Yu65 {
		t.Errorf("Scale to same node changed the design: %+v", d)
	}
	if d := Scale(Yu65, 90); d != Yu65 {
		t.Errorf("Scale up changed the design: %+v", d)
	}
}

func TestScaleMonotone(t *testing.T) {
	prevA, prevP := Yu65.AreaMM2, Yu65.PowerMW
	for _, nm := range []int{45, 32, 22, 16} {
		d := Scale(Yu65, nm)
		if d.AreaMM2 >= prevA {
			t.Errorf("area not shrinking at %dnm: %v >= %v", nm, d.AreaMM2, prevA)
		}
		if d.PowerMW > prevP {
			t.Errorf("power grew at %dnm: %v > %v", nm, d.PowerMW, prevP)
		}
		prevA, prevP = d.AreaMM2, d.PowerMW
	}
}

func TestWiSyncNode22Totals(t *testing.T) {
	// Table 1: 0.14 mm^2 (0.12 in the table is transceiver+antennas at a
	// slightly different accounting; Table 4 uses 0.14) and 18 mW.
	area, power := WiSyncNode22()
	if !within(area, 0.14, 0.01) {
		t.Errorf("area = %.3f, want ~0.14", area)
	}
	if !within(power, 18, 0.6) {
		t.Errorf("power = %.2f, want ~18", power)
	}
}

func TestTable4Percentages(t *testing.T) {
	rows := Table4()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if !within(rows[0].AreaPct, 0.7, 0.1) || !within(rows[0].PowerPct, 0.4, 0.1) {
		t.Errorf("Xeon: %.2f%% area, %.2f%% power (paper 0.7, 0.4)", rows[0].AreaPct, rows[0].PowerPct)
	}
	if !within(rows[1].AreaPct, 5.6, 0.4) || !within(rows[1].PowerPct, 1.8, 0.2) {
		t.Errorf("Atom: %.2f%% area, %.2f%% power (paper 5.6, 1.8)", rows[1].AreaPct, rows[1].PowerPct)
	}
	if s := rows[0].String(); !strings.Contains(s, "Xeon") {
		t.Errorf("row String() = %q", s)
	}
}

func TestGenerations(t *testing.T) {
	cases := []struct{ from, to, want int }{
		{65, 65, 0}, {65, 45, 1}, {65, 22, 3}, {65, 16, 4}, {45, 22, 2}, {22, 65, 0},
	}
	for _, c := range cases {
		if got := generations(c.from, c.to); got != c.want {
			t.Errorf("generations(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}
