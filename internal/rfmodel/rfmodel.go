// Package rfmodel implements the transceiver/antenna area and power scaling
// argument of Section 2 and the comparison of Table 4.
//
// The anchor is the measured 65 nm design of Yu et al. [51]: a transceiver
// plus one antenna providing 16 Gb/s in 0.23 mm^2 at 31.2 mW. Following the
// paper, scaling to 22 nm uses a sublinear area trend (more conservative
// than the linear trend of related RF-interconnect work) to reach 0.1 mm^2,
// and the 1.67x power-reduction trend of Chang et al. [11] applied twice
// (65 -> 45/40 -> 22 nm) to reach ~16 mW at the same 16 Gb/s. The Tone
// channel adds simplified transceiver circuitry and a second antenna at
// 90 GHz: 0.04 mm^2 and 2 mW at 22 nm. Totals: 0.14 mm^2 and 18 mW.
package rfmodel

import (
	"fmt"
	"math"
)

// Transceiver describes one transceiver + antenna design point.
type Transceiver struct {
	TechNM        int     // CMOS node in nm
	AreaMM2       float64 // transceiver + antenna area
	PowerMW       float64
	BandwidthGbps float64
	CenterGHz     float64
}

// Yu65 is the measured 65 nm anchor design [51].
var Yu65 = Transceiver{
	TechNM:        65,
	AreaMM2:       0.23,
	PowerMW:       31.2,
	BandwidthGbps: 16,
	CenterGHz:     60,
}

// powerScalePerGen is the per-generation power reduction trend from [11].
const powerScalePerGen = 1.67

// generations returns how many full technology generations separate from
// and to (65 -> 45 -> 32 -> 22 gives 3; the paper's estimate applies the
// trend conservatively, landing at half the 65 nm power per two steps).
func generations(fromNM, toNM int) int {
	nodes := []int{65, 45, 32, 22, 16, 11}
	gi := func(nm int) int {
		for i, n := range nodes {
			if nm >= n {
				return i
			}
		}
		return len(nodes) - 1
	}
	g := gi(toNM) - gi(fromNM)
	if g < 0 {
		g = 0
	}
	return g
}

// Scale projects a design to a target technology node. Area scales
// sublinearly with feature size (exponent ~0.75 of the linear trend, the
// paper's conservative choice, calibrated to reproduce 0.23 -> 0.1 mm^2
// from 65 to 22 nm); power follows the 1.67x/2-generations trend of [11],
// calibrated to 31.2 -> 16 mW.
func Scale(d Transceiver, toNM int) Transceiver {
	if toNM >= d.TechNM {
		return d
	}
	linear := float64(toNM) / float64(d.TechNM)
	// Sublinear area: apply 77% of the linear shrink in log space.
	area := d.AreaMM2 * math.Pow(linear, 0.77)
	gens := generations(d.TechNM, toNM)
	power := d.PowerMW / math.Pow(powerScalePerGen, float64(gens)/2.3)
	return Transceiver{
		TechNM:        toNM,
		AreaMM2:       area,
		PowerMW:       power,
		BandwidthGbps: d.BandwidthGbps,
		CenterGHz:     d.CenterGHz,
	}
}

// ToneAddonArea22 and ToneAddonPower22 are the 22 nm cost of the Tone
// channel support: simplified transceiver extensions plus a second, smaller
// 90 GHz antenna (scaled from the 65 nm figures of [14, 49]).
const (
	ToneAddonArea22  = 0.04 // mm^2
	ToneAddonPower22 = 2.0  // mW
)

// WiSyncNode22 returns the full per-node wireless cost at 22 nm: the scaled
// data transceiver + antenna plus the Tone channel addon (Table 1/Table 4:
// 0.14 mm^2, 18 mW).
func WiSyncNode22() (areaMM2, powerMW float64) {
	d := Scale(Yu65, 22)
	return d.AreaMM2 + ToneAddonArea22, d.PowerMW + ToneAddonPower22
}

// Core describes a reference core for Table 4.
type Core struct {
	Name    string
	AreaMM2 float64
	TDPW    float64
}

// Reference cores at 22 nm (Table 4): per-core figures derived from an
// 18-core Haswell at 2.1 GHz (135 W TDP, frequency-corrected to ~5 W/core)
// and an 8-core Avoton/Silvermont at 1.7 GHz (12 W, ~1 W/core at 1 GHz).
var (
	XeonHaswell    = Core{Name: "Xeon Haswell", AreaMM2: 21.1, TDPW: 5.0}
	AtomSilvermont = Core{Name: "Atom Silvermont", AreaMM2: 2.5, TDPW: 1.0}
)

// Table4Row is one comparison column of Table 4.
type Table4Row struct {
	Core      Core
	TxAreaMM2 float64
	TxPowerMW float64
	AreaPct   float64 // transceiver area as % of core area
	PowerPct  float64 // transceiver power as % of core TDP
}

// Table4 computes the paper's Table 4.
func Table4() []Table4Row {
	area, power := WiSyncNode22()
	mk := func(c Core) Table4Row {
		return Table4Row{
			Core:      c,
			TxAreaMM2: area,
			TxPowerMW: power,
			AreaPct:   100 * area / c.AreaMM2,
			PowerPct:  100 * (power / 1000) / c.TDPW,
		}
	}
	return []Table4Row{mk(XeonHaswell), mk(AtomSilvermont)}
}

// String renders a row like the paper's table.
func (r Table4Row) String() string {
	return fmt.Sprintf("%-16s area %5.2f mm2 vs %5.2f mm2 (%.1f%%), power %4.0f mW vs %4.1f W (%.1f%%)",
		r.Core.Name, r.TxAreaMM2, r.Core.AreaMM2, r.AreaPct, r.TxPowerMW, r.Core.TDPW, r.PowerPct)
}
