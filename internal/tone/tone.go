// Package tone implements the WiSync Tone channel and its per-node tone
// controllers (Sections 4.1, 4.2.2, 5.1).
//
// The Tone channel carries no data: nodes either emit a tone in a 1 ns slot
// or stay silent. A tone barrier works by absence-detection: when the first
// core arrives it broadcasts a message with the Tone bit set on the Data
// channel; every other participating ("armed") node then emits a continuous
// tone, and stops when it arrives. When the channel falls silent, every
// controller toggles the barrier's BM location, releasing the spinning
// cores — a sense-reversing barrier with a single Data-channel message per
// episode.
//
// Multiple concurrently active barriers time-share the channel: slots are
// assigned round-robin in ActiveB order (Figure 6), so a barrier at
// position i of K active barriers can only check its tone every K cycles.
// AllocB (allocated barriers, with per-node Armed bits) and ActiveB
// (currently active, with per-node Arrived bits) are replicated and
// identical on every node except for those bits, so the model keeps one
// logical copy of each.
package tone

import (
	"fmt"

	"wisync/internal/bmem"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// Params configures the tone controller tables.
type Params struct {
	// TableSize bounds AllocB and ActiveB (equal sizes, Section 5.1).
	TableSize int
	// MaxPerPID bounds AllocB entries per process so one program cannot
	// starve the others (Section 5.1).
	MaxPerPID int
}

// DefaultParams returns the default table geometry.
func DefaultParams() Params { return Params{TableSize: 16, MaxPerPID: 8} }

// ErrTableFull reports AllocB overflow.
var ErrTableFull = fmt.Errorf("tone: AllocB full")

// ErrPIDQuota reports that a process exceeded its AllocB quota.
var ErrPIDQuota = fmt.Errorf("tone: per-process AllocB quota exceeded")

// NotParticipantError reports a tone_st by a core whose AllocB entry is not
// armed: tone barrier participation is fixed at allocation (Section 4.4).
type NotParticipantError struct {
	Node int
	Addr uint32
}

func (e *NotParticipantError) Error() string {
	return fmt.Sprintf("tone: node %d is not a participant of barrier at %d", e.Node, e.Addr)
}

type bitset [4]uint64

func (b *bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b *bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b *bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

type allocEntry struct {
	addr  uint32
	pid   uint16
	armed bitset
	nArm  int
}

type activeBarrier struct {
	addr         uint32
	participants bitset
	arrived      bitset
	remaining    int
	activatedAt  sim.Time
}

type pendingInit struct {
	active bool
	addr   uint32
	tok    wireless.Token
}

// Stats accumulates tone controller counters.
type Stats struct {
	Activations    uint64
	Completions    uint64
	InitWithdrawn  uint64
	DetectDelaySum sim.Time // completion-to-toggle latency total
	ActiveCycles   sim.Time // cycles with at least one active barrier
}

// Controller is the chip-wide tone machinery (all per-node controllers plus
// the shared channel state).
type Controller struct {
	eng     *sim.Engine
	bm      *bmem.BM
	net     *wireless.Network
	nodes   int
	p       Params
	alloc   []*allocEntry
	active  []*activeBarrier
	pending []pendingInit
	byPID   map[uint16]int
	lastAct sim.Time
	// Stats is exported for harness reporting.
	Stats Stats
}

// New wires a controller to the Broadcast Memory and Data channel.
func New(eng *sim.Engine, bm *bmem.BM, net *wireless.Network, p Params) *Controller {
	if p.TableSize == 0 {
		p = DefaultParams()
	}
	c := &Controller{
		eng:     eng,
		bm:      bm,
		net:     net,
		nodes:   bm.Nodes(),
		p:       p,
		pending: make([]pendingInit, bm.Nodes()),
		byPID:   make(map[uint16]int),
	}
	bm.SetToneInitHandler(c.onToneInit)
	return c
}

// Allocate creates a tone barrier variable owned by pid, arming the listed
// participant nodes (the runtime must know participation up front; nodes
// not armed here refuse to join, Section 4.4). It allocates the backing BM
// entry, broadcasts the allocation, and installs the AllocB entry on every
// node. It returns the BM address of the barrier variable.
func (c *Controller) Allocate(p *sim.Proc, node int, pid uint16, participants []int) (uint32, error) {
	if len(participants) == 0 {
		return 0, fmt.Errorf("tone: barrier with no participants")
	}
	if len(c.alloc) >= c.p.TableSize {
		return 0, ErrTableFull
	}
	if c.byPID[pid] >= c.p.MaxPerPID {
		return 0, ErrPIDQuota
	}
	addr, err := c.bm.Alloc(p, node, pid, true)
	if err != nil {
		return 0, err
	}
	e := &allocEntry{addr: addr, pid: pid}
	for _, n := range participants {
		if n < 0 || n >= c.nodes {
			return 0, fmt.Errorf("tone: participant %d out of range", n)
		}
		if !e.armed.has(n) {
			e.armed.set(n)
			e.nArm++
		}
	}
	c.alloc = append(c.alloc, e)
	c.byPID[pid]++
	return addr, nil
}

// AllocateBare is Allocate without simulated time, for harness setup.
func (c *Controller) AllocateBare(pid uint16, participants []int) (uint32, error) {
	if len(participants) == 0 {
		return 0, fmt.Errorf("tone: barrier with no participants")
	}
	if len(c.alloc) >= c.p.TableSize {
		return 0, ErrTableFull
	}
	if c.byPID[pid] >= c.p.MaxPerPID {
		return 0, ErrPIDQuota
	}
	addr, err := c.bm.AllocBare(pid, true)
	if err != nil {
		return 0, err
	}
	e := &allocEntry{addr: addr, pid: pid}
	for _, n := range participants {
		if !e.armed.has(n) {
			e.armed.set(n)
			e.nArm++
		}
	}
	c.alloc = append(c.alloc, e)
	c.byPID[pid]++
	return addr, nil
}

// Deallocate removes the barrier's AllocB entry everywhere and frees its BM
// entry. Deallocating an active barrier is a program error.
func (c *Controller) Deallocate(p *sim.Proc, node int, pid uint16, addr uint32) error {
	if c.findActive(addr) != nil {
		return fmt.Errorf("tone: deallocate of active barrier at %d", addr)
	}
	ae := c.findAlloc(addr)
	if ae == nil {
		return fmt.Errorf("tone: deallocate of unallocated barrier at %d", addr)
	}
	if err := c.bm.Free(p, node, pid, addr); err != nil {
		return err
	}
	c.removeAlloc(addr)
	c.byPID[pid]--
	return nil
}

func (c *Controller) findAlloc(addr uint32) *allocEntry {
	for _, e := range c.alloc {
		if e.addr == addr {
			return e
		}
	}
	return nil
}

func (c *Controller) removeAlloc(addr uint32) {
	for i, e := range c.alloc {
		if e.addr == addr {
			c.alloc = append(c.alloc[:i], c.alloc[i+1:]...)
			return
		}
	}
}

func (c *Controller) findActive(addr uint32) *activeBarrier {
	for _, b := range c.active {
		if b.addr == addr {
			return b
		}
	}
	return nil
}

func (c *Controller) activePos(addr uint32) int {
	for i, b := range c.active {
		if b.addr == addr {
			return i
		}
	}
	return -1
}

// Armed reports whether node participates in the barrier at addr.
func (c *Controller) Armed(addr uint32, node int) bool {
	e := c.findAlloc(addr)
	return e != nil && e.armed.has(node)
}

// ActiveBarriers returns how many barriers currently share the Tone channel.
func (c *Controller) ActiveBarriers() int { return len(c.active) }
