package tone

import (
	"errors"
	"fmt"
	"testing"

	"wisync/internal/bmem"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

func newCtl(t *testing.T, nodes int) (*sim.Engine, *bmem.BM, *Controller) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := wireless.New(eng, nodes, wireless.DefaultParams())
	bm := bmem.New(eng, net, nodes, bmem.DefaultParams())
	return eng, bm, New(eng, bm, net, DefaultParams())
}

// toneBarrierWait performs one full sense-reversing tone barrier episode.
func toneBarrierWait(p *sim.Proc, c *Controller, bm *bmem.BM, node int, addr uint32, sense uint64) {
	if err := c.ToneStore(p, node, 1, addr); err != nil {
		panic(err)
	}
	for {
		v, err := c.ToneLoad(p, node, 1, addr)
		if err != nil {
			panic(err)
		}
		if v == sense {
			return
		}
		bm.WaitChange(p, node, addr)
	}
}

func TestSingleBarrierAllArrive(t *testing.T) {
	const n = 8
	eng, bm, c := newCtl(t, n)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	addr, err := c.AllocateBare(1, parts)
	if err != nil {
		t.Fatal(err)
	}
	var releases []sim.Time
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(i * 10)) // skewed arrivals
			toneBarrierWait(p, c, bm, i, addr, 1)
			releases = append(releases, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != n {
		t.Fatalf("released %d threads, want %d", len(releases), n)
	}
	// No thread may be released before the last arrival at cycle 70.
	for _, r := range releases {
		if r < 70 {
			t.Errorf("thread released at %d, before last arrival at 70", r)
		}
		if r > 100 {
			t.Errorf("thread released at %d, too long after last arrival", r)
		}
	}
	if c.Stats.Activations != 1 || c.Stats.Completions != 1 {
		t.Errorf("activations/completions = %d/%d", c.Stats.Activations, c.Stats.Completions)
	}
	if c.ActiveBarriers() != 0 {
		t.Errorf("ActiveBarriers = %d after completion", c.ActiveBarriers())
	}
}

func TestSimultaneousArrivalsOneActivation(t *testing.T) {
	// All nodes arrive in the same cycle: several init messages contend,
	// one activates the barrier, the rest are withdrawn.
	const n = 16
	eng, bm, c := newCtl(t, n)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	addr, _ := c.AllocateBare(1, parts)
	var done int
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			toneBarrierWait(p, c, bm, i, addr, 1)
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if c.Stats.Activations != 1 {
		t.Errorf("Activations = %d, want 1", c.Stats.Activations)
	}
	if c.Stats.InitWithdrawn == 0 {
		t.Error("no redundant inits withdrawn despite simultaneous arrivals")
	}
}

func TestSenseReversingReuse(t *testing.T) {
	// Three consecutive barrier episodes through the same variable.
	const n, episodes = 4, 3
	eng, bm, c := newCtl(t, n)
	addr, _ := c.AllocateBare(1, []int{0, 1, 2, 3})
	var finished int
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			sense := uint64(1)
			for e := 0; e < episodes; e++ {
				p.Sleep(sim.Time(p.Engine().Rand().Intn(40)))
				toneBarrierWait(p, c, bm, i, addr, sense)
				sense ^= 1
			}
			finished++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	if c.Stats.Completions != episodes {
		t.Errorf("Completions = %d, want %d", c.Stats.Completions, episodes)
	}
}

func TestBarrierSynchrony(t *testing.T) {
	// Property: no thread passes barrier k until every thread reached
	// barrier k. Track phase counts.
	const n, episodes = 8, 5
	eng, bm, c := newCtl(t, n)
	parts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	addr, _ := c.AllocateBare(1, parts)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			sense := uint64(1)
			for e := 0; e < episodes; e++ {
				p.Sleep(sim.Time(p.Engine().Rand().Intn(60)))
				phase[i] = e
				toneBarrierWait(p, c, bm, i, addr, sense)
				// At release, every thread must have reached e.
				for j := 0; j < n; j++ {
					if phase[j] < e {
						t.Errorf("thread %d passed barrier %d while thread %d at %d", i, e, j, phase[j])
					}
				}
				sense ^= 1
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonParticipantRejected(t *testing.T) {
	eng, _, c := newCtl(t, 4)
	addr, _ := c.AllocateBare(1, []int{0, 1})
	eng.Go("outsider", func(p *sim.Proc) {
		err := c.ToneStore(p, 3, 1, addr)
		var npe *NotParticipantError
		if !errors.As(err, &npe) {
			t.Errorf("err = %v, want NotParticipantError", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetParticipants(t *testing.T) {
	// Only cores 0 and 2 participate; the barrier completes without any
	// action from cores 1 and 3.
	eng, bm, c := newCtl(t, 4)
	addr, _ := c.AllocateBare(1, []int{0, 2})
	var done int
	for _, i := range []int{0, 2} {
		i := i
		eng.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(10 * i))
			toneBarrierWait(p, c, bm, i, addr, 1)
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

func TestTwoConcurrentBarriersShareToneChannel(t *testing.T) {
	// Two programs run independent tone barriers at the same time; slot
	// multiplexing must keep them independent and both must complete.
	eng, bm, c := newCtl(t, 8)
	addrA, _ := c.AllocateBare(1, []int{0, 1, 2, 3})
	addrB, _ := c.AllocateBare(2, []int{4, 5, 6, 7})
	var doneA, doneB int
	for i := 0; i < 4; i++ {
		i := i
		eng.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(i * 7))
			if err := c.ToneStore(p, i, 1, addrA); err != nil {
				t.Error(err)
				return
			}
			for {
				v, _ := c.ToneLoad(p, i, 1, addrA)
				if v == 1 {
					break
				}
				bm.WaitChange(p, i, addrA)
			}
			doneA++
		})
	}
	for i := 4; i < 8; i++ {
		i := i
		eng.Go(fmt.Sprintf("b%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(i * 11))
			if err := c.ToneStore(p, i, 2, addrB); err != nil {
				t.Error(err)
				return
			}
			for {
				v, _ := c.ToneLoad(p, i, 2, addrB)
				if v == 1 {
					break
				}
				bm.WaitChange(p, i, addrB)
			}
			doneB++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneA != 4 || doneB != 4 {
		t.Fatalf("doneA/doneB = %d/%d, want 4/4", doneA, doneB)
	}
	if c.Stats.Activations != 2 || c.Stats.Completions != 2 {
		t.Errorf("activations/completions = %d/%d, want 2/2", c.Stats.Activations, c.Stats.Completions)
	}
}

func TestAllocBOverflow(t *testing.T) {
	eng := sim.NewEngine(1)
	net := wireless.New(eng, 2, wireless.DefaultParams())
	bm := bmem.New(eng, net, 2, bmem.DefaultParams())
	p := DefaultParams()
	p.TableSize = 2
	p.MaxPerPID = 2
	c := New(eng, bm, net, p)
	if _, err := c.AllocateBare(1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateBare(2, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateBare(3, []int{0}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestPerPIDQuota(t *testing.T) {
	eng := sim.NewEngine(1)
	net := wireless.New(eng, 2, wireless.DefaultParams())
	bm := bmem.New(eng, net, 2, bmem.DefaultParams())
	p := DefaultParams()
	p.TableSize = 16
	p.MaxPerPID = 2
	c := New(eng, bm, net, p)
	c.AllocateBare(1, []int{0})
	c.AllocateBare(1, []int{0})
	if _, err := c.AllocateBare(1, []int{0}); !errors.Is(err, ErrPIDQuota) {
		t.Fatalf("err = %v, want ErrPIDQuota", err)
	}
	// A different PID still has quota.
	if _, err := c.AllocateBare(2, []int{1}); err != nil {
		t.Fatal(err)
	}
}

func TestDeallocate(t *testing.T) {
	eng, bm, c := newCtl(t, 4)
	_ = bm
	addr, _ := c.AllocateBare(1, []int{0, 1})
	eng.Go("p", func(p *sim.Proc) {
		if err := c.Deallocate(p, 0, 1, addr); err != nil {
			t.Fatal(err)
		}
		// The AllocB slot and quota are released.
		if _, err := c.Allocate(p, 0, 1, []int{0, 1}); err != nil {
			t.Errorf("re-allocate after dealloc: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeallocateActiveBarrierFails(t *testing.T) {
	eng, _, c := newCtl(t, 4)
	addr, _ := c.AllocateBare(1, []int{0, 1})
	eng.Go("t0", func(p *sim.Proc) {
		if err := c.ToneStore(p, 0, 1, addr); err != nil {
			t.Fatal(err)
		}
		// Barrier now active (waiting for core 1).
		if err := c.Deallocate(p, 0, 1, addr); err == nil {
			t.Error("deallocated an active barrier")
		}
		// Let core 1 arrive so the run terminates.
	})
	eng.Go("t1", func(p *sim.Proc) {
		p.Sleep(50)
		if err := c.ToneStore(p, 1, 1, addr); err != nil {
			t.Fatal(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleParticipantBarrier(t *testing.T) {
	eng, bm, c := newCtl(t, 2)
	addr, _ := c.AllocateBare(1, []int{0})
	eng.Go("solo", func(p *sim.Proc) {
		toneBarrierWait(p, c, bm, 0, addr, 1)
		if p.Now() > 30 {
			t.Errorf("solo barrier took %d cycles", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionDelayGrowsWithActiveBarriers(t *testing.T) {
	// With K active barriers the channel is time-multiplexed; a barrier's
	// silence detection can only happen in its own slots. We verify the
	// stat exists and completion still works with 3 concurrent barriers.
	eng, bm, c := newCtl(t, 12)
	var addrs []uint32
	for g := 0; g < 3; g++ {
		parts := []int{g * 4, g*4 + 1, g*4 + 2, g*4 + 3}
		a, err := c.AllocateBare(uint16(g+1), parts)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for g := 0; g < 3; g++ {
		for k := 0; k < 4; k++ {
			node := g*4 + k
			g, node := g, node
			eng.Go(fmt.Sprintf("g%dn%d", g, node), func(p *sim.Proc) {
				p.Sleep(sim.Time(node * 3))
				if err := c.ToneStore(p, node, uint16(g+1), addrs[g]); err != nil {
					t.Error(err)
					return
				}
				for {
					v, _ := c.ToneLoad(p, node, uint16(g+1), addrs[g])
					if v == 1 {
						break
					}
					bm.WaitChange(p, node, addrs[g])
				}
			})
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Completions != 3 {
		t.Fatalf("Completions = %d, want 3", c.Stats.Completions)
	}
	if c.Stats.DetectDelaySum == 0 {
		t.Error("DetectDelaySum = 0; detection should take at least a slot")
	}
}
