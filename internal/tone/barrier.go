package tone

import (
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// ToneStore is the tone_st instruction: node announces arrival at the
// barrier whose variable lives at addr (Section 4.2.2). It does not update
// the BM location. If this node's controller is already issuing a tone for
// addr, it simply stops (arrival registered); otherwise this node believes
// it is the first arriver and broadcasts the Tone-bit message on the Data
// channel. ToneStore returns when the arrival is architecturally visible.
func (c *Controller) ToneStore(p *sim.Proc, node int, pid uint16, addr uint32) error {
	if err := c.checkParticipant(node, pid, addr); err != nil {
		return err
	}
	if b := c.findActive(addr); b != nil {
		// Tone being issued locally: stop it (arrive).
		c.arrive(b, node)
		p.Sleep(1)
		return nil
	}
	// Not active: this node is (or ties for) the first arriver. Send the
	// init message; if another node's init commits first, ours is
	// withdrawn by the activation and our arrival is registered there.
	pi := &c.pending[node]
	*pi = pendingInit{active: true, addr: addr}
	committed := c.net.Send(p, wireless.Msg{
		Src: node, Addr: addr, Kind: wireless.KindToneInit, PID: pid,
	}, &pi.tok)
	if committed {
		pi.active = false
		// Our own commit activated the barrier (onToneInit ran) and
		// registered us as arrived.
		return nil
	}
	// Withdrawn: the activation marked us arrived.
	c.Stats.InitWithdrawn++
	return nil
}

// ToneStoreAsync is the continuation mirror of ToneStore: then runs at the
// cycle the arrival is architecturally visible. Faults are reported
// synchronously, before any simulated time elapses, exactly as in the
// blocking form.
func (c *Controller) ToneStoreAsync(node int, pid uint16, addr uint32, then func()) error {
	if err := c.checkParticipant(node, pid, addr); err != nil {
		return err
	}
	if b := c.findActive(addr); b != nil {
		// Tone being issued locally: stop it (arrive).
		c.arrive(b, node)
		c.eng.LocalSleepThen(node, 1, then)
		return nil
	}
	pi := &c.pending[node]
	*pi = pendingInit{active: true, addr: addr}
	c.net.SendAsync(wireless.Msg{
		Src: node, Addr: addr, Kind: wireless.KindToneInit, PID: pid,
	}, &pi.tok, func(committed bool) {
		if committed {
			pi.active = false
		} else {
			// Withdrawn: the activation marked us arrived.
			c.Stats.InitWithdrawn++
		}
		then()
	})
	return nil
}

// checkParticipant validates a tone_st issuer: addr must be an allocated
// barrier owned by pid with node armed as a participant (Section 4.4).
// Shared by both faces of ToneStore so fault behavior cannot diverge
// between execution modes.
func (c *Controller) checkParticipant(node int, pid uint16, addr uint32) error {
	ae := c.findAlloc(addr)
	if ae == nil || ae.pid != pid || !ae.armed.has(node) {
		return &NotParticipantError{Node: node, Addr: addr}
	}
	return nil
}

// onToneInit runs at the commit of a Tone-bit Data-channel message. If the
// barrier is already active the message is a redundant late init (its
// sender tied for first arrival); otherwise it activates the barrier: the
// AllocB entry is copied to the bottom of ActiveB on every node, armed
// remote nodes begin issuing the tone, and non-armed nodes pre-set Arrived
// so they never participate (Section 5.1).
func (c *Controller) onToneInit(m wireless.Msg, at sim.Time) {
	if b := c.findActive(m.Addr); b != nil {
		c.arrive(b, m.Src)
		return
	}
	ae := c.findAlloc(m.Addr)
	if ae == nil {
		return // barrier freed while the init was in flight; drop
	}
	if len(c.active) == 0 {
		c.lastAct = at
	}
	b := &activeBarrier{
		addr:         m.Addr,
		participants: ae.armed,
		remaining:    ae.nArm,
		activatedAt:  at,
	}
	c.active = append(c.active, b)
	c.Stats.Activations++
	c.arrive(b, m.Src)
	// Nodes whose own init for this barrier is still queued have also
	// arrived; withdraw their messages and register them.
	for n := range c.pending {
		pi := &c.pending[n]
		if n != m.Src && pi.active && pi.addr == m.Addr {
			pi.active = false
			pi.tok.Cancel()
			c.arrive(b, n)
		}
	}
}

// arrive registers node's arrival at b (its tone stops, or for the first
// arriver it never starts) and schedules silence detection when complete.
func (c *Controller) arrive(b *activeBarrier, node int) {
	if !b.participants.has(node) || b.arrived.has(node) {
		return
	}
	b.arrived.set(node)
	b.remaining--
	if b.remaining > 0 {
		return
	}
	// All participants arrived: the tone disappears. The controllers
	// detect silence at this barrier's next Tone-channel slot (round-
	// robin over the ActiveB table) plus the listen cycle.
	now := c.eng.Now()
	k := sim.Time(len(c.active))
	pos := sim.Time(c.activePos(b.addr))
	next := now + 1
	if rem := next % k; rem != pos {
		next += (pos - rem + k) % k
	}
	detect := next + 1
	c.eng.ScheduleAt(detect, sim.PrioNormal, func() { c.complete(b, detect) })
}

// complete removes b from ActiveB on every node (entries below shift up)
// and toggles the barrier's BM location everywhere, releasing the cores
// spinning on tone_ld.
func (c *Controller) complete(b *activeBarrier, detectedAt sim.Time) {
	pos := c.activePos(b.addr)
	if pos < 0 {
		return
	}
	c.active = append(c.active[:pos], c.active[pos+1:]...)
	c.Stats.Completions++
	c.Stats.DetectDelaySum += detectedAt - b.activatedAt
	c.accountActive(detectedAt)
	c.bm.ToggleLocal(b.addr)
}

func (c *Controller) accountActive(now sim.Time) {
	if len(c.active) == 0 {
		c.Stats.ActiveCycles += now - c.lastAct
	} else {
		c.Stats.ActiveCycles += now - c.lastAct
		c.lastAct = now
	}
}

// ToneLoad is the tone_ld instruction: a plain local BM read of the barrier
// variable, bypassing PID ownership transfer (the variable belongs to the
// allocating process; participants share its PID).
func (c *Controller) ToneLoad(p *sim.Proc, node int, pid uint16, addr uint32) (uint64, error) {
	return c.bm.Load(p, node, pid, addr)
}

// WaitToggle parks until the barrier variable at addr changes, then returns
// its new value. Cores use it to spin efficiently between tone_ld polls.
func (c *Controller) WaitToggle(p *sim.Proc, node int, pid uint16, addr uint32, want uint64) (uint64, error) {
	for {
		v, err := c.bm.Load(p, node, pid, addr)
		if err != nil {
			return 0, err
		}
		if v == want {
			return v, nil
		}
		c.bm.WaitChange(p, node, addr)
	}
}

// WaitToggleAsync is the continuation mirror of WaitToggle: then receives
// the barrier variable once it equals want, with the same local-poll /
// wait-change cadence as the blocking form.
func (c *Controller) WaitToggleAsync(node int, pid uint16, addr uint32, want uint64, then func(uint64)) error {
	return c.bm.SpinUntilAsync(node, pid, addr, func(v uint64) bool { return v == want }, then)
}
