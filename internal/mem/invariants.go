package mem

import "fmt"

// CheckInvariants verifies protocol invariants at a quiescent point (no
// transactions in flight). It returns the first violation found, or nil.
//
// Invariants checked:
//  1. At most one core holds a line in E/M/O, and the directory's owner
//     field names exactly that core.
//  2. If any core holds a line in M or E, no other core holds it in S.
//  3. Every core holding a line in S appears in the directory sharer set,
//     and every recorded sharer either holds the line in S/O or has
//     silently... (we do precise bookkeeping, so: holds it in S or is the
//     owner in O).
//  4. No L1 set exceeds its associativity.
type holder struct {
	core  int
	state State
}

func (s *System) CheckInvariants() error {
	holders := make(map[uint64][]holder)
	for core := range s.l1 {
		for si, set := range s.l1[core].sets {
			if len(set) > s.p.L1Ways {
				return fmt.Errorf("mem: core %d set %d has %d ways (max %d)", core, si, len(set), s.p.L1Ways)
			}
			seen := map[uint64]bool{}
			for _, sl := range set {
				if sl.state == Invalid {
					continue
				}
				if seen[sl.line] {
					return fmt.Errorf("mem: core %d holds line %#x in two ways", core, sl.line)
				}
				seen[sl.line] = true
				holders[sl.line] = append(holders[sl.line], holder{core, sl.state})
			}
		}
	}
	for line, hs := range holders {
		d := s.dirAt(line)
		if d == nil {
			return fmt.Errorf("mem: line %#x cached but has no directory entry", line)
		}
		exclusiveHolder := -1
		for _, h := range hs {
			switch h.state {
			case Exclusive, Modified, Owned:
				if exclusiveHolder >= 0 {
					return fmt.Errorf("mem: line %#x has two owners: cores %d and %d", line, exclusiveHolder, h.core)
				}
				exclusiveHolder = h.core
			}
		}
		if exclusiveHolder >= 0 && d.owner != exclusiveHolder {
			return fmt.Errorf("mem: line %#x owned by core %d in L1 but directory says %d", line, exclusiveHolder, d.owner)
		}
		for _, h := range hs {
			if h.state == Shared {
				if exclusiveHolder >= 0 {
					st := stateOf(hs, exclusiveHolder)
					if st == Modified || st == Exclusive {
						return fmt.Errorf("mem: line %#x shared by core %d while core %d holds it %v", line, h.core, exclusiveHolder, st)
					}
				}
				if !d.sharers.has(h.core) {
					return fmt.Errorf("mem: line %#x in S at core %d but not in directory sharers", line, h.core)
				}
			}
		}
	}
	return nil
}

func stateOf(hs []holder, core int) State {
	for _, h := range hs {
		if h.core == core {
			return h.state
		}
	}
	return Invalid
}
