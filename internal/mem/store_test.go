package mem

import (
	"testing"

	"wisync/internal/noc"
	"wisync/internal/sim"
)

func TestPagedStoreDenseAndSparse(t *testing.T) {
	var st pagedStore[lineEntry]
	st.init = func(le *lineEntry) { le.dir.owner = -1 }

	if st.get(100) != nil {
		t.Error("get of untouched line is non-nil")
	}
	e := st.fetch(100)
	if e.dir.owner != -1 {
		t.Errorf("fresh dense entry owner = %d, want -1 (init not applied)", e.dir.owner)
	}
	e.words[3] = 42
	if got := st.get(100); got != e {
		t.Error("get after fetch returns a different entry (pointer instability)")
	}
	// Neighbors on the same page are initialized but independent.
	if n := st.get(101); n == nil || n.dir.owner != -1 || n.words[3] != 0 {
		t.Errorf("neighbor entry not independently initialized: %+v", n)
	}

	// A line far beyond the dense window lands in the sparse map.
	huge := uint64(maxDensePages)<<st.pageShift() + 12345
	s := st.fetch(huge)
	if s.dir.owner != -1 {
		t.Errorf("fresh sparse entry owner = %d, want -1", s.dir.owner)
	}
	s.words[0] = 7
	if got := st.get(huge); got != s {
		t.Error("sparse get after fetch returns a different entry")
	}
	if len(st.pages) >= maxDensePages {
		t.Errorf("sparse fetch grew the dense page table to %d pages", len(st.pages))
	}
	// The untouched dense/sparse boundary neighbors stay absent.
	if st.get(huge+1) != nil {
		t.Error("sparse neighbor materialized spontaneously")
	}
}

// TestSystemSparseAddressFallback drives the full memory system at an
// address far outside the linear allocator's range: correctness must not
// depend on the dense window.
func TestSystemSparseAddressFallback(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, noc.New(4, 2), DefaultParams(4))
	// Past the dense window at any page geometry the store might choose.
	sparseAddr := uint64(maxDensePages<<defaultPageShift)*LineBytes + 0x40

	s.Poke(sparseAddr, 99)
	if got := s.Peek(sparseAddr); got != 99 {
		t.Fatalf("Peek(sparse) = %d, want 99", got)
	}
	var got, got2 uint64
	eng.Go("r", func(p *sim.Proc) {
		got = s.Read(p, 0, sparseAddr)
		s.Write(p, 1, sparseAddr, 123)
		got2 = s.Read(p, 1, sparseAddr)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 || got2 != 123 {
		t.Errorf("sparse Read/Write = %d, %d; want 99, 123", got, got2)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestWordIdxAliasing documents the dense store's word granularity: the
// simulator's addresses are 8-byte aligned (the machine allocator hands
// out line- and word-aligned addresses), and every word of a line is
// independent.
func TestWordIdxAliasing(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, noc.New(4, 2), DefaultParams(4))
	base := uint64(1 << 20)
	for i := uint64(0); i < lineWords; i++ {
		s.Poke(base+i*8, 100+i)
	}
	for i := uint64(0); i < lineWords; i++ {
		if got := s.Peek(base + i*8); got != 100+i {
			t.Errorf("word %d = %d, want %d", i, got, 100+i)
		}
	}
}

// BenchmarkLineStore pins the dense paged store's advantage over the hash
// maps it replaced (words/dir/epochs keyed by address or line). The access
// pattern models a transaction's hot lookups: a directory fetch plus a
// word read/write over a kernel-sized working set, with the 90%-reread
// locality a barrier-driven kernel exhibits.
func BenchmarkLineStore(b *testing.B) {
	// Working set: ~2000 lines starting at the allocator base, like a
	// 256-core TightLoop.
	const lines = 2048
	const base = (1 << 20) / LineBytes

	b.Run("paged", func(b *testing.B) {
		var st pagedStore[lineEntry]
		st.init = func(le *lineEntry) { le.dir.owner = -1 }
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			line := base + uint64(i*37%lines)
			le := st.fetch(line)
			le.words[wordIdx(line*LineBytes)] = sink
			sink += le.words[0] + uint64(le.dir.owner)
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		// The seed implementation: one map per concern.
		dir := make(map[uint64]*dirLine)
		words := make(map[uint64]uint64)
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			line := base + uint64(i*37%lines)
			d, ok := dir[line]
			if !ok {
				d = &dirLine{owner: -1}
				dir[line] = d
			}
			addr := line * LineBytes
			words[addr] = sink
			sink += words[addr&^uint64(LineBytes-1)] + uint64(d.owner)
		}
		_ = sink
	})
}
