package mem

import (
	"fmt"
	"testing"

	"wisync/internal/noc"
	"wisync/internal/sim"
)

func newSys(t *testing.T, cores int) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine(1)
	mesh := noc.New(cores, 4)
	return eng, New(eng, mesh, DefaultParams(cores))
}

// run executes body as a single process and returns the finish time.
func run1(t *testing.T, eng *sim.Engine, body func(p *sim.Proc)) sim.Time {
	t.Helper()
	var end sim.Time
	eng.Go("t0", func(p *sim.Proc) {
		body(p)
		end = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestReadMissThenHit(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x1000, 42)
	run1(t, eng, func(p *sim.Proc) {
		if v := s.Read(p, 0, 0x1000); v != 42 {
			t.Errorf("Read = %d, want 42", v)
		}
		miss := p.Now()
		if v := s.Read(p, 0, 0x1000); v != 42 {
			t.Errorf("second Read = %d, want 42", v)
		}
		hitLat := p.Now() - miss
		if hitLat != s.Params().L1RT {
			t.Errorf("hit latency = %d, want %d", hitLat, s.Params().L1RT)
		}
		if miss <= hitLat {
			t.Errorf("miss latency %d not greater than hit latency %d", miss, hitLat)
		}
	})
	if s.Stats.L1Hits != 1 || s.Stats.L1Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.Stats.L1Hits, s.Stats.L1Misses)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestColdMissPaysMemory(t *testing.T) {
	eng, s := newSys(t, 16)
	s.PokeCold(0x2000, 7)
	lat := run1(t, eng, func(p *sim.Proc) {
		if v := s.Read(p, 3, 0x2000); v != 7 {
			t.Errorf("Read = %d, want 7", v)
		}
	})
	if lat < s.Params().MemRT {
		t.Errorf("cold miss latency %d < MemRT %d", lat, s.Params().MemRT)
	}
	if s.Stats.MemFetches != 1 {
		t.Errorf("MemFetches = %d, want 1", s.Stats.MemFetches)
	}
}

func TestExclusiveGrantOnSoleReader(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x40, 1)
	run1(t, eng, func(p *sim.Proc) {
		s.Read(p, 2, 0x40)
		if st := s.L1State(2, 0x40); st != Exclusive {
			t.Errorf("sole reader state = %v, want E", st)
		}
		// A second reader forces a downgrade... from a different core.
	})
}

func TestReadSharersAndWriteInvalidates(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x80, 5)
	done := make(chan struct{}, 3)
	eng.Go("r1", func(p *sim.Proc) {
		s.Read(p, 1, 0x80)
		done <- struct{}{}
	})
	eng.Go("r2", func(p *sim.Proc) {
		p.Sleep(100)
		s.Read(p, 2, 0x80)
		done <- struct{}{}
	})
	eng.Go("w3", func(p *sim.Proc) {
		p.Sleep(300)
		s.Write(p, 3, 0x80, 9)
		if st := s.L1State(3, 0x80); st != Modified {
			t.Errorf("writer state = %v, want M", st)
		}
		if s.L1State(1, 0x80) != Invalid || s.L1State(2, 0x80) != Invalid {
			t.Error("readers not invalidated by write")
		}
		done <- struct{}{}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Peek(0x80) != 9 {
		t.Errorf("final value = %d, want 9", s.Peek(0x80))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOwnerForwardsToReader(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x100, 1)
	eng.Go("w", func(p *sim.Proc) {
		s.Write(p, 0, 0x100, 77)
	})
	eng.Go("r", func(p *sim.Proc) {
		p.Sleep(500)
		if v := s.Read(p, 9, 0x100); v != 77 {
			t.Errorf("read from owner = %d, want 77", v)
		}
		// MOESI: previous owner keeps the line in Owned.
		if st := s.L1State(0, 0x100); st != Owned {
			t.Errorf("previous owner state = %v, want O", st)
		}
		if st := s.L1State(9, 0x100); st != Shared {
			t.Errorf("reader state = %v, want S", st)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Forwards != 1 {
		t.Errorf("Forwards = %d, want 1", s.Stats.Forwards)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRMWAtomicUnderContention(t *testing.T) {
	eng, s := newSys(t, 64)
	s.Poke(0x200, 0)
	const perCore, cores = 20, 64
	for c := 0; c < cores; c++ {
		c := c
		eng.Go(fmt.Sprintf("c%d", c), func(p *sim.Proc) {
			for i := 0; i < perCore; i++ {
				s.RMW(p, c, 0x200, func(v uint64) (uint64, bool) { return v + 1, true })
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(0x200); got != perCore*cores {
		t.Errorf("counter = %d, want %d (lost updates)", got, perCore*cores)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCASSemantics(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x300, 10)
	run1(t, eng, func(p *sim.Proc) {
		cas := func(old, nv uint64) bool {
			v := s.RMW(p, 0, 0x300, func(cur uint64) (uint64, bool) {
				return nv, cur == old
			})
			return v == old
		}
		if !cas(10, 11) {
			t.Error("CAS(10,11) failed on matching value")
		}
		if cas(10, 12) {
			t.Error("CAS(10,12) succeeded on stale value")
		}
		if s.Peek(0x300) != 11 {
			t.Errorf("value = %d, want 11", s.Peek(0x300))
		}
	})
}

func TestSpinUntilWakesOnWrite(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x400, 0)
	var sawAt sim.Time
	eng.Go("spinner", func(p *sim.Proc) {
		v := s.SpinUntil(p, 1, 0x400, func(v uint64) bool { return v == 1 })
		if v != 1 {
			t.Errorf("SpinUntil returned %d", v)
		}
		sawAt = p.Now()
	})
	eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(1000)
		s.Write(p, 2, 0x400, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt < 1000 {
		t.Errorf("spinner released at %d, before the write", sawAt)
	}
	if sawAt > 1200 {
		t.Errorf("spinner released at %d, too long after the write", sawAt)
	}
}

func TestSpinnerGeneratesNoTrafficWhileCached(t *testing.T) {
	eng, s := newSys(t, 16)
	s.Poke(0x500, 0)
	eng.Go("spinner", func(p *sim.Proc) {
		s.SpinUntil(p, 1, 0x500, func(v uint64) bool { return v == 1 })
	})
	eng.Go("observer", func(p *sim.Proc) {
		p.Sleep(5000)
		before := s.Stats.Transactions
		p.Sleep(5000)
		if d := s.Stats.Transactions - before; d != 0 {
			t.Errorf("spinner generated %d transactions while cached", d)
		}
		s.Write(p, 2, 0x500, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseStormSerializesAtDirectory(t *testing.T) {
	// N spinners on one line; one writer flips it. All spinners re-fetch,
	// and the refills serialize at the home directory: the last spinner
	// must observe the write much later than the first.
	eng, s := newSys(t, 64)
	s.Poke(0x600, 0)
	var releases []sim.Time
	for c := 1; c < 33; c++ {
		c := c
		eng.Go(fmt.Sprintf("s%d", c), func(p *sim.Proc) {
			s.SpinUntil(p, c, 0x600, func(v uint64) bool { return v == 1 })
			releases = append(releases, p.Now())
		})
	}
	eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(2000)
		s.Write(p, 0, 0x600, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 32 {
		t.Fatalf("%d spinners released, want 32", len(releases))
	}
	minT, maxT := releases[0], releases[0]
	for _, r := range releases {
		if r < minT {
			minT = r
		}
		if r > maxT {
			maxT = r
		}
	}
	if spread := maxT - minT; spread < 100 {
		t.Errorf("release spread = %d cycles; storm did not serialize", spread)
	}
}

func TestTreeBroadcastSpeedsInvalidation(t *testing.T) {
	// Invalidating many sharers should hold the line for less time with
	// the Baseline+ virtual-tree support.
	invTime := func(tree bool) sim.Time {
		eng := sim.NewEngine(1)
		mesh := noc.New(64, 4)
		p := DefaultParams(64)
		p.TreeBroadcast = tree
		s := New(eng, mesh, p)
		s.Poke(0x700, 0)
		for c := 1; c < 64; c++ {
			c := c
			eng.Go(fmt.Sprintf("r%d", c), func(p *sim.Proc) { s.Read(p, c, 0x700) })
		}
		var lat sim.Time
		eng.Go("w", func(p *sim.Proc) {
			p.Sleep(3000)
			start := p.Now()
			s.Write(p, 0, 0x700, 1)
			lat = p.Now() - start
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	serial, tree := invTime(false), invTime(true)
	if tree >= serial {
		t.Errorf("tree invalidation (%d) not faster than serial (%d)", tree, serial)
	}
}

func TestL1EvictionRespectsAssociativity(t *testing.T) {
	eng, s := newSys(t, 16)
	// Touch L1Ways+2 lines mapping to the same set.
	p := s.Params()
	stride := uint64(p.L1Sets) << LineShift
	run1(t, eng, func(pr *sim.Proc) {
		for i := uint64(0); i < uint64(p.L1Ways+2); i++ {
			s.Read(pr, 0, i*stride)
		}
	})
	if s.Stats.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", s.Stats.Evictions)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEvictedDirtyLineReturnsHome(t *testing.T) {
	eng, s := newSys(t, 16)
	p := s.Params()
	stride := uint64(p.L1Sets) << LineShift
	run1(t, eng, func(pr *sim.Proc) {
		s.Write(pr, 0, 0, 123)
		// Force eviction of line 0 by filling the set.
		for i := uint64(1); i <= uint64(p.L1Ways); i++ {
			s.Read(pr, 0, i*stride)
		}
		if st := s.L1State(0, 0); st != Invalid {
			t.Errorf("dirty line still present: %v", st)
		}
		// Another core reads it; data must come from home, value intact.
		if v := s.Read(pr, 5, 0); v != 123 {
			t.Errorf("value after dirty eviction = %d, want 123", v)
		}
	})
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRandomizedVsReferenceMemory drives random reads/writes/RMWs from many
// cores and checks full value agreement with a sequential reference at the
// end, plus protocol invariants. This is the core property test for the
// coherence substrate.
func TestRandomizedVsReferenceMemory(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		eng := sim.NewEngine(uint64(1000 + trial))
		mesh := noc.New(16, 4)
		s := New(eng, mesh, DefaultParams(16))
		const nAddrs = 24
		addrs := make([]uint64, nAddrs)
		for i := range addrs {
			// Some same-line pairs, some distinct lines.
			addrs[i] = uint64(i/2)<<LineShift | uint64(i%2)*8
			s.Poke(addrs[i], 0)
		}
		var sum [16]uint64
		for c := 0; c < 16; c++ {
			c := c
			eng.Go(fmt.Sprintf("c%d", c), func(p *sim.Proc) {
				rng := sim.NewRand(uint64(c*977 + trial))
				for op := 0; op < 200; op++ {
					a := addrs[rng.Intn(nAddrs)]
					switch rng.Intn(3) {
					case 0:
						sum[c] += s.Read(p, c, a)
					case 1:
						s.Write(p, c, a, rng.Uint64()%1000)
					case 2:
						s.RMW(p, c, a, func(v uint64) (uint64, bool) { return v + 1, true })
					}
					p.Sleep(sim.Time(rng.Intn(20)))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Quiesced: every core must observe the same final value for
		// every address when reading through the protocol.
		for c := 0; c < 16; c++ {
			c := c
			eng.Go(fmt.Sprintf("check%d", c), func(p *sim.Proc) {
				for _, a := range addrs {
					if v, want := s.Read(p, c, a), s.Peek(a); v != want {
						t.Errorf("trial %d: core %d reads %d at %#x, want %d", trial, c, v, a, want)
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIncrementsNeverLost(t *testing.T) {
	// Pure RMW increments from every core across several addresses; total
	// must equal the number of operations.
	eng, s := newSys(t, 32)
	addrs := []uint64{0x0, 0x8, 0x40, 0x48, 0x1000}
	for _, a := range addrs {
		s.Poke(a, 0)
	}
	const opsPerCore = 50
	for c := 0; c < 32; c++ {
		c := c
		eng.Go(fmt.Sprintf("c%d", c), func(p *sim.Proc) {
			rng := sim.NewRand(uint64(c + 7))
			for i := 0; i < opsPerCore; i++ {
				a := addrs[rng.Intn(len(addrs))]
				s.RMW(p, c, a, func(v uint64) (uint64, bool) { return v + 1, true })
				p.Sleep(sim.Time(rng.Intn(10)))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, a := range addrs {
		total += s.Peek(a)
	}
	if total != 32*opsPerCore {
		t.Errorf("total increments = %d, want %d", total, 32*opsPerCore)
	}
}

func TestHotLinePingPongCost(t *testing.T) {
	// Alternating RMWs from two far-apart cores must each pay an
	// ownership transfer; throughput is bounded by the mesh round trip.
	eng, s := newSys(t, 64)
	s.Poke(0x800, 0)
	var finish sim.Time
	const n = 50
	eng.Go("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			s.RMW(p, 0, 0x800, func(v uint64) (uint64, bool) { return v + 1, true })
		}
		finish = p.Now()
	})
	eng.Go("b", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			s.RMW(p, 63, 0x800, func(v uint64) (uint64, bool) { return v + 1, true })
		}
		if p.Now() > finish {
			finish = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Peek(0x800) != 2*n {
		t.Errorf("counter = %d, want %d", s.Peek(0x800), 2*n)
	}
	perOp := finish / (2 * n)
	if perOp < 20 {
		t.Errorf("per-op cost %d cycles is implausibly cheap for ping-pong", perOp)
	}
}
