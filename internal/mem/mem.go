// Package mem implements the wired memory substrate of Table 1: private
// per-core L1 caches, a shared L2 distributed as one bank per core, a MOESI
// directory protocol, and four off-chip memory controllers, all on top of
// the 2D-mesh of package noc.
//
// The model is a combined functional + timing model. Values live in a
// single global word store (the simulator is single-threaded, so this is
// race-free); the protocol determines *when* each access completes and how
// transactions to the same line serialize. Serialization is modeled with a
// FIFO resource per directory line: the home directory processes one
// transaction on a line at a time, holding the line while invalidations and
// forwards are outstanding. This is what reproduces the synchronization
// costs the paper measures on Baseline and Baseline+: ownership ping-pong
// on contended CAS lines, and invalidation/refill storms on spin variables.
//
// Spin-waiting is modeled faithfully to hardware: a spinning core holds the
// line in Shared state and generates no traffic until the line is
// invalidated, at which point it re-fetches (SpinUntil).
package mem

import (
	"fmt"

	"wisync/internal/noc"
	"wisync/internal/sim"
)

// LineShift is log2 of the coherence line size (64 bytes).
const LineShift = 6

// LineBytes is the coherence line size.
const LineBytes = 1 << LineShift

// State is an L1 MOESI state.
type State uint8

// MOESI states for an L1 line.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// Params configures the memory system. All latencies are in cycles.
type Params struct {
	Cores int
	// L1RT is the L1 round-trip latency (Table 1: 2).
	L1RT sim.Time
	// L2RT is the local L2 bank round-trip latency (Table 1: 6).
	L2RT sim.Time
	// MemRT is the off-chip memory round trip (Table 1: 110).
	MemRT sim.Time
	// MemCtrlOcc is the per-request occupancy of a memory controller
	// port, bounding its bandwidth.
	MemCtrlOcc sim.Time
	// L1Sets and L1Ways give the private L1 geometry (32KB 2-way, 64B
	// lines: 256 sets x 2 ways).
	L1Sets, L1Ways int
	// TreeBroadcast enables the Baseline+ virtual-tree multicast support
	// for invalidation fan-out (Krishna et al. [22]).
	TreeBroadcast bool
}

// DefaultParams returns the Table 1 configuration for n cores.
func DefaultParams(n int) Params {
	return Params{
		Cores:      n,
		L1RT:       2,
		L2RT:       6,
		MemRT:      110,
		MemCtrlOcc: 8,
		L1Sets:     256,
		L1Ways:     2,
	}
}

// Stats accumulates memory-system counters.
type Stats struct {
	L1Hits        uint64
	L1Misses      uint64
	Transactions  uint64
	Invalidations uint64
	Forwards      uint64
	MemFetches    uint64
	Evictions     uint64
}

type bitset [4]uint64 // up to 256 cores

func (b *bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b *bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b *bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b *bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (b *bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			fn(wi*64 + trailingZeros(w))
		}
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// dirLine is the directory entry for one line, held at its home bank.
type dirLine struct {
	// res serializes transactions on the line. It is an AsyncResource:
	// transactions run as engine-scheduled continuation chains (see txn.go),
	// so line arbitration never parks a goroutine.
	res     sim.AsyncResource
	owner   int // core holding E/M/O, or -1
	sharers bitset
	inL2    bool
	// settleAt is when the most recent ownership grant completes at the
	// new owner (data, acks and fill all arrived). The home defers the
	// next transaction on the line until then: consecutive ownership
	// transfers serialize over a full round trip, as in real ack-counted
	// protocols where an owner with a pending grant defers or NACKs.
	settleAt sim.Time
}

type l1slot struct {
	line  uint64
	state State
}

type l1cache struct {
	sets [][]l1slot // MRU-first
	// st holds the per-line side state: spin waiters, and the epoch
	// counting invalidations per line — an in-flight refill whose line
	// was invalidated after the directory released it must not install a
	// stale copy.
	st pagedStore[l1line]
}

// epoch returns the invalidation epoch for line (0 if never invalidated).
func (c *l1cache) epoch(line uint64) uint64 {
	if le := c.st.get(line); le != nil {
		return le.epoch
	}
	return 0
}

// spinQueue returns line's spin-waiter queue, creating it on first use.
func (c *l1cache) spinQueue(line uint64) *sim.WaitQueue {
	le := c.st.fetch(line)
	if le.waiters == nil {
		le.waiters = &sim.WaitQueue{}
	}
	return le.waiters
}

// System is the wired coherent memory hierarchy.
type System struct {
	eng  *sim.Engine
	mesh *noc.Mesh
	p    Params
	l1   []l1cache
	// lines is the paged dense store of per-line word values and
	// directory entries (see store.go).
	lines pagedStore[lineEntry]
	mc    [4]sim.AsyncResource
	// txnFree recycles transaction state machines; the engine is single-
	// threaded, so a plain freelist suffices and steady-state transactions
	// allocate nothing. hitFree and spinFree do the same for the async
	// face's L1-hit delivery and spin-loop continuations (async.go).
	txnFree  []*txn
	hitFree  []*hitCont
	spinFree []*memSpin
	// Stats is exported for harness reporting.
	Stats Stats
	// TraceLine and Trace enable transaction tracing for one line, for
	// debugging tests.
	TraceLine uint64
	Trace     func(string)
}

func (s *System) trace(line uint64, format string, args ...any) {
	if s.Trace != nil && line == s.TraceLine {
		s.Trace(fmt.Sprintf(format, args...))
	}
}

// New builds a memory system over mesh with the given parameters.
func New(eng *sim.Engine, mesh *noc.Mesh, p Params) *System {
	if p.Cores != mesh.Nodes() {
		panic(fmt.Sprintf("mem: %d cores but mesh has %d nodes", p.Cores, mesh.Nodes()))
	}
	if p.Cores > 256 {
		panic("mem: more than 256 cores not supported")
	}
	s := &System{
		eng:  eng,
		mesh: mesh,
		p:    p,
		l1:   make([]l1cache, p.Cores),
	}
	// A fresh directory entry has no owner; page-granular initialization
	// keeps the per-entry cost off the lookup path. Page geometry trades
	// first-touch zeroing (machines are built per sweep point) against
	// table size: the global line store carries ~180 B entries on pages
	// of 128; the per-core side stores carry 16 B entries on pages of 64,
	// since they are replicated Cores times.
	s.lines.init = func(le *lineEntry) { le.dir.owner = -1 }
	s.lines.shift = 7
	for i := range s.l1 {
		s.l1[i] = l1cache{sets: make([][]l1slot, p.L1Sets)}
		s.l1[i].st.shift = 6
	}
	return s
}

// Params returns the configuration the system was built with.
func (s *System) Params() Params { return s.p }

// Line returns the line address containing addr.
func Line(addr uint64) uint64 { return addr >> LineShift }

// home returns the core whose L2 bank is the home for line.
func (s *System) home(line uint64) int { return int(line % uint64(s.p.Cores)) }

func (s *System) dirFor(line uint64) *dirLine {
	return &s.lines.fetch(line).dir
}

// dirAt returns line's directory entry, or nil if the line was never
// touched (for invariant checks).
func (s *System) dirAt(line uint64) *dirLine {
	if le := s.lines.get(line); le != nil {
		return &le.dir
	}
	return nil
}

// wordAt reads the committed value of the word at addr (0 if never
// written).
func (s *System) wordAt(addr uint64) uint64 {
	if le := s.lines.get(Line(addr)); le != nil {
		return le.words[wordIdx(addr)]
	}
	return 0
}

// setWord writes the committed value of the word at addr.
func (s *System) setWord(addr, val uint64) {
	s.lines.fetch(Line(addr)).words[wordIdx(addr)] = val
}

// lookup finds the L1 slot for line in core's cache, moving it to MRU.
func (c *l1cache) lookup(setsMask uint64, line uint64) *l1slot {
	set := c.sets[line&setsMask]
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			if i != 0 {
				sl := set[i]
				copy(set[1:i+1], set[0:i])
				set[0] = sl
			}
			return &set[0]
		}
	}
	return nil
}
