package mem

import (
	"fmt"

	"wisync/internal/sim"
)

func (s *System) setsMask() uint64 { return uint64(s.p.L1Sets - 1) }

// Read loads the 64-bit word at addr from core's view of memory and returns
// its value, charging the full coherence latency.
func (s *System) Read(p *sim.Proc, core int, addr uint64) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil {
		s.Stats.L1Hits++
		p.Sleep(s.p.L1RT)
		return s.words[addr]
	}
	s.Stats.L1Misses++
	v, _ := s.transact(p, core, line, addr, nil)
	return v
}

// Write stores val to the 64-bit word at addr, obtaining exclusive
// ownership of the line first.
func (s *System) Write(p *sim.Proc, core int, addr uint64, val uint64) {
	s.RMW(p, core, addr, func(uint64) (uint64, bool) { return val, true })
}

// RMW performs an atomic read-modify-write on the word at addr. The
// function f receives the current value and returns the new value and
// whether to perform the write (a failing CAS returns false); it must be
// pure and may be invoked once. RMW returns the value f observed. Updates
// serialize at the home directory, which holds the line exclusively for the
// write; an RMW that performs no write (failed compare) is serviced like a
// read — no invalidations, no ownership transfer — so compare failures do
// not storm the line.
func (s *System) RMW(p *sim.Proc, core int, addr uint64, f func(uint64) (uint64, bool)) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil && (sl.state == Modified || sl.state == Exclusive) {
		// Exclusive hit: the update is local and atomic. It linearizes
		// now, while the line is verifiably exclusive — a forward
		// serialized during the L1 latency below must observe the new
		// value, or a spinner can sample stale data and sleep forever.
		s.Stats.L1Hits++
		sl.state = Modified
		old := s.words[addr]
		if nv, do := f(old); do {
			s.words[addr] = nv
		}
		p.Sleep(s.p.L1RT)
		return old
	}
	s.Stats.L1Misses++
	v, _ := s.transact(p, core, line, addr, f)
	return v
}

// transact runs a directory transaction for core on line. If f is nil this
// is a read (Shared grant); otherwise an exclusive grant applying f to the
// word at addr at the serialization point. It returns the observed value
// and the grant state.
func (s *System) transact(p *sim.Proc, core int, line uint64, addr uint64, f func(uint64) (uint64, bool)) (uint64, State) {
	s.Stats.Transactions++
	home := s.home(line)

	// Request travels core -> home.
	p.Sleep(sim.Time(s.mesh.Latency(core, home)))

	d := s.dirFor(line)
	d.res.Acquire(p, "dirline")
	if s.eng.Now() < d.settleAt {
		// A previous ownership grant is still settling at its owner.
		p.Sleep(d.settleAt - s.eng.Now())
	}
	if s.Trace != nil {
		s.trace(line, "t=%d core=%d txn f=%v owner=%d sharers=%d", s.eng.Now(), core, f != nil, d.owner, d.sharers.count())
	}

	// The line is held: the committed word value cannot change, so an RMW
	// decision made now is the serialization decision. A no-write RMW
	// (failed compare) is serviced like an uncached read: the requester
	// learns the value but installs no copy and registers as no sharer —
	// so CAS retry storms neither inflate the sharer set nor pay
	// ownership transfers.
	var rmwNew uint64
	doWrite := false
	noWriteRMW := false
	if f != nil {
		rmwNew, doWrite = f(s.words[addr])
		if !doWrite {
			f = nil
			noWriteRMW = true
		}
	}

	// Home-side processing while the line is held. ackWait is latency the
	// requester pays after the home moves on (invalidation acks collect at
	// the requester, off the home's critical path, as in ack-counting
	// directory protocols).
	var hold, ackWait sim.Time
	fwdSrc := -1
	hadOwner := d.owner >= 0
	if f == nil { // ---- Shared grant ----
		sl := (*l1slot)(nil)
		if d.owner >= 0 && d.owner != core {
			sl = s.l1[d.owner].lookup(s.setsMask(), line)
		}
		switch {
		case d.owner >= 0 && d.owner != core &&
			sl != nil && (sl.state == Modified || sl.state == Exclusive):
			// Settled owner: forward; owner supplies data and
			// downgrades M/E -> O (stays owner, MOESI).
			s.Stats.Forwards++
			fwdSrc = d.owner
			hold = sim.Time(s.mesh.Latency(home, d.owner)) + s.p.L1RT
			sl.state = Owned
		case d.owner >= 0 && d.owner != core:
			// Owner evicted or holds only a downgraded copy; recall
			// it entirely (copy, in-flight fill, and spinners) and
			// serve from home, so the directory and the L1s never
			// disagree about ownership.
			s.invalidateL1(d.owner, line)
			d.owner = -1
			d.inL2 = true
			hold = s.p.L2RT
		case d.inL2:
			hold = s.p.L2RT
		default:
			hold = s.fetchFromMemory(p, home, line)
		}
		switch {
		case noWriteRMW:
			// Value-only reply: no copy installed, nothing recorded.
		case !hadOwner && d.sharers.count() == 0:
			// Genuinely sole copy: grant Exclusive. (When an owner's
			// grant was in flight and had to be aborted, grant only
			// Shared, or a burst of first readers would steal E from
			// each other's unfinished fills.)
			d.owner = core
		default:
			d.sharers.set(core)
		}
	} else { // ---- Exclusive grant ----
		// Invalidate every other copy. The home issues the
		// invalidations (occupying the line briefly); the farthest ack
		// round trip is charged to the requester.
		maxHops := 0
		ninv := 0
		d.sharers.forEach(func(i int) {
			if i == core {
				return
			}
			ninv++
			if h := s.mesh.Hops(home, i); h > maxHops {
				maxHops = h
			}
			s.invalidateL1(i, line)
		})
		d.sharers = bitset{}
		if d.owner >= 0 && d.owner != core {
			ninv++
			if h := s.mesh.Hops(home, d.owner); h > maxHops {
				maxHops = h
			}
			s.invalidateL1(d.owner, line)
			d.inL2 = true // owner's (possibly dirty) data returns home
		}
		switch {
		case ninv > 0:
			hold = s.p.L2RT + s.invIssueOccupancy(ninv)
			ackWait = s.invAckLatency(maxHops, ninv)
			if !d.inL2 {
				hold += s.fetchFromMemory(p, home, line)
			}
		case d.inL2 || d.owner == core:
			hold = s.p.L2RT
		default:
			hold = s.fetchFromMemory(p, home, line)
		}
		d.owner = core
	}

	p.Sleep(hold)

	// Serialization point: sample, and for exclusive grants apply the
	// update decided at acquire time (the value cannot have changed while
	// the line was held). Grant state and data source are captured before
	// releasing the line, since other transactions may mutate directory
	// state while the reply is in flight.
	old := s.words[addr]
	grant := Shared
	switch {
	case f != nil:
		s.words[addr] = rmwNew
		grant = Modified
	case noWriteRMW:
		grant = Invalid // value-only reply, nothing installed
	case d.owner == core:
		grant = Exclusive
	}
	src := home
	if fwdSrc >= 0 {
		src = fwdSrc
	}
	// The home is done once the reply leaves; conflicting requests may be
	// granted while our reply is in flight. The epoch check below keeps a
	// fill that was overtaken by an invalidation from installing a stale
	// copy.
	if s.Trace != nil {
		s.trace(line, "t=%d core=%d served old=%d grant=%v", s.eng.Now(), core, old, grant)
	}
	// The home releases once the reply (and any invalidations) are issued;
	// the requester pays the reply flight and, for writes, the farthest
	// invalidation-ack round trip, whichever is longer. Ownership grants
	// mark the line settling until then. The epoch check keeps a fill
	// overtaken by a later invalidation from installing a stale copy.
	epoch := s.l1[core].epochs[line]
	wait := sim.Time(s.mesh.Latency(src, core)) + s.p.L1RT
	if ackWait > wait {
		wait = ackWait
	}
	if grant == Modified || grant == Exclusive {
		d.settleAt = s.eng.Now() + wait
	}
	d.res.Release(p)
	p.Sleep(wait)
	if grant != Invalid && s.l1[core].epochs[line] == epoch {
		s.fill(p, core, line, grant)
		if s.Trace != nil {
			s.trace(line, "t=%d core=%d filled %v", s.eng.Now(), core, grant)
		}
	}
	return old, grant
}

// invIssueOccupancy is how long the home is busy issuing ninv
// invalidations: serial unicast for the plain directory, per-level flit
// replication with the Baseline+ virtual-tree multicast [22].
func (s *System) invIssueOccupancy(ninv int) sim.Time {
	s.Stats.Invalidations += uint64(ninv)
	if s.p.TreeBroadcast {
		return sim.Time(2 * log2ceil(ninv+1))
	}
	return sim.Time(2 * ninv)
}

// invAckLatency is the requester-visible latency until all invalidation
// acks arrive, with maxHops the farthest target. The tree combines acks in
// the network on the way back.
func (s *System) invAckLatency(maxHops, ninv int) sim.Time {
	rtt := sim.Time(2 * maxHops * int(s.mesh.HopLatency()))
	if rtt == 0 {
		rtt = sim.Time(2 * s.mesh.HopLatency())
	}
	if s.p.TreeBroadcast {
		return rtt/2 + sim.Time(maxHops) + sim.Time(2*log2ceil(ninv+1))
	}
	return rtt
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// fetchFromMemory charges a trip from home to a memory controller and the
// off-chip round trip, returning the added hold time. The controller port
// is a bandwidth-limited resource.
func (s *System) fetchFromMemory(p *sim.Proc, home int, line uint64) sim.Time {
	s.Stats.MemFetches++
	ci, cnode := s.mesh.ControllerFor(line)
	lat := sim.Time(2 * s.mesh.Latency(home, cnode))
	s.mc[ci].Acquire(p, "memctrl")
	p.Sleep(s.p.MemCtrlOcc)
	s.mc[ci].Release(p)
	d := s.dirFor(line)
	d.inL2 = true
	return lat + s.p.MemRT
}

// invalidateL1 removes line from core's L1 and wakes any spinners on it.
func (s *System) invalidateL1(core int, line uint64) {
	c := &s.l1[core]
	c.epochs[line]++
	if s.Trace != nil {
		s.trace(line, "t=%d inv core=%d epoch->%d", s.eng.Now(), core, c.epochs[line])
	}
	set := c.sets[line&s.setsMask()]
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			set[i].state = Invalid
			break
		}
	}
	if q, ok := c.waiters[line]; ok && q.Len() > 0 {
		// The invalidation message takes one hop-ish to arrive; the
		// spinner notices on its next local probe.
		q.WakeAll(sim.Time(s.mesh.HopLatency()) + s.p.L1RT)
	}
}

// fill installs line into core's L1 in the given state, evicting the LRU
// way if the set is full.
func (s *System) fill(p *sim.Proc, core int, line uint64, st State) {
	c := &s.l1[core]
	idx := line & s.setsMask()
	set := c.sets[idx]
	// Prefer the slot already holding this line (an upgrade must replace
	// its own copy, or the set ends up with the line in two ways), then
	// any invalid slot.
	slot := -1
	for i := range set {
		if set[i].line == line {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range set {
			if set[i].state == Invalid {
				slot = i
				break
			}
		}
	}
	if slot >= 0 {
		set[slot] = l1slot{line: line, state: st}
		if slot != 0 {
			sl := set[slot]
			copy(set[1:slot+1], set[0:slot])
			set[0] = sl
		}
		return
	}
	if len(set) < s.p.L1Ways {
		c.sets[idx] = append([]l1slot{{line: line, state: st}}, set...)
		return
	}
	// Evict LRU (last).
	victim := set[len(set)-1]
	s.evict(core, victim)
	copy(set[1:], set[:len(set)-1])
	set[0] = l1slot{line: line, state: st}
}

// evict performs directory bookkeeping for a line displaced from core's L1.
// Dirty data "returns" to the home L2. This is modeled as instantaneous
// background traffic: eviction writebacks are off the critical path of the
// access that triggered them.
func (s *System) evict(core int, sl l1slot) {
	s.Stats.Evictions++
	d := s.dirFor(sl.line)
	if d.owner == core {
		d.owner = -1
		d.inL2 = true
	}
	d.sharers.clear(core)
	if q, ok := s.l1[core].waiters[sl.line]; ok && q.Len() > 0 {
		q.WakeAll(s.p.L1RT)
	}
}

// SpinUntil models a core spinning on the word at addr until cond holds,
// the way hardware does it: read once, then sit on the locally cached copy
// generating no traffic until the line is invalidated, then re-fetch.
// It returns the value that satisfied cond.
func (s *System) SpinUntil(p *sim.Proc, core int, addr uint64, cond func(uint64) bool) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	for {
		v := s.Read(p, core, addr)
		if cond(v) {
			return v
		}
		if sl := c.lookup(s.setsMask(), line); sl == nil {
			continue // already invalidated again; re-read
		}
		q, ok := c.waiters[line]
		if !ok {
			q = &sim.WaitQueue{}
			c.waiters[line] = q
		}
		q.Wait(p, "spin")
	}
}

// Poke sets a word without timing or coherence effects, for initializing
// workload data. The line is marked present in L2 so later reads are not
// charged cold off-chip misses unless coldMiss is desired (use PokeCold).
func (s *System) Poke(addr, val uint64) {
	s.words[addr] = val
	s.dirFor(Line(addr)).inL2 = true
}

// PokeCold sets a word without marking the line L2-resident, so the first
// access pays the off-chip fetch.
func (s *System) PokeCold(addr, val uint64) {
	s.words[addr] = val
}

// Peek returns a word's current value without timing effects.
func (s *System) Peek(addr uint64) uint64 { return s.words[addr] }

// L1State returns core's current L1 state for the line holding addr
// (Invalid if absent), for tests.
func (s *System) L1State(core int, addr uint64) State {
	set := s.l1[core].sets[Line(addr)&s.setsMask()]
	for i := range set {
		if set[i].line == Line(addr) {
			return set[i].state
		}
	}
	return Invalid
}

// DebugSet returns a dump of the L1 set holding addr at core, for tests.
func (s *System) DebugSet(core int, addr uint64) []string {
	var out []string
	for _, sl := range s.l1[core].sets[Line(addr)&s.setsMask()] {
		out = append(out, fmt.Sprintf("line=%#x state=%v", sl.line, sl.state))
	}
	return out
}
