package mem

import (
	"fmt"

	"wisync/internal/sim"
)

func (s *System) setsMask() uint64 { return uint64(s.p.L1Sets - 1) }

// Read loads the 64-bit word at addr from core's view of memory and returns
// its value, charging the full coherence latency.
func (s *System) Read(p *sim.Proc, core int, addr uint64) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil {
		s.Stats.L1Hits++
		p.Sleep(s.p.L1RT)
		return s.wordAt(addr)
	}
	s.Stats.L1Misses++
	v, _ := s.transact(p, core, line, addr, nil)
	return v
}

// Write stores val to the 64-bit word at addr, obtaining exclusive
// ownership of the line first.
func (s *System) Write(p *sim.Proc, core int, addr uint64, val uint64) {
	s.RMW(p, core, addr, func(uint64) (uint64, bool) { return val, true })
}

// RMW performs an atomic read-modify-write on the word at addr. The
// function f receives the current value and returns the new value and
// whether to perform the write (a failing CAS returns false); it must be
// pure and may be invoked once. RMW returns the value f observed. Updates
// serialize at the home directory, which holds the line exclusively for the
// write; an RMW that performs no write (failed compare) is serviced like a
// read — no invalidations, no ownership transfer — so compare failures do
// not storm the line.
func (s *System) RMW(p *sim.Proc, core int, addr uint64, f func(uint64) (uint64, bool)) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil && (sl.state == Modified || sl.state == Exclusive) {
		// Exclusive hit: the update is local and atomic. It linearizes
		// now, while the line is verifiably exclusive — a forward
		// serialized during the L1 latency below must observe the new
		// value, or a spinner can sample stale data and sleep forever.
		s.Stats.L1Hits++
		sl.state = Modified
		le := s.lines.fetch(line)
		old := le.words[wordIdx(addr)]
		if nv, do := f(old); do {
			le.words[wordIdx(addr)] = nv
		}
		p.Sleep(s.p.L1RT)
		return old
	}
	s.Stats.L1Misses++
	v, _ := s.transact(p, core, line, addr, f)
	return v
}

// transact runs a directory transaction for core on line. If f is nil this
// is a read (Shared grant); otherwise an exclusive grant applying f to the
// word at addr at the serialization point. It returns the observed value
// and the grant state.
//
// The protocol executes as a chain of engine-scheduled continuations (the
// txn state machine below): the requesting process parks exactly once here
// and is dispatched directly by the final reply event. A contended
// transaction storm therefore costs one goroutine suspension per
// transaction instead of one per protocol step — line arbitration, settle
// waits, memory-controller queueing and hold times all run as callback
// events on whichever goroutine is already driving the engine. Every
// continuation is scheduled at exactly the (time, priority, sequence)
// position where the blocking form slept or woke, so simulated results are
// bit-identical to the blocking implementation this replaced (pinned by
// the golden-conformance suite in package harness).
func (s *System) transact(p *sim.Proc, core int, line uint64, addr uint64, f func(uint64) (uint64, bool)) (uint64, State) {
	t := s.startTxn(p, core, line, addr, f)
	p.Park("mem txn")
	old, grant := t.old, t.grant
	if grant != Invalid && s.l1[core].epoch(line) == t.epoch {
		s.fill(core, line, grant)
		if s.Trace != nil {
			s.trace(line, "t=%d core=%d filled %v", s.eng.Now(), core, grant)
		}
	}
	s.freeTxn(t)
	return old, grant
}

// transactAsync is the continuation mirror of transact: the requester is a
// completion callback instead of a parked process. done runs as an engine
// event at exactly the (time, priority, sequence) position where transact's
// parked process would have been dispatched, after the requester-side fill
// bookkeeping — so the two requester styles are interchangeable without
// affecting simulated results.
func (s *System) transactAsync(core int, line uint64, addr uint64, f func(uint64) (uint64, bool), done func(uint64)) {
	t := s.startTxn(nil, core, line, addr, f)
	t.done = done
}

// txnStep selects the statement block a transaction continuation executes
// when its pending event fires.
type txnStep uint8

const (
	// stepArrive: the request reached the home bank; acquire the line.
	stepArrive txnStep = iota
	// stepHeld: the line is acquired; wait out a settling prior grant.
	stepHeld
	// stepDecide: decide the grant, issue invalidations, start fetches.
	stepDecide
	// stepSharedRecord: record the sharer/owner after a shared-grant fetch.
	stepSharedRecord
	// stepExclRecord: take ownership after an exclusive-grant fetch.
	stepExclRecord
	// stepFetchOcc: the memory-controller port is acquired; pay occupancy.
	stepFetchOcc
	// stepFetchRel: occupancy paid; release the port and resume at next.
	stepFetchRel
	// stepServe: the home-side hold elapsed; serialize, release, reply.
	stepServe
)

// txn is one directory transaction running as an engine-scheduled
// continuation chain. Each suspension of the old blocking form (request
// flight, settle wait, controller occupancy, hold, reply flight) is one
// scheduled firing of step; the requester sleeps through all of them and
// is resumed once, by serve. Exactly one of p and done is set: p is a
// blocking requester parked in transact, done the completion callback of a
// transactAsync.
type txn struct {
	s    *System
	p    *sim.Proc    // blocking requester, parked until the reply arrives
	done func(uint64) // continuation requester, run by fin at the reply
	core int
	line uint64
	addr uint64
	f    func(uint64) (uint64, bool)

	d     *dirLine
	home  int
	state txnStep
	next  txnStep // continuation after the memory-fetch sub-chain
	step  func()  // cached method value of run; scheduled for every event
	fin   func()  // cached method value of finish, the async reply event

	rmwNew     uint64
	noWriteRMW bool
	hold       sim.Time
	ackWait    sim.Time
	fwdSrc     int
	hadOwner   bool
	fetchLat   sim.Time
	fetchMC    int

	// Results read by transact once the requester is dispatched.
	old   uint64
	grant State
	epoch uint64
}

// startTxn launches the chain: the request travels core -> home and
// arrives at stepArrive.
func (s *System) startTxn(p *sim.Proc, core int, line, addr uint64, f func(uint64) (uint64, bool)) *txn {
	s.Stats.Transactions++
	t := s.newTxn()
	t.p, t.core, t.line, t.addr, t.f = p, core, line, addr, f
	t.home = s.home(line)
	t.state = stepArrive
	s.eng.Schedule(sim.Time(s.mesh.Latency(core, t.home)), t.step)
	return t
}

func (s *System) newTxn() *txn {
	if n := len(s.txnFree); n > 0 {
		t := s.txnFree[n-1]
		s.txnFree = s.txnFree[:n-1]
		return t
	}
	t := &txn{s: s}
	t.step = t.run
	t.fin = t.finish
	return t
}

func (s *System) freeTxn(t *txn) {
	t.p, t.done, t.f, t.d = nil, nil, nil, nil
	s.txnFree = append(s.txnFree, t)
}

// finish is the async requester's reply event: it runs the same
// requester-side epilogue transact performs after its process is
// dispatched — reject-or-install the fill, recycle the transaction — and
// then hands the observed value to the completion callback.
func (t *txn) finish() {
	s := t.s
	old, grant, core, line, done := t.old, t.grant, t.core, t.line, t.done
	if grant != Invalid && s.l1[core].epoch(line) == t.epoch {
		s.fill(core, line, grant)
		if s.Trace != nil {
			s.trace(line, "t=%d core=%d filled %v", s.eng.Now(), core, grant)
		}
	}
	s.freeTxn(t)
	done(old)
}

// run executes the pending step. The step bodies are the statement blocks
// of the original blocking transact, with each Sleep replaced by
// scheduling the successor step at the same delay.
func (t *txn) run() {
	s := t.s
	switch t.state {
	case stepArrive:
		t.d = s.dirFor(t.line)
		t.state = stepHeld
		t.d.res.Acquire(s.eng, t.step)
	case stepHeld:
		if now := s.eng.Now(); now < t.d.settleAt {
			// A previous ownership grant is still settling at its owner.
			t.state = stepDecide
			s.eng.Schedule(t.d.settleAt-now, t.step)
			return
		}
		t.decide()
	case stepDecide:
		t.decide()
	case stepSharedRecord:
		t.sharedRecord()
	case stepExclRecord:
		t.exclRecord()
	case stepFetchOcc:
		t.state = stepFetchRel
		s.eng.Schedule(s.p.MemCtrlOcc, t.step)
	case stepFetchRel:
		s.mc[t.fetchMC].Release(s.eng)
		t.d.inL2 = true
		t.hold += t.fetchLat + s.p.MemRT
		t.state = t.next
		t.run() // the interrupted decide branch continues inline
	case stepServe:
		t.serve()
	}
}

// decide runs with the line held: the committed word value cannot change,
// so an RMW decision made now is the serialization decision. A no-write
// RMW (failed compare) is serviced like an uncached read: the requester
// learns the value but installs no copy and registers as no sharer — so
// CAS retry storms neither inflate the sharer set nor pay ownership
// transfers.
func (t *txn) decide() {
	s, d := t.s, t.d
	if s.Trace != nil {
		s.trace(t.line, "t=%d core=%d txn f=%v owner=%d sharers=%d", s.eng.Now(), t.core, t.f != nil, d.owner, d.sharers.count())
	}

	t.rmwNew, t.noWriteRMW = 0, false
	doWrite := false
	if t.f != nil {
		t.rmwNew, doWrite = t.f(s.wordAt(t.addr))
		if !doWrite {
			t.f = nil
			t.noWriteRMW = true
		}
	}

	// Home-side processing while the line is held. ackWait is latency the
	// requester pays after the home moves on (invalidation acks collect at
	// the requester, off the home's critical path, as in ack-counting
	// directory protocols).
	t.hold, t.ackWait = 0, 0
	t.fwdSrc = -1
	t.hadOwner = d.owner >= 0
	if t.f == nil { // ---- Shared grant ----
		sl := (*l1slot)(nil)
		if d.owner >= 0 && d.owner != t.core {
			sl = s.l1[d.owner].lookup(s.setsMask(), t.line)
		}
		switch {
		case d.owner >= 0 && d.owner != t.core &&
			sl != nil && (sl.state == Modified || sl.state == Exclusive):
			// Settled owner: forward; owner supplies data and
			// downgrades M/E -> O (stays owner, MOESI).
			s.Stats.Forwards++
			t.fwdSrc = d.owner
			t.hold = sim.Time(s.mesh.Latency(t.home, d.owner)) + s.p.L1RT
			sl.state = Owned
		case d.owner >= 0 && d.owner != t.core:
			// Owner evicted or holds only a downgraded copy; recall
			// it entirely (copy, in-flight fill, and spinners) and
			// serve from home, so the directory and the L1s never
			// disagree about ownership.
			s.invalidateL1(d.owner, t.line)
			d.owner = -1
			d.inL2 = true
			t.hold = s.p.L2RT
		case d.inL2:
			t.hold = s.p.L2RT
		default:
			t.startFetch(stepSharedRecord)
			return
		}
		t.sharedRecord()
	} else { // ---- Exclusive grant ----
		// Invalidate every other copy. The home issues the
		// invalidations (occupying the line briefly); the farthest ack
		// round trip is charged to the requester.
		maxHops := 0
		ninv := 0
		d.sharers.forEach(func(i int) {
			if i == t.core {
				return
			}
			ninv++
			if h := s.mesh.Hops(t.home, i); h > maxHops {
				maxHops = h
			}
			s.invalidateL1(i, t.line)
		})
		d.sharers = bitset{}
		if d.owner >= 0 && d.owner != t.core {
			ninv++
			if h := s.mesh.Hops(t.home, d.owner); h > maxHops {
				maxHops = h
			}
			s.invalidateL1(d.owner, t.line)
			d.inL2 = true // owner's (possibly dirty) data returns home
		}
		switch {
		case ninv > 0:
			t.hold = s.p.L2RT + s.invIssueOccupancy(ninv)
			t.ackWait = s.invAckLatency(maxHops, ninv)
			if !d.inL2 {
				t.startFetch(stepExclRecord)
				return
			}
		case d.inL2 || d.owner == t.core:
			t.hold = s.p.L2RT
		default:
			t.startFetch(stepExclRecord)
			return
		}
		t.exclRecord()
	}
}

// sharedRecord runs the shared-grant bookkeeping (after the memory fetch,
// when one was needed), then waits out the home-side hold.
func (t *txn) sharedRecord() {
	d := t.d
	switch {
	case t.noWriteRMW:
		// Value-only reply: no copy installed, nothing recorded.
	case !t.hadOwner && d.sharers.count() == 0:
		// Genuinely sole copy: grant Exclusive. (When an owner's
		// grant was in flight and had to be aborted, grant only
		// Shared, or a burst of first readers would steal E from
		// each other's unfinished fills.)
		d.owner = t.core
	default:
		d.sharers.set(t.core)
	}
	t.state = stepServe
	t.s.eng.Schedule(t.hold, t.step)
}

// exclRecord takes ownership (after the memory fetch, when one was
// needed), then waits out the home-side hold.
func (t *txn) exclRecord() {
	t.d.owner = t.core
	t.state = stepServe
	t.s.eng.Schedule(t.hold, t.step)
}

// serve is the serialization point: sample, and for exclusive grants apply
// the update decided at decide time (the value cannot have changed while
// the line was held). Grant state and data source are captured before
// releasing the line, since other transactions may mutate directory state
// while the reply is in flight.
func (t *txn) serve() {
	s, d := t.s, t.d
	old := s.wordAt(t.addr)
	grant := Shared
	switch {
	case t.f != nil:
		s.setWord(t.addr, t.rmwNew)
		grant = Modified
	case t.noWriteRMW:
		grant = Invalid // value-only reply, nothing installed
	case d.owner == t.core:
		grant = Exclusive
	}
	src := t.home
	if t.fwdSrc >= 0 {
		src = t.fwdSrc
	}
	if s.Trace != nil {
		s.trace(t.line, "t=%d core=%d served old=%d grant=%v", s.eng.Now(), t.core, old, grant)
	}
	// The home releases once the reply (and any invalidations) are issued;
	// the requester pays the reply flight and, for writes, the farthest
	// invalidation-ack round trip, whichever is longer. Ownership grants
	// mark the line settling until then. The epoch captured here lets
	// transact reject a fill overtaken by a later invalidation.
	t.epoch = s.l1[t.core].epoch(t.line)
	wait := sim.Time(s.mesh.Latency(src, t.core)) + s.p.L1RT
	if t.ackWait > wait {
		wait = t.ackWait
	}
	if grant == Modified || grant == Exclusive {
		d.settleAt = s.eng.Now() + wait
	}
	d.res.Release(s.eng)
	t.old, t.grant = old, grant
	// The reply resumes the requester directly after the flight (and ack)
	// wait — the single suspension of the whole transaction: a parked
	// blocking requester is dispatched, an async requester's reply event
	// is scheduled at the identical (time, priority, sequence) position.
	if t.p != nil {
		t.p.Wake(wait)
		return
	}
	s.eng.Schedule(wait, t.fin)
}

// startFetch begins the continuation mirror of the old fetchFromMemory:
// charge a trip from home to a memory controller and the off-chip round
// trip; the controller port is a bandwidth-limited resource. The added
// hold accumulates into t.hold and the chain resumes at next.
func (t *txn) startFetch(next txnStep) {
	s := t.s
	s.Stats.MemFetches++
	ci, cnode := s.mesh.ControllerFor(t.line)
	t.fetchMC = ci
	t.fetchLat = sim.Time(2 * s.mesh.Latency(t.home, cnode))
	t.next = next
	t.state = stepFetchOcc
	s.mc[ci].Acquire(s.eng, t.step)
}

// invIssueOccupancy is how long the home is busy issuing ninv
// invalidations: serial unicast for the plain directory, per-level flit
// replication with the Baseline+ virtual-tree multicast [22].
func (s *System) invIssueOccupancy(ninv int) sim.Time {
	s.Stats.Invalidations += uint64(ninv)
	if s.p.TreeBroadcast {
		return sim.Time(2 * log2ceil(ninv+1))
	}
	return sim.Time(2 * ninv)
}

// invAckLatency is the requester-visible latency until all invalidation
// acks arrive, with maxHops the farthest target. The tree combines acks in
// the network on the way back.
func (s *System) invAckLatency(maxHops, ninv int) sim.Time {
	rtt := sim.Time(2 * maxHops * int(s.mesh.HopLatency()))
	if rtt == 0 {
		rtt = sim.Time(2 * s.mesh.HopLatency())
	}
	if s.p.TreeBroadcast {
		return rtt/2 + sim.Time(maxHops) + sim.Time(2*log2ceil(ninv+1))
	}
	return rtt
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// invalidateL1 removes line from core's L1 and wakes any spinners on it.
func (s *System) invalidateL1(core int, line uint64) {
	c := &s.l1[core]
	le := c.st.fetch(line)
	le.epoch++
	if s.Trace != nil {
		s.trace(line, "t=%d inv core=%d epoch->%d", s.eng.Now(), core, le.epoch)
	}
	set := c.sets[line&s.setsMask()]
	for i := range set {
		if set[i].line == line && set[i].state != Invalid {
			set[i].state = Invalid
			break
		}
	}
	if le.waiters != nil && le.waiters.Len() > 0 {
		// The invalidation message takes one hop-ish to arrive; the
		// spinner notices on its next local probe.
		le.waiters.WakeAll(sim.Time(s.mesh.HopLatency()) + s.p.L1RT)
	}
}

// fill installs line into core's L1 in the given state, evicting the LRU
// way if the set is full.
func (s *System) fill(core int, line uint64, st State) {
	c := &s.l1[core]
	idx := line & s.setsMask()
	set := c.sets[idx]
	// Prefer the slot already holding this line (an upgrade must replace
	// its own copy, or the set ends up with the line in two ways), then
	// any invalid slot.
	slot := -1
	for i := range set {
		if set[i].line == line {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range set {
			if set[i].state == Invalid {
				slot = i
				break
			}
		}
	}
	if slot >= 0 {
		set[slot] = l1slot{line: line, state: st}
		if slot != 0 {
			sl := set[slot]
			copy(set[1:slot+1], set[0:slot])
			set[0] = sl
		}
		return
	}
	if len(set) < s.p.L1Ways {
		c.sets[idx] = append([]l1slot{{line: line, state: st}}, set...)
		return
	}
	// Evict LRU (last).
	victim := set[len(set)-1]
	s.evict(core, victim)
	copy(set[1:], set[:len(set)-1])
	set[0] = l1slot{line: line, state: st}
}

// evict performs directory bookkeeping for a line displaced from core's L1.
// Dirty data "returns" to the home L2. This is modeled as instantaneous
// background traffic: eviction writebacks are off the critical path of the
// access that triggered them.
func (s *System) evict(core int, sl l1slot) {
	s.Stats.Evictions++
	d := s.dirFor(sl.line)
	if d.owner == core {
		d.owner = -1
		d.inL2 = true
	}
	d.sharers.clear(core)
	if le := s.l1[core].st.get(sl.line); le != nil && le.waiters != nil && le.waiters.Len() > 0 {
		le.waiters.WakeAll(s.p.L1RT)
	}
}

// SpinUntil models a core spinning on the word at addr until cond holds,
// the way hardware does it: read once, then sit on the locally cached copy
// generating no traffic until the line is invalidated, then re-fetch.
// It returns the value that satisfied cond.
func (s *System) SpinUntil(p *sim.Proc, core int, addr uint64, cond func(uint64) bool) uint64 {
	line := Line(addr)
	c := &s.l1[core]
	for {
		v := s.Read(p, core, addr)
		if cond(v) {
			return v
		}
		if sl := c.lookup(s.setsMask(), line); sl == nil {
			continue // already invalidated again; re-read
		}
		c.spinQueue(line).Wait(p, "spin")
	}
}

// Poke sets a word without timing or coherence effects, for initializing
// workload data. The line is marked present in L2 so later reads are not
// charged cold off-chip misses unless coldMiss is desired (use PokeCold).
func (s *System) Poke(addr, val uint64) {
	le := s.lines.fetch(Line(addr))
	le.words[wordIdx(addr)] = val
	le.dir.inL2 = true
}

// PokeCold sets a word without marking the line L2-resident, so the first
// access pays the off-chip fetch.
func (s *System) PokeCold(addr, val uint64) {
	s.setWord(addr, val)
}

// Peek returns a word's current value without timing effects.
func (s *System) Peek(addr uint64) uint64 { return s.wordAt(addr) }

// L1State returns core's current L1 state for the line holding addr
// (Invalid if absent), for tests.
func (s *System) L1State(core int, addr uint64) State {
	set := s.l1[core].sets[Line(addr)&s.setsMask()]
	for i := range set {
		if set[i].line == Line(addr) {
			return set[i].state
		}
	}
	return Invalid
}

// DebugSet returns a dump of the L1 set holding addr at core, for tests.
func (s *System) DebugSet(core int, addr uint64) []string {
	var out []string
	for _, sl := range s.l1[core].sets[Line(addr)&s.setsMask()] {
		out = append(out, fmt.Sprintf("line=%#x state=%v", sl.line, sl.state))
	}
	return out
}
