package mem

import "wisync/internal/sim"

// This file implements the paged dense line store that backs the memory
// system's per-line state (word values + directory entries, and the
// per-core L1 epoch/spin-waiter side tables). The previous implementation
// kept four hash maps keyed by line or word address; profiles put their
// hashing and probing at ~5% of a Baseline run. Workload addresses come
// from the machine's linear allocator (a bump pointer starting at 1 MB),
// so the line-index keyspace is small and dense — exactly what a paged
// array handles with one shift, one bounds check and one nil check per
// lookup.
//
// Addresses outside the dense window (sparse pokes in tests, or any
// workload that fabricates far-flung addresses) fall back to a map of
// individually allocated entries, so correctness never depends on the
// allocator's layout — only speed does. BenchmarkLineStore in
// store_test.go pins the dense path's advantage over the map it replaced.

// defaultPageShift is log2 of the lines per page when a store does not
// choose its own geometry.
const defaultPageShift = 9

// maxDensePages bounds the directly indexed page table of every store.
// Lines whose page index lands above it fall back to the sparse map, so
// the dense window only bounds speed, never correctness. At the default
// shift, 1<<15 pages cover 1 GB of simulated address space — far beyond
// the linear allocator's reach — with a worst-case page-pointer table of
// 256 KB.
const maxDensePages = 1 << 15

// lineWords is the number of 64-bit words per coherence line.
const lineWords = LineBytes / 8

// pagedStore is a paged dense map from line index to *T with a sparse
// overflow map. The zero value is empty and ready to use. Entry pointers
// are stable for the life of the store (pages and sparse entries are never
// moved), so callers may hold them across events.
//
// Page geometry is per store (shift, log2 lines per page): machines are
// built per sweep point, so a freshly touched page is zeroed memory on
// that point's critical path — stores with large entries or wide
// replication (one store per core) choose small pages to keep first-touch
// cost down, while lookups stay one shift + two indexed loads either way.
type pagedStore[T any] struct {
	pages  []*storePage[T]
	sparse map[uint64]*T
	// init, when non-nil, runs once on every entry of a freshly allocated
	// page (and on each sparse entry) before first use.
	init func(*T)
	// shift is log2 of the lines per page (0 selects defaultPageShift).
	shift uint
}

type storePage[T any] struct {
	lines []T
}

func (st *pagedStore[T]) pageShift() uint {
	if st.shift == 0 {
		return defaultPageShift
	}
	return st.shift
}

// get returns the entry for line, or nil if the line was never touched.
func (st *pagedStore[T]) get(line uint64) *T {
	sh := st.pageShift()
	pi := line >> sh
	if pi < uint64(len(st.pages)) {
		if pg := st.pages[pi]; pg != nil {
			return &pg.lines[line&(1<<sh-1)]
		}
		return nil
	}
	return st.sparse[line]
}

// fetch returns the entry for line, creating it (and its page) on demand.
func (st *pagedStore[T]) fetch(line uint64) *T {
	sh := st.pageShift()
	pi := line >> sh
	if pi < maxDensePages {
		if need := pi + 1; need > uint64(len(st.pages)) {
			// Grow with doubling capacity: the bump allocator produces
			// ascending page indices, so growing to exactly need would
			// recopy the whole table once per new page.
			if need <= uint64(cap(st.pages)) {
				st.pages = st.pages[:need]
			} else {
				newCap := 2 * uint64(cap(st.pages))
				if newCap < need {
					newCap = need
				}
				pages := make([]*storePage[T], need, newCap)
				copy(pages, st.pages)
				st.pages = pages
			}
		}
		pg := st.pages[pi]
		if pg == nil {
			pg = &storePage[T]{lines: make([]T, 1<<sh)}
			if st.init != nil {
				for i := range pg.lines {
					st.init(&pg.lines[i])
				}
			}
			st.pages[pi] = pg
		}
		return &pg.lines[line&(1<<sh-1)]
	}
	e := st.sparse[line]
	if e == nil {
		if st.sparse == nil {
			st.sparse = make(map[uint64]*T)
		}
		e = new(T)
		if st.init != nil {
			st.init(e)
		}
		st.sparse[line] = e
	}
	return e
}

// lineEntry is all global per-line state: the line's eight 64-bit words
// and its home directory entry.
type lineEntry struct {
	words [lineWords]uint64
	dir   dirLine
}

// l1line is the per-core, per-line L1 side state: the invalidation epoch
// and the spin-waiter queue. The queue is a lazily allocated pointer —
// most lines are never spun on, and the l1 store is replicated per core,
// so entry size directly multiplies machine-construction cost.
type l1line struct {
	epoch   uint64
	waiters *sim.WaitQueue
}

// wordIdx returns addr's word slot within its line. Word addresses are
// 8-byte aligned throughout the simulator (the linear allocator hands out
// line- and word-aligned addresses), so the low three address bits carry
// no information.
func wordIdx(addr uint64) uint64 { return (addr >> 3) & (lineWords - 1) }
