package mem

// This file is the continuation-form face of the memory system: each
// public blocking operation in txn.go has an async variant that takes a
// completion callback instead of a requesting process. Both faces share
// the same txn state machine and the same dense line store, and consume
// event sequence numbers at identical execution points, so a workload may
// use either without moving a simulated result (see the sim package
// comment's execution-model section; the golden-conformance suite pins the
// equivalence end to end).

// hitCont is a recycled L1-hit delivery continuation: the "sleep the L1
// round trip, then hand over the value" step of ReadAsync and RMWAsync,
// which would otherwise capture addr and then in a fresh closure on the
// hottest path in the simulator. useOld distinguishes the two delivery
// semantics: an RMW hit linearizes at issue time and delivers the captured
// old value; a read hit samples the word at fire time, exactly as the
// closure forms did.
type hitCont struct {
	s      *System
	addr   uint64
	old    uint64
	useOld bool
	then   func(uint64)
	fn     func() // cached method value of run
}

func (s *System) newHitCont(addr, old uint64, useOld bool, then func(uint64)) *hitCont {
	var c *hitCont
	if n := len(s.hitFree); n > 0 {
		c = s.hitFree[n-1]
		s.hitFree = s.hitFree[:n-1]
		s.eng.StepPoolHit()
	} else {
		c = &hitCont{s: s}
		c.fn = c.run
		s.eng.StepPoolMiss()
	}
	c.addr, c.old, c.useOld, c.then = addr, old, useOld, then
	return c
}

func (c *hitCont) run() {
	s, then := c.s, c.then
	v := c.old
	if !c.useOld {
		v = s.wordAt(c.addr)
	}
	c.then = nil
	s.hitFree = append(s.hitFree, c)
	then(v)
}

// ReadAsync is the continuation mirror of Read: then receives the loaded
// value at the cycle Read would have returned.
func (s *System) ReadAsync(core int, addr uint64, then func(uint64)) {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil {
		s.Stats.L1Hits++
		s.eng.LocalSleepThen(core, s.p.L1RT, s.newHitCont(addr, 0, false, then).fn)
		return
	}
	s.Stats.L1Misses++
	s.transactAsync(core, line, addr, nil, then)
}

// WriteAsync is the continuation mirror of Write.
func (s *System) WriteAsync(core int, addr uint64, val uint64, then func()) {
	s.RMWAsync(core, addr, func(uint64) (uint64, bool) { return val, true },
		func(uint64) { then() })
}

// RMWAsync is the continuation mirror of RMW: then receives the value f
// observed, at the cycle RMW would have returned.
func (s *System) RMWAsync(core int, addr uint64, f func(uint64) (uint64, bool), then func(uint64)) {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil && (sl.state == Modified || sl.state == Exclusive) {
		// Exclusive hit: linearize now, exactly as the blocking form does
		// (see RMW), and deliver the old value after the L1 latency.
		s.Stats.L1Hits++
		sl.state = Modified
		le := s.lines.fetch(line)
		old := le.words[wordIdx(addr)]
		if nv, do := f(old); do {
			le.words[wordIdx(addr)] = nv
		}
		s.eng.LocalSleepThen(core, s.p.L1RT, s.newHitCont(addr, old, true, then).fn)
		return
	}
	s.Stats.L1Misses++
	s.transactAsync(core, line, addr, f, then)
}

// memSpin is a recycled spin loop: the onVal/respin continuation pair of
// SpinUntilAsync as struct fields and cached method values. Spins from
// different cores overlap, so the structs pool on the System (like txn)
// rather than living one-per-core; a spin returns to the pool the moment
// its condition is satisfied.
type memSpin struct {
	s    *System
	core int
	addr uint64
	line uint64
	cond func(uint64) bool
	then func(uint64)

	onValFn  func(uint64)
	respinFn func()
}

func (sp *memSpin) respin() { sp.s.ReadAsync(sp.core, sp.addr, sp.onValFn) }

func (sp *memSpin) onVal(v uint64) {
	s := sp.s
	if sp.cond(v) {
		then := sp.then
		sp.cond, sp.then = nil, nil
		s.spinFree = append(s.spinFree, sp)
		then(v)
		return
	}
	c := &s.l1[sp.core]
	if sl := c.lookup(s.setsMask(), sp.line); sl == nil {
		sp.respin() // already invalidated again; re-read
		return
	}
	c.spinQueue(sp.line).WaitFn(s.eng, sp.respinFn)
}

// SpinUntilAsync is the continuation mirror of SpinUntil: it re-reads addr
// on every invalidation of the locally cached line, with no traffic in
// between, until cond holds; then receives the satisfying value.
func (s *System) SpinUntilAsync(core int, addr uint64, cond func(uint64) bool, then func(uint64)) {
	var sp *memSpin
	if n := len(s.spinFree); n > 0 {
		sp = s.spinFree[n-1]
		s.spinFree = s.spinFree[:n-1]
		s.eng.StepPoolHit()
	} else {
		sp = &memSpin{s: s}
		sp.onValFn = sp.onVal
		sp.respinFn = sp.respin
		s.eng.StepPoolMiss()
	}
	sp.core, sp.addr, sp.line, sp.cond, sp.then = core, addr, Line(addr), cond, then
	sp.respin()
}
