package mem

// This file is the continuation-form face of the memory system: each
// public blocking operation in txn.go has an async variant that takes a
// completion callback instead of a requesting process. Both faces share
// the same txn state machine and the same dense line store, and consume
// event sequence numbers at identical execution points, so a workload may
// use either without moving a simulated result (see the sim package
// comment's execution-model section; the golden-conformance suite pins the
// equivalence end to end).

// ReadAsync is the continuation mirror of Read: then receives the loaded
// value at the cycle Read would have returned.
func (s *System) ReadAsync(core int, addr uint64, then func(uint64)) {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil {
		s.Stats.L1Hits++
		s.eng.SleepThen(s.p.L1RT, func() { then(s.wordAt(addr)) })
		return
	}
	s.Stats.L1Misses++
	s.transactAsync(core, line, addr, nil, then)
}

// WriteAsync is the continuation mirror of Write.
func (s *System) WriteAsync(core int, addr uint64, val uint64, then func()) {
	s.RMWAsync(core, addr, func(uint64) (uint64, bool) { return val, true },
		func(uint64) { then() })
}

// RMWAsync is the continuation mirror of RMW: then receives the value f
// observed, at the cycle RMW would have returned.
func (s *System) RMWAsync(core int, addr uint64, f func(uint64) (uint64, bool), then func(uint64)) {
	line := Line(addr)
	c := &s.l1[core]
	if sl := c.lookup(s.setsMask(), line); sl != nil && (sl.state == Modified || sl.state == Exclusive) {
		// Exclusive hit: linearize now, exactly as the blocking form does
		// (see RMW), and deliver the old value after the L1 latency.
		s.Stats.L1Hits++
		sl.state = Modified
		le := s.lines.fetch(line)
		old := le.words[wordIdx(addr)]
		if nv, do := f(old); do {
			le.words[wordIdx(addr)] = nv
		}
		s.eng.SleepThen(s.p.L1RT, func() { then(old) })
		return
	}
	s.Stats.L1Misses++
	s.transactAsync(core, line, addr, f, then)
}

// SpinUntilAsync is the continuation mirror of SpinUntil: it re-reads addr
// on every invalidation of the locally cached line, with no traffic in
// between, until cond holds; then receives the satisfying value.
func (s *System) SpinUntilAsync(core int, addr uint64, cond func(uint64) bool, then func(uint64)) {
	line := Line(addr)
	c := &s.l1[core]
	var onVal func(uint64)
	respin := func() { s.ReadAsync(core, addr, onVal) }
	onVal = func(v uint64) {
		if cond(v) {
			then(v)
			return
		}
		if sl := c.lookup(s.setsMask(), line); sl == nil {
			respin() // already invalidated again; re-read
			return
		}
		c.spinQueue(line).WaitFn(s.eng, respin)
	}
	respin()
}
