// Package workerpool supervises a pool of OS-process sweep workers: the
// isolation backbone of cmd/wisync-server's -isolation=proc mode.
//
// Each pool slot owns one cmd/wisync-worker subprocess and feeds it one
// point at a time over the harness wire protocol (JSON lines on
// stdin/stdout). The supervisor provides what in-process execution cannot:
//
//   - a hard wall-clock kill per point (SIGKILL) — the in-process
//     budget/watchdog guards are polled cooperatively and cannot catch a
//     runaway allocation, a livelocked runtime, or an OOM spiral; a dead
//     process always can be reaped;
//   - crash containment — a worker that dies mid-point (signal, OOM,
//     runtime fault) costs exactly that point, reported as a structured
//     ErrCrashed row, while every other in-flight point is undisturbed;
//   - capped exponential backoff with jitter between restarts of a
//     crashing slot, so a hard-failing environment degrades to slow
//     retries instead of a fork bomb;
//   - a per-point circuit breaker: a point whose execution crashes the
//     worker BreakerAfter consecutive times is poisoned — further
//     submissions short-circuit to ErrBreakerOpen without being
//     dispatched, so one bad input cannot crash-loop the pool forever.
//
// Determinism is untouched: workers run the exact PointSpec.Run path, so
// a row computed in a subprocess is byte-identical to the in-process one
// (pinned by the pool round-trip tests against the golden matrix).
package workerpool

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wisync/internal/core"
	"wisync/internal/harness"
)

// Sentinel errors; the structured row errors the server streams wrap
// these, so callers classify with errors.Is.
var (
	// ErrCrashed reports a worker process that died while executing the
	// point (or desynchronized its protocol stream, which is recycled the
	// same way).
	ErrCrashed = errors.New("workerpool: worker crashed")
	// ErrKilled reports a point that exceeded the hard wall-clock timeout
	// and was SIGKILLed by the supervisor.
	ErrKilled = errors.New("workerpool: point killed after hard timeout")
	// ErrBreakerOpen reports a point refused without dispatch because it
	// already crashed the worker BreakerAfter consecutive times.
	ErrBreakerOpen = errors.New("workerpool: circuit breaker open")
	// ErrClosed reports a Run against a closed pool.
	ErrClosed = errors.New("workerpool: pool closed")
)

// Options sizes and tunes a pool; zero fields take defaults.
type Options struct {
	// Command is the argv spawning one worker (default: "wisync-worker"
	// resolved from the directory of the current executable, then $PATH).
	Command []string
	// Env entries are appended to the inherited environment of every
	// worker (tests use this to select misbehavior modes in a helper
	// binary).
	Env []string
	// Workers is the number of subprocess slots (default GOMAXPROCS).
	Workers int
	// PointTimeout is the hard wall-clock budget per point; a worker
	// still silent at that deadline is SIGKILLed and the point reported
	// as ErrKilled (default 2m).
	PointTimeout time.Duration
	// BreakerAfter is the consecutive-crash count of one point that trips
	// its circuit breaker (default 3).
	BreakerAfter int
	// BackoffBase and BackoffMax bound the restart delay of a crashing
	// slot: the delay starts at BackoffBase, doubles per consecutive
	// crash, is capped at BackoffMax, and carries ±50% jitter
	// (defaults 100ms, 5s).
	BackoffBase, BackoffMax time.Duration
	// Stderr receives worker stderr (default os.Stderr).
	Stderr io.Writer
}

func (o Options) withDefaults() Options {
	if len(o.Command) == 0 {
		o.Command = []string{"wisync-worker"}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.PointTimeout <= 0 {
		o.PointTimeout = 2 * time.Minute
	}
	if o.BreakerAfter <= 0 {
		o.BreakerAfter = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	return o
}

// Stats is a snapshot of the pool's supervision counters, surfaced in the
// server's /stats.
type Stats struct {
	// Workers is the slot count; Points counts completed dispatches
	// (including error rows computed by a live worker).
	Workers int    `json:"workers"`
	Points  uint64 `json:"points"`
	// Restarts counts worker processes started to replace a dead one;
	// Kills counts hard-timeout SIGKILLs; Crashes counts workers that
	// died (or desynchronized) mid-point, kills included.
	Restarts uint64 `json:"restarts"`
	Kills    uint64 `json:"kills"`
	Crashes  uint64 `json:"crashes"`
	// BreakerOpen is the number of points currently short-circuited;
	// BreakerTrips counts breakers ever opened; BreakerRejects counts
	// submissions refused by an open breaker.
	BreakerOpen    int    `json:"breaker_open"`
	BreakerTrips   uint64 `json:"breaker_trips"`
	BreakerRejects uint64 `json:"breaker_rejects"`
}

// request is one point waiting for a worker slot. resp is buffered so a
// supervisor's delivery never blocks.
type request struct {
	spec harness.PointSpec
	key  string
	ctx  context.Context
	resp chan result
}

type result struct {
	row string
	err error
}

// Pool is a supervised set of worker subprocesses. Construct with New;
// Close kills every worker.
type Pool struct {
	opts Options
	reqs chan *request
	done chan struct{}
	wg   sync.WaitGroup

	points, restarts, kills, crashes atomic.Uint64
	breakerTrips, breakerRejects     atomic.Uint64
	mu                               sync.Mutex
	consecutive                      map[string]int
	open                             map[string]int // key -> crash count at trip time
	rng                              *rand.Rand
	closed                           atomic.Bool
}

// New builds the pool and starts its supervisors. Workers themselves are
// spawned lazily, on the first point each slot receives, so a pool in
// front of an idle server costs nothing until traffic arrives.
func New(o Options) *Pool {
	o = o.withDefaults()
	p := &Pool{
		opts:        o,
		reqs:        make(chan *request),
		done:        make(chan struct{}),
		consecutive: make(map[string]int),
		open:        make(map[string]int),
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	p.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go p.supervise()
	}
	return p
}

// Close SIGKILLs every worker and stops the supervisors. In-flight Run
// calls return ErrClosed or their already-computed result.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
		p.wg.Wait()
	}
}

// Stats returns a snapshot of the supervision counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	open := len(p.open)
	p.mu.Unlock()
	return Stats{
		Workers:        p.opts.Workers,
		Points:         p.points.Load(),
		Restarts:       p.restarts.Load(),
		Kills:          p.kills.Load(),
		Crashes:        p.crashes.Load(),
		BreakerOpen:    open,
		BreakerTrips:   p.breakerTrips.Load(),
		BreakerRejects: p.breakerRejects.Load(),
	}
}

// pointKey is the breaker's identity for a spec: the same content address
// the cache uses, plus the seed — two submissions count against one
// breaker exactly when they run the same simulation.
func pointKey(spec harness.PointSpec) (string, error) {
	d, err := spec.Digest()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s-s%d", d, spec.Seed), nil
}

// Run executes one point in a worker subprocess and returns its row. Every
// failure mode is a structured error: ErrBreakerOpen (refused without
// dispatch), ErrKilled (hard timeout), ErrCrashed (worker died mid-point),
// core.ErrAborted (ctx canceled — the worker is killed so the slot frees
// immediately), or the point's own error string computed by a live worker.
func (p *Pool) Run(ctx context.Context, spec harness.PointSpec) (string, error) {
	key, err := pointKey(spec)
	if err != nil {
		return "", err
	}
	if n, open := p.breakerState(key); open {
		p.breakerRejects.Add(1)
		return "", fmt.Errorf("workerpool: point %s crashed its worker %d consecutive times: %w",
			spec.ID(), n, ErrBreakerOpen)
	}
	req := &request{spec: spec, key: key, ctx: ctx, resp: make(chan result, 1)}
	select {
	case p.reqs <- req:
	case <-ctx.Done():
		return "", fmt.Errorf("workerpool: point %s canceled before dispatch: %w", spec.ID(), core.ErrAborted)
	case <-p.done:
		return "", ErrClosed
	}
	// The supervisor that accepted the request always answers, including
	// on ctx cancellation (it kills the worker and reports the abort).
	res := <-req.resp
	return res.row, res.err
}

// breakerState reports the crash count and whether the breaker is open
// for key.
func (p *Pool) breakerState(key string) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, open := p.open[key]; open {
		return n, true
	}
	return p.consecutive[key], false
}

// recordCrash counts one worker crash against key, tripping its breaker
// at the configured threshold.
func (p *Pool) recordCrash(key string) {
	p.crashes.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consecutive[key]++
	if n := p.consecutive[key]; n >= p.opts.BreakerAfter {
		if _, open := p.open[key]; !open {
			p.open[key] = n
			p.breakerTrips.Add(1)
		}
	}
}

// recordServed clears key's consecutive-crash count: the worker survived
// the point (whether the point itself succeeded or returned an error row).
func (p *Pool) recordServed(key string) {
	p.mu.Lock()
	delete(p.consecutive, key)
	p.mu.Unlock()
}

// jitteredBackoff doubles delay toward the cap and returns it with ±50%
// jitter, so a fleet of crashing slots does not restart in lockstep.
func (p *Pool) jitteredBackoff(delay *time.Duration) time.Duration {
	d := *delay
	if *delay < p.opts.BackoffMax {
		*delay *= 2
		if *delay > p.opts.BackoffMax {
			*delay = p.opts.BackoffMax
		}
	}
	p.mu.Lock()
	j := p.rng.Int63n(int64(d) + 1)
	p.mu.Unlock()
	return d/2 + time.Duration(j)
}

// sleep waits d unless the pool closes first.
func (p *Pool) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.done:
	}
}
