package workerpool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/harness"
)

// The tests re-exec this test binary as the worker subprocess: TestMain
// diverts to a worker loop when the helper env var is set, so the pool is
// exercised against real OS processes without building cmd/wisync-worker.
//
// The "selective" helper misbehaves on magic seeds, letting one pool mix
// healthy and poisoned points exactly like a production mixed workload:
//
//	seed 666 -> crash (os.Exit mid-point)
//	seed 667 -> hang (never respond; only SIGKILL ends it)
//	seed 668 -> desync (answer garbage)
//	anything else -> the real harness.ServeWire behavior
const helperEnv = "WISYNC_WORKERPOOL_HELPER"

func TestMain(m *testing.M) {
	switch os.Getenv(helperEnv) {
	case "":
		os.Exit(m.Run())
	case "serve":
		if err := harness.ServeWire(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "selective":
		helperSelective()
		os.Exit(0)
	}
}

func helperSelective() {
	dec := json.NewDecoder(os.Stdin)
	for {
		var req harness.WireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Spec.Seed {
		case 666:
			os.Exit(2)
		case 667:
			// Hang until the supervisor's SIGKILL (a bare select{} would
			// trip the runtime deadlock detector and exit instead).
			time.Sleep(time.Hour)
		case 668:
			fmt.Println("this is not a wire response")
			continue
		}
		resp := harness.WireResponse{Seq: req.Seq}
		row, err := req.Spec.Run()
		if err != nil {
			resp.Err, resp.Error = true, err.Error()
		} else {
			resp.Row = row
		}
		if err := harness.EncodeWire(os.Stdout, resp); err != nil {
			return
		}
	}
}

// testPool builds a pool running this test binary in the given helper
// mode, with fast backoff so crash tests stay quick.
func testPool(t *testing.T, mode string, o Options) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	o.Command = []string{exe}
	o.Env = append(o.Env, helperEnv+"="+mode)
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 10 * time.Millisecond
	}
	p := New(o)
	t.Cleanup(p.Close)
	return p
}

func spec(seed uint64) harness.PointSpec {
	return harness.PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: seed}
}

// TestPoolRoundTrip pins the isolation invariant: a row computed in a
// worker subprocess is byte-identical to the in-process PointSpec.Run row.
func TestPoolRoundTrip(t *testing.T) {
	p := testPool(t, "serve", Options{Workers: 2})
	for _, s := range []harness.PointSpec{spec(1), spec(42),
		{Workload: "cas-fifo", Kind: config.Baseline, Cores: 16, Seed: 1}} {
		want, err := s.Run()
		if err != nil {
			t.Fatalf("inproc %s: %v", s.ID(), err)
		}
		got, err := p.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("pool %s: %v", s.ID(), err)
		}
		if got != want {
			t.Fatalf("subprocess row differs from inproc for %s:\ngot:  %s\nwant: %s", s.ID(), got, want)
		}
	}
	// An unknown workload fails its content address client-side, before
	// any dispatch.
	if _, err := p.Run(context.Background(), harness.PointSpec{Workload: "mystery", Kind: config.WiSync, Cores: 16}); err == nil {
		t.Fatal("invalid spec did not error")
	}
	// An out-of-range machine digests fine but fails validation inside the
	// worker: the structured error comes back over the wire, with the
	// worker still alive (no crash counted).
	if _, err := p.Run(context.Background(), harness.PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 500, Seed: 1}); err == nil {
		t.Fatal("out-of-range spec did not error")
	}
	st := p.Stats()
	if st.Points != 4 || st.Crashes != 0 || st.Restarts != 0 || st.Kills != 0 {
		t.Fatalf("stats after healthy round trips: %+v", st)
	}
}

// TestPoolCrashIsolation pins crash containment and the breaker: a point
// that kills its worker costs exactly that point (a structured ErrCrashed),
// healthy points on the same pool are undisturbed, and after BreakerAfter
// consecutive crashes the point is refused without dispatch.
func TestPoolCrashIsolation(t *testing.T) {
	p := testPool(t, "selective", Options{Workers: 1, BreakerAfter: 2})
	want, err := spec(1).Run()
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, err := p.Run(context.Background(), spec(666)); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash %d: err=%v, want ErrCrashed", i, err)
		}
		// The pool recovers: a healthy point right after the crash runs on
		// a fresh worker and stays byte-identical.
		if got, err := p.Run(context.Background(), spec(1)); err != nil || got != want {
			t.Fatalf("healthy point after crash %d: row=%q err=%v", i, got, err)
		}
	}
	// Two consecutive crashes of one point tripped its breaker...
	if _, err := p.Run(context.Background(), spec(666)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("poisoned point not short-circuited: %v", err)
	}
	// ...while other points are untouched by it.
	if got, err := p.Run(context.Background(), spec(1)); err != nil || got != want {
		t.Fatalf("healthy point with breaker open: row=%q err=%v", got, err)
	}
	st := p.Stats()
	if st.Crashes != 2 || st.Restarts < 1 || st.BreakerTrips != 1 || st.BreakerOpen != 1 || st.BreakerRejects != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPoolBreakerResetsOnSuccess pins that the consecutive-crash count is
// per-point and clears when the point is served: alternating crash/success
// of different points never trips a breaker, and a once-crashing point
// that later completes starts from zero again.
func TestPoolBreakerResetsOnSuccess(t *testing.T) {
	p := testPool(t, "selective", Options{Workers: 1, BreakerAfter: 2})
	// One crash, then the SAME content address served successfully: the
	// selective helper keys misbehavior off the seed, so use the crash
	// seed once and verify a different healthy seed doesn't inherit it.
	if _, err := p.Run(context.Background(), spec(666)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err=%v, want ErrCrashed", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Run(context.Background(), spec(2)); err != nil {
			t.Fatalf("healthy run %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.BreakerTrips != 0 {
		t.Fatalf("breaker tripped across distinct points: %+v", st)
	}
}

// TestPoolHardKill pins the wall-clock reaper: a point that never returns
// is SIGKILLed at PointTimeout and reported as a structured ErrKilled,
// while a concurrent healthy point on the other slot completes
// byte-identical and on time.
func TestPoolHardKill(t *testing.T) {
	p := testPool(t, "selective", Options{Workers: 2, PointTimeout: 100 * time.Millisecond, BreakerAfter: 100})
	want, err := spec(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var hangErr error
	go func() {
		defer wg.Done()
		_, hangErr = p.Run(context.Background(), spec(667))
	}()
	if got, err := p.Run(context.Background(), spec(1)); err != nil || got != want {
		t.Fatalf("healthy point alongside hung worker: row=%q err=%v", got, err)
	}
	wg.Wait()
	if !errors.Is(hangErr, ErrKilled) {
		t.Fatalf("hung point err=%v, want ErrKilled", hangErr)
	}
	st := p.Stats()
	if st.Kills != 1 || st.Crashes != 1 {
		t.Fatalf("stats after kill: %+v", st)
	}
	// The killed slot respawns: the same pool still serves points.
	if got, err := p.Run(context.Background(), spec(1)); err != nil || got != want {
		t.Fatalf("point after kill: row=%q err=%v", got, err)
	}
}

// TestPoolContextAbort pins deadline propagation: canceling the point's
// context kills the worker and reports core.ErrAborted promptly, so a
// job deadline frees the slot instead of waiting out the hard timeout.
func TestPoolContextAbort(t *testing.T) {
	p := testPool(t, "selective", Options{Workers: 1, PointTimeout: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Run(ctx, spec(667))
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("err=%v, want core.ErrAborted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the slot was not freed promptly", elapsed)
	}
	// Not a crash: ctx cancellation must not poison the point's breaker.
	if st := p.Stats(); st.Crashes != 0 || st.BreakerTrips != 0 {
		t.Fatalf("stats after abort: %+v", st)
	}
}

// TestPoolSpawnFailure pins the missing-binary path: Run errors instead of
// hanging, and the pool survives to report stats.
func TestPoolSpawnFailure(t *testing.T) {
	p := New(Options{Command: []string{"/nonexistent/wisync-worker"}, Workers: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	defer p.Close()
	if _, err := p.Run(context.Background(), spec(1)); err == nil {
		t.Fatal("spawn failure did not error")
	}
}

// TestPoolClose pins shutdown: Run after Close is ErrClosed, and Close is
// idempotent.
func TestPoolClose(t *testing.T) {
	p := testPool(t, "serve", Options{Workers: 1})
	if _, err := p.Run(context.Background(), spec(1)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := p.Run(context.Background(), spec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err=%v, want ErrClosed", err)
	}
}

// TestPoolDesyncRecycled pins the protocol guard: a worker answering
// garbage is recycled like a crash, and the pool recovers.
func TestPoolDesyncRecycled(t *testing.T) {
	p := testPool(t, "selective", Options{Workers: 1, PointTimeout: 2 * time.Second, BreakerAfter: 100})
	if _, err := p.Run(context.Background(), spec(668)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("desync err=%v, want ErrCrashed", err)
	}
	if _, err := p.Run(context.Background(), spec(1)); err != nil {
		t.Fatalf("point after desync: %v", err)
	}
}
