package workerpool

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"wisync/internal/core"
	"wisync/internal/harness"
)

// worker is one live subprocess: its pipes, its response stream, and the
// sequence number pairing requests with responses.
type worker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	// responses carries decoded WireResponses from the reader goroutine;
	// it closes when the worker's stdout ends (death or desync), after
	// which the reader reaps the process.
	responses chan harness.WireResponse
	seq       uint64
}

// startWorker spawns one subprocess and its response reader. The reader
// goroutine owns cmd.Wait, so every spawned worker is reaped exactly once
// no matter how it dies.
func (p *Pool) startWorker() (*worker, error) {
	cmd := exec.Command(p.opts.Command[0], p.opts.Command[1:]...)
	cmd.Env = append(os.Environ(), p.opts.Env...)
	cmd.Stderr = p.opts.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("workerpool: stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("workerpool: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("workerpool: starting %q: %w", p.opts.Command[0], err)
	}
	w := &worker{cmd: cmd, stdin: stdin, responses: make(chan harness.WireResponse, 1)}
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var resp harness.WireResponse
			if err := dec.Decode(&resp); err != nil {
				// EOF (worker exited or was killed) or a corrupt stream;
				// either way this worker is done producing.
				break
			}
			w.responses <- resp
		}
		close(w.responses)
		_ = cmd.Wait()
	}()
	return w, nil
}

// kill SIGKILLs the worker; the reader goroutine observes stdout EOF and
// reaps it. Safe to call on an already-dead worker. A drainer goroutine
// consumes any leftover responses so a desynchronized worker that spewed
// extra lines can never wedge its reader (and thus its reaper).
func (w *worker) kill() {
	_ = w.stdin.Close()
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	go func() {
		for range w.responses {
		}
	}()
}

// send writes one request line to the worker's stdin.
func (w *worker) send(req harness.WireRequest) error {
	return harness.EncodeWire(w.stdin, req)
}

// supervise owns one pool slot: it spawns a worker lazily, feeds it one
// point at a time, hard-kills it when a point exceeds PointTimeout or its
// context is canceled, and replaces crashed workers with capped,
// jittered exponential backoff. It exits only when the pool closes.
func (p *Pool) supervise() {
	defer p.wg.Done()
	var w *worker
	// respawn marks that this slot's previous worker died: the next
	// successful spawn counts as a restart.
	respawn := false
	backoff := p.opts.BackoffBase
	defer func() {
		if w != nil {
			w.kill()
		}
	}()
	for {
		var req *request
		select {
		case <-p.done:
			return
		case req = <-p.reqs:
		}
		// The breaker may have tripped, or the job's deadline expired,
		// while the request sat in the queue.
		if n, open := p.breakerState(req.key); open {
			p.breakerRejects.Add(1)
			req.resp <- result{err: fmt.Errorf("workerpool: point %s crashed its worker %d consecutive times: %w",
				req.spec.ID(), n, ErrBreakerOpen)}
			continue
		}
		if req.ctx.Err() != nil {
			req.resp <- result{err: fmt.Errorf("workerpool: point %s canceled before dispatch: %w",
				req.spec.ID(), core.ErrAborted)}
			continue
		}
		if w == nil {
			var err error
			if w, err = p.startWorker(); err != nil {
				// Spawn failure (missing binary, fd exhaustion): answer,
				// then back off before this slot tries again.
				req.resp <- result{err: err}
				p.sleep(p.jitteredBackoff(&backoff))
				continue
			}
			if respawn {
				p.restarts.Add(1)
				respawn = false
			}
		}
		w.seq++
		if err := w.send(harness.WireRequest{Seq: w.seq, Spec: req.spec}); err != nil {
			// The worker died between points; recycle it and report the
			// point as crashed (its simulation never started, but the
			// caller cannot know that — crashed is the honest class).
			w, respawn = p.replaceCrashed(w, req, &backoff), true
			continue
		}
		timer := time.NewTimer(p.opts.PointTimeout)
		select {
		case resp, ok := <-w.responses:
			timer.Stop()
			if !ok || resp.Seq != w.seq {
				// Death mid-point, or a desynchronized stream — recycle.
				w, respawn = p.replaceCrashed(w, req, &backoff), true
				continue
			}
			p.points.Add(1)
			p.recordServed(req.key)
			backoff = p.opts.BackoffBase
			if resp.Err {
				req.resp <- result{err: fmt.Errorf("workerpool: %s", resp.Error)}
			} else {
				req.resp <- result{row: resp.Row}
			}
		case <-timer.C:
			// Hard wall-clock kill: the one guard a runaway process
			// cannot dodge. Counts as a crash for the breaker — a point
			// that reliably outruns the timeout is poisoned too.
			w.kill()
			w, respawn = nil, true
			p.kills.Add(1)
			p.recordCrash(req.key)
			req.resp <- result{err: fmt.Errorf("workerpool: point %s exceeded %v: %w",
				req.spec.ID(), p.opts.PointTimeout, ErrKilled)}
		case <-req.ctx.Done():
			timer.Stop()
			// Job deadline or client disconnect: kill the worker so the
			// slot frees now instead of at the point's natural end. Not a
			// crash — the point did nothing wrong.
			w.kill()
			w, respawn = nil, true
			req.resp <- result{err: fmt.Errorf("workerpool: point %s canceled mid-run: %w",
				req.spec.ID(), core.ErrAborted)}
		case <-p.done:
			timer.Stop()
			req.resp <- result{err: ErrClosed}
			return
		}
	}
}

// replaceCrashed records a crash of req's point, answers the caller, and
// schedules the slot's next worker behind the backoff delay. Returns nil:
// the next worker spawns lazily on the following request.
func (p *Pool) replaceCrashed(w *worker, req *request, backoff *time.Duration) *worker {
	w.kill()
	p.recordCrash(req.key)
	req.resp <- result{err: fmt.Errorf("workerpool: point %s: worker died mid-point: %w",
		req.spec.ID(), ErrCrashed)}
	p.sleep(p.jitteredBackoff(backoff))
	return nil
}
