// Package apps models the paper's full-application evaluation (Section
// 7.4): the complete PARSEC and SPLASH-2 suites on 64 cores.
//
// Running the real binaries requires an x86 full-system simulator, so each
// application is replaced by a synthetic thread-parallel program whose
// synchronization profile — compute grain and arrival jitter, barrier
// frequency, lock count/contention/hold times, reductions, shared-memory
// footprint — is calibrated so the published per-application speedups of
// Figure 10 and the channel utilizations of Table 5 are reproduced in
// shape. The synthetic programs exercise the real machinery end to end:
// locks and barriers come from package syncprims and run over the real
// MOESI hierarchy or the real wireless BM, so the speedups are emergent,
// not scripted. See DESIGN.md, substitution 2.
package apps

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/mem"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
	"wisync/internal/wireless"
)

// Profile describes one application's synchronization behavior. Each of
// the app's threads runs Iterations of: jittered compute, shared-footprint
// reads, lock/unlock critical sections, reduction updates, and barriers.
type Profile struct {
	Name  string
	Suite string

	Iterations int
	// ComputeMean is the cycles of local computation per iteration,
	// jittered multiplicatively by +-Jitter.
	ComputeMean int
	Jitter      float64
	// Barriers per iteration (the barrier-bound apps hit several with
	// little work between).
	BarriersPerIter int
	// Locks: LockOpsPerIter acquire/release pairs spread over NumLocks
	// locks (1 = a serialized hot lock), holding HoldCycles inside the
	// critical section plus one shared-line write.
	LockOpsPerIter int
	NumLocks       int
	HoldCycles     int
	// ReductionsPerIter fetch&add updates to a global accumulator.
	ReductionsPerIter int
	// SharedReadsPerIter reads over a shared footprint of SharedLines
	// cache lines (background coherence traffic).
	SharedReadsPerIter int
	SharedLines        int
}

// Result reports one application execution.
type Result struct {
	Profile Profile
	Cfg     config.Config
	Cycles  sim.Time
	// DataUtilPct is Data-channel utilization in percent (Table 5).
	DataUtilPct float64
	// Spills counts BM allocations that fell back to cached memory.
	Spills int
	// Mem, Net and MAC expose the machine's protocol counters, so the
	// equivalence suite can pin the execution modes counter-for-counter,
	// not just on the headline cycles. Net/MAC are zero on wired
	// configurations.
	Mem mem.Stats
	Net wireless.Stats
	MAC wireless.MACStats
	// Energy is the Data channel's transceiver energy ledger and
	// channel-error delivery counters (see kernels.Result).
	Energy wireless.EnergyStats
	// Sched reports the engine's scheduling internals (timing-wheel hits,
	// heap fallbacks, recycled-step reuse). Unlike every field above it
	// describes simulator mechanics, not simulated behavior: the two
	// execution modes legitimately differ here, and the equivalence suite
	// excludes it.
	Sched sim.SchedStats
	// Faults lists the workload threads halted by a fail-stopped
	// transceiver (nil without a fault plan); see kernels.Result.
	Faults []core.Fault
}

func (r Result) String() string {
	return fmt.Sprintf("%-13s %-10s %9d cycles  util %.2f%%",
		r.Profile.Name, r.Cfg.Kind, r.Cycles, r.DataUtilPct)
}

// Run executes the profile on the given configuration in the default
// (task) execution mode.
func Run(cfg config.Config, p Profile) Result {
	return RunExec(cfg, p, core.ExecTask)
}

// RunExec is Run with an explicit workload execution mode. Allocation (and
// therefore the BM spill sequence) is shared between the modes; only the
// interpreter differs — the blocking loop nest below, or the appTask state
// machine in task.go — and the two produce bit-identical results.
func RunExec(cfg config.Config, p Profile, exec core.Exec) Result {
	m := core.NewMachine(cfg)
	f := syncprims.NewFactory(m)
	var barrier syncprims.Barrier
	if p.BarriersPerIter > 0 {
		barrier = f.NewBarrier(nil)
	}
	locks := make([]syncprims.Lock, p.NumLocks)
	for i := range locks {
		locks[i] = f.NewLock()
	}
	var red *syncprims.Reducer
	if p.ReductionsPerIter > 0 {
		red = f.NewReducer(0)
	}
	var shared uint64
	if p.SharedLines > 0 {
		shared = m.AllocArray(p.SharedLines * 8)
	}
	lockData := make([]uint64, max(p.NumLocks, 1))
	for i := range lockData {
		lockData[i] = m.AllocLine()
	}

	if exec == core.ExecThread {
		m.SpawnAll(func(t *core.Thread) {
			rng := sim.NewRand(cfg.Seed*1000003 + uint64(t.Core))
			// Desynchronized start, as threads of a real program are.
			t.Compute(rng.Intn(p.ComputeMean/4 + 1))
			for it := 0; it < p.Iterations; it++ {
				compute := p.ComputeMean / max(p.BarriersPerIter, 1)
				for b := 0; b < max(p.BarriersPerIter, 1); b++ {
					t.Compute(int(rng.Jitter(float64(compute), p.Jitter, 1)))
					for r := 0; r < p.SharedReadsPerIter/max(p.BarriersPerIter, 1); r++ {
						line := rng.Intn(p.SharedLines)
						t.Read(shared + uint64(line*64))
					}
					if barrier != nil {
						barrier.Wait(t)
					}
				}
				for l := 0; l < p.LockOpsPerIter; l++ {
					li := rng.Intn(max(p.NumLocks, 1))
					lk := locks[li%len(locks)]
					lk.Acquire(t)
					t.Compute(p.HoldCycles)
					t.Write(lockData[li%len(lockData)], uint64(it))
					lk.Release(t)
					t.Compute(int(rng.Jitter(float64(p.HoldCycles*2+20), p.Jitter, 1)))
				}
				for r := 0; r < p.ReductionsPerIter; r++ {
					red.Add(t, 1)
					t.Compute(20 + rng.Intn(40))
				}
			}
		})
	} else {
		var tb syncprims.TaskBarrier
		if barrier != nil {
			tb = syncprims.AsTaskBarrier(barrier)
		}
		tlocks := make([]syncprims.TaskLock, len(locks))
		for i, l := range locks {
			tlocks[i] = syncprims.AsTaskLock(l)
		}
		var tred syncprims.TaskReducer
		if red != nil {
			tred = red.AsTask()
		}
		m.SpawnAllTasks(func(t *core.Task) {
			newAppTask(t, &p, tb, tlocks, tred, shared, lockData,
				cfg.Seed*1000003+uint64(t.Core)).start()
		})
	}
	if err := m.Run(); err != nil {
		// Wrap rather than format: the harness recover preserves the error
		// chain so callers can classify the failure (budget, livelock,
		// abort, deadlock) with errors.Is/As.
		panic(fmt.Errorf("apps: %s on %s: %w", p.Name, cfg.Kind, err))
	}
	r := Result{
		Profile:     p,
		Cfg:         cfg,
		Cycles:      m.Now(),
		DataUtilPct: 100 * m.DataChannelUtilization(),
		Spills:      f.Spills,
		Mem:         m.Mem.Stats,
		Sched:       m.Eng.SchedStats(),
	}
	if m.Net != nil {
		r.Net = m.Net.Stats
		r.MAC = m.Net.MACCounters()
		r.Energy = m.Net.Energy
	}
	r.Faults = m.Faults()
	return r
}

// Speedups runs the profile on all four configurations and returns the
// speedup of each over Baseline (Figure 10's metric).
func Speedups(base config.Config, p Profile) map[config.Kind]float64 {
	out := make(map[config.Kind]float64, len(config.Kinds))
	var baseline float64
	for _, k := range config.Kinds {
		cfg := base
		cfg.Kind = k
		r := Run(cfg, p)
		if k == config.Baseline {
			baseline = float64(r.Cycles)
			out[k] = 1
			continue
		}
		out[k] = baseline / float64(r.Cycles)
	}
	return out
}
