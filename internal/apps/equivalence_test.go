package apps

import (
	"fmt"
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/sim"
)

// The equivalence suite proves the continuation-form profile interpreter
// (task.go) is bit-identical to the blocking loop nest in RunExec: every
// reported metric and every mem/net/MAC protocol counter must match
// exactly, across seeds, architectures and profile shapes. Together with
// the apps golden table in package harness (whose committed file predates
// the port), this pins that the task rewrite moved no simulated result.

// equivProfiles picks profiles covering every interpreter path: barrier
// phases with reductions (streamcluster), a serialized hot lock
// (radiosity), a BM-overflowing lock array (dedup — the spill path), mixed
// barrier+locks (water-sp), and a compute-bound app with neither locks nor
// reductions (blackscholes). Iterations are trimmed so the matrix runs
// under -race in the short CI job.
func equivProfiles() []Profile {
	var ps []Profile
	for _, pick := range []struct {
		name  string
		iters int
	}{
		{"streamcluster", 3},
		{"radiosity", 3},
		{"dedup", 2},
		{"water-sp", 2},
		{"blackscholes", 2},
	} {
		p, ok := ByName(pick.name)
		if !ok {
			panic("unknown profile " + pick.name)
		}
		p.Iterations = pick.iters
		ps = append(ps, p)
	}
	return ps
}

// stripSched clears the one field where the execution modes legitimately
// differ: SchedStats describe simulator mechanics (wheel routing, step
// reuse), not simulated behavior.
func stripSched(r Result) Result {
	r.Sched = sim.SchedStats{}
	return r
}

func TestRunExecEquivalence(t *testing.T) {
	for _, p := range equivProfiles() {
		for _, kind := range config.Kinds {
			for _, seed := range []uint64{1, 42} {
				cfg := config.New(kind, 16).WithSeed(seed)
				thread := stripSched(RunExec(cfg, p, core.ExecThread))
				task := stripSched(RunExec(cfg, p, core.ExecTask))
				a, b := fmt.Sprintf("%+v", thread), fmt.Sprintf("%+v", task)
				if a != b {
					t.Errorf("%s on %v/16c seed %d: thread and task execution diverged\nthread: %s\n  task: %s",
						p.Name, kind, seed, a, b)
				}
			}
		}
	}
}

// TestRunExecEquivalenceFig10Point spot-checks the Figure 10 geometry (64
// cores), where barrier storms and MAC arbitration are qualitatively
// different from the 16-core matrix. Skipped in -short mode.
func TestRunExecEquivalenceFig10Point(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core equivalence points")
	}
	for _, name := range []string{"streamcluster", "radiosity"} {
		p, _ := ByName(name)
		p.Iterations = 3
		for _, kind := range []config.Kind{config.Baseline, config.WiSyncNoT, config.WiSync} {
			cfg := config.New(kind, 64)
			thread := stripSched(RunExec(cfg, p, core.ExecThread))
			task := stripSched(RunExec(cfg, p, core.ExecTask))
			a, b := fmt.Sprintf("%+v", thread), fmt.Sprintf("%+v", task)
			if a != b {
				t.Errorf("%s on %v/64c: thread and task execution diverged\nthread: %s\n  task: %s",
					name, kind, a, b)
			}
		}
	}
}

// TestTaskModeRecyclesSteps asserts the interpreter actually reuses its
// step structs: pool hits must dwarf misses on any non-trivial profile.
func TestTaskModeRecyclesSteps(t *testing.T) {
	p, _ := ByName("streamcluster")
	p.Iterations = 3
	r := RunExec(config.New(config.Baseline, 16), p, core.ExecTask)
	if r.Sched.StepPoolMisses == 0 {
		t.Fatal("no step allocations recorded — counters not wired?")
	}
	if r.Sched.StepPoolHits < 10*r.Sched.StepPoolMisses {
		t.Errorf("step pool hits (%d) not dominating misses (%d)",
			r.Sched.StepPoolHits, r.Sched.StepPoolMisses)
	}
}
