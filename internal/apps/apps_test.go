package apps

import (
	"testing"

	"wisync/internal/config"
)

func TestProfileCatalog(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("%d profiles, want 26 (12 PARSEC + 14 SPLASH-2)", len(ps))
	}
	var parsec, splash int
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "PARSEC":
			parsec++
		case "SPLASH-2":
			splash++
		default:
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
		if p.Iterations <= 0 || p.ComputeMean <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
	}
	if parsec != 12 || splash != 14 {
		t.Errorf("parsec/splash = %d/%d, want 12/14", parsec, splash)
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("streamcluster")
	if !ok || p.Name != "streamcluster" {
		t.Fatalf("ByName(streamcluster) = %+v, %v", p, ok)
	}
	if _, ok := ByName("doom"); ok {
		t.Error("ByName(doom) found a profile")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := ByName("water-ns")
	p.Iterations = 2
	cfg := config.New(config.WiSync, 16)
	a := Run(cfg, p)
	b := Run(cfg, p)
	if a.Cycles != b.Cycles {
		t.Fatalf("same seed, different cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	cfg2 := cfg.WithSeed(99)
	c := Run(cfg2, p)
	if c.Cycles == a.Cycles {
		t.Logf("note: different seed produced identical cycles (possible but unlikely)")
	}
}

func TestLockArrayLargerThanBMSpills(t *testing.T) {
	// dedup and fluidanimate declare more locks than the BM holds
	// (Section 6); allocation must spill transparently.
	for _, name := range []string{"dedup", "fluidanimate"} {
		p, _ := ByName(name)
		p.Iterations = 1
		r := Run(config.New(config.WiSync, 16), p)
		if r.Spills == 0 {
			t.Errorf("%s: no BM spills despite %d locks", name, p.NumLocks)
		}
	}
}

func TestStreamclusterShape(t *testing.T) {
	// The headline Figure 10 bar: barrier-bound, WiSync ~6x Baseline,
	// Baseline+ clearly behind, and the Tone channel removes nearly all
	// Data-channel traffic (Table 5: str 3.0% -> 0.0%).
	p, _ := ByName("streamcluster")
	p.Iterations = 5
	base := config.New(config.Baseline, 64)
	sp := Speedups(base, p)
	if sp[config.WiSync] < 4 || sp[config.WiSync] > 9 {
		t.Errorf("WiSync speedup %.2f, want ~6", sp[config.WiSync])
	}
	if sp[config.BaselinePlus] >= sp[config.WiSyncNoT] {
		t.Errorf("Baseline+ (%.2f) not behind WiSyncNoT (%.2f)",
			sp[config.BaselinePlus], sp[config.WiSyncNoT])
	}
	wnt := Run(withKind(base, config.WiSyncNoT), p)
	w := Run(withKind(base, config.WiSync), p)
	if w.DataUtilPct > wnt.DataUtilPct/2 {
		t.Errorf("tone barriers did not offload the Data channel: WT %.2f%% vs W %.2f%%",
			wnt.DataUtilPct, w.DataUtilPct)
	}
}

func TestLockBoundAppUtilizationEqualAcrossWiSyncVariants(t *testing.T) {
	// Table 5: lock-bound apps (radiosity, raytrace, water-ns) use the
	// Data channel identically with and without the Tone channel.
	p, _ := ByName("radiosity")
	p.Iterations = 3
	base := config.New(config.Baseline, 64)
	wnt := Run(withKind(base, config.WiSyncNoT), p)
	w := Run(withKind(base, config.WiSync), p)
	ratio := w.DataUtilPct / wnt.DataUtilPct
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("lock-app utilization differs across variants: WT %.2f%% vs W %.2f%%",
			wnt.DataUtilPct, w.DataUtilPct)
	}
}

func TestComputeBoundAppNearParity(t *testing.T) {
	p, _ := ByName("blackscholes")
	p.Iterations = 3
	sp := Speedups(config.New(config.Baseline, 32), p)
	for k, v := range sp {
		if v < 0.9 || v > 1.2 {
			t.Errorf("%v speedup %.2f on a compute-bound app, want ~1.0", k, v)
		}
	}
}
