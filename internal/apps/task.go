package apps

// This file is the continuation form of the profile interpreter: the
// per-iteration compute / shared-read / barrier / lock / reduction loop
// nest of Run as a core.Task state machine. Each task owns one appTask —
// the loop counters are fields, the continuations are method values cached
// at construction — so interpreting a profile allocates nothing per
// operation beyond what the primitives themselves need. Simulated behavior
// is bit-identical to the blocking interpreter: the per-thread random
// stream is consumed in the same order and every suspension consumes its
// event sequence number at the same execution point (pinned by the
// equivalence suite in this package and the apps golden table in package
// harness).

import (
	"wisync/internal/core"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
)

// appTask interprets one thread's share of a profile in continuation form.
// The counters mirror the blocking loop nest: it (iterations completed), b
// (barrier phases completed this iteration), r (reads or reductions
// completed this phase), l (lock operations completed this iteration).
type appTask struct {
	t   *core.Task
	p   *Profile
	rng *sim.Rand

	barrier  syncprims.TaskBarrier // nil when the profile has no barriers
	locks    []syncprims.TaskLock
	red      syncprims.TaskReducer
	shared   uint64
	lockData []uint64

	nb       int // barrier phases per iteration (>= 1)
	compute  int // mean compute per barrier phase
	reads    int // shared reads per barrier phase
	numLocks int // lock-choice range (>= 1)

	it, b, r, l, li int

	afterBarrierFn, afterAcquireFn, afterWriteFn,
	afterReleaseFn func()
	onReadFn, onAddFn func(uint64)
}

func newAppTask(t *core.Task, p *Profile, barrier syncprims.TaskBarrier,
	locks []syncprims.TaskLock, red syncprims.TaskReducer, shared uint64,
	lockData []uint64, seed uint64) *appTask {
	t.M.Eng.StepPoolMiss()
	a := &appTask{
		t: t, p: p,
		rng:     sim.NewRand(seed),
		barrier: barrier, locks: locks, red: red,
		shared: shared, lockData: lockData,
		nb:       max(p.BarriersPerIter, 1),
		numLocks: max(p.NumLocks, 1),
	}
	a.compute = p.ComputeMean / a.nb
	a.reads = p.SharedReadsPerIter / a.nb
	a.afterBarrierFn = a.afterBarrier
	a.afterAcquireFn = a.afterAcquire
	a.afterWriteFn = a.afterWrite
	a.afterReleaseFn = a.afterRelease
	a.onReadFn = a.onRead
	a.onAddFn = a.onAdd
	return a
}

// start is the task body entry: the desynchronized start, then the
// iteration loop.
func (a *appTask) start() {
	a.t.Compute(a.rng.Intn(a.p.ComputeMean/4 + 1))
	a.iter()
}

func (a *appTask) iter() {
	if a.it == a.p.Iterations {
		a.t.Finish()
		return
	}
	if a.it > 0 {
		// Pool-hit semantics match the hardware pools: the first
		// iteration runs on the freshly allocated struct (the miss
		// recorded in newAppTask); every later one is a reuse.
		a.t.M.Eng.StepPoolHit()
	}
	a.b = 0
	a.phase()
}

// phase runs one barrier phase: jittered compute, the shared-footprint
// reads, then the barrier.
func (a *appTask) phase() {
	if a.b == a.nb {
		a.l = 0
		a.lockOps()
		return
	}
	a.t.Compute(int(a.rng.Jitter(float64(a.compute), a.p.Jitter, 1)))
	a.r = 0
	a.sharedReads()
}

func (a *appTask) sharedReads() {
	if a.r == a.reads {
		if a.barrier != nil {
			a.barrier.WaitTask(a.t, a.afterBarrierFn)
			return
		}
		a.afterBarrier()
		return
	}
	a.r++
	line := a.rng.Intn(a.p.SharedLines)
	a.t.Read(a.shared+uint64(line*64), a.onReadFn)
}

func (a *appTask) onRead(uint64) { a.sharedReads() }

func (a *appTask) afterBarrier() {
	a.b++
	a.phase()
}

// lockOps runs the critical-section loop: pick a lock, acquire, hold with
// one shared-line write, release, then the jittered inter-acquire gap.
func (a *appTask) lockOps() {
	if a.l == a.p.LockOpsPerIter {
		a.r = 0
		a.reductions()
		return
	}
	a.li = a.rng.Intn(a.numLocks)
	a.locks[a.li%len(a.locks)].AcquireTask(a.t, a.afterAcquireFn)
}

func (a *appTask) afterAcquire() {
	a.t.Compute(a.p.HoldCycles)
	a.t.Write(a.lockData[a.li%len(a.lockData)], uint64(a.it), a.afterWriteFn)
}

func (a *appTask) afterWrite() {
	a.locks[a.li%len(a.locks)].ReleaseTask(a.t, a.afterReleaseFn)
}

func (a *appTask) afterRelease() {
	a.t.Compute(int(a.rng.Jitter(float64(a.p.HoldCycles*2+20), a.p.Jitter, 1)))
	a.l++
	a.lockOps()
}

// reductions runs the fetch&add updates to the global accumulator, then
// advances to the next iteration.
func (a *appTask) reductions() {
	if a.r == a.p.ReductionsPerIter {
		a.it++
		a.iter()
		return
	}
	a.red.Add(a.t, 1, a.onAddFn)
}

func (a *appTask) onAdd(uint64) {
	a.t.Compute(20 + a.rng.Intn(40))
	a.r++
	a.reductions()
}
