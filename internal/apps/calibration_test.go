package apps

import (
	"testing"

	"wisync/internal/config"
	"wisync/internal/stats"
)

// TestCalibrationReport prints the full Figure 10 / Table 5 reproduction at
// 64 cores. Run with -v to inspect during calibration. It asserts only the
// coarse shape; exact bands are asserted by the focused tests below.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	base := config.New(config.Baseline, 64)
	var wSpeed, bpSpeed, wntSpeed []float64
	var wUtil, wntUtil []float64
	for _, p := range Profiles() {
		sp := Speedups(base, p)
		wnt := Run(withKind(base, config.WiSyncNoT), p)
		w := Run(withKind(base, config.WiSync), p)
		t.Logf("%-14s B+ %.2f  WNT %.2f  W %.2f   util WT %.2f%% W %.2f%%",
			p.Name, sp[config.BaselinePlus], sp[config.WiSyncNoT], sp[config.WiSync],
			wnt.DataUtilPct, w.DataUtilPct)
		wSpeed = append(wSpeed, sp[config.WiSync])
		bpSpeed = append(bpSpeed, sp[config.BaselinePlus])
		wntSpeed = append(wntSpeed, sp[config.WiSyncNoT])
		wUtil = append(wUtil, w.DataUtilPct)
		wntUtil = append(wntUtil, wnt.DataUtilPct)
	}
	t.Logf("geomean: B+ %.3f  WNT %.3f  W %.3f  (paper: ~1.10, ~1.22, 1.23)",
		stats.GeoMean(bpSpeed), stats.GeoMean(wntSpeed), stats.GeoMean(wSpeed))
	t.Logf("mean:    B+ %.3f  WNT %.3f  W %.3f",
		stats.Mean(bpSpeed), stats.Mean(wntSpeed), stats.Mean(wSpeed))
	gm := stats.GeoMean(wSpeed)
	if gm < 1.10 || gm > 1.45 {
		t.Errorf("WiSync geomean speedup %.3f outside [1.10, 1.45] (paper 1.23)", gm)
	}
}

func withKind(c config.Config, k config.Kind) config.Config {
	c.Kind = k
	return c
}
