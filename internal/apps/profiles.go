package apps

// Profiles returns the 26 applications of Table 3 in the paper's Figure 10
// order: the 12 PARSEC applications (simsmall) followed by the 14 SPLASH-2
// applications (standard inputs).
//
// Parameter provenance: the profiles encode each application's published
// synchronization character — streamcluster and ocean are barrier-phase
// bound, raytrace and radiosity serialize on a handful of hot task/patch
// locks, water-ns uses per-molecule locks, dedup and fluidanimate declare
// lock arrays larger than the 16 KB BM (exercising the spill path), and
// most of the rest synchronize too rarely for the wireless hardware to
// matter. Magnitudes are calibrated against Figure 10 (see EXPERIMENTS.md);
// iteration counts are scaled down to keep simulations tractable, which
// proportionally raises channel utilization relative to Table 5 without
// changing the who-wins ordering.
func Profiles() []Profile {
	return []Profile{
		// ---- PARSEC ----
		{Name: "blackscholes", Suite: "PARSEC", Iterations: 8, ComputeMean: 120000, Jitter: 0.3,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "bodytrack", Suite: "PARSEC", Iterations: 8, ComputeMean: 90000, Jitter: 0.25,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "canneal", Suite: "PARSEC", Iterations: 8, ComputeMean: 60000, Jitter: 0.3,
			LockOpsPerIter: 2, NumLocks: 64, HoldCycles: 30, SharedReadsPerIter: 16, SharedLines: 128},
		{Name: "dedup", Suite: "PARSEC", Iterations: 8, ComputeMean: 50000, Jitter: 0.25,
			LockOpsPerIter: 6, NumLocks: 2400, HoldCycles: 25, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "facesim", Suite: "PARSEC", Iterations: 8, ComputeMean: 150000, Jitter: 0.25,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "ferret", Suite: "PARSEC", Iterations: 8, ComputeMean: 60000, Jitter: 0.25,
			LockOpsPerIter: 2, NumLocks: 8, HoldCycles: 60, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "fluidanimate", Suite: "PARSEC", Iterations: 8, ComputeMean: 40000, Jitter: 0.25,
			LockOpsPerIter: 4, NumLocks: 2200, HoldCycles: 15, BarriersPerIter: 1,
			SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "freqmine", Suite: "PARSEC", Iterations: 8, ComputeMean: 160000, Jitter: 0.25,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "streamcluster", Suite: "PARSEC", Iterations: 10, ComputeMean: 15000, Jitter: 0.04,
			BarriersPerIter: 5, ReductionsPerIter: 2, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "swaptions", Suite: "PARSEC", Iterations: 8, ComputeMean: 150000, Jitter: 0.3,
			BarriersPerIter: 1, SharedReadsPerIter: 4, SharedLines: 32},
		{Name: "vips", Suite: "PARSEC", Iterations: 8, ComputeMean: 130000, Jitter: 0.3,
			BarriersPerIter: 1, SharedReadsPerIter: 4, SharedLines: 32},
		{Name: "x264", Suite: "PARSEC", Iterations: 8, ComputeMean: 45000, Jitter: 0.3,
			LockOpsPerIter: 2, NumLocks: 32, HoldCycles: 40, SharedReadsPerIter: 8, SharedLines: 64},
		// ---- SPLASH-2 ----
		{Name: "barnes", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 120000, Jitter: 0.2,
			BarriersPerIter: 1, LockOpsPerIter: 3, NumLocks: 16, HoldCycles: 60,
			SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "cholesky", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 40000, Jitter: 0.25,
			LockOpsPerIter: 2, NumLocks: 8, HoldCycles: 50, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "fft", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 180000, Jitter: 0.15,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "fmm", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 100000, Jitter: 0.2,
			BarriersPerIter: 1, LockOpsPerIter: 3, NumLocks: 12, HoldCycles: 50,
			SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "lu-c", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 120000, Jitter: 0.15,
			BarriersPerIter: 1, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "lu-nc", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 140000, Jitter: 0.15,
			BarriersPerIter: 2, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "ocean-c", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 70000, Jitter: 0.06,
			BarriersPerIter: 5, ReductionsPerIter: 2, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "ocean-nc", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 75000, Jitter: 0.08,
			BarriersPerIter: 4, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "radiosity", Suite: "SPLASH-2", Iterations: 10, ComputeMean: 16000, Jitter: 0.3,
			LockOpsPerIter: 2, NumLocks: 3, HoldCycles: 80, SharedReadsPerIter: 4, SharedLines: 32},
		{Name: "radix", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 110000, Jitter: 0.1,
			BarriersPerIter: 2, ReductionsPerIter: 4, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "raytrace", Suite: "SPLASH-2", Iterations: 10, ComputeMean: 10000, Jitter: 0.3,
			LockOpsPerIter: 2, NumLocks: 1, HoldCycles: 180, SharedReadsPerIter: 4, SharedLines: 32},
		{Name: "volrend", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 30000, Jitter: 0.25,
			LockOpsPerIter: 2, NumLocks: 8, HoldCycles: 50, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "water-ns", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 35000, Jitter: 0.25,
			LockOpsPerIter: 3, NumLocks: 8, HoldCycles: 60, SharedReadsPerIter: 8, SharedLines: 64},
		{Name: "water-sp", Suite: "SPLASH-2", Iterations: 8, ComputeMean: 60000, Jitter: 0.25,
			BarriersPerIter: 1, LockOpsPerIter: 1, NumLocks: 16, HoldCycles: 30,
			SharedReadsPerIter: 8, SharedLines: 64},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
