package bmem

import (
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// This file is the continuation-form face of the Broadcast Memory: each
// blocking operation in ops.go has an async variant taking a completion
// callback instead of a parked process. Protection and addressing faults
// are still reported synchronously (the blocking forms check before any
// simulated time elapses); a fault that develops mid-operation — an entry
// freed under a spinning task — is a death of the simulated program, like
// the blocking form's must(), and panics. Both faces consume event
// sequence numbers at identical points, so they are interchangeable
// without moving a simulated result.

// LoadAsync is the continuation mirror of Load.
func (b *BM) LoadAsync(node int, pid uint16, addr uint32, then func(uint64)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Loads++
	b.eng.SleepThen(b.p.RT, func() { then(b.entries[addr].val) })
	return nil
}

// StoreAsync is the continuation mirror of Store: then runs at the commit
// cycle, with WCB set.
func (b *BM) StoreAsync(node int, pid uint16, addr uint32, val uint64, then func()) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Stores++
	b.wcb[node] = false
	b.net.SendAsync(wireless.Msg{Src: node, Addr: addr, Val: val, Kind: wireless.KindStore, PID: pid}, nil,
		func(bool) {
			b.wcb[node] = true
			then()
		})
	return nil
}

// RMWAsync is the continuation mirror of RMW: then receives the value read
// and whether the instruction executed atomically, at the cycle RMW would
// have returned.
func (b *BM) RMWAsync(node int, pid uint16, addr uint32, f func(uint64) (uint64, bool), then func(old uint64, ok bool)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.RMWs++
	if !b.p.RMWEarlyRead {
		return b.rmwAtGrantAsync(node, pid, addr, f, then)
	}
	b.wcb[node] = false
	b.afb[node] = false
	pr := &b.pending[node]
	*pr = pendingRMW{active: true, addr: addr}

	// Local read: the atomicity window opens here.
	b.eng.SleepThen(b.p.RT, func() {
		old := b.entries[addr].val
		if pr.aborted {
			// A conflicting commit landed during the local read.
			b.wcb[node] = true
			then(old, false)
			return
		}
		newVal, doWrite := f(old)
		if !doWrite {
			pr.active = false
			b.wcb[node] = true
			then(old, true)
			return
		}
		b.net.SendAsync(wireless.Msg{Src: node, Addr: addr, Val: newVal, Kind: wireless.KindRMW, PID: pid}, &pr.tok,
			func(committed bool) {
				b.wcb[node] = true
				if !committed {
					// Withdrawn: AFB was set by the conflicting commit.
					then(old, false)
					return
				}
				pr.active = false
				then(old, true)
			})
	})
	return nil
}

// rmwAtGrantAsync mirrors rmwAtGrant: the pipeline read delay and the
// channel submission are already continuations there; here the completion
// is one too.
func (b *BM) rmwAtGrantAsync(node int, pid uint16, addr uint32, f func(uint64) (uint64, bool), then func(old uint64, ok bool)) error {
	b.wcb[node] = false
	b.afb[node] = false
	var old uint64
	op := func(cur uint64) (uint64, bool) {
		old = cur
		return f(cur)
	}
	msg := wireless.Msg{Src: node, Addr: addr, Kind: wireless.KindRMW, PID: pid, Op: op}
	// The instruction still reads the local BM into the pipeline (RT),
	// then contends for the channel.
	b.eng.SleepThen(b.p.RT, func() {
		b.net.SendAsync(msg, nil, func(bool) {
			b.wcb[node] = true
			then(old, true)
		})
	})
	return nil
}

// WaitChangeFn enqueues the continuation fn to run when a commit (or tone
// toggle) touches addr — the task-style counterpart of WaitChange.
func (b *BM) WaitChangeFn(addr uint32, fn func()) {
	b.watcherQueue(addr).WaitFn(b.eng, fn)
}

// SpinUntilAsync is the continuation mirror of SpinUntil: local-replica
// polls between commits, no network traffic. then receives the satisfying
// value.
func (b *BM) SpinUntilAsync(node int, pid uint16, addr uint32, cond func(uint64) bool, then func(uint64)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	var onVal func(uint64)
	respin := func() {
		if err := b.LoadAsync(node, pid, addr, onVal); err != nil {
			// The entry was freed or re-tagged mid-spin: the simulated
			// program faults, as the blocking form's must() would.
			panic(err)
		}
	}
	onVal = func(v uint64) {
		if cond(v) {
			then(v)
			return
		}
		b.WaitChangeFn(addr, respin)
	}
	respin()
	return nil
}

// watcherQueue returns the spin queue for addr, creating it on demand.
func (b *BM) watcherQueue(addr uint32) *sim.WaitQueue {
	q, ok := b.watchers[addr]
	if !ok {
		q = &sim.WaitQueue{}
		b.watchers[addr] = q
	}
	return q
}
