package bmem

import (
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// This file is the continuation-form face of the Broadcast Memory: each
// blocking operation in ops.go has an async variant taking a completion
// callback instead of a parked process. Protection and addressing faults
// are still reported synchronously (the blocking forms check before any
// simulated time elapses); a fault that develops mid-operation — an entry
// freed under a spinning task — is a death of the simulated program, like
// the blocking form's must(), and panics. Both faces consume event
// sequence numbers at identical points, so they are interchangeable
// without moving a simulated result.

// loadCont is a recycled load-delivery continuation: the "sleep the local
// round trip, then hand over the replica's value" step of LoadAsync, which
// would otherwise capture addr and then in a fresh closure on the
// spin-probe hot path. The value is sampled at fire time, exactly as the
// closure form did.
type loadCont struct {
	b    *BM
	addr uint32
	then func(uint64)
	fn   func() // cached method value of run
}

func (b *BM) newLoadCont(addr uint32, then func(uint64)) *loadCont {
	var c *loadCont
	if n := len(b.loadFree); n > 0 {
		c = b.loadFree[n-1]
		b.loadFree = b.loadFree[:n-1]
		b.eng.StepPoolHit()
	} else {
		c = &loadCont{b: b}
		c.fn = c.run
		b.eng.StepPoolMiss()
	}
	c.addr, c.then = addr, then
	return c
}

func (c *loadCont) run() {
	b, addr, then := c.b, c.addr, c.then
	c.then = nil
	b.loadFree = append(b.loadFree, c)
	then(b.entries[addr].val)
}

// LoadAsync is the continuation mirror of Load.
func (b *BM) LoadAsync(node int, pid uint16, addr uint32, then func(uint64)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Loads++
	b.eng.LocalSleepThen(node, b.p.RT, b.newLoadCont(addr, then).fn)
	return nil
}

// storeCont is a recycled store-commit continuation: StoreAsync's "set the
// WCB, then run the user continuation" completion.
type storeCont struct {
	b    *BM
	node int
	then func()
	fn   func(bool) // cached method value of run
}

func (c *storeCont) run(committed bool) {
	b, node, then := c.b, c.node, c.then
	c.then = nil
	b.storeFree = append(b.storeFree, c)
	b.wcb[node] = committed
	then()
}

// StoreAsync is the continuation mirror of Store: then runs at the commit
// cycle, with WCB set.
func (b *BM) StoreAsync(node int, pid uint16, addr uint32, val uint64, then func()) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Stores++
	b.wcb[node] = false
	var c *storeCont
	if n := len(b.storeFree); n > 0 {
		c = b.storeFree[n-1]
		b.storeFree = b.storeFree[:n-1]
		b.eng.StepPoolHit()
	} else {
		c = &storeCont{b: b}
		c.fn = c.run
		b.eng.StepPoolMiss()
	}
	c.node, c.then = node, then
	b.net.SendAsync(wireless.Msg{Src: node, Addr: addr, Val: val, Kind: wireless.KindStore, PID: pid}, nil, c.fn)
	return nil
}

// RMWAsync is the continuation mirror of RMW: then receives the value read
// and whether the instruction executed atomically, at the cycle RMW would
// have returned.
func (b *BM) RMWAsync(node int, pid uint16, addr uint32, f func(uint64) (uint64, bool), then func(old uint64, ok bool)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.RMWs++
	if !b.p.RMWEarlyRead {
		return b.rmwAtGrantAsync(node, pid, addr, f, then)
	}
	b.wcb[node] = false
	b.afb[node] = false
	pr := &b.pending[node]
	*pr = pendingRMW{active: true, addr: addr}

	// Local read: the atomicity window opens here.
	b.eng.LocalSleepThen(node, b.p.RT, func() {
		old := b.entries[addr].val
		if pr.aborted {
			// A conflicting commit landed during the local read.
			b.wcb[node] = true
			then(old, false)
			return
		}
		newVal, doWrite := f(old)
		if !doWrite {
			pr.active = false
			b.wcb[node] = true
			then(old, true)
			return
		}
		b.net.SendAsync(wireless.Msg{Src: node, Addr: addr, Val: newVal, Kind: wireless.KindRMW, PID: pid}, &pr.tok,
			func(committed bool) {
				b.wcb[node] = true
				if !committed {
					// Withdrawn: AFB was set by the conflicting commit.
					then(old, false)
					return
				}
				pr.active = false
				then(old, true)
			})
	})
	return nil
}

// rmwGrantCont is a recycled grant-time RMW chain: the pipeline-read
// delay, the channel submission with the old-value-capturing Op wrapper,
// and the commit completion of rmwAtGrantAsync as one pooled struct. It
// stays out of the pool from issue to commit — concurrent RMWs from other
// nodes draw their own structs — and its msg carries the cached Op method
// value, so a steady-state RMW storm allocates nothing.
type rmwGrantCont struct {
	b    *BM
	node int
	old  uint64
	f    func(uint64) (uint64, bool)
	then func(old uint64, ok bool)
	msg  wireless.Msg
	// ran/denied mirror rmwAtGrant's completion tracking: the operation
	// completed iff it was applied at a commit or denied at a probe.
	ran    bool
	denied bool

	submitFn func()
	doneFn   func(bool)
}

func (c *rmwGrantCont) op(cur uint64) (uint64, bool) {
	c.old = cur
	nv, do := c.f(cur)
	if c.b.probing {
		c.denied = !do
	} else {
		c.ran = true
	}
	return nv, do
}

func (c *rmwGrantCont) submit() { c.b.net.SendAsync(c.msg, nil, c.doneFn) }

func (c *rmwGrantCont) done(bool) {
	b, node, old, then := c.b, c.node, c.old, c.then
	ok := c.ran || c.denied
	c.f, c.then = nil, nil
	b.rmwFree = append(b.rmwFree, c)
	b.wcb[node] = ok
	then(old, ok)
}

// rmwAtGrantAsync mirrors rmwAtGrant: the pipeline read delay and the
// channel submission are already continuations there; here the completion
// is one too.
func (b *BM) rmwAtGrantAsync(node int, pid uint16, addr uint32, f func(uint64) (uint64, bool), then func(old uint64, ok bool)) error {
	b.wcb[node] = false
	b.afb[node] = false
	var c *rmwGrantCont
	if n := len(b.rmwFree); n > 0 {
		c = b.rmwFree[n-1]
		b.rmwFree = b.rmwFree[:n-1]
		b.eng.StepPoolHit()
	} else {
		c = &rmwGrantCont{b: b}
		c.submitFn = c.submit
		c.doneFn = c.done
		c.msg.Op = c.op
		b.eng.StepPoolMiss()
	}
	c.node, c.f, c.then = node, f, then
	c.ran, c.denied = false, false
	c.msg.Src, c.msg.Addr, c.msg.Kind, c.msg.PID = node, addr, wireless.KindRMW, pid
	// The instruction still reads the local BM into the pipeline (RT),
	// then contends for the channel.
	b.eng.LocalSleepThen(node, b.p.RT, c.submitFn)
	return nil
}

// WaitChangeFn enqueues the continuation fn to run when a commit (or tone
// toggle) touches addr — the task-style counterpart of WaitChange.
func (b *BM) WaitChangeFn(addr uint32, fn func()) {
	b.watcherQueue(addr).WaitFn(b.eng, fn)
}

// bmSpin is a recycled spin loop: the onVal/respin continuation pair of
// SpinUntilAsync as struct fields and cached method values. Spins from
// different nodes overlap, so the structs pool on the BM; a spin returns
// to the pool the moment its condition is satisfied.
type bmSpin struct {
	b    *BM
	node int
	pid  uint16
	addr uint32
	cond func(uint64) bool
	then func(uint64)

	onValFn  func(uint64)
	respinFn func()
}

func (sp *bmSpin) respin() {
	if err := sp.b.LoadAsync(sp.node, sp.pid, sp.addr, sp.onValFn); err != nil {
		// The entry was freed or re-tagged mid-spin: the simulated
		// program faults, as the blocking form's must() would.
		panic(err)
	}
}

func (sp *bmSpin) onVal(v uint64) {
	b := sp.b
	if sp.cond(v) {
		then := sp.then
		sp.cond, sp.then = nil, nil
		b.spinFree = append(b.spinFree, sp)
		then(v)
		return
	}
	b.WaitChangeFn(sp.addr, sp.respinFn)
}

// SpinUntilAsync is the continuation mirror of SpinUntil: local-replica
// polls between commits, no network traffic. then receives the satisfying
// value.
func (b *BM) SpinUntilAsync(node int, pid uint16, addr uint32, cond func(uint64) bool, then func(uint64)) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	var sp *bmSpin
	if n := len(b.spinFree); n > 0 {
		sp = b.spinFree[n-1]
		b.spinFree = b.spinFree[:n-1]
		b.eng.StepPoolHit()
	} else {
		sp = &bmSpin{b: b}
		sp.onValFn = sp.onVal
		sp.respinFn = sp.respin
		b.eng.StepPoolMiss()
	}
	sp.node, sp.pid, sp.addr, sp.cond, sp.then = node, pid, addr, cond, then
	sp.respin()
	return nil
}

// watcherQueue returns the spin queue for addr, creating it on demand.
func (b *BM) watcherQueue(addr uint32) *sim.WaitQueue {
	q, ok := b.watchers[addr]
	if !ok {
		q = &sim.WaitQueue{}
		b.watchers[addr] = q
	}
	return q
}
