package bmem

import (
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// Load reads the 64-bit entry at addr from node's local replica.
func (b *BM) Load(p *sim.Proc, node int, pid uint16, addr uint32) (uint64, error) {
	if err := b.check(node, pid, addr); err != nil {
		return 0, err
	}
	b.Stats.Loads++
	p.Sleep(b.p.RT)
	return b.entries[addr].val, nil
}

// Store broadcasts val to addr in every replica. It blocks until the write
// commits (all replicas updated), at which point WCB is set. The MAC
// retries through collisions; on the ideal channel without faults a store
// cannot fail, only take longer. Under a lossy channel or a fault plan
// the broadcast can fail permanently (retry budget exhausted, transceiver
// outage): WCB then honestly reads false — software that needs the write
// checks WCB and reissues.
func (b *BM) Store(p *sim.Proc, node int, pid uint16, addr uint32, val uint64) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Stores++
	b.wcb[node] = false
	committed := b.net.Send(p, wireless.Msg{Src: node, Addr: addr, Val: val, Kind: wireless.KindStore, PID: pid}, nil)
	b.wcb[node] = committed
	return nil
}

// BulkLoad reads four consecutive entries starting at addr (Section 3.2).
// A single BM access burst is charged: RT plus one cycle per extra word.
func (b *BM) BulkLoad(p *sim.Proc, node int, pid uint16, addr uint32) ([4]uint64, error) {
	var out [4]uint64
	for i := uint32(0); i < 4; i++ {
		if err := b.check(node, pid, addr+i); err != nil {
			return out, err
		}
	}
	b.Stats.Loads += 4
	p.Sleep(b.p.RT + 3)
	for i := uint32(0); i < 4; i++ {
		out[i] = b.entries[addr+i].val
	}
	return out, nil
}

// BulkStore broadcasts four words to consecutive addresses starting at addr
// in one 15-cycle wireless message (Section 4.1).
func (b *BM) BulkStore(p *sim.Proc, node int, pid uint16, addr uint32, vals [4]uint64) error {
	for i := uint32(0); i < 4; i++ {
		if err := b.check(node, pid, addr+i); err != nil {
			return err
		}
	}
	b.Stats.Stores += 4
	b.wcb[node] = false
	m := wireless.Msg{Src: node, Addr: addr, Val: vals[0], Kind: wireless.KindBulk, PID: pid}
	copy(m.BulkVals[:], vals[1:])
	committed := b.net.Send(p, m, nil)
	b.wcb[node] = committed
	return nil
}

// RMW performs one hardware read-modify-write attempt at addr: read the
// local replica, apply f in the pipeline, and broadcast the result. f
// returns the new value and whether to perform the write; a CAS whose
// comparison fails returns false and broadcasts nothing (the failure is
// decided atomically on the read). RMW returns the value read and ok=true
// if the instruction executed atomically (AFB clear). ok=false means a
// remote commit to addr landed inside the atomicity window: AFB is set,
// nothing was written, and software must retry (Figure 4(a)).
func (b *BM) RMW(p *sim.Proc, node int, pid uint16, addr uint32, f func(uint64) (uint64, bool)) (uint64, bool, error) {
	if err := b.check(node, pid, addr); err != nil {
		return 0, false, err
	}
	b.Stats.RMWs++
	if !b.p.RMWEarlyRead {
		return b.rmwAtGrant(p, node, pid, addr, f)
	}
	b.wcb[node] = false
	b.afb[node] = false
	pr := &b.pending[node]
	*pr = pendingRMW{active: true, addr: addr}

	// Local read: the atomicity window opens here.
	p.Sleep(b.p.RT)
	old := b.entries[addr].val

	if pr.aborted {
		// A conflicting commit landed during the local read.
		b.wcb[node] = true
		return old, false, nil
	}
	newVal, doWrite := f(old)
	if !doWrite {
		pr.active = false
		b.wcb[node] = true
		return old, true, nil
	}
	committed := b.net.Send(p, wireless.Msg{Src: node, Addr: addr, Val: newVal, Kind: wireless.KindRMW, PID: pid}, &pr.tok)
	b.wcb[node] = true
	if !committed {
		// Withdrawn: AFB was set by the conflicting commit.
		return old, false, nil
	}
	pr.active = false
	return old, true, nil
}

// rmwAtGrant is the default RMW path: the operation rides in the message
// and every replica applies it to the committed value at commit time. The
// returned old value is the committed value the operation observed;
// atomicity cannot fail (ok is always true).
//
// The local BM read and the channel submission run as engine-scheduled
// continuations: the thread parks exactly once for the whole RMW and is
// dispatched directly by the commit (or grant-abandon) event, instead of
// waking after the pipeline read only to park again on the channel. The
// scheduled submission lands at the same (time, priority, sequence)
// position as the blocking read's wake-up did, so results are
// bit-identical to the blocking form.
func (b *BM) rmwAtGrant(p *sim.Proc, node int, pid uint16, addr uint32, f func(uint64) (uint64, bool)) (uint64, bool, error) {
	b.wcb[node] = false
	b.afb[node] = false
	var old uint64
	var ran, denied bool
	op := func(cur uint64) (uint64, bool) {
		old = cur
		nv, do := f(cur)
		if b.probing {
			// Grant-time probe: a denied write (failed compare) is a
			// completed instruction — the decision is atomic on the
			// committed value the probe observed.
			denied = !do
		} else {
			ran = true // commit application: the write happened chip-wide
		}
		return nv, do
	}
	// The instruction still reads the local BM into the pipeline (RT),
	// then contends for the channel.
	b.scheduleSend(b.p.RT, p, wireless.Msg{Src: node, Addr: addr, Kind: wireless.KindRMW, PID: pid, Op: op})
	p.Park("bm rmw")
	// The operation completed iff it was applied at a commit or denied at
	// a probe. Neither happened when the broadcast failed permanently —
	// retry budget exhausted or a fault-injected outage — and old would be
	// stale; software must retry, exactly like an AFB failure.
	ok := ran || denied
	b.wcb[node] = ok
	return old, ok, nil
}

// WaitChange parks until a commit (or tone toggle) touches addr. The caller
// re-reads afterwards; wake-ups can be spurious (same value rewritten).
func (b *BM) WaitChange(p *sim.Proc, node int, addr uint32) {
	b.watcherQueue(addr).Wait(p, "bm spin")
}

// SpinUntil polls addr in the local replica until cond holds, sleeping
// between polls the way a core spins on its local BM: no network traffic at
// all. It returns the satisfying value.
func (b *BM) SpinUntil(p *sim.Proc, node int, pid uint16, addr uint32, cond func(uint64) bool) (uint64, error) {
	for {
		v, err := b.Load(p, node, pid, addr)
		if err != nil {
			return 0, err
		}
		if cond(v) {
			return v, nil
		}
		b.WaitChange(p, node, addr)
	}
}
