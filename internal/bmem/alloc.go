package bmem

import (
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// Alloc allocates one 64-bit entry for pid, broadcasting the allocation so
// every replica creates the entry at the same address (Section 4.4). The
// address is chosen by the OS at issue time and reserved immediately, so
// concurrent allocations from different nodes never pick the same entry.
// tone marks the entry as a tone-barrier variable. Alloc returns ErrFull
// when no entry is free; the caller is expected to fall back to a variable
// in regular cached memory.
func (b *BM) Alloc(p *sim.Proc, node int, pid uint16, tone bool) (uint32, error) {
	addr := -1
	for i := range b.entries {
		if !b.entries[i].allocated {
			addr = i
			break
		}
	}
	if addr < 0 {
		return 0, ErrFull
	}
	// Reserve now; the commit makes it architectural.
	e := &b.entries[addr]
	e.allocated = true
	e.pid = pid
	e.tone = tone
	e.val = 0
	b.Stats.Allocs++
	b.net.Send(p, wireless.Msg{Src: node, Addr: uint32(addr), Kind: wireless.KindAlloc, PID: pid}, nil)
	return uint32(addr), nil
}

// AllocN allocates n consecutive... entries (not necessarily consecutive);
// it returns the addresses or the first error. Useful for data+flag pairs.
func (b *BM) AllocN(p *sim.Proc, node int, pid uint16, n int) ([]uint32, error) {
	addrs := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		a, err := b.Alloc(p, node, pid, false)
		if err != nil {
			// Free what we grabbed so callers can fall back cleanly.
			for _, fa := range addrs {
				_ = b.Free(p, node, pid, fa)
			}
			return nil, err
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// AllocContiguous allocates n consecutive entries (for Bulk transfers,
// which address four adjacent words). It returns the first address.
func (b *BM) AllocContiguous(p *sim.Proc, node int, pid uint16, n int) (uint32, error) {
	run := 0
	start := -1
	for i := range b.entries {
		if b.entries[i].allocated {
			run = 0
			continue
		}
		if run == 0 {
			start = i
		}
		run++
		if run == n {
			for j := start; j < start+n; j++ {
				e := &b.entries[j]
				e.allocated = true
				e.pid = pid
				e.val = 0
				b.Stats.Allocs++
				b.net.Send(p, wireless.Msg{Src: node, Addr: uint32(j), Kind: wireless.KindAlloc, PID: pid}, nil)
			}
			return uint32(start), nil
		}
	}
	return 0, ErrFull
}

// Free deallocates addr in every replica.
func (b *BM) Free(p *sim.Proc, node int, pid uint16, addr uint32) error {
	if err := b.check(node, pid, addr); err != nil {
		return err
	}
	b.Stats.Frees++
	b.net.Send(p, wireless.Msg{Src: node, Addr: addr, Kind: wireless.KindFree, PID: pid}, nil)
	return nil
}

// FreeEntries returns how many entries are unallocated.
func (b *BM) FreeEntries() int {
	n := 0
	for i := range b.entries {
		if !b.entries[i].allocated {
			n++
		}
	}
	return n
}

// AllocBare allocates an entry with no timing and no broadcast, for test
// and harness setup phases that should not consume simulated cycles.
func (b *BM) AllocBare(pid uint16, tone bool) (uint32, error) {
	for i := range b.entries {
		if !b.entries[i].allocated {
			e := &b.entries[i]
			e.allocated = true
			e.pid = pid
			e.tone = tone
			e.val = 0
			b.Stats.Allocs++
			return uint32(i), nil
		}
	}
	return 0, ErrFull
}

// AllocBareContiguous is AllocBare for n consecutive entries.
func (b *BM) AllocBareContiguous(pid uint16, n int) (uint32, error) {
	run, start := 0, -1
	for i := range b.entries {
		if b.entries[i].allocated {
			run = 0
			continue
		}
		if run == 0 {
			start = i
		}
		run++
		if run == n {
			for j := start; j < start+n; j++ {
				e := &b.entries[j]
				e.allocated = true
				e.pid = pid
			}
			b.Stats.Allocs += uint64(n)
			return uint32(start), nil
		}
	}
	return 0, ErrFull
}
