// Package bmem implements the WiSync Broadcast Memory (Sections 3.2, 4.2,
// 4.4): a small per-core memory whose contents are replicated across all
// cores through the wireless Data channel.
//
// Because every committed wireless message updates all replicas at the same
// cycle and the channel provides a total order, the replicas are modeled as
// a single logical array plus per-node architectural state (WCB, AFB,
// pending RMW bookkeeping). Entries are 64-bit, tagged with the PID of the
// owning process; a PID mismatch on access is a protection violation. Local
// loads always succeed at the BM round-trip latency; stores block until the
// broadcast commits (the sequential-consistency variant of Section 4.2.1);
// read-modify-writes follow the WCB/AFB protocol: the hardware detects a
// conflicting remote commit between the local read and the broadcast, sets
// the Atomicity Failure Bit, and withdraws the transfer, leaving the retry
// to software (Figure 4).
package bmem

import (
	"fmt"

	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// Params configures a Broadcast Memory.
type Params struct {
	// Entries is the number of 64-bit entries (16 KB -> 2048, giving the
	// 11-bit wireless address field).
	Entries int
	// RT is the BM round-trip latency in cycles (Table 1: 2; the
	// SlowBMEM sensitivity variant uses 4).
	RT sim.Time
	// PageEntries is the number of entries per OS page (4 KB -> 512).
	PageEntries int
	// RMWEarlyRead selects the literal Section 4.2.1 RMW protocol: the
	// local BM is read when the instruction issues, and a conflicting
	// remote commit before the broadcast wins the channel sets AFB and
	// forces a software retry (Figure 4). The default (false) evaluates
	// the read-modify-write when the broadcast commits ("at grant"):
	// every replica applies the operation to the same committed value,
	// so atomicity cannot fail and a contended fetch&Phi stream drains
	// at full channel rate — which is what the paper's barrier and
	// reduction results require (Figure 7: 2-6x of the Tone barrier,
	// i.e. roughly one message time per arrival). The early-read
	// protocol is kept as an ablation; its per-commit abort storms cost
	// about 3x more under bursts.
	RMWEarlyRead bool
}

// DefaultParams returns the Table 1 BM configuration.
func DefaultParams() Params {
	return Params{Entries: 2048, RT: 2, PageEntries: 512}
}

// ErrFull reports that no BM entry is free; callers are expected to spill
// the variable to regular cached memory (Section 4.2).
var ErrFull = fmt.Errorf("bmem: broadcast memory full")

// ProtectionError is returned when a process accesses an entry tagged with
// a different PID.
type ProtectionError struct {
	Node int
	Addr uint32
	PID  uint16
	Tag  uint16
}

func (e *ProtectionError) Error() string {
	return fmt.Sprintf("bmem: node %d pid %d accessed addr %d owned by pid %d",
		e.Node, e.PID, e.Addr, e.Tag)
}

// AddrError is returned for out-of-range or unallocated addresses.
type AddrError struct {
	Addr uint32
	Why  string
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("bmem: addr %d: %s", e.Addr, e.Why)
}

type entry struct {
	val       uint64
	pid       uint16
	allocated bool
	tone      bool
}

type pendingRMW struct {
	active  bool
	aborted bool
	addr    uint32
	tok     wireless.Token
}

// Stats accumulates BM counters.
type Stats struct {
	Loads       uint64
	Stores      uint64
	RMWs        uint64
	AFBFailures uint64
	Allocs      uint64
	Frees       uint64
}

// BM is the chip-wide logical Broadcast Memory (all per-core replicas plus
// per-node architectural bits).
type BM struct {
	eng     *sim.Engine
	net     *wireless.Network
	p       Params
	nodes   int
	entries []entry
	wcb     []bool
	afb     []bool
	pending []pendingRMW
	// watchers holds spinners per address; all replicas update together,
	// so one queue per address suffices.
	watchers map[uint32]*sim.WaitQueue
	// onToneInit is installed by the tone controller to observe Tone-bit
	// messages.
	onToneInit func(msg wireless.Msg, at sim.Time)
	// sendFree recycles deferred-send continuations (see scheduleSend), so
	// the steady-state RMW path allocates no closures. loadFree, spinFree,
	// storeFree and rmwFree do the same for the async face's delivery,
	// spin-loop, commit and grant-time-RMW continuations (async.go).
	sendFree  []*sendCont
	loadFree  []*loadCont
	spinFree  []*bmSpin
	storeFree []*storeCont
	rmwFree   []*rmwGrantCont
	// probing is set while the prepare hook evaluates an RMW Op against
	// the current replica value at grant time. The Op wrappers use it to
	// tell a probe (the write may still be denied by a failed compare —
	// a completed instruction) from the commit application (the write
	// happened), so an RMW whose broadcast never applied — delivery
	// failure, fault-injected outage — reports ok == false instead of a
	// stale success.
	probing bool
	// Stats is exported for harness reporting.
	Stats Stats
}

// sendCont is a recycled "submit this message for a parked process"
// continuation: the pipeline-read delay of an RMW is modeled by scheduling
// one of these instead of sleeping the thread, so the thread parks exactly
// once per operation.
type sendCont struct {
	b   *BM
	p   *sim.Proc
	msg wireless.Msg
	fn  func() // cached method value of run
}

func (c *sendCont) run() {
	b, p, msg := c.b, c.p, c.msg
	c.p, c.msg = nil, wireless.Msg{}
	b.sendFree = append(b.sendFree, c)
	b.net.SendParked(p, msg)
}

// scheduleSend submits msg on behalf of p after d cycles. p must park in
// the current event; the commit dispatches it directly.
func (b *BM) scheduleSend(d sim.Time, p *sim.Proc, msg wireless.Msg) {
	var c *sendCont
	if n := len(b.sendFree); n > 0 {
		c = b.sendFree[n-1]
		b.sendFree = b.sendFree[:n-1]
	} else {
		c = &sendCont{b: b}
		c.fn = c.run
	}
	c.p, c.msg = p, msg
	b.eng.Schedule(d, c.fn)
}

// New creates the Broadcast Memory over the given Data channel.
func New(eng *sim.Engine, net *wireless.Network, nodes int, p Params) *BM {
	if p.Entries == 0 {
		p = DefaultParams()
	}
	b := &BM{
		eng:      eng,
		net:      net,
		p:        p,
		nodes:    nodes,
		entries:  make([]entry, p.Entries),
		wcb:      make([]bool, nodes),
		afb:      make([]bool, nodes),
		pending:  make([]pendingRMW, nodes),
		watchers: make(map[uint32]*sim.WaitQueue),
	}
	net.Subscribe(b.onCommit)
	// Grant-time RMW staleness check: an RMW whose write would not be
	// performed (failed compare) is abandoned before transmitting.
	net.SetPrepare(func(m wireless.Msg) bool {
		if m.Kind != wireless.KindRMW || m.Op == nil {
			return true
		}
		b.probing = true
		_, do := m.Op(b.entries[m.Addr].val)
		b.probing = false
		return do
	})
	return b
}

// Params returns the BM configuration.
func (b *BM) Params() Params { return b.p }

// SetRMWEarlyRead switches between the default grant-time RMW evaluation
// and the literal Section 4.2.1 early-read protocol (see Params), for
// ablation studies. Call before the simulation starts.
func (b *BM) SetRMWEarlyRead(early bool) { b.p.RMWEarlyRead = early }

// Nodes returns the number of per-core replicas.
func (b *BM) Nodes() int { return b.nodes }

// SetToneInitHandler installs the tone controller's hook for messages with
// the Tone bit set.
func (b *BM) SetToneInitHandler(fn func(msg wireless.Msg, at sim.Time)) {
	b.onToneInit = fn
}

func (b *BM) check(node int, pid uint16, addr uint32) error {
	if int(addr) >= b.p.Entries {
		return &AddrError{Addr: addr, Why: "out of range"}
	}
	e := &b.entries[addr]
	if !e.allocated {
		return &AddrError{Addr: addr, Why: "not allocated"}
	}
	if e.pid != pid {
		return &ProtectionError{Node: node, Addr: addr, PID: pid, Tag: e.pid}
	}
	return nil
}

// onCommit applies a committed wireless message to every replica, wakes
// spinners, and aborts pending RMWs whose atomicity the commit breaks.
func (b *BM) onCommit(m wireless.Msg, at sim.Time) {
	switch m.Kind {
	case wireless.KindStore, wireless.KindRMW:
		if m.Op != nil {
			// Grant-time RMW: apply the operation to the committed
			// value; all replicas compute the same result.
			if nv, do := m.Op(b.entries[m.Addr].val); do {
				b.entries[m.Addr].val = nv
			}
		} else {
			b.entries[m.Addr].val = m.Val
		}
		b.conflict(m.Src, m.Addr)
		b.wakeWatchers(m.Addr)
	case wireless.KindBulk:
		b.entries[m.Addr].val = m.Val
		b.conflict(m.Src, m.Addr)
		b.wakeWatchers(m.Addr)
		for i, v := range m.BulkVals {
			a := m.Addr + 1 + uint32(i)
			if int(a) < b.p.Entries {
				b.entries[a].val = v
				b.conflict(m.Src, a)
				b.wakeWatchers(a)
			}
		}
	case wireless.KindToneInit:
		if b.onToneInit != nil {
			b.onToneInit(m, at)
		}
	case wireless.KindAlloc:
		// The entry was reserved at issue time; the commit makes the
		// allocation architectural in every replica.
		e := &b.entries[m.Addr]
		e.allocated = true
		e.pid = m.PID
		e.val = 0
	case wireless.KindFree:
		b.entries[m.Addr] = entry{}
		b.wakeWatchers(m.Addr)
	}
}

// conflict aborts any pending RMW on addr at nodes other than src.
func (b *BM) conflict(src int, addr uint32) {
	for n := range b.pending {
		pr := &b.pending[n]
		if n != src && pr.active && pr.addr == addr {
			pr.active = false
			pr.aborted = true
			b.afb[n] = true
			b.Stats.AFBFailures++
			pr.tok.Cancel() // no-op if the transfer was not yet issued
		}
	}
}

func (b *BM) wakeWatchers(addr uint32) {
	if q, ok := b.watchers[addr]; ok && q.Len() > 0 {
		// The spinner observes the new value on its next local BM poll.
		q.WakeAll(b.p.RT)
	}
}

// WCB returns node's Write Completion Bit.
func (b *BM) WCB(node int) bool { return b.wcb[node] }

// AFB returns node's Atomicity Failure Bit.
func (b *BM) AFB(node int) bool { return b.afb[node] }

// AbortPendingRMW aborts node's in-flight RMW, if any, setting AFB. The OS
// uses this when an exception or context switch lands between a RMW and its
// AFB check (Section 4.2.1). It reports whether an RMW was aborted.
func (b *BM) AbortPendingRMW(node int) bool {
	pr := &b.pending[node]
	if !pr.active {
		return false
	}
	pr.active = false
	pr.aborted = true
	b.afb[node] = true
	b.Stats.AFBFailures++
	pr.tok.Cancel()
	return true
}

// Peek returns the committed value at addr without timing effects.
func (b *BM) Peek(addr uint32) uint64 { return b.entries[addr].val }

// Poke sets addr's value without timing or broadcast, for test setup.
func (b *BM) Poke(addr uint32, val uint64) { b.entries[addr].val = val }

// Allocated reports whether addr is allocated and to which PID.
func (b *BM) Allocated(addr uint32) (bool, uint16) {
	e := &b.entries[addr]
	return e.allocated, e.pid
}

// IsTone reports whether addr was allocated as a tone-barrier variable.
func (b *BM) IsTone(addr uint32) bool { return b.entries[addr].tone }

// ToggleLocal flips addr between zero and non-zero in every replica without
// using the Data channel. The tone controller calls this when the Tone
// channel falls silent (Section 4.2.2); it also wakes spinners.
func (b *BM) ToggleLocal(addr uint32) {
	e := &b.entries[addr]
	if e.val == 0 {
		e.val = 1
	} else {
		e.val = 0
	}
	b.wakeWatchers(addr)
}
