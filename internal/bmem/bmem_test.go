package bmem

import (
	"errors"
	"fmt"
	"testing"

	"wisync/internal/sim"
	"wisync/internal/wireless"
)

func newBM(t *testing.T, nodes int) (*sim.Engine, *BM) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := wireless.New(eng, nodes, wireless.DefaultParams())
	return eng, New(eng, net, nodes, DefaultParams())
}

// newBMEarly builds a BM running the literal Section 4.2.1 early-read RMW
// protocol, which the AFB/withdrawal tests exercise.
func newBMEarly(t *testing.T, nodes int) (*sim.Engine, *BM) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := wireless.New(eng, nodes, wireless.DefaultParams())
	p := DefaultParams()
	p.RMWEarlyRead = true
	return eng, New(eng, net, nodes, p)
}

func TestAllocLoadStore(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p0", func(p *sim.Proc) {
		addr, err := b.Alloc(p, 0, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if ok, pid := b.Allocated(addr); !ok || pid != 1 {
			t.Fatalf("Allocated = %v/%d, want true/1", ok, pid)
		}
		if err := b.Store(p, 0, 1, addr, 99); err != nil {
			t.Fatal(err)
		}
		if !b.WCB(0) {
			t.Error("WCB clear after completed store")
		}
		v, err := b.Load(p, 0, 1, addr)
		if err != nil {
			t.Fatal(err)
		}
		if v != 99 {
			t.Errorf("Load = %d, want 99", v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLatencyIsBMRT(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p0", func(p *sim.Proc) {
		addr, _ := b.Alloc(p, 0, 1, false)
		start := p.Now()
		if _, err := b.Load(p, 0, 1, addr); err != nil {
			t.Fatal(err)
		}
		if d := p.Now() - start; d != b.Params().RT {
			t.Errorf("load latency = %d, want %d", d, b.Params().RT)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreVisibleToAllNodesAtCommit(t *testing.T) {
	eng, b := newBM(t, 8)
	var addr uint32
	ready := false
	eng.Go("writer", func(p *sim.Proc) {
		a, _ := b.Alloc(p, 0, 1, false)
		addr = a
		ready = true
		p.Sleep(10)
		b.Store(p, 0, 1, addr, 1234)
	})
	for n := 1; n < 8; n++ {
		n := n
		eng.Go(fmt.Sprintf("r%d", n), func(p *sim.Proc) {
			p.Sleep(200) // well after commit
			if !ready {
				t.Error("alloc did not complete")
				return
			}
			v, err := b.Load(p, n, 1, addr)
			if err != nil {
				t.Fatal(err)
			}
			if v != 1234 {
				t.Errorf("node %d sees %d, want 1234", n, v)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProtectionViolation(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		addr, _ := b.Alloc(p, 0, 1, false)
		_, err := b.Load(p, 1, 2, addr) // PID 2 touching PID 1's entry
		var pe *ProtectionError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want ProtectionError", err)
		}
		if pe.PID != 2 || pe.Tag != 1 {
			t.Errorf("ProtectionError = %+v", pe)
		}
		if err := b.Store(p, 1, 2, addr, 5); err == nil {
			t.Error("store with wrong PID succeeded")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnallocatedAndOutOfRange(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		var ae *AddrError
		_, err := b.Load(p, 0, 1, 7)
		if !errors.As(err, &ae) {
			t.Fatalf("unallocated load err = %v", err)
		}
		_, err = b.Load(p, 0, 1, 99999)
		if !errors.As(err, &ae) {
			t.Fatalf("out-of-range load err = %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRMWFetchAddNoContention(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		addr, _ := b.Alloc(p, 0, 1, false)
		old, ok, err := b.RMW(p, 0, 1, addr, func(v uint64) (uint64, bool) { return v + 5, true })
		if err != nil || !ok || old != 0 {
			t.Fatalf("RMW = (%d, %v, %v)", old, ok, err)
		}
		if b.Peek(addr) != 5 {
			t.Errorf("value = %d, want 5", b.Peek(addr))
		}
		if b.AFB(0) {
			t.Error("AFB set after clean RMW")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRMWConflictSetsAFBAndWithdraws(t *testing.T) {
	// Node 1 opens an RMW window; node 0's store to the same address
	// commits first (node 1's transfer is queued behind it), so node 1's
	// atomicity fails: AFB set, nothing broadcast by node 1.
	eng, b := newBMEarly(t, 4)
	var addr uint32
	eng.Go("setup", func(p *sim.Proc) {
		addr, _ = b.Alloc(p, 0, 1, false)
	})
	eng.Go("store0", func(p *sim.Proc) {
		p.Sleep(100)
		b.Store(p, 0, 1, addr, 7)
	})
	eng.Go("rmw1", func(p *sim.Proc) {
		p.Sleep(101) // join while node 0's store occupies the channel
		old, ok, err := b.RMW(p, 1, 1, addr, func(v uint64) (uint64, bool) { return v + 1, true })
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("RMW reported success despite conflicting commit")
		}
		if !b.AFB(1) {
			t.Error("AFB clear after atomicity failure")
		}
		_ = old
		// Figure 4(a): software retries.
		old2, ok2, err := b.RMW(p, 1, 1, addr, func(v uint64) (uint64, bool) { return v + 1, true })
		if err != nil || !ok2 {
			t.Fatalf("retry RMW = (%v, %v)", ok2, err)
		}
		if old2 != 7 {
			t.Errorf("retry read %d, want 7", old2)
		}
		if b.Peek(addr) != 8 {
			t.Errorf("final value = %d, want 8", b.Peek(addr))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.AFBFailures != 1 {
		t.Errorf("AFBFailures = %d, want 1", b.Stats.AFBFailures)
	}
}

func TestConcurrentFetchAddNoLostUpdates(t *testing.T) {
	// The full software retry protocol: every increment must land exactly
	// once despite collisions and AFB aborts.
	eng, b := newBM(t, 64)
	var addr uint32
	a, err := b.AllocBare(1, false)
	if err != nil {
		t.Fatal(err)
	}
	addr = a
	const perNode = 10
	for n := 0; n < 64; n++ {
		n := n
		eng.Go(fmt.Sprintf("n%d", n), func(p *sim.Proc) {
			for i := 0; i < perNode; i++ {
				for {
					_, ok, err := b.RMW(p, n, 1, addr, func(v uint64) (uint64, bool) { return v + 1, true })
					if err != nil {
						t.Error(err)
						return
					}
					if ok {
						break
					}
				}
				p.Sleep(sim.Time(p.Engine().Rand().Intn(50)))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Peek(addr); got != 64*perNode {
		t.Errorf("counter = %d, want %d", got, 64*perNode)
	}
}

func TestCASNoBroadcastOnCompareFailure(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		addr, _ := b.Alloc(p, 0, 1, false)
		b.Store(p, 0, 1, addr, 3)
		msgsBefore := b.net.Stats.Messages
		old, ok, err := b.RMW(p, 0, 1, addr, func(v uint64) (uint64, bool) { return 9, v == 42 })
		if err != nil || !ok || old != 3 {
			t.Fatalf("CAS = (%d,%v,%v)", old, ok, err)
		}
		if b.net.Stats.Messages != msgsBefore {
			t.Error("failed CAS consumed a wireless message")
		}
		if b.Peek(addr) != 3 {
			t.Errorf("value changed to %d on failed CAS", b.Peek(addr))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkStoreLoad(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		addr, err := b.AllocContiguous(p, 0, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := b.BulkStore(p, 0, 1, addr, [4]uint64{10, 20, 30, 40}); err != nil {
			t.Fatal(err)
		}
		if d := p.Now() - start; d != 15 {
			t.Errorf("bulk store took %d cycles, want 15", d)
		}
		vals, err := b.BulkLoad(p, 1, 1, addr)
		if err != nil {
			t.Fatal(err)
		}
		want := [4]uint64{10, 20, 30, 40}
		if vals != want {
			t.Errorf("BulkLoad = %v, want %v", vals, want)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkConflictsPendingRMW(t *testing.T) {
	// A bulk store covering the pending RMW's address must abort it
	// (early-read protocol).
	eng, b := newBMEarly(t, 4)
	base, err := b.AllocBareContiguous(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("bulk", func(p *sim.Proc) {
		p.Sleep(100)
		b.BulkStore(p, 0, 1, base, [4]uint64{1, 2, 3, 4})
	})
	eng.Go("rmw", func(p *sim.Proc) {
		p.Sleep(101)
		_, ok, err := b.RMW(p, 1, 1, base+2, func(v uint64) (uint64, bool) { return v + 1, true })
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("RMW survived a bulk overwrite of its address")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpinUntilReleasedByRemoteStore(t *testing.T) {
	eng, b := newBM(t, 4)
	addr, _ := b.AllocBare(1, false)
	var woke sim.Time
	eng.Go("spinner", func(p *sim.Proc) {
		v, err := b.SpinUntil(p, 1, 1, addr, func(v uint64) bool { return v == 5 })
		if err != nil || v != 5 {
			t.Errorf("SpinUntil = (%d, %v)", v, err)
		}
		woke = p.Now()
	})
	eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(500)
		b.Store(p, 0, 1, addr, 5)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Store commits at ~505; spinner observes within a BM RT or two.
	if woke < 505 || woke > 515 {
		t.Errorf("spinner woke at %d, want 505..515", woke)
	}
}

func TestAllocUntilFullThenSpill(t *testing.T) {
	eng := sim.NewEngine(1)
	net := wireless.New(eng, 2, wireless.DefaultParams())
	p := DefaultParams()
	p.Entries = 8
	b := New(eng, net, 2, p)
	for i := 0; i < 8; i++ {
		if _, err := b.AllocBare(1, false); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := b.AllocBare(1, false); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if b.FreeEntries() != 0 {
		t.Errorf("FreeEntries = %d, want 0", b.FreeEntries())
	}
}

func TestFreeMakesEntryReusable(t *testing.T) {
	eng, b := newBM(t, 4)
	eng.Go("p", func(p *sim.Proc) {
		addr, _ := b.Alloc(p, 0, 1, false)
		free0 := b.FreeEntries()
		if err := b.Free(p, 0, 1, addr); err != nil {
			t.Fatal(err)
		}
		if b.FreeEntries() != free0+1 {
			t.Error("Free did not release the entry")
		}
		// Another PID can now claim the same address.
		addr2, _ := b.Alloc(p, 1, 2, false)
		if addr2 != addr {
			t.Errorf("expected address reuse, got %d then %d", addr, addr2)
		}
		if _, err := b.Load(p, 0, 1, addr); err == nil {
			t.Error("old owner can still access reallocated entry")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocsDisjoint(t *testing.T) {
	eng, b := newBM(t, 16)
	addrs := make(chan uint32, 16)
	for n := 0; n < 16; n++ {
		n := n
		eng.Go(fmt.Sprintf("n%d", n), func(p *sim.Proc) {
			a, err := b.Alloc(p, n, uint16(n+1), false)
			if err != nil {
				t.Error(err)
				return
			}
			addrs <- a
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	close(addrs)
	seen := map[uint32]bool{}
	for a := range addrs {
		if seen[a] {
			t.Fatalf("address %d allocated twice", a)
		}
		seen[a] = true
	}
	if len(seen) != 16 {
		t.Errorf("%d distinct addresses, want 16", len(seen))
	}
}

func TestAbortPendingRMWOnContextSwitch(t *testing.T) {
	eng, b := newBMEarly(t, 4)
	addr, _ := b.AllocBare(1, false)
	eng.Go("blocker", func(p *sim.Proc) {
		// Hold the channel so the victim's RMW stays pending.
		b.Store(p, 0, 1, addr, 1)
		b.Store(p, 0, 1, addr, 2)
	})
	eng.Go("victim", func(p *sim.Proc) {
		p.Sleep(1)
		_, ok, err := b.RMW(p, 1, 1, addr, func(v uint64) (uint64, bool) { return v + 1, true })
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("RMW succeeded despite OS abort")
		}
		if !b.AFB(1) {
			t.Error("AFB clear after OS abort")
		}
	})
	eng.Go("os", func(p *sim.Proc) {
		p.Sleep(4) // while the victim's transfer is queued
		if !b.AbortPendingRMW(1) {
			t.Error("AbortPendingRMW found nothing pending")
		}
		if b.AbortPendingRMW(1) {
			t.Error("second abort reported success")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaConsistencyRandomized(t *testing.T) {
	// Property: after any interleaving of stores/RMWs from many nodes,
	// all nodes read identical values (single total order of commits).
	for trial := 0; trial < 5; trial++ {
		eng := sim.NewEngine(uint64(50 + trial))
		net := wireless.New(eng, 16, wireless.DefaultParams())
		b := New(eng, net, 16, DefaultParams())
		var addrs []uint32
		for i := 0; i < 6; i++ {
			a, _ := b.AllocBare(1, false)
			addrs = append(addrs, a)
		}
		for n := 0; n < 16; n++ {
			n := n
			eng.Go(fmt.Sprintf("n%d", n), func(p *sim.Proc) {
				rng := sim.NewRand(uint64(n*31 + trial))
				for i := 0; i < 30; i++ {
					a := addrs[rng.Intn(len(addrs))]
					if rng.Intn(2) == 0 {
						b.Store(p, n, 1, a, rng.Uint64()%100)
					} else {
						for {
							_, ok, _ := b.RMW(p, n, 1, a, func(v uint64) (uint64, bool) { return v + 1, true })
							if ok {
								break
							}
						}
					}
					p.Sleep(sim.Time(rng.Intn(20)))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// One logical replica: verify all reads agree via Load from
		// every node.
		for _, a := range addrs {
			want := b.Peek(a)
			for n := 0; n < 16; n++ {
				n, a, want := n, a, want
				eng.Go("check", func(p *sim.Proc) {
					v, err := b.Load(p, n, 1, a)
					if err != nil || v != want {
						t.Errorf("node %d: %d != %d (%v)", n, v, want, err)
					}
				})
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
}
