// Transceiver energy pricing.
//
// Mansoor et al.'s traffic-aware MAC work (PAPERS.md) frames energy per
// transmitted bit as the first-class WNoC metric. The prices here come
// straight from the repository's rfmodel scaling argument (Section 2 /
// Table 4): a transceiver running at power P while sustaining bandwidth W
// spends P/W energy per bit, and mW per Gb/s is exactly pJ per bit.
package channel

import "wisync/internal/rfmodel"

// toneSignalGbps is the Tone transceiver's effective signaling rate: the
// tone is a one-bit-per-cycle signal at the 1 ns slot time, i.e. 1 Gb/s.
const toneSignalGbps = 1.0

// DataPJPerBit is the Data transceiver's energy per transmitted bit in
// picojoules: the 22 nm-scaled Yu et al. design's power over its 16 Gb/s
// bandwidth (~1 pJ/bit).
var DataPJPerBit = func() float64 {
	d := rfmodel.Scale(rfmodel.Yu65, 22)
	return d.PowerMW / d.BandwidthGbps
}()

// TonePJPerBit is the Tone transceiver's energy per signaled bit in
// picojoules: the 22 nm Tone addon power over the one-bit-per-slot
// signaling rate (2 pJ/bit).
var TonePJPerBit = rfmodel.ToneAddonPower22 / toneSignalGbps
