// Package channel models the physical wireless medium underneath the Data
// channel's MAC: per-link bit-error rates and the per-transmission
// delivery outcomes they induce.
//
// The paper's evaluation assumes an ideal intra-chip channel — every
// committed transmission reaches every Broadcast Memory intact. Channel
// measurements of later WNoC work (Timoneda et al., "Engineer the Channel
// and Adapt to it") show per-link attenuation and therefore BER is
// position-dependent across the die, and must be engineered around or
// adapted to. This package supplies that axis as a pluggable Model between
// wireless.Network and its MACs: the ideal profile (the default, and the
// one all golden matrices are pinned against), a uniform profile where
// every link shares one raw BER, and a distance profile where a link's BER
// grows quadratically with the sender-receiver distance on the same
// most-square grid the wired mesh uses (noc.Dims), normalized so the
// worst (corner-to-corner) link sees the configured raw BER.
//
// A broadcast survives only if it survives on every link: receivers CRC
// the frame, and any corrupted copy NACKs the whole transmission (the
// medium is a broadcast bus, so one NACK tone suffices and every node
// observes it). The per-transmission survival probability for a B-bit
// frame from source s is therefore prod_over_receivers((1-BER(s,r))^B),
// which the Model precomputes per source so one uniform draw decides each
// transmission. Corrupted transmissions are retransmitted by the Network
// through the normal MAC Submit path, up to Params.MaxRetries times.
//
// All draws come from a sim.Rand the Network forks from the engine at
// construction time (only when the profile is non-ideal, so the ideal
// channel consumes no entropy and perturbs nothing), and are made in
// commit-event order — which the engine keeps identical across host
// worker counts and shard counts — so a corruption schedule is a pure
// function of (seed, config).
package channel

import (
	"encoding/json"
	"fmt"
	"math"

	"wisync/internal/noc"
	"wisync/internal/sim"
)

// Profile selects the per-link BER structure of the medium.
type Profile uint8

const (
	// Ideal is the paper's error-free channel: every transmission
	// delivers. It is the default; every golden matrix is pinned against
	// it.
	Ideal Profile = iota
	// Uniform gives every (src, dst) link the same raw BER.
	Uniform
	// Distance scales the raw BER by the squared normalized Euclidean
	// distance between src and dst on the chip grid: adjacent cores see a
	// nearly clean link, the corner-to-corner link sees the full
	// configured BER (the position-dependence of Timoneda et al.).
	Distance
	// Burst is a Gilbert-Elliott two-state channel: the whole medium
	// alternates between a good state at Params.BERGood and a bad state
	// at Params.BER, with per-transmission transition probabilities
	// Params.PGB (good -> bad) and Params.PBG (bad -> good). Errors
	// therefore arrive in bursts whose mean length is 1/PBG
	// transmissions — the time-varying channel conditions of Timoneda et
	// al., as opposed to the stationary Uniform/Distance profiles.
	Burst
)

// Profiles lists the selectable profiles in presentation order.
var Profiles = []Profile{Ideal, Uniform, Distance, Burst}

func (p Profile) String() string {
	switch p {
	case Ideal:
		return "ideal"
	case Uniform:
		return "uniform"
	case Distance:
		return "distance"
	case Burst:
		return "burst"
	}
	return fmt.Sprintf("Profile(%d)", int(p))
}

// ParseProfile resolves a -channel flag value.
func ParseProfile(s string) (Profile, bool) {
	for _, p := range Profiles {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// Valid reports whether p names a selectable profile.
func (p Profile) Valid() bool { return p <= Burst }

// MarshalJSON renders the profile as its flag name; unknown values are an
// error so a corrupt profile cannot produce a plausible canonical form.
func (p Profile) MarshalJSON() ([]byte, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("channel: cannot marshal invalid %v", p)
	}
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts a profile name as ParseProfile does.
func (p *Profile) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("channel: profile must be a name string: %w", err)
	}
	v, ok := ParseProfile(s)
	if !ok {
		return fmt.Errorf("channel: unknown profile %q", s)
	}
	*p = v
	return nil
}

// DefaultMaxRetries is the retransmission budget a zero Params.MaxRetries
// resolves to for non-ideal profiles: enough that realistic BERs
// essentially never exhaust it (at BER 1e-3 a 77-bit frame corrupts with
// probability ~7%, so eight retries leave a failure probability ~1e-10),
// while a deliberately hostile test channel fails fast.
const DefaultMaxRetries = 8

// MaxRetriesCap bounds the configurable retransmission budget.
const MaxRetriesCap = 100

// Params configures the channel-error model. The zero value is the ideal
// channel.
type Params struct {
	// Profile selects the per-link BER structure (default Ideal).
	Profile Profile
	// BER is the raw bit-error rate of the worst link: every link under
	// Uniform, the corner-to-corner link under Distance. Ignored by Ideal.
	BER float64
	// MaxRetries bounds how many times one transmission is resubmitted
	// after corrupted deliveries before the send completes as a delivery
	// failure. Zero means DefaultMaxRetries for non-ideal profiles.
	MaxRetries int
	// BERGood is the Burst profile's good-state bit-error rate (the bad
	// state uses BER). Ignored by every other profile.
	BERGood float64 `json:",omitempty"`
	// PGB and PBG are the Burst profile's per-transmission transition
	// probabilities, good -> bad and bad -> good. Zero values resolve to
	// DefaultPGB and DefaultPBG.
	PGB float64 `json:",omitempty"`
	PBG float64 `json:",omitempty"`
}

// Default Burst transition probabilities: bursts begin rarely (one
// transmission in fifty) and last twenty transmissions on average.
const (
	DefaultPGB = 0.02
	DefaultPBG = 0.05
)

// DefaultParams returns the ideal channel.
func DefaultParams() Params { return Params{Profile: Ideal} }

// Validate reports parameter errors.
func (p Params) Validate() error {
	if !p.Profile.Valid() {
		return fmt.Errorf("channel: unknown profile %v", p.Profile)
	}
	if p.BER < 0 || p.BER >= 1 {
		return fmt.Errorf("channel: BER %g outside [0,1)", p.BER)
	}
	if p.MaxRetries < 0 || p.MaxRetries > MaxRetriesCap {
		return fmt.Errorf("channel: %d retries outside [0,%d]", p.MaxRetries, MaxRetriesCap)
	}
	if p.BERGood < 0 || p.BERGood >= 1 {
		return fmt.Errorf("channel: good-state BER %g outside [0,1)", p.BERGood)
	}
	if p.PGB < 0 || p.PGB > 1 || p.PBG < 0 || p.PBG > 1 {
		return fmt.Errorf("channel: transition probabilities (%g, %g) outside [0,1]", p.PGB, p.PBG)
	}
	if p.Profile == Burst && p.BERGood > p.BER {
		return fmt.Errorf("channel: good-state BER %g exceeds bad-state BER %g", p.BERGood, p.BER)
	}
	return nil
}

// Model decides per-transmission delivery outcomes for one chip's medium.
// Implementations are deterministic given the rng handed to Corrupts.
type Model interface {
	// Profile identifies the BER structure.
	Profile() Profile
	// Ideal reports whether the model can never corrupt a transmission;
	// the Network skips the draw (and never forks an rng) when it is true.
	Ideal() bool
	// LinkBER returns the raw bit-error rate of the src -> dst link.
	LinkBER(src, dst int) float64
	// Corrupts draws the outcome of a bits-bit broadcast from src:
	// true means at least one receiver saw a corrupted frame and NACKed.
	Corrupts(rng *sim.Rand, src, bits int) bool
	// MaxRetries is the per-transmission retransmission budget.
	MaxRetries() int
}

// New builds the model selected by p for a chip with the given node count.
func New(nodes int, p Params) (Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("channel: invalid node count %d", nodes)
	}
	if p.Profile == Ideal {
		return ideal{}, nil
	}
	retries := p.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if p.Profile == Burst {
		g := &gilbertElliott{nodes: nodes, retries: retries,
			berGood: p.BERGood, berBad: p.BER, pGB: p.PGB, pBG: p.PBG}
		if g.pGB == 0 {
			g.pGB = DefaultPGB
		}
		if g.pBG == 0 {
			g.pBG = DefaultPBG
		}
		g.survGood = survival(g.berGood, nodes)
		g.survBad = survival(g.berBad, nodes)
		return g, nil
	}
	m := &matrix{profile: p.Profile, nodes: nodes, retries: retries}
	m.build(p.BER)
	return m, nil
}

// survival returns the per-bit broadcast survival probability under one
// uniform BER: every one of the nodes-1 receivers must see the bit clean.
func survival(ber float64, nodes int) float64 {
	return math.Pow(1-ber, float64(nodes-1))
}

// ideal is the error-free channel.
type ideal struct{}

func (ideal) Profile() Profile                  { return Ideal }
func (ideal) Ideal() bool                       { return true }
func (ideal) LinkBER(src, dst int) float64      { return 0 }
func (ideal) Corrupts(*sim.Rand, int, int) bool { return false }
func (ideal) MaxRetries() int                   { return 0 }

// matrix is a per-link BER table with precomputed per-source per-bit
// broadcast survival, so one uniform draw decides each transmission.
type matrix struct {
	profile Profile
	nodes   int
	retries int
	// ber[src*nodes+dst] is the raw BER of the src -> dst link (0 on the
	// diagonal; the sender does not receive its own frame).
	ber []float64
	// survival[src] = prod over dst != src of (1 - ber[src][dst]): the
	// probability one bit of a broadcast from src survives at every
	// receiver. A B-bit frame survives with probability survival^B.
	survival []float64
}

// build fills the BER matrix for the profile. Node positions are the wired
// mesh's most-square grid (noc.Dims), so "distance" means the same thing
// to the channel model and to the NoC it competes against.
func (m *matrix) build(rawBER float64) {
	n := m.nodes
	m.ber = make([]float64, n*n)
	m.survival = make([]float64, n)
	cols, _ := noc.Dims(n)
	dist := func(a, b int) float64 {
		dx := float64(a%cols - b%cols)
		dy := float64(a/cols - b/cols)
		return math.Sqrt(dx*dx + dy*dy)
	}
	dmax := dist(0, n-1) // corner to corner on the grid
	for src := 0; src < n; src++ {
		s := 1.0
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			b := rawBER
			if m.profile == Distance && dmax > 0 {
				frac := dist(src, dst) / dmax
				b = rawBER * frac * frac
			}
			m.ber[src*n+dst] = b
			s *= 1 - b
		}
		m.survival[src] = s
	}
}

func (m *matrix) Profile() Profile { return m.profile }
func (m *matrix) Ideal() bool      { return false }
func (m *matrix) MaxRetries() int  { return m.retries }

func (m *matrix) LinkBER(src, dst int) float64 {
	return m.ber[src*m.nodes+dst]
}

func (m *matrix) Corrupts(rng *sim.Rand, src, bits int) bool {
	p := math.Pow(m.survival[src], float64(bits))
	return rng.Float64() >= p
}

// gilbertElliott is the Burst profile: one medium-wide two-state Markov
// chain stepped once per transmission. The state evolves in the
// Network's commit-event order — the same order every other channel draw
// uses — so the burst schedule is deterministic across worker and shard
// counts. Every Corrupts call makes exactly two draws (transition, then
// outcome) regardless of state, so the rng stream consumed is a pure
// function of the transmission count.
type gilbertElliott struct {
	nodes, retries    int
	berGood, berBad   float64
	pGB, pBG          float64
	survGood, survBad float64
	bad               bool
}

func (g *gilbertElliott) Profile() Profile { return Burst }
func (g *gilbertElliott) Ideal() bool      { return false }
func (g *gilbertElliott) MaxRetries() int  { return g.retries }

// LinkBER reports the bad-state (worst-case) BER: the Burst channel is
// uniform across links, varying in time instead of space.
func (g *gilbertElliott) LinkBER(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return g.berBad
}

func (g *gilbertElliott) Corrupts(rng *sim.Rand, src, bits int) bool {
	flip := rng.Float64()
	if g.bad {
		if flip < g.pBG {
			g.bad = false
		}
	} else if flip < g.pGB {
		g.bad = true
	}
	surv := g.survGood
	if g.bad {
		surv = g.survBad
	}
	return rng.Float64() >= math.Pow(surv, float64(bits))
}
