package channel

import (
	"encoding/json"
	"math"
	"testing"

	"wisync/internal/sim"
)

func TestProfileNamesRoundTrip(t *testing.T) {
	for _, p := range Profiles {
		got, ok := ParseProfile(p.String())
		if !ok || got != p {
			t.Fatalf("ParseProfile(%q) = %v, %v", p.String(), got, ok)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var q Profile
		if err := json.Unmarshal(b, &q); err != nil || q != p {
			t.Fatalf("json round trip of %v: %v, %v", p, q, err)
		}
	}
	if _, ok := ParseProfile("rayleigh"); ok {
		t.Fatal("unknown profile parsed")
	}
	var p Profile
	if err := json.Unmarshal([]byte(`"fading"`), &p); err == nil {
		t.Fatal("unknown profile name decoded")
	}
	if err := json.Unmarshal([]byte(`2`), &p); err == nil {
		t.Fatal("numeric profile decoded; names are the wire form")
	}
	if _, err := Profile(9).MarshalJSON(); err == nil {
		t.Fatal("invalid profile marshaled")
	}
}

func TestParamsValidate(t *testing.T) {
	good := []Params{
		{},
		DefaultParams(),
		{Profile: Uniform, BER: 1e-3},
		{Profile: Distance, BER: 0.1, MaxRetries: MaxRetriesCap},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", p, err)
		}
	}
	bad := []Params{
		{Profile: 9},
		{Profile: Uniform, BER: -0.1},
		{Profile: Uniform, BER: 1},
		{Profile: Uniform, BER: 1e-3, MaxRetries: -1},
		{Profile: Uniform, BER: 1e-3, MaxRetries: MaxRetriesCap + 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
	}
}

func TestIdealNeverCorrupts(t *testing.T) {
	m, err := New(64, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Ideal() {
		t.Fatal("default model is not ideal")
	}
	rng := sim.NewRand(1)
	for i := 0; i < 1000; i++ {
		if m.Corrupts(rng, i%64, 77) {
			t.Fatal("ideal channel corrupted a transmission")
		}
	}
	if m.LinkBER(0, 63) != 0 {
		t.Fatal("ideal channel has a nonzero link BER")
	}
}

func TestUniformMatrix(t *testing.T) {
	const ber = 1e-3
	m, err := New(16, Params{Profile: Uniform, BER: ber})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			want := ber
			if src == dst {
				want = 0
			}
			if got := m.LinkBER(src, dst); got != want {
				t.Fatalf("LinkBER(%d,%d) = %g, want %g", src, dst, got, want)
			}
		}
	}
	if m.MaxRetries() != DefaultMaxRetries {
		t.Fatalf("zero MaxRetries resolved to %d, want %d", m.MaxRetries(), DefaultMaxRetries)
	}
}

// TestDistanceMatrix pins the position dependence: the corner-to-corner
// link carries the configured raw BER, nearer links carry quadratically
// less, and the matrix is symmetric (distance is).
func TestDistanceMatrix(t *testing.T) {
	const ber = 1e-2
	n := 16 // 4x4 grid
	m, err := New(n, Params{Profile: Distance, BER: ber})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LinkBER(0, n-1); math.Abs(got-ber) > 1e-15 {
		t.Fatalf("corner-to-corner BER = %g, want %g", got, ber)
	}
	if near, far := m.LinkBER(0, 1), m.LinkBER(0, n-1); near >= far {
		t.Fatalf("adjacent link BER %g not below corner link %g", near, far)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if a, b := m.LinkBER(src, dst), m.LinkBER(dst, src); a != b {
				t.Fatalf("asymmetric matrix: (%d,%d)=%g (%d,%d)=%g", src, dst, a, dst, src, b)
			}
		}
	}
	// On a 4x4 grid, 0 -> 1 is distance 1 of dmax = sqrt(18); BER scales
	// with the squared normalized distance.
	want := ber * (1.0 / 18.0)
	if got := m.LinkBER(0, 1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("adjacent BER = %g, want %g", got, want)
	}
}

// TestCorruptionScheduleDeterministic pins that identical (seed, config)
// inputs reproduce the same corruption schedule draw for draw.
func TestCorruptionScheduleDeterministic(t *testing.T) {
	mk := func() []bool {
		m, err := New(64, Params{Profile: Distance, BER: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(42)
		out := make([]bool, 500)
		for i := range out {
			out[i] = m.Corrupts(rng, i%64, 77+192*(i%2))
		}
		return out
	}
	a, b := mk(), mk()
	var corrupted int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged", i)
		}
		if a[i] {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no corruption at BER 0.02 over 500 frames; schedule is vacuous")
	}
}

// TestCorruptionRateTracksBER sanity-checks the survival math: at raw BER
// b, a B-bit broadcast to r receivers corrupts with probability
// 1-(1-b)^(B*r), and the empirical rate over many draws lands near it.
func TestCorruptionRateTracksBER(t *testing.T) {
	const ber, bits, nodes = 1e-4, 77, 64
	m, err := New(nodes, Params{Profile: Uniform, BER: ber})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(7)
	const draws = 200000
	var corrupted int
	for i := 0; i < draws; i++ {
		if m.Corrupts(rng, 0, bits) {
			corrupted++
		}
	}
	want := 1 - math.Pow(1-ber, bits*(nodes-1))
	got := float64(corrupted) / draws
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("empirical corruption rate %g, analytic %g", got, want)
	}
}

func TestEnergyPrices(t *testing.T) {
	// The 22 nm Data transceiver lands at ~16 mW / 16 Gb/s = ~1 pJ/bit,
	// the Tone addon at 2 mW over a 1 Gb/s signal = 2 pJ/bit.
	if DataPJPerBit < 0.9 || DataPJPerBit > 1.1 {
		t.Fatalf("DataPJPerBit = %g, want ~1", DataPJPerBit)
	}
	if TonePJPerBit != 2.0 {
		t.Fatalf("TonePJPerBit = %g, want 2", TonePJPerBit)
	}
}
