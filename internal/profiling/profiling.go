// Package profiling wires the standard pprof profiles into the command-
// line tools, so the "is the park/unpark dominating?" class of question is
// answerable from a flag instead of an edit-and-rebuild cycle:
//
//	wisync-bench -quick -cpuprofile cpu.out fig7
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths:
// a CPU profile written continuously to cpuPath, and a heap profile
// written to memPath at stop time. It returns a stop function that must
// run before the process exits (a no-op when both paths are empty).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
