package core

import (
	"errors"
	"fmt"

	"wisync/internal/sim"
)

// This file holds the graceful-degradation machinery: per-core fault
// records for threads halted by a fail-stopped transceiver, and the
// guarded run loop that converts budget overruns, livelocks, and external
// cancellation into structured errors instead of hangs.

// Fault records one workload thread halted by the fault-injection
// subsystem: its transceiver fail-stopped, so the BM operation named in Op
// could never complete and the thread was retired instead of spinning.
type Fault struct {
	Core  int    `json:"core"`
	PID   uint16 `json:"pid"`
	Op    string `json:"op"`
	Cycle uint64 `json:"cycle"`
}

func (f Fault) String() string {
	return fmt.Sprintf("core%d/pid%d %s @%d", f.Core, f.PID, f.Op, f.Cycle)
}

// threadHalt is the panic sentinel a fail-stop guard raises to unwind a
// workload thread's goroutine; the Spawn wrapper recovers it and retires
// the thread cleanly. It never escapes package core.
type threadHalt struct{}

// recordFault appends one fault record; deterministic because guards fire
// at fixed (time, sequence) positions in the event order.
func (m *Machine) recordFault(core int, pid uint16, op string) {
	m.faults = append(m.faults, Fault{
		Core: core, PID: pid, Op: op, Cycle: uint64(m.Eng.Now()),
	})
}

// Faults returns the per-core fault records accumulated during the run, in
// the order the threads halted.
func (m *Machine) Faults() []Fault { return m.faults }

// ErrAborted reports that a guarded run was cancelled through the
// config.AbortCheck hook (a serving process's job deadline or client
// disconnect).
var ErrAborted = errors.New("core: run aborted")

// BudgetError reports that the simulation was still live when it reached
// the configured cycle budget. Parked holds the last-operation breadcrumb
// of every live thread at the cutoff.
type BudgetError struct {
	Budget sim.Time
	Now    sim.Time
	Parked []string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: cycle budget %d exhausted at cycle %d, %d thread(s) live: %v",
		e.Budget, e.Now, len(e.Parked), e.Parked)
}

// LivelockError reports that no workload-visible progress counter moved
// for a full watchdog window while threads were still live — the
// structured form of a hang (for example a retry storm that never
// drains). Parked holds the last-operation breadcrumbs.
type LivelockError struct {
	Window sim.Time
	Now    sim.Time
	Parked []string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("core: no progress for %d cycles (livelock) at cycle %d, %d thread(s) live: %v",
		e.Window, e.Now, len(e.Parked), e.Parked)
}

// guardChunk is the guarded run's check interval: budget, watchdog, and
// abort conditions are evaluated every guardChunk cycles. Detection
// latency is bounded by one chunk; the simulated results are unaffected
// because RunUntil preserves exact event order.
const guardChunk sim.Time = 4096

// guarded reports whether Run must use the guarded loop.
func (m *Machine) guarded() bool {
	return m.Cfg.Budget > 0 || m.Cfg.Watchdog > 0 || m.Cfg.Abort != nil
}

// progressCounter sums the workload-visible operation counters the
// watchdog treats as progress: committed channel messages and abandoned
// grants, BM loads and stores, fault-injected send failures (a thread
// legitimately retrying through a transient outage is making progress
// toward its end), and the cache-hierarchy transaction counters. BM RMW
// attempts are deliberately excluded — a retry storm that only ever
// re-executes failing RMWs is exactly the livelock the watchdog exists to
// catch.
func (m *Machine) progressCounter() uint64 {
	var c uint64
	if m.Net != nil {
		c += m.Net.Stats.Messages + m.Net.Stats.SkippedGrants + m.Net.Energy.FaultedSends
	}
	if m.BM != nil {
		c += m.BM.Stats.Loads + m.BM.Stats.Stores
	}
	ms := &m.Mem.Stats
	c += ms.L1Hits + ms.L1Misses + ms.Transactions + ms.Invalidations +
		ms.Forwards + ms.MemFetches + ms.Evictions
	return c
}

// runGuarded executes the simulation in guardChunk-cycle windows, checking
// the abort hook, the cycle budget, and the progress watchdog between
// windows. Chunking uses RunBounded, which never advances the clock past
// the last executed event, so a run that finishes within its budget is
// bit-identical to an unguarded Run — same event order, same final cycle.
// On any guard trip the live threads' breadcrumbs are captured before
// Shutdown (which clears them) and returned in the error.
// runGuardedUntil is the guarded form of RunUntil: the horizon-cut
// kernels expect threads to still be live at cycle t, so reaching t is
// success, while the abort hook, a budget below t, and the progress
// watchdog still convert hangs into structured errors along the way.
func (m *Machine) runGuardedUntil(t sim.Time) error {
	var (
		lastCount    = m.progressCounter()
		horizon      = m.Eng.Now()
		lastProgress = horizon
	)
	budget := m.Cfg.Budget
	if budget >= t {
		budget = 0 // the cut at t lands first; the budget cannot trip
	}
	for horizon < t {
		if m.Cfg.Abort != nil && m.Cfg.Abort.F != nil && m.Cfg.Abort.F() {
			m.Eng.Shutdown()
			return ErrAborted
		}
		horizon += guardChunk
		if horizon > t {
			horizon = t
		}
		if budget > 0 && horizon > budget {
			horizon = budget
		}
		if err := m.Eng.RunBounded(horizon); err != nil {
			m.Eng.Shutdown()
			return err
		}
		if m.Eng.Live() == 0 && m.Eng.Pending() == 0 {
			break // every thread finished before the cut
		}
		if budget > 0 && horizon >= budget {
			e := &BudgetError{Budget: budget, Now: m.Eng.Now(), Parked: m.Eng.Breadcrumbs()}
			m.Eng.Shutdown()
			return e
		}
		if m.Cfg.Watchdog > 0 {
			if c := m.progressCounter(); c != lastCount {
				lastCount = c
				lastProgress = horizon
			} else if horizon-lastProgress >= m.Cfg.Watchdog {
				e := &LivelockError{Window: m.Cfg.Watchdog, Now: m.Eng.Now(), Parked: m.Eng.Breadcrumbs()}
				m.Eng.Shutdown()
				return e
			}
		}
	}
	// Advance the clock to the exact horizon, as the unguarded RunUntil
	// does (no events remain at or below t).
	if err := m.Eng.RunUntil(t); err != nil {
		return err
	}
	m.Eng.Shutdown()
	return nil
}

func (m *Machine) runGuarded() error {
	var (
		lastCount = m.progressCounter()
		// horizon is the swept-to time; the watchdog measures elapsed
		// simulated time against it (Now() stalls when events are sparse).
		horizon      = m.Eng.Now()
		lastProgress = horizon
	)
	for {
		if m.Cfg.Abort != nil && m.Cfg.Abort.F != nil && m.Cfg.Abort.F() {
			m.Eng.Shutdown()
			return ErrAborted
		}
		horizon += guardChunk
		if m.Cfg.Budget > 0 && horizon > m.Cfg.Budget {
			horizon = m.Cfg.Budget
		}
		if err := m.Eng.RunBounded(horizon); err != nil {
			m.Eng.Shutdown()
			return err
		}
		if m.Eng.Live() == 0 && m.Eng.Pending() == 0 {
			return nil
		}
		if m.Eng.Pending() == 0 {
			// The queue drained with threads still parked: a genuine
			// deadlock, reported exactly as the unguarded Run would.
			err := m.Eng.CheckDeadlock()
			m.Eng.Shutdown()
			return err
		}
		if m.Cfg.Budget > 0 && horizon >= m.Cfg.Budget {
			e := &BudgetError{Budget: m.Cfg.Budget, Now: m.Eng.Now(), Parked: m.Eng.Breadcrumbs()}
			m.Eng.Shutdown()
			return e
		}
		if m.Cfg.Watchdog > 0 {
			if c := m.progressCounter(); c != lastCount {
				lastCount = c
				lastProgress = horizon
			} else if horizon-lastProgress >= m.Cfg.Watchdog {
				e := &LivelockError{Window: m.Cfg.Watchdog, Now: m.Eng.Now(), Parked: m.Eng.Breadcrumbs()}
				m.Eng.Shutdown()
				return e
			}
		}
	}
}
