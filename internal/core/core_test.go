package core

import (
	"errors"
	"fmt"
	"testing"

	"wisync/internal/bmem"
	"wisync/internal/config"
	"wisync/internal/sim"
)

func newM(t *testing.T, kind config.Kind, cores int) *Machine {
	t.Helper()
	return NewMachine(config.New(kind, cores))
}

func TestMachineAssembly(t *testing.T) {
	w := newM(t, config.WiSync, 16)
	if w.Net == nil || w.BM == nil || w.Tone == nil {
		t.Error("WiSync machine missing wireless hardware")
	}
	wnt := newM(t, config.WiSyncNoT, 16)
	if wnt.Net == nil || wnt.BM == nil {
		t.Error("WiSyncNoT missing Data channel or BM")
	}
	if wnt.Tone != nil {
		t.Error("WiSyncNoT has a Tone controller")
	}
	b := newM(t, config.Baseline, 16)
	if b.Net != nil || b.BM != nil || b.Tone != nil {
		t.Error("Baseline has wireless hardware")
	}
	if b.Mem == nil || b.Mesh == nil {
		t.Error("Baseline missing wired substrate")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	cfg := config.New(config.WiSync, 64)
	cfg.Cores = 0
	NewMachine(cfg)
}

func TestAllocLineDistinctLines(t *testing.T) {
	m := newM(t, config.Baseline, 16)
	a, b := m.AllocLine(), m.AllocLine()
	if a>>6 == b>>6 {
		t.Errorf("AllocLine shares a line: %#x %#x", a, b)
	}
	base := m.AllocArray(100)
	if base>>6 == b>>6 {
		t.Error("array overlaps previous line")
	}
}

func TestLazyComputeCharging(t *testing.T) {
	m := newM(t, config.Baseline, 4)
	var at1, at2 sim.Time
	m.Spawn("t", 0, 1, func(th *Thread) {
		th.Compute(100)
		at1 = th.Proc().Now() // engine time: compute not yet flushed
		if th.Now() != at1+100 {
			t.Errorf("Thread.Now() = %d, want engine+pending", th.Now())
		}
		th.Read(m.AllocLine()) // interaction flushes
		at2 = th.Proc().Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 0 {
		t.Errorf("compute flushed too early: engine at %d", at1)
	}
	if at2 < 100 {
		t.Errorf("interaction at %d did not include pending compute", at2)
	}
}

func TestInstrTwoIssue(t *testing.T) {
	m := newM(t, config.Baseline, 4)
	m.Spawn("t", 0, 1, func(th *Thread) {
		th.Instr(100) // 50 cycles on the 2-issue core
		th.Sync()
		if th.Proc().Now() != 50 {
			t.Errorf("100 instructions took %d cycles, want 50", th.Proc().Now())
		}
		th.Instr(3) // ceil(3/2) = 2
		th.Sync()
		if th.Proc().Now() != 52 {
			t.Errorf("after 3 more instructions: %d, want 52", th.Proc().Now())
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBMInstructionsOnWiredMachinePanic(t *testing.T) {
	m := newM(t, config.Baseline, 4)
	m.Spawn("t", 0, 1, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("BMLoad on Baseline did not panic")
			}
		}()
		th.BMLoad(0)
	})
	defer func() { recover() }()
	_ = m.Run()
}

func TestBMRMWHelpers(t *testing.T) {
	m := newM(t, config.WiSync, 8)
	addr, err := m.BM.AllocBare(1, false)
	if err != nil {
		t.Fatal(err)
	}
	m.SpawnAll(func(th *Thread) {
		th.BMFetchInc(addr)
		th.BMFetchAdd(addr, 10)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.BM.Peek(addr); got != 8*11 {
		t.Errorf("counter = %d, want 88", got)
	}
}

func TestBMTestAndSet(t *testing.T) {
	m := newM(t, config.WiSync, 8)
	addr, _ := m.BM.AllocBare(1, false)
	winners := 0
	m.SpawnAll(func(th *Thread) {
		if th.BMTestAndSet(addr) == 0 {
			winners++
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if winners != 1 {
		t.Errorf("winners = %d, want exactly 1", winners)
	}
}

func TestBMCASSemantics(t *testing.T) {
	m := newM(t, config.WiSync, 4)
	addr, _ := m.BM.AllocBare(1, false)
	m.BM.Poke(addr, 5)
	m.Spawn("t", 0, 1, func(th *Thread) {
		if th.BMCAS(addr, 4, 9) {
			t.Error("CAS with wrong expected value succeeded")
		}
		if !th.BMCAS(addr, 5, 9) {
			t.Error("CAS with right expected value failed")
		}
		if v := th.BMLoad(addr); v != 9 {
			t.Errorf("value = %d, want 9", v)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProtectionFaultSurfacesAsError(t *testing.T) {
	m := newM(t, config.WiSync, 4)
	addr, _ := m.BM.AllocBare(7, false)   // owned by PID 7
	m.Spawn("t", 0, 1, func(th *Thread) { // PID 1
		_, err := th.TryBMLoad(addr)
		var pe *bmem.ProtectionError
		if !errors.As(err, &pe) {
			t.Errorf("err = %v, want ProtectionError", err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilStopsOpenEndedThreads(t *testing.T) {
	m := newM(t, config.WiSync, 8)
	addr, _ := m.BM.AllocBare(1, false)
	m.SpawnAll(func(th *Thread) {
		for {
			th.Compute(50)
			th.BMFetchInc(addr)
		}
	})
	if err := m.RunUntil(5000); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 5000 {
		t.Errorf("Now = %d, want 5000", m.Now())
	}
	if m.BM.Peek(addr) == 0 {
		t.Error("no increments happened")
	}
	if m.Eng.Live() != 0 {
		t.Errorf("%d live procs after RunUntil", m.Eng.Live())
	}
}

func TestSpawnAllThreadPerCore(t *testing.T) {
	m := newM(t, config.Baseline, 16)
	seen := map[int]bool{}
	m.SpawnAll(func(th *Thread) {
		if seen[th.Core] {
			t.Errorf("core %d spawned twice", th.Core)
		}
		seen[th.Core] = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 16 {
		t.Errorf("%d threads, want 16", len(seen))
	}
}

func TestSpawnOutOfRangePanics(t *testing.T) {
	m := newM(t, config.Baseline, 4)
	defer func() {
		if recover() == nil {
			t.Error("spawn on core 4 of 4 did not panic")
		}
	}()
	m.Spawn("bad", 4, 1, func(*Thread) {})
}

func TestWCBAFBVisibleToSoftware(t *testing.T) {
	cfg := config.New(config.WiSync, 4)
	cfg.Wireless.MsgCycles = 5
	m := NewMachine(cfg)
	m.BM.SetRMWEarlyRead(true)
	addr, _ := m.BM.AllocBare(1, false)
	m.Spawn("a", 0, 1, func(th *Thread) {
		th.BMStore(addr, 1)
		if !th.WCB() {
			t.Error("WCB clear after completed store")
		}
	})
	m.Spawn("b", 1, 1, func(th *Thread) {
		th.Proc().Sleep(1)
		// This RMW conflicts with a's store and must retry via AFB.
		th.BMFetchAdd(addr, 1)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.BM.Peek(addr); got != 2 {
		t.Errorf("value = %d, want 2", got)
	}
}

func TestToneISAOnWiSync(t *testing.T) {
	m := newM(t, config.WiSync, 4)
	bar, err := m.Tone.AllocateBare(1, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	m.SpawnAll(func(th *Thread) {
		th.Compute(10 * th.Core)
		th.ToneStore(bar)
		th.ToneWait(bar, 1)
		released++
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 4 {
		t.Errorf("released = %d, want 4", released)
	}
}

func TestDataChannelUtilizationAccounting(t *testing.T) {
	m := newM(t, config.WiSync, 4)
	addr, _ := m.BM.AllocBare(1, false)
	m.Spawn("t", 0, 1, func(th *Thread) {
		th.BMStore(addr, 1) // 5 busy cycles
		th.Compute(95)
		th.Sync()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if u := m.DataChannelUtilization(); u < 0.04 || u > 0.06 {
		t.Errorf("utilization = %v, want 0.05", u)
	}
	if newM(t, config.Baseline, 4).DataChannelUtilization() != 0 {
		t.Error("Baseline reports nonzero channel utilization")
	}
}

func TestManyMachinesIndependent(t *testing.T) {
	// Machines must not share state; run several interleaved.
	for i := 0; i < 3; i++ {
		m := newM(t, config.WiSync, 8)
		addr, _ := m.BM.AllocBare(1, false)
		m.SpawnAll(func(th *Thread) { th.BMFetchInc(addr) })
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.BM.Peek(addr) != 8 {
			t.Errorf("machine %d: counter = %d", i, m.BM.Peek(addr))
		}
	}
}

func TestBulkISA(t *testing.T) {
	m := newM(t, config.WiSync, 4)
	base, err := m.BM.AllocBareContiguous(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn("w", 0, 1, func(th *Thread) {
		th.BMBulkStore(base, [4]uint64{7, 8, 9, 10})
	})
	m.Spawn("r", 3, 1, func(th *Thread) {
		th.Proc().Sleep(100)
		got := th.BMBulkLoad(base)
		if got != [4]uint64{7, 8, 9, 10} {
			t.Errorf("BulkLoad = %v", got)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsOnDistinctPIDsIsolated(t *testing.T) {
	m := newM(t, config.WiSync, 8)
	addrs := make([]uint32, 2)
	for pid := uint16(1); pid <= 2; pid++ {
		a, _ := m.BM.AllocBare(pid, false)
		addrs[pid-1] = a
	}
	for c := 0; c < 8; c++ {
		pid := uint16(c%2 + 1)
		c := c
		m.Spawn(fmt.Sprintf("t%d", c), c, pid, func(th *Thread) {
			th.BMFetchInc(addrs[pid-1])
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.BM.Peek(addrs[0]) != 4 || m.BM.Peek(addrs[1]) != 4 {
		t.Errorf("counters = %d, %d; want 4, 4", m.BM.Peek(addrs[0]), m.BM.Peek(addrs[1]))
	}
}
