package core

import (
	"fmt"

	"wisync/internal/sim"
)

// Task is the continuation-form counterpart of Thread: one software thread
// pinned to a core, written in completion-callback style. Where a Thread
// method blocks its goroutine until the operation completes, the matching
// Task method returns immediately and runs `then` at the completion cycle,
// so an entire workload of Tasks executes on the goroutine driving the
// engine with zero process switches.
//
// Tasks charge computation lazily exactly like Threads (Compute/Instr
// accumulate into pending, flushed at the next shared-state access) and
// consume event sequence numbers at the same execution points, so a kernel
// ported between the two styles produces bit-identical simulated results —
// the property the equivalence suite in package kernels and the golden-
// conformance suite in package harness pin.
//
// Continuation discipline: each `then` must be the last simulation action
// of its caller (tail position), and a task must call Finish when its
// workload completes. Fault-raising instructions (BM protection or
// addressing violations) terminate the simulated program by panicking, as
// the blocking Thread's must() does; there are no Try variants in
// continuation form.
type Task struct {
	M    *Machine
	Core int
	PID  uint16

	st      *sim.Task
	pending sim.Time
	// Recycled continuation steps (steps.go), allocated on first use and
	// reused for every subsequent operation of their family.
	rmw *rmwOp
	bmr *bmRetryOp
	hw  *hwOp
}

// SpawnTask starts body as a continuation-form thread pinned to the given
// core. Like Spawn, tasks started before Run begin at cycle 0, and the
// spawn consumes one event sequence number — a Thread and a Task spawned
// at the same point begin at the same (time, priority, sequence) position.
func (m *Machine) SpawnTask(name string, core int, pid uint16, body func(*Task)) *Task {
	if core < 0 || core >= m.Cfg.Cores {
		panic(fmt.Sprintf("core: spawn on core %d of %d", core, m.Cfg.Cores))
	}
	t := &Task{M: m, Core: core, PID: pid}
	t.st = m.Eng.GoTask(name, func(*sim.Task) { body(t) })
	return t
}

// SpawnAllTasks starts one task per core (cores 0..n-1, PID 1), mirroring
// SpawnAll.
func (m *Machine) SpawnAllTasks(body func(*Task)) {
	for c := 0; c < m.Cfg.Cores; c++ {
		m.SpawnTask(fmt.Sprintf("t%d", c), c, 1, body)
	}
}

// Finish retires the task; every task must call it when its workload is
// done, or Run reports a deadlock.
func (t *Task) Finish() { t.st.Finish() }

// Now returns the task's local time: engine time plus unflushed compute.
func (t *Task) Now() sim.Time { return t.M.Eng.Now() + t.pending }

// Compute charges n cycles of local computation.
func (t *Task) Compute(n int) {
	if n > 0 {
		t.pending += sim.Time(n)
	}
}

// Instr charges n dynamic instructions on the 2-issue core (Table 1):
// ceil(n/2) cycles.
func (t *Task) Instr(n int) {
	if n > 0 {
		t.pending += sim.Time((n + 1) / 2)
	}
}

// flush elapses pending compute, then runs then — the continuation mirror
// of Thread.flush, consuming one sequence number when pending > 0 and none
// otherwise, exactly like the blocking form.
func (t *Task) flush(then func()) {
	if t.pending == 0 {
		then()
		return
	}
	d := t.pending
	t.pending = 0
	t.M.Eng.LocalSleepThen(t.Core, d, then)
}

// Sync flushes pending compute; then runs once Now() is architectural.
func (t *Task) Sync(then func()) { t.flush(then) }

// ---- Regular cached memory (all configurations) ----

// Read loads the 64-bit word at addr through the cache hierarchy.
//
// Read and RMW inline flush's pending-compute discipline instead of
// calling it: wrapping the issue in a flush closure costs an allocation
// even on the (dominant) pending==0 path, and measurably — Fig7 runs
// ~1.8x slower with the helper. The three copies must stay in lockstep;
// the thread/task equivalence suite pins the contract.
func (t *Task) Read(addr uint64, then func(uint64)) {
	t.st.SetReasonArg("mem read", addr)
	if t.pending > 0 {
		op := t.hwStep()
		op.kind, op.addr64, op.thenU = hwMemRead, addr, then
		d := t.pending
		t.pending = 0
		t.M.Eng.LocalSleepThen(t.Core, d, op.issueFn)
		return
	}
	t.M.Mem.ReadAsync(t.Core, addr, then)
}

// Write stores val to addr through the cache hierarchy. Like the other
// RMW-family operations (CAS, FetchAdd, Swap) it runs on the task's
// recycled step struct instead of capturing val and then in per-call
// closures — see steps.go.
func (t *Task) Write(addr uint64, val uint64, then func()) {
	op := t.rmwStep()
	op.kind, op.val, op.then0 = rmwWrite, val, then
	op.start(addr)
}

// RMW performs an atomic read-modify-write on cached memory; then receives
// the old value. Like Read, it inlines flush's discipline for speed.
func (t *Task) RMW(addr uint64, f func(uint64) (uint64, bool), then func(uint64)) {
	t.st.SetReasonArg("mem rmw", addr)
	if t.pending > 0 {
		d := t.pending
		t.pending = 0
		t.M.Eng.LocalSleepThen(t.Core, d, func() { t.M.Mem.RMWAsync(t.Core, addr, f, then) })
		return
	}
	t.M.Mem.RMWAsync(t.Core, addr, f, then)
}

// CAS is compare-and-swap on cached memory; then reports whether it
// swapped.
func (t *Task) CAS(addr, old, nv uint64, then func(bool)) {
	op := t.rmwStep()
	op.kind, op.old, op.val, op.thenB = rmwCAS, old, nv, then
	op.start(addr)
}

// FetchAdd atomically adds delta to the word at addr; then receives the
// old value.
func (t *Task) FetchAdd(addr, delta uint64, then func(uint64)) {
	op := t.rmwStep()
	op.kind, op.val, op.thenU = rmwFetchAdd, delta, then
	op.start(addr)
}

// Swap atomically exchanges the word at addr with val; then receives the
// old value.
func (t *Task) Swap(addr, val uint64, then func(uint64)) {
	op := t.rmwStep()
	op.kind, op.val, op.thenU = rmwSwap, val, then
	op.start(addr)
}

// SpinUntil spins on cached memory until cond holds (hardware-faithful:
// local spinning, re-fetch on invalidation); then receives the satisfying
// value.
func (t *Task) SpinUntil(addr uint64, cond func(uint64) bool, then func(uint64)) {
	t.st.SetReasonArg("spin", addr)
	op := t.hwStep()
	op.kind, op.addr64, op.cond, op.thenU = hwMemSpin, addr, cond, then
	op.start()
}

// ---- Broadcast Memory ISA (WiSync configurations) ----

func (t *Task) bm() {
	if t.M.BM == nil {
		panic("core: BM instruction on a configuration without Broadcast Memory")
	}
}

func (t *Task) must(err error) {
	if err != nil {
		// A protection or addressing fault kills the simulated program.
		panic(err)
	}
}

// txGuard mirrors Thread.txGuard for continuation form: when the task's
// transceiver has fail-stopped it records a fault, retires the task, and
// reports true — the caller must return without issuing the operation.
// Both faces check at the same execution points, so fault records are
// bit-identical across execution modes.
func (t *Task) txGuard(op string) bool {
	if t.M.Net != nil && t.M.Net.NodeFailStopped(t.Core) {
		t.M.recordFault(t.Core, t.PID, op)
		t.st.Finish()
		return true
	}
	return false
}

// BMLoad is a plain load from the local BM.
func (t *Task) BMLoad(addr uint32, then func(uint64)) {
	t.st.SetReasonArg("bm load", uint64(addr))
	t.bm()
	op := t.hwStep()
	op.kind, op.addr, op.thenU = hwBMLoad, addr, then
	op.start()
}

// BMStore broadcasts val to addr in every BM; then runs when the write
// commits (WCB set).
func (t *Task) BMStore(addr uint32, val uint64, then func()) {
	t.st.SetReasonArg("bm store", uint64(addr))
	t.bm()
	if t.txGuard("bm store") {
		return
	}
	op := t.hwStep()
	op.kind, op.addr, op.val, op.then0 = hwBMStore, addr, val, then
	op.start()
}

// BMRMW1 is a single hardware RMW attempt (no retry): then receives the
// value read and ok=false if atomicity failed (AFB set, nothing written).
func (t *Task) BMRMW1(addr uint32, f func(uint64) (uint64, bool), then func(old uint64, ok bool)) {
	t.st.SetReasonArg("bm rmw", uint64(addr))
	t.bm()
	t.flush(func() { t.must(t.M.BM.RMWAsync(t.Core, t.PID, addr, f, then)) })
}

// BMFetchAdd executes fetch&add with the Figure 4(a) retry protocol; then
// receives the value before the add. The retry loop runs on the task's
// recycled BM step (steps.go) instead of per-call attempt closures.
func (t *Task) BMFetchAdd(addr uint32, delta uint64, then func(uint64)) {
	op := t.bmStep()
	op.kind, op.addr, op.delta, op.thenU = bmAdd, addr, delta, then
	op.attempt()
}

// BMFetchInc is fetch&increment.
func (t *Task) BMFetchInc(addr uint32, then func(uint64)) { t.BMFetchAdd(addr, 1, then) }

// BMTestAndSet sets addr to 1; then receives the previous value, after
// retrying on atomicity failure.
func (t *Task) BMTestAndSet(addr uint32, then func(uint64)) {
	op := t.bmStep()
	op.kind, op.addr, op.thenU = bmTAS, addr, then
	op.attempt()
}

// BMCAS executes compare-and-swap with the Figure 4(b) protocol; then
// reports whether the swap was performed.
func (t *Task) BMCAS(addr uint32, old, nv uint64, then func(bool)) {
	op := t.bmStep()
	op.kind, op.addr, op.old, op.nv, op.thenB = bmCAS, addr, old, nv, then
	op.attempt()
}

// BMSpinUntil spins on the local BM replica until cond holds; then
// receives the satisfying value.
func (t *Task) BMSpinUntil(addr uint32, cond func(uint64) bool, then func(uint64)) {
	t.st.SetReasonArg("bm spin", uint64(addr))
	t.bm()
	op := t.hwStep()
	op.kind, op.addr, op.cond, op.thenU = hwBMSpin, addr, cond, then
	op.start()
}

// ---- Tone channel ISA (full WiSync only) ----

func (t *Task) toneHW() {
	if t.M.Tone == nil {
		panic("core: tone instruction on a configuration without the Tone channel")
	}
}

// ToneStore is tone_st: announce arrival at the tone barrier at addr. A
// fail-stopped transceiver cannot drive the Tone channel either: the task
// halts with a fault record, and the barrier it would have joined parks
// the survivors in a diagnosable deadlock.
func (t *Task) ToneStore(addr uint32, then func()) {
	t.st.SetReasonArg("tone store", uint64(addr))
	t.toneHW()
	if t.txGuard("tone store") {
		return
	}
	op := t.hwStep()
	op.kind, op.addr, op.then0 = hwToneStore, addr, then
	op.start()
}

// ToneWait spins with tone_ld until the barrier variable equals want.
func (t *Task) ToneWait(addr uint32, want uint64, then func()) {
	t.st.SetReasonArg("tone wait", uint64(addr))
	t.toneHW()
	if t.txGuard("tone wait") {
		return
	}
	op := t.hwStep()
	op.kind, op.addr, op.val, op.then0 = hwToneWait, addr, want, then
	op.start()
}
