package core

// This file holds the recycled continuation steps behind the hot Task
// operations. The straightforward continuation form of an operation like
// CAS captures its parameters in two or three short-lived closures (the
// read-modify function, the completion wrapper, and — when compute is
// pending — the flush continuation); at millions of operations per sweep
// those captures dominate the allocation profile. Each Task instead owns
// one reusable step struct per operation family, modeled on mem's recycled
// txn: parameters live in struct fields, the continuations are method
// values cached at construction, and issuing an operation is a handful of
// stores. A task performs one operation at a time (continuation
// discipline), so a single struct per family suffices; a completion
// continuation may immediately issue the next operation on the same struct
// because every field the finished operation needs is read before the user
// continuation runs.
//
// Reuse is reported through Engine.StepPoolHit/StepPoolMiss so `wisync-
// bench -v` can confirm the steady state allocates nothing.

// rmwKind selects which cached-memory operation an rmwOp performs.
type rmwKind uint8

const (
	rmwWrite rmwKind = iota
	rmwCAS
	rmwFetchAdd
	rmwSwap
)

// rmwOp is the recycled step behind Write, CAS, FetchAdd and Swap — the
// operations the generic RMW would otherwise serve with per-call closures.
// Exactly one of then0/thenB/thenU is set, matching kind.
type rmwOp struct {
	t    *Task
	kind rmwKind
	addr uint64
	val  uint64 // store/swap value, CAS new value, fetch&add delta
	old  uint64 // CAS expected value

	then0 func()
	thenB func(bool)
	thenU func(uint64)

	issueFn func()
	fFn     func(uint64) (uint64, bool)
	doneFn  func(uint64)
}

// rmwStep returns the task's recycled cached-memory step, allocating it on
// first use.
func (t *Task) rmwStep() *rmwOp {
	if t.rmw == nil {
		t.M.Eng.StepPoolMiss()
		op := &rmwOp{t: t}
		op.issueFn = op.issue
		op.fFn = op.f
		op.doneFn = op.done
		t.rmw = op
		return op
	}
	t.M.Eng.StepPoolHit()
	return t.rmw
}

// start issues the operation with RMW's pending-compute discipline (see
// Task.Read for why the flush is inlined): one SleepThen when compute is
// pending, a direct issue otherwise — the same sequence positions as the
// closure form it replaces.
func (op *rmwOp) start(addr uint64) {
	t := op.t
	t.st.SetReasonArg("mem rmw", addr)
	op.addr = addr
	if t.pending > 0 {
		d := t.pending
		t.pending = 0
		t.M.Eng.LocalSleepThen(t.Core, d, op.issueFn)
		return
	}
	op.issue()
}

func (op *rmwOp) issue() {
	t := op.t
	t.M.Mem.RMWAsync(t.Core, op.addr, op.fFn, op.doneFn)
}

// f is the read-modify function, dispatched on kind. It is pure and
// invoked at most once per operation, as System.RMW requires.
func (op *rmwOp) f(cur uint64) (uint64, bool) {
	switch op.kind {
	case rmwCAS:
		return op.val, cur == op.old
	case rmwFetchAdd:
		return cur + op.val, true
	}
	return op.val, true // write, swap
}

// done hands the observed value to the user continuation. The continuation
// field is cleared and read into a local first, so the continuation may
// immediately reuse the struct for its next operation.
func (op *rmwOp) done(got uint64) {
	switch op.kind {
	case rmwWrite:
		then := op.then0
		op.then0 = nil
		then()
	case rmwCAS:
		then := op.thenB
		op.thenB = nil
		then(got == op.old)
	default:
		then := op.thenU
		op.thenU = nil
		then(got)
	}
}

// hwKind selects which hardware-model operation an hwOp issues.
type hwKind uint8

const (
	hwBMLoad hwKind = iota
	hwBMStore
	hwBMSpin
	hwToneStore
	hwToneWait
	hwMemSpin
	hwMemRead
)

// hwOp is the recycled step behind the flush-wrapped hardware operations
// (BMLoad, BMStore, BMSpinUntil, ToneStore, ToneWait, SpinUntil): the
// "elapse pending compute, then issue" closure those methods used to build
// per call. The user continuations are handed straight to the hardware
// model at issue time (read into locals and cleared first), so the struct
// is free for the next operation the moment the continuation fires.
type hwOp struct {
	t      *Task
	kind   hwKind
	addr   uint32
	addr64 uint64 // cached-memory spin address
	val    uint64 // BM store value / tone want
	cond   func(uint64) bool
	then0  func()
	thenU  func(uint64)

	issueFn  func()
	onToneFn func(uint64)
}

// hwStep returns the task's recycled hardware-operation step, allocating
// it on first use.
func (t *Task) hwStep() *hwOp {
	if t.hw == nil {
		t.M.Eng.StepPoolMiss()
		op := &hwOp{t: t}
		op.issueFn = op.issue
		op.onToneFn = op.onTone
		t.hw = op
		return op
	}
	t.M.Eng.StepPoolHit()
	return t.hw
}

// start issues the operation with flush's pending-compute discipline: one
// SleepThen when compute is pending, a direct issue otherwise.
func (op *hwOp) start() {
	t := op.t
	if t.pending > 0 {
		d := t.pending
		t.pending = 0
		t.M.Eng.LocalSleepThen(t.Core, d, op.issueFn)
		return
	}
	op.issue()
}

func (op *hwOp) issue() {
	t := op.t
	switch op.kind {
	case hwBMLoad:
		then := op.thenU
		op.thenU = nil
		t.must(t.M.BM.LoadAsync(t.Core, t.PID, op.addr, then))
	case hwBMStore:
		then := op.then0
		op.then0 = nil
		t.must(t.M.BM.StoreAsync(t.Core, t.PID, op.addr, op.val, then))
	case hwBMSpin:
		cond, then := op.cond, op.thenU
		op.cond, op.thenU = nil, nil
		t.must(t.M.BM.SpinUntilAsync(t.Core, t.PID, op.addr, cond, then))
	case hwToneStore:
		then := op.then0
		op.then0 = nil
		t.must(t.M.Tone.ToneStoreAsync(t.Core, t.PID, op.addr, then))
	case hwToneWait:
		// then0 stays set until the toggle fires: the task is suspended
		// in the tone wait, so the struct cannot be reused meanwhile.
		t.must(t.M.Tone.WaitToggleAsync(t.Core, t.PID, op.addr, op.val, op.onToneFn))
	case hwMemSpin:
		cond, then := op.cond, op.thenU
		op.cond, op.thenU = nil, nil
		t.M.Mem.SpinUntilAsync(t.Core, op.addr64, cond, then)
	case hwMemRead:
		then := op.thenU
		op.thenU = nil
		t.M.Mem.ReadAsync(t.Core, op.addr64, then)
	}
}

// onTone adapts WaitToggleAsync's value-carrying completion to ToneWait's
// niladic continuation.
func (op *hwOp) onTone(uint64) {
	then := op.then0
	op.then0 = nil
	then()
}

// bmKind selects which Broadcast Memory retry protocol a bmRetryOp runs.
type bmKind uint8

const (
	bmAdd bmKind = iota
	bmTAS
	bmCAS
)

// bmRetryOp is the recycled step behind the Figure 4 BM retry protocols
// (BMFetchAdd, BMTestAndSet, BMCAS): a hardware RMW attempt repeated until
// the atomicity-failure bit stays clear, with the 2-instruction
// check-and-branch charge between attempts. Exactly one of thenU/thenB is
// set, matching kind.
type bmRetryOp struct {
	t     *Task
	kind  bmKind
	addr  uint32
	delta uint64 // fetch&add
	old   uint64 // CAS expected value
	nv    uint64 // CAS new value

	thenU func(uint64)
	thenB func(bool)

	issueFn func()
	fFn     func(uint64) (uint64, bool)
	doneFn  func(uint64, bool)
}

// bmStep returns the task's recycled BM retry step, allocating it on first
// use.
func (t *Task) bmStep() *bmRetryOp {
	if t.bmr == nil {
		t.M.Eng.StepPoolMiss()
		op := &bmRetryOp{t: t}
		op.issueFn = op.issue
		op.fFn = op.f
		op.doneFn = op.done
		t.bmr = op
	} else {
		t.M.Eng.StepPoolHit()
	}
	return t.bmr
}

// attempt runs one hardware RMW attempt: BMRMW1's reason/validation/flush
// discipline with the closures replaced by cached method values.
func (op *bmRetryOp) attempt() {
	t := op.t
	t.st.SetReasonArg("bm rmw", uint64(op.addr))
	t.bm()
	// A fail-stopped transceiver turns this retry loop into a livelock
	// (every attempt fails); halt with a fault record instead, mirroring
	// Thread.txGuard's position at the top of the blocking retry loops.
	if t.txGuard("bm rmw") {
		return
	}
	if t.pending > 0 {
		d := t.pending
		t.pending = 0
		t.M.Eng.LocalSleepThen(t.Core, d, op.issueFn)
		return
	}
	op.issue()
}

func (op *bmRetryOp) issue() {
	t := op.t
	t.must(t.M.BM.RMWAsync(t.Core, t.PID, op.addr, op.fFn, op.doneFn))
}

func (op *bmRetryOp) f(cur uint64) (uint64, bool) {
	switch op.kind {
	case bmAdd:
		return cur + op.delta, true
	case bmTAS:
		if cur != 0 {
			return cur, false // already set; read is enough
		}
		return 1, true
	}
	return op.nv, cur == op.old // bmCAS
}

func (op *bmRetryOp) done(old uint64, ok bool) {
	if !ok {
		// AFB set: retry (a couple of pipeline cycles to check the
		// register and branch back).
		op.t.Instr(2)
		op.attempt()
		return
	}
	switch op.kind {
	case bmCAS:
		then := op.thenB
		op.thenB = nil
		then(old == op.old)
	default:
		then := op.thenU
		op.thenU = nil
		then(old)
	}
}
