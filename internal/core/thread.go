package core

import (
	"math"

	"wisync/internal/sim"
)

// Thread is one software thread pinned to a core. Workload code runs in the
// thread's simulation process and interacts with the machine exclusively
// through Thread methods.
//
// Computation is charged lazily: Compute and Instr accumulate cycles into
// pending that are only slept when the thread next touches shared state
// (flush). An arbitrarily long compute phase thus collapses into a single
// Sleep — one event, not one per Compute call — without changing
// observable timing, because the sleep lands exactly where the next
// shared-state access serializes. The engine collapses further: that
// single Sleep takes sim's zero-handoff fast path whenever the thread's
// wake-up is the next event globally, so an uncontended compute/sync loop
// runs as plain function calls on one goroutine. Shared-state accesses
// must flush first (and do), since their outcome may depend on hardware
// state that other cores mutate while pending cycles elapse.
type Thread struct {
	M    *Machine
	Core int
	PID  uint16

	proc    *sim.Proc
	pending sim.Time
}

// Proc exposes the underlying simulation process.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Now returns the thread's local time: engine time plus unflushed compute.
func (t *Thread) Now() sim.Time { return t.M.Eng.Now() + t.pending }

// Compute charges n cycles of local computation.
func (t *Thread) Compute(n int) {
	if n > 0 {
		t.pending += sim.Time(n)
	}
}

// Instr charges n dynamic instructions on the 2-issue core (Table 1):
// ceil(n/2) cycles.
func (t *Thread) Instr(n int) {
	if n > 0 {
		t.pending += sim.Time((n + 1) / 2)
	}
}

// Sync flushes pending compute so that Now() is architectural.
func (t *Thread) Sync() { t.flush() }

func (t *Thread) flush() {
	if t.pending > 0 {
		d := t.pending
		t.pending = 0
		t.proc.Sleep(d)
	}
}

// ---- Regular cached memory (all configurations) ----

// Read loads the 64-bit word at addr through the cache hierarchy.
func (t *Thread) Read(addr uint64) uint64 {
	t.flush()
	return t.M.Mem.Read(t.proc, t.Core, addr)
}

// Write stores val to addr through the cache hierarchy.
func (t *Thread) Write(addr uint64, val uint64) {
	t.flush()
	t.M.Mem.Write(t.proc, t.Core, addr, val)
}

// RMW performs an atomic read-modify-write on cached memory; f returns the
// new value and whether to write. It returns the old value.
func (t *Thread) RMW(addr uint64, f func(uint64) (uint64, bool)) uint64 {
	t.flush()
	return t.M.Mem.RMW(t.proc, t.Core, addr, f)
}

// CAS is compare-and-swap on cached memory.
func (t *Thread) CAS(addr, old, nv uint64) bool {
	return t.RMW(addr, func(cur uint64) (uint64, bool) { return nv, cur == old }) == old
}

// FetchAdd atomically adds delta to the word at addr, returning the old
// value.
func (t *Thread) FetchAdd(addr, delta uint64) uint64 {
	return t.RMW(addr, func(cur uint64) (uint64, bool) { return cur + delta, true })
}

// Swap atomically exchanges the word at addr with val.
func (t *Thread) Swap(addr, val uint64) uint64 {
	return t.RMW(addr, func(uint64) (uint64, bool) { return val, true })
}

// SpinUntil spins on cached memory until cond holds (hardware-faithful:
// local spinning, re-fetch on invalidation).
func (t *Thread) SpinUntil(addr uint64, cond func(uint64) bool) uint64 {
	t.flush()
	return t.M.Mem.SpinUntil(t.proc, t.Core, addr, cond)
}

// ---- Broadcast Memory ISA (WiSync configurations) ----

func (t *Thread) bm() {
	if t.M.BM == nil {
		panic("core: BM instruction on a configuration without Broadcast Memory")
	}
}

func (t *Thread) must(err error) {
	if err != nil {
		// A protection or addressing fault kills the simulated program.
		panic(err)
	}
}

// txGuard halts the thread when its transceiver has fail-stopped: the
// operation named op can never complete (every broadcast from this node
// fails), so instead of spinning forever the thread records a fault and
// unwinds with the threadHalt sentinel, which Spawn's wrapper retires
// cleanly. The check reads only injector state at the current cycle, so
// thread and task mode halt at identical (time, sequence) positions.
func (t *Thread) txGuard(op string) {
	if t.M.Net != nil && t.M.Net.NodeFailStopped(t.Core) {
		t.M.recordFault(t.Core, t.PID, op)
		panic(threadHalt{})
	}
}

// BMLoad is a plain load from the local BM. Faults (PID mismatch,
// unallocated address) terminate the simulated program; use TryBMLoad for
// OS-style fault handling.
func (t *Thread) BMLoad(addr uint32) uint64 {
	v, err := t.TryBMLoad(addr)
	t.must(err)
	return v
}

// TryBMLoad is BMLoad returning faults as errors.
func (t *Thread) TryBMLoad(addr uint32) (uint64, error) {
	t.bm()
	t.flush()
	return t.M.BM.Load(t.proc, t.Core, t.PID, addr)
}

// BMStore broadcasts val to addr in every BM, blocking until the write
// commits (WCB set). On a fail-stopped transceiver the thread halts with a
// fault record instead of issuing a send that cannot commit.
func (t *Thread) BMStore(addr uint32, val uint64) {
	t.txGuard("bm store")
	t.must(t.TryBMStore(addr, val))
}

// TryBMStore is BMStore returning faults as errors.
func (t *Thread) TryBMStore(addr uint32, val uint64) error {
	t.bm()
	t.flush()
	return t.M.BM.Store(t.proc, t.Core, t.PID, addr, val)
}

// BMBulkLoad loads four consecutive BM words (Bulk load instruction).
func (t *Thread) BMBulkLoad(addr uint32) [4]uint64 {
	t.bm()
	t.flush()
	v, err := t.M.BM.BulkLoad(t.proc, t.Core, t.PID, addr)
	t.must(err)
	return v
}

// BMBulkStore broadcasts four words in one 15-cycle message (Bulk store).
func (t *Thread) BMBulkStore(addr uint32, vals [4]uint64) {
	t.txGuard("bm bulk store")
	t.bm()
	t.flush()
	t.must(t.M.BM.BulkStore(t.proc, t.Core, t.PID, addr, vals))
}

// BMRMW1 is a single hardware RMW attempt (no retry): it returns the value
// read and ok=false if atomicity failed (AFB set, nothing written).
func (t *Thread) BMRMW1(addr uint32, f func(uint64) (uint64, bool)) (uint64, bool) {
	t.bm()
	t.flush()
	old, ok, err := t.M.BM.RMW(t.proc, t.Core, t.PID, addr, f)
	t.must(err)
	return old, ok
}

// BMFetchAdd executes fetch&add with the Figure 4(a) retry protocol: the
// RMW instruction is re-executed until AFB stays clear. It returns the
// value before the add.
func (t *Thread) BMFetchAdd(addr uint32, delta uint64) uint64 {
	for {
		// A fail-stopped transceiver turns this retry loop into a livelock
		// (every attempt fails); halt with a fault record instead.
		t.txGuard("bm rmw")
		old, ok := t.BMRMW1(addr, func(cur uint64) (uint64, bool) { return cur + delta, true })
		if ok {
			return old
		}
		// AFB set: retry (a couple of pipeline cycles to check the
		// register and branch back).
		t.Instr(2)
	}
}

// BMFetchInc is fetch&increment.
func (t *Thread) BMFetchInc(addr uint32) uint64 { return t.BMFetchAdd(addr, 1) }

// BMFetchAddF64 is the floating-point fetch&add the paper proposes for
// scientific reductions (Section 4.3.5). The BM entry holds IEEE-754 bits;
// the addition is applied atomically at the commit of the broadcast. It
// returns the value before the add.
func (t *Thread) BMFetchAddF64(addr uint32, delta float64) float64 {
	for {
		t.txGuard("bm rmw")
		old, ok := t.BMRMW1(addr, func(cur uint64) (uint64, bool) {
			return math.Float64bits(math.Float64frombits(cur) + delta), true
		})
		if ok {
			return math.Float64frombits(old)
		}
		t.Instr(2)
	}
}

// BMTestAndSet sets addr to 1 and returns the previous value, retrying on
// atomicity failure.
func (t *Thread) BMTestAndSet(addr uint32) uint64 {
	for {
		t.txGuard("bm rmw")
		old, ok := t.BMRMW1(addr, func(cur uint64) (uint64, bool) {
			if cur != 0 {
				return cur, false // already set; read is enough
			}
			return 1, true
		})
		if ok {
			return old
		}
		t.Instr(2)
	}
}

// BMCAS executes compare-and-swap with the Figure 4(b) protocol: retried
// while AFB is set; a comparison failure with AFB clear is a legitimate
// CAS failure. It reports whether the swap was performed.
func (t *Thread) BMCAS(addr uint32, old, nv uint64) bool {
	for {
		t.txGuard("bm rmw")
		cur, ok := t.BMRMW1(addr, func(cur uint64) (uint64, bool) {
			return nv, cur == old
		})
		if ok {
			return cur == old
		}
		t.Instr(2)
	}
}

// BMSpinUntil spins on the local BM replica until cond holds. Spinning is
// free of network traffic; the core is released within a BM round trip of
// the commit that satisfies cond.
func (t *Thread) BMSpinUntil(addr uint32, cond func(uint64) bool) uint64 {
	t.bm()
	t.flush()
	v, err := t.M.BM.SpinUntil(t.proc, t.Core, t.PID, addr, cond)
	t.must(err)
	return v
}

// ---- Tone channel ISA (full WiSync only) ----

func (t *Thread) toneHW() {
	if t.M.Tone == nil {
		panic("core: tone instruction on a configuration without the Tone channel")
	}
}

// ToneStore is tone_st: announce arrival at the tone barrier at addr. A
// fail-stopped transceiver cannot drive the Tone channel either: the
// thread halts with a fault record, and the barrier it would have joined
// parks the survivors in a diagnosable deadlock.
func (t *Thread) ToneStore(addr uint32) {
	t.toneHW()
	t.txGuard("tone store")
	t.flush()
	t.must(t.M.Tone.ToneStore(t.proc, t.Core, t.PID, addr))
}

// ToneLoad is tone_ld: read the barrier variable from the local BM.
func (t *Thread) ToneLoad(addr uint32) uint64 {
	t.toneHW()
	t.flush()
	v, err := t.M.Tone.ToneLoad(t.proc, t.Core, t.PID, addr)
	t.must(err)
	return v
}

// ToneWait spins with tone_ld until the barrier variable equals want.
func (t *Thread) ToneWait(addr uint32, want uint64) {
	t.toneHW()
	t.txGuard("tone wait")
	t.flush()
	_, err := t.M.Tone.WaitToggle(t.proc, t.Core, t.PID, addr, want)
	t.must(err)
}

// AFB returns the thread's Atomicity Failure Bit.
func (t *Thread) AFB() bool {
	t.bm()
	return t.M.BM.AFB(t.Core)
}

// WCB returns the thread's Write Completion Bit.
func (t *Thread) WCB() bool {
	t.bm()
	return t.M.BM.WCB(t.Core)
}
