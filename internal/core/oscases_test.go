package core

import (
	"testing"

	"wisync/internal/config"
)

// TestPreemptedThreadSeesFreshBM models Section 5.2: a thread is preempted
// (does nothing for a long stretch); remote updates keep flowing into its
// local BM replica, and on "rescheduling" it observes the final state
// immediately.
func TestPreemptedThreadSeesFreshBM(t *testing.T) {
	m := NewMachine(config.New(config.WiSync, 8))
	addr, _ := m.BM.AllocBare(1, false)
	m.Spawn("preempted", 0, 1, func(th *Thread) {
		th.Proc().Sleep(50000) // preempted: no BM activity at all
		if v := th.BMLoad(addr); v != 7 {
			t.Errorf("rescheduled thread sees %d, want 7", v)
		}
	})
	m.Spawn("writer", 3, 1, func(th *Thread) {
		for i := uint64(1); i <= 7; i++ {
			th.BMStore(addr, i)
			th.Compute(100)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestThreadMigrationOnDataChannel models Section 5.2: because all BM
// replicas are identical, a thread can resume on a different core and
// observe exactly the same broadcast state (Data channel only; tone
// participation is pinned).
func TestThreadMigrationOnDataChannel(t *testing.T) {
	m := NewMachine(config.New(config.WiSyncNoT, 8))
	addr, _ := m.BM.AllocBare(1, false)
	var before, after uint64
	m.Spawn("phase1-on-core2", 2, 1, func(th *Thread) {
		th.BMFetchAdd(addr, 5)
		before = th.BMLoad(addr)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// "Migrate": the same logical thread continues on core 6.
	m.Spawn("phase2-on-core6", 6, 1, func(th *Thread) {
		after = th.BMLoad(addr)
		th.BMFetchAdd(addr, 1)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 5 || after != 5 {
		t.Errorf("before/after migration = %d/%d, want 5/5", before, after)
	}
	if m.BM.Peek(addr) != 6 {
		t.Errorf("final = %d, want 6", m.BM.Peek(addr))
	}
}

// TestOSAbortsRMWAcrossContextSwitch models the Section 4.2.1 rule: an
// exception between a RMW and its AFB check aborts the wireless transfer
// and sets AFB, and the software retry then completes correctly.
func TestOSAbortsRMWAcrossContextSwitch(t *testing.T) {
	cfg := config.New(config.WiSync, 4)
	m := NewMachine(cfg)
	m.BM.SetRMWEarlyRead(true)
	addr, _ := m.BM.AllocBare(1, false)
	m.Spawn("hog", 0, 1, func(th *Thread) {
		// Keep the channel busy so the victim's RMW stays pending.
		for i := 0; i < 3; i++ {
			th.BMStore(addr, uint64(i))
		}
	})
	m.Spawn("victim", 1, 1, func(th *Thread) {
		th.Proc().Sleep(1)
		// Full software protocol: retry until atomic.
		th.BMFetchAdd(addr, 100)
	})
	m.Spawn("os", 2, 1, func(th *Thread) {
		th.Proc().Sleep(4)
		m.BM.AbortPendingRMW(1) // context switch hits the victim
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The last hog store may land before or after the victim's retry, but
	// the +100 must be applied exactly once on top of some hog value.
	got := m.BM.Peek(addr)
	if got != 102 && got != 100 && got != 101 {
		t.Errorf("final = %d, want hog value + 100", got)
	}
	if got < 100 {
		t.Errorf("victim's fetch&add lost: %d", got)
	}
}

// TestMultiprogramProtectionAndSharing: two PIDs share the physical BM;
// each accesses only its own entries; cross-access faults (Figure 5).
func TestMultiprogramProtectionAndSharing(t *testing.T) {
	m := NewMachine(config.New(config.WiSync, 8))
	a1, _ := m.BM.AllocBare(1, false)
	a2, _ := m.BM.AllocBare(2, false)
	faults := 0
	m.Spawn("p1", 0, 1, func(th *Thread) {
		th.BMStore(a1, 11)
		if _, err := th.TryBMLoad(a2); err != nil {
			faults++
		}
	})
	m.Spawn("p2", 4, 2, func(th *Thread) {
		th.BMStore(a2, 22)
		if _, err := th.TryBMLoad(a1); err != nil {
			faults++
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if faults != 2 {
		t.Errorf("faults = %d, want 2", faults)
	}
	if m.BM.Peek(a1) != 11 || m.BM.Peek(a2) != 22 {
		t.Errorf("values = %d, %d", m.BM.Peek(a1), m.BM.Peek(a2))
	}
}
