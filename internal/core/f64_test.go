package core

import (
	"math"
	"testing"

	"wisync/internal/config"
)

func TestBMFetchAddF64(t *testing.T) {
	m := NewMachine(config.New(config.WiSync, 16))
	addr, _ := m.BM.AllocBare(1, false)
	m.BM.Poke(addr, math.Float64bits(1.5))
	m.SpawnAll(func(th *Thread) {
		th.BMFetchAddF64(addr, 0.25)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(m.BM.Peek(addr))
	want := 1.5 + 16*0.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestBMFetchAddF64ReturnsPrior(t *testing.T) {
	m := NewMachine(config.New(config.WiSync, 4))
	addr, _ := m.BM.AllocBare(1, false)
	m.Spawn("t", 0, 1, func(th *Thread) {
		if v := th.BMFetchAddF64(addr, 2.5); v != 0 {
			t.Errorf("first fetch&addF = %v, want 0", v)
		}
		if v := th.BMFetchAddF64(addr, 1.0); v != 2.5 {
			t.Errorf("second fetch&addF = %v, want 2.5", v)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
