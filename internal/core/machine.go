// Package core assembles the WiSync manycore — the paper's primary
// contribution — and exposes the programming interface that workloads run
// against.
//
// A Machine instantiates one of the four Table 2 configurations: the wired
// substrate (mesh + MOESI hierarchy) is always present; WiSync
// configurations add the wireless Data channel, the replicated Broadcast
// Memory, and (for the full design) the Tone channel controller. Workloads
// run as Threads, one per core, using plain cached memory operations and,
// on WiSync machines, the BM instruction set of Section 3.2: Load, Store,
// Bulk transfers, Test&Set, Fetch&Inc, Fetch&Add, CAS (with the WCB/AFB
// retry protocol of Figure 4), and the tone_st/tone_ld pair.
package core

import (
	"fmt"

	"wisync/internal/bmem"
	"wisync/internal/config"
	"wisync/internal/mem"
	"wisync/internal/noc"
	"wisync/internal/sim"
	"wisync/internal/tone"
	"wisync/internal/wireless"
)

// Machine is one simulated manycore chip.
type Machine struct {
	Cfg  config.Config
	Eng  *sim.Engine
	Mesh *noc.Mesh
	Mem  *mem.System
	// Net, BM and Tone are nil on configurations without the respective
	// hardware (Table 2).
	Net  *wireless.Network
	BM   *bmem.BM
	Tone *tone.Controller

	addrCursor uint64
	threads    []*Thread
	// faults collects the per-core fault records of threads halted by a
	// fail-stopped transceiver (fault.go).
	faults []Fault
}

// NewMachine builds a machine for cfg. It panics on invalid configurations
// (these are programming errors in the harness, not runtime conditions).
// Long-running callers that receive configurations from the outside world
// use New, the error-returning variant, instead.
func NewMachine(cfg config.Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// New builds a machine for cfg, rejecting invalid configurations — and a
// shard reconfiguration the engine cannot honor — with an error rather
// than a panic, so a bad job config cannot crash a serving process.
func New(cfg config.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	if err := eng.SetShards(cfg.Shards); err != nil {
		return nil, err
	}
	mesh := noc.New(cfg.Cores, cfg.HopLatency)
	mp := mem.Params{
		Cores:         cfg.Cores,
		L1RT:          cfg.L1RT,
		L2RT:          cfg.L2RT,
		MemRT:         cfg.MemRT,
		MemCtrlOcc:    cfg.MemCtrlOcc,
		L1Sets:        cfg.L1Sets,
		L1Ways:        cfg.L1Ways,
		TreeBroadcast: cfg.Kind.TreeBroadcast(),
	}
	m := &Machine{
		Cfg:  cfg,
		Eng:  eng,
		Mesh: mesh,
		Mem:  mem.New(eng, mesh, mp),
		// Reserve low addresses; workload variables start at 1 MB.
		addrCursor: 1 << 20,
	}
	if cfg.Kind.HasBM() {
		m.Net = wireless.New(eng, cfg.Cores, cfg.Wireless)
		bp := bmem.DefaultParams()
		bp.RT = cfg.BMRT
		bp.Entries = cfg.BMEntries
		m.BM = bmem.New(eng, m.Net, cfg.Cores, bp)
	}
	if cfg.Kind.HasTone() {
		m.Tone = tone.New(eng, m.BM, m.Net, cfg.Tone)
	}
	return m, nil
}

// AllocLine reserves one fresh cache line of regular memory and returns the
// address of its first word. Separate calls never share a line, avoiding
// accidental false sharing between synchronization variables.
func (m *Machine) AllocLine() uint64 {
	a := m.addrCursor
	m.addrCursor += mem.LineBytes
	return a
}

// AllocArray reserves a contiguous array of n 64-bit words and returns its
// base address.
func (m *Machine) AllocArray(n int) uint64 {
	a := m.addrCursor
	bytes := uint64(n) * 8
	lines := (bytes + mem.LineBytes - 1) / mem.LineBytes
	m.addrCursor += lines * mem.LineBytes
	return a
}

// Spawn starts body as a thread pinned to the given core with the given
// PID. Threads started before Run begin at cycle 0.
func (m *Machine) Spawn(name string, core int, pid uint16, body func(*Thread)) *Thread {
	if core < 0 || core >= m.Cfg.Cores {
		panic(fmt.Sprintf("core: spawn on core %d of %d", core, m.Cfg.Cores))
	}
	t := &Thread{M: m, Core: core, PID: pid}
	t.proc = m.Eng.Go(name, func(p *sim.Proc) {
		t.proc = p
		// A fail-stop guard unwinds the thread with the threadHalt
		// sentinel; recovering it here retires the process cleanly (the
		// fault record was already appended). Any other panic — a
		// protection fault, a workload bug — propagates to the engine.
		defer func() {
			if r := recover(); r != nil {
				if _, halt := r.(threadHalt); !halt {
					panic(r)
				}
			}
		}()
		body(t)
	})
	m.threads = append(m.threads, t)
	return t
}

// SpawnAll starts one thread per core (cores 0..n-1, PID 1), the common
// kernel pattern. body receives the thread; thread index == core index.
func (m *Machine) SpawnAll(body func(*Thread)) {
	for c := 0; c < m.Cfg.Cores; c++ {
		c := c
		m.Spawn(fmt.Sprintf("t%d", c), c, 1, body)
	}
}

// Run executes the simulation to completion. When the configuration sets
// a cycle budget, a progress watchdog, or an abort hook, the guarded loop
// (fault.go) runs instead: same event order, but hangs become structured
// BudgetError/LivelockError/ErrAborted results.
func (m *Machine) Run() error {
	if m.guarded() {
		return m.runGuarded()
	}
	return m.Eng.Run()
}

// RunUntil executes the simulation up to cycle t and kills remaining
// threads (used by open-ended throughput kernels). Like Run, it switches
// to the guarded loop when the configuration asks for budget, watchdog,
// or abort enforcement.
func (m *Machine) RunUntil(t sim.Time) error {
	if m.guarded() {
		return m.runGuardedUntil(t)
	}
	if err := m.Eng.RunUntil(t); err != nil {
		return err
	}
	m.Eng.Shutdown()
	return nil
}

// Now returns the current cycle.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// DataChannelUtilization returns the fraction of cycles the wireless Data
// channel has been busy so far (0 on wired configurations).
func (m *Machine) DataChannelUtilization() float64 {
	if m.Net == nil {
		return 0
	}
	return m.Net.Stats.Utilization(m.Eng.Now())
}
