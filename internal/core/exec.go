package core

import (
	"encoding/json"
	"fmt"
)

// Exec selects the workload-thread execution mode of a kernel or
// application run. Both modes produce bit-identical simulated results
// (pinned by the equivalence suites in packages kernels and apps and the
// golden-conformance suites in package harness); they differ only in
// simulator wall-clock cost.
type Exec int

const (
	// ExecTask runs workload threads in continuation form (core.Task):
	// the whole sweep point executes on the engine goroutine with zero
	// process switches. This is the default — and the fast path.
	ExecTask Exec = iota
	// ExecThread runs workload threads as blocking goroutines
	// (core.Thread), one Go-scheduler park/unpark per forced suspension.
	// Kept as the readable reference implementation and the equivalence
	// baseline.
	ExecThread
)

func (x Exec) String() string {
	switch x {
	case ExecTask:
		return "task"
	case ExecThread:
		return "thread"
	}
	return "exec?"
}

// ParseExec resolves an -exec flag value or a sweep-job field.
func ParseExec(s string) (Exec, bool) {
	switch s {
	case "task":
		return ExecTask, true
	case "thread":
		return ExecThread, true
	}
	return 0, false
}

// MarshalJSON renders the mode as its flag name.
func (x Exec) MarshalJSON() ([]byte, error) {
	if x != ExecTask && x != ExecThread {
		return nil, fmt.Errorf("core: cannot marshal invalid exec mode %d", int(x))
	}
	return json.Marshal(x.String())
}

// UnmarshalJSON accepts a mode name as ParseExec does.
func (x *Exec) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: exec must be a name string: %w", err)
	}
	v, ok := ParseExec(s)
	if !ok {
		return fmt.Errorf("core: unknown exec mode %q (task or thread)", s)
	}
	*x = v
	return nil
}
