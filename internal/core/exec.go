package core

// Exec selects the workload-thread execution mode of a kernel or
// application run. Both modes produce bit-identical simulated results
// (pinned by the equivalence suites in packages kernels and apps and the
// golden-conformance suites in package harness); they differ only in
// simulator wall-clock cost.
type Exec int

const (
	// ExecTask runs workload threads in continuation form (core.Task):
	// the whole sweep point executes on the engine goroutine with zero
	// process switches. This is the default — and the fast path.
	ExecTask Exec = iota
	// ExecThread runs workload threads as blocking goroutines
	// (core.Thread), one Go-scheduler park/unpark per forced suspension.
	// Kept as the readable reference implementation and the equivalence
	// baseline.
	ExecThread
)

func (x Exec) String() string {
	switch x {
	case ExecTask:
		return "task"
	case ExecThread:
		return "thread"
	}
	return "exec?"
}
