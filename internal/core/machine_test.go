package core

import (
	"testing"

	"wisync/internal/config"
)

// TestNewRejectsInvalidConfig pins the error-returning construction path
// the sweep service uses: a malformed configuration is an error from New,
// while NewMachine keeps its panic contract for static harness code.
func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(config.New(config.WiSync, 64)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := config.New(config.WiSync, 64)
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted a zero-core config")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMachine did not panic on an invalid config")
		}
	}()
	NewMachine(bad)
}

// TestNewValidatesShardRange pins that a shard request the engine cannot
// honor surfaces as an error, not a panic (the sim.SetShards contract
// observed from machine construction).
func TestNewValidatesShardRange(t *testing.T) {
	bad := config.New(config.WiSync, 64).WithShards(65)
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted 65 shards")
	}
}
