package sweepcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(d string, seed uint64) Key { return Key{Digest: d, Seed: seed} }

func TestDoHitMissAndSeedSiblings(t *testing.T) {
	c := New(8)
	var computes atomic.Int32
	compute := func(row string) func() (string, error) {
		return func() (string, error) { computes.Add(1); return row, nil }
	}
	row, cached, err := c.Do(key("a", 1), compute("row-a1"))
	if err != nil || cached || row != "row-a1" {
		t.Fatalf("first Do: row=%q cached=%v err=%v", row, cached, err)
	}
	row, cached, err = c.Do(key("a", 1), compute("never"))
	if err != nil || !cached || row != "row-a1" {
		t.Fatalf("second Do: row=%q cached=%v err=%v", row, cached, err)
	}
	// Same digest, different seed is a distinct point.
	if row, cached, _ = c.Do(key("a", 2), compute("row-a2")); cached || row != "row-a2" {
		t.Fatalf("seed sibling served from wrong entry: row=%q cached=%v", row, cached)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("computed %d times, want 2", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 2 || s.Errors != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	ok := func(row string) func() (string, error) {
		return func() (string, error) { return row, nil }
	}
	c.Do(key("a", 1), ok("A"))
	c.Do(key("b", 1), ok("B"))
	// Touch A so B is the LRU victim when C arrives.
	if _, cached, _ := c.Do(key("a", 1), ok("never")); !cached {
		t.Fatal("A fell out of a non-full cache")
	}
	c.Do(key("c", 1), ok("C"))
	if _, found := c.Get(key("b", 1)); found {
		t.Fatal("LRU victim B survived eviction")
	}
	if _, found := c.Get(key("a", 1)); !found {
		t.Fatal("recently-used A was evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Capacity != 2 {
		t.Fatalf("stats %+v", s)
	}
}

// TestSingleflight pins that concurrent Do calls for one key run the
// computation once: one caller computes, the rest join in-flight and are
// reported as cached.
func TestSingleflight(t *testing.T) {
	c := New(8)
	var computes atomic.Int32
	release := make(chan struct{})
	k := key("hot", 1)
	// First caller blocks inside compute until released.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		c.Do(k, func() (string, error) {
			computes.Add(1)
			<-release
			return "hot-row", nil
		})
	}()
	// Wait until the computation is registered in-flight.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	const waiters = 16
	var wg sync.WaitGroup
	rows := make([]string, waiters)
	cachedFlags := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], cachedFlags[i], _ = c.Do(k, func() (string, error) {
				computes.Add(1)
				return "should-not-run", nil
			})
		}(i)
	}
	// Let every waiter either join in-flight or (late arrivals) hit the
	// completed entry; both count as cached.
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-firstDone
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", got)
	}
	for i := 0; i < waiters; i++ {
		if rows[i] != "hot-row" || !cachedFlags[i] {
			t.Fatalf("waiter %d: row=%q cached=%v", i, rows[i], cachedFlags[i])
		}
	}
	s := c.Stats()
	if s.InflightWaits+s.Hits != waiters || s.Misses != 1 {
		t.Fatalf("stats %+v: want %d waits+hits, 1 miss", s, waiters)
	}
}

func TestErrorsNeverCached(t *testing.T) {
	c := New(8)
	k := key("flaky", 1)
	boom := errors.New("boom")
	attempts := 0
	compute := func() (string, error) {
		attempts++
		if attempts < 3 {
			return "", boom
		}
		return "finally", nil
	}
	for i := 0; i < 2; i++ {
		if _, cached, err := c.Do(k, compute); !errors.Is(err, boom) || cached {
			t.Fatalf("attempt %d: cached=%v err=%v", i, cached, err)
		}
	}
	row, cached, err := c.Do(k, compute)
	if err != nil || cached || row != "finally" {
		t.Fatalf("third attempt: row=%q cached=%v err=%v", row, cached, err)
	}
	if _, cached, _ := c.Do(k, compute); !cached {
		t.Fatal("successful result was not cached")
	}
	s := c.Stats()
	if s.Errors != 2 || s.Misses != 3 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestComputePanicBecomesError(t *testing.T) {
	c := New(8)
	_, cached, err := c.Do(key("p", 1), func() (string, error) { panic("kaboom") })
	if err == nil || cached {
		t.Fatalf("panic not converted: cached=%v err=%v", cached, err)
	}
	// The key is not poisoned: a later compute succeeds.
	row, _, err := c.Do(key("p", 1), func() (string, error) { return "fine", nil })
	if err != nil || row != "fine" {
		t.Fatalf("key poisoned after panic: row=%q err=%v", row, err)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines across
// overlapping keys; run under -race this pins the locking discipline.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("d%d", i%24), uint64(g%2))
				want := fmt.Sprintf("row-%d-%d", i%24, g%2)
				row, _, err := c.Do(k, func() (string, error) { return want, nil })
				if err != nil || row != want {
					t.Errorf("Do(%v): row=%q err=%v", k, row, err)
					return
				}
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries > s.Capacity {
		t.Fatalf("occupancy beyond capacity: %+v", s)
	}
}
