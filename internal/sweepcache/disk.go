// Durable disk tier.
//
// The memory LRU evaporates with the process; the disk tier makes
// completed points survive a crash or restart. Rows are stored as
// content-addressed files — one per (Digest, seed) key — whose first line
// embeds a SHA-256 self-checksum of the payload, so a torn write, a
// bit-flip, or a truncated file is detected on read, deleted, and
// recomputed; a corrupt entry is never served. Writes go through a
// temp-file + rename so a crash mid-store leaves either the old entry or
// none, never a half-written one the next process would trust.
//
// The disk tier is deliberately unbounded (the LRU bound applies to the
// memory tier only): entries are small single-line rows, and an operator
// who needs to reclaim space can delete any subset of the directory —
// every file is independently verifiable and independently expendable.
package sweepcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// diskMagic is the entry header prefix; bumping the version invalidates
// (and therefore recomputes) every stored entry.
const diskMagic = "wisync-sweepcache/1"

// diskTier stores rows as self-checksummed files under one directory.
type diskTier struct {
	dir string
}

// newDiskTier creates dir if needed.
func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepcache: creating cache dir: %w", err)
	}
	return &diskTier{dir: dir}, nil
}

// fileName renders a key as its on-disk name: the digest (hex in practice,
// hex-escaped defensively otherwise) plus the seed. parseFileName is its
// inverse.
func fileName(key Key) string {
	d := key.Digest
	if !isSafeName(d) {
		d = "x" + hex.EncodeToString([]byte(d))
	}
	return fmt.Sprintf("%s-s%d.row", d, key.Seed)
}

func parseFileName(name string) (Key, bool) {
	base, ok := strings.CutSuffix(name, ".row")
	if !ok {
		return Key{}, false
	}
	i := strings.LastIndex(base, "-s")
	if i < 0 {
		return Key{}, false
	}
	seed, err := strconv.ParseUint(base[i+2:], 10, 64)
	if err != nil {
		return Key{}, false
	}
	d := base[:i]
	if strings.HasPrefix(d, "x") {
		if raw, err := hex.DecodeString(d[1:]); err == nil {
			d = string(raw)
		} else {
			return Key{}, false
		}
	}
	return Key{Digest: d, Seed: seed}, true
}

func isSafeName(s string) bool {
	if s == "" || strings.HasPrefix(s, "x") {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// encodeEntry renders the file body: a header line carrying the payload
// checksum, then the payload bytes.
func encodeEntry(row string) []byte {
	sum := sha256.Sum256([]byte(row))
	return []byte(fmt.Sprintf("%s %s\n%s", diskMagic, hex.EncodeToString(sum[:]), row))
}

// decodeEntry verifies the self-checksum and returns the payload; any
// mismatch — wrong magic, short file, checksum drift — reports corruption.
func decodeEntry(b []byte) (string, error) {
	head, payload, ok := strings.Cut(string(b), "\n")
	if !ok {
		return "", fmt.Errorf("sweepcache: entry missing header line")
	}
	magic, sumHex, ok := strings.Cut(head, " ")
	if !ok || magic != diskMagic {
		return "", fmt.Errorf("sweepcache: bad entry header %q", head)
	}
	want, err := hex.DecodeString(sumHex)
	if err != nil || len(want) != sha256.Size {
		return "", fmt.Errorf("sweepcache: malformed entry checksum %q", sumHex)
	}
	if sum := sha256.Sum256([]byte(payload)); string(sum[:]) != string(want) {
		return "", fmt.Errorf("sweepcache: entry checksum mismatch")
	}
	return payload, nil
}

// load reads and verifies one entry. ok reports a served row; corrupt
// reports a damaged entry that was deleted (the caller recomputes).
func (d *diskTier) load(key Key) (row string, ok, corrupt bool) {
	path := filepath.Join(d.dir, fileName(key))
	b, err := os.ReadFile(path)
	if err != nil {
		return "", false, false
	}
	row, derr := decodeEntry(b)
	if derr != nil {
		// Detected corruption: remove the entry so it is recomputed and
		// rewritten, never served.
		_ = os.Remove(path)
		return "", false, true
	}
	return row, true, false
}

// store durably writes one entry: temp file, fsync, atomic rename. A
// failure leaves no partial entry behind.
func (d *diskTier) store(key Key, row string) error {
	path := filepath.Join(d.dir, fileName(key))
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeEntry(row)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// preload walks the directory, verifies every entry, deletes corrupt
// ones, and hands verified rows to insert (which applies the memory LRU
// bound). Stale temp files from a crashed writer are swept here too.
func (d *diskTier) preload(insert func(Key, string)) (loaded, corrupt int) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), "tmp-") {
			_ = os.Remove(filepath.Join(d.dir, e.Name()))
			continue
		}
		key, ok := parseFileName(e.Name())
		if !ok {
			continue
		}
		row, ok, bad := d.load(key)
		if bad {
			corrupt++
			continue
		}
		if ok {
			insert(key, row)
			loaded++
		}
	}
	return loaded, corrupt
}
