package sweepcache_test

import (
	"fmt"

	"wisync/internal/sweepcache"
)

// ExampleCache_Do memoizes a deterministic computation by content address:
// the first call computes, the repeat is served from the store, and both
// return the same row. In the sweep service the key is
// (harness.PointSpec.Digest, seed) and the compute function is
// PointSpec.Run.
func ExampleCache_Do() {
	cache := sweepcache.New(16)
	key := sweepcache.Key{Digest: "b0a7…", Seed: 1}
	computes := 0
	compute := func() (string, error) {
		computes++
		return "tightloop/WiSync/64c/s1\tcycles=...", nil
	}

	row, cached, _ := cache.Do(key, compute)
	fmt.Println(cached, computes, row)
	row, cached, _ = cache.Do(key, compute)
	fmt.Println(cached, computes, row)
	// Output:
	// false 1 tightloop/WiSync/64c/s1	cycles=...
	// true 1 tightloop/WiSync/64c/s1	cycles=...
}
