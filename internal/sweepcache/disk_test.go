package sweepcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func diskCache(t *testing.T, capacity int, dir string) *Cache {
	t.Helper()
	c, err := NewDisk(capacity, dir)
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	return c
}

func mustDo(t *testing.T, c *Cache, key Key, row string) (string, bool) {
	t.Helper()
	got, cached, err := c.Do(key, func() (string, error) { return row, nil })
	if err != nil {
		t.Fatalf("Do(%v): %v", key, err)
	}
	return got, cached
}

// entryPath locates the stored file for a key, via the same naming the
// tier uses.
func entryPath(dir string, key Key) string {
	return filepath.Join(dir, fileName(key))
}

// TestDiskFileNameRoundTrip pins that every digest — the hex digests
// produced in practice and hostile strings that could escape the cache
// directory — round-trips through the on-disk name unchanged.
func TestDiskFileNameRoundTrip(t *testing.T) {
	for _, k := range []Key{
		{Digest: "a3f9", Seed: 0},
		{Digest: "deadbeefDEADBEEF00", Seed: 18446744073709551615},
		{Digest: "../../../etc/passwd", Seed: 7},
		{Digest: "with-s42-infix", Seed: 42},
		{Digest: "xalready-prefixed", Seed: 1},
		{Digest: "", Seed: 3},
	} {
		name := fileName(k)
		if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
			t.Fatalf("fileName(%+v) = %q escapes the cache dir", k, name)
		}
		got, ok := parseFileName(name)
		if !ok || got != k {
			t.Fatalf("parseFileName(fileName(%+v)) = %+v, %v", k, got, ok)
		}
	}
	if _, ok := parseFileName("garbage"); ok {
		t.Fatal("parseFileName accepted a non-entry name")
	}
}

// TestDiskPersistAndWarmRestart pins hit parity across a restart: rows
// computed by one cache instance are served as hits — byte-identical,
// compute never invoked — by a fresh instance over the same directory.
func TestDiskPersistAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, 8, dir)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = Key{Digest: fmt.Sprintf("d%d", i), Seed: uint64(i)}
		mustDo(t, c, keys[i], fmt.Sprintf("row-%d", i))
	}
	if s := c.Stats(); s.DiskWrites != 5 || s.DiskWriteErrors != 0 {
		t.Fatalf("writes: %+v", s)
	}

	// "Restart": a new cache over the same directory.
	c2 := diskCache(t, 8, dir)
	if s := c2.Stats(); s.Preloaded != 5 || s.CorruptEntries != 0 || s.Entries != 5 {
		t.Fatalf("preload: %+v", s)
	}
	for i, k := range keys {
		row, _, err := c2.Do(k, func() (string, error) {
			return "", fmt.Errorf("warm restart recomputed %v", k)
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("row-%d", i); row != want {
			t.Fatalf("warm row for %v = %q, want %q", k, row, want)
		}
	}
	// All five were memory hits off the preloaded index — full parity with
	// the pre-restart cache.
	if s := c2.Stats(); s.Hits != 5 || s.Misses != 0 {
		t.Fatalf("warm stats: %+v", s)
	}
}

// TestDiskCorruptionBitFlip pins the self-checksum: a single flipped
// payload bit is detected on read, the entry deleted, the row recomputed
// and re-stored, and the corruption counted. The damaged row is never
// served.
func TestDiskCorruptionBitFlip(t *testing.T) {
	dir := t.TempDir()
	key := Key{Digest: "abc", Seed: 1}
	c := diskCache(t, 4, dir)
	mustDo(t, c, key, "good-row")

	path := entryPath(dir, key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh instance must not trust the damaged entry at preload...
	c2 := diskCache(t, 4, dir)
	if s := c2.Stats(); s.Preloaded != 0 || s.CorruptEntries != 1 || s.Entries != 0 {
		t.Fatalf("preload over corrupt entry: %+v", s)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	// ...and the next request recomputes and re-stores it durably.
	row, cached := mustDo(t, c2, key, "good-row")
	if row != "good-row" || cached {
		t.Fatalf("recompute after corruption: row=%q cached=%v", row, cached)
	}
	if s := c2.Stats(); s.DiskWrites != 1 {
		t.Fatalf("recomputed row not re-stored: %+v", s)
	}
	if b2, err := os.ReadFile(path); err != nil || string(b2) != string(encodeEntry("good-row")) {
		t.Fatalf("re-stored entry wrong: %q, %v", b2, err)
	}
}

// TestDiskCorruptionTruncate pins detection at read time (not just
// preload): an entry truncated after the cache started — and already
// evicted from memory — is caught by the checksum during Do, deleted, and
// recomputed rather than served short.
func TestDiskCorruptionTruncate(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, 1, dir)
	key := Key{Digest: "victim", Seed: 9}
	mustDo(t, c, key, "full-row-payload")
	// Evict the victim from the memory tier so the next Do reads disk.
	mustDo(t, c, Key{Digest: "filler", Seed: 0}, "filler")

	path := entryPath(dir, key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{len(b) - 3, len(b) / 2, 0} {
		if err := os.WriteFile(path, b[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		before := c.Stats().CorruptEntries
		row, cached := mustDo(t, c, key, "full-row-payload")
		if row != "full-row-payload" || cached {
			t.Fatalf("truncate to %d bytes: row=%q cached=%v", n, row, cached)
		}
		if after := c.Stats().CorruptEntries; after != before+1 {
			t.Fatalf("truncate to %d bytes: CorruptEntries %d -> %d", n, before, after)
		}
		// Evict again so the next iteration reads disk again.
		mustDo(t, c, Key{Digest: "filler", Seed: 0}, "filler")
	}
}

// TestDiskHitAfterEviction pins the tier order: a row evicted from the
// bounded memory tier is served from disk (DiskHits, cached true, compute
// not invoked) and reinstated in memory.
func TestDiskHitAfterEviction(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, 1, dir)
	key := Key{Digest: "aa", Seed: 1}
	mustDo(t, c, key, "row-a")
	mustDo(t, c, Key{Digest: "bb", Seed: 2}, "row-b") // evicts aa from memory

	row, _, err := c.Do(key, func() (string, error) {
		return "", fmt.Errorf("disk-resident row recomputed")
	})
	if err != nil || row != "row-a" {
		t.Fatalf("disk hit: row=%q err=%v", row, err)
	}
	s := c.Stats()
	if s.DiskHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// Reinstated in the memory tier: a plain Get now sees it.
	if row, ok := c.Get(key); !ok || row != "row-a" {
		t.Fatalf("disk hit not reinstated in memory: %q, %v", row, ok)
	}
}

// TestDiskErrorsNotStored pins that failed computations leave no disk
// entry: errors are retried, never made durable.
func TestDiskErrorsNotStored(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, 4, dir)
	key := Key{Digest: "bad", Seed: 1}
	if _, _, err := c.Do(key, func() (string, error) {
		return "", fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := os.Stat(entryPath(dir, key)); !os.IsNotExist(err) {
		t.Fatal("failed computation left a disk entry")
	}
	if s := c.Stats(); s.DiskWrites != 0 || s.Errors != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskPreloadSweepsTempFiles pins crash hygiene: a temp file left by a
// writer that died before rename is swept at the next preload and never
// mistaken for an entry.
func TestDiskPreloadSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "tmp-12345")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := diskCache(t, 4, dir)
	if s := c.Stats(); s.Preloaded != 0 || s.CorruptEntries != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived preload")
	}
}

// TestDiskSingleFlightAcrossTiers pins the cross-tier single-flight
// guarantee under the race detector: many goroutines requesting one
// missing key cost exactly one compute and one disk write; many
// goroutines requesting one disk-resident key cost exactly one disk read
// and zero computes.
func TestDiskSingleFlightAcrossTiers(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, 2, dir)
	const waiters = 32

	// Phase 1: cold key, concurrent callers, one compute.
	var computes atomic.Uint64
	key := Key{Digest: "cold", Seed: 5}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			row, _, err := c.Do(key, func() (string, error) {
				computes.Add(1)
				return "cold-row", nil
			})
			if err != nil || row != "cold-row" {
				t.Errorf("cold: row=%q err=%v", row, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("cold key computed %d times", n)
	}
	if s := c.Stats(); s.DiskWrites != 1 {
		t.Fatalf("cold key written %d times", s.DiskWrites)
	}

	// Phase 2: evict from memory, then hammer the disk-resident key.
	mustDo(t, c, Key{Digest: "f1", Seed: 0}, "f")
	mustDo(t, c, Key{Digest: "f2", Seed: 0}, "f")
	start = make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			row, _, err := c.Do(key, func() (string, error) {
				computes.Add(1)
				return "cold-row", nil
			})
			if err != nil || row != "cold-row" {
				t.Errorf("warm: row=%q err=%v", row, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("disk-resident key recomputed: %d computes total", n)
	}
	s := c.Stats()
	if s.DiskHits == 0 {
		t.Fatalf("no disk hit recorded: %+v", s)
	}
	// The disk was read once for the whole stampede; everyone else joined
	// in-flight or hit the reinstated memory entry.
	if s.DiskHits != 1 {
		t.Fatalf("disk read %d times for one stampede", s.DiskHits)
	}
}
