// Package sweepcache is the content-addressed result store behind the
// sweep service: completed sweep points keyed by (config digest, seed),
// with LRU eviction, single-flight deduplication of concurrent identical
// points, and hit/miss/in-flight metrics.
//
// The cache is only sound because every sweep point is deterministic: the
// same digest and seed always produce the same row (pinned end to end by
// the golden-conformance suites), so a cached row is indistinguishable
// from a recomputed one and repeated or overlapping sweeps from many
// clients cost near zero. Errors are never cached — a failed computation
// is retried on the next request for the same key.
//
// An optional durable tier (NewDisk) persists every completed row as a
// self-checksummed file, so a restarted process serves previously computed
// points warm instead of recomputing them; see disk.go for the format and
// the corruption guarantees.
package sweepcache

import (
	"container/list"
	"fmt"
	"sync"
)

// Key addresses one sweep point: the content digest of its canonical
// configuration (workload, parameters, machine — see
// harness.PointSpec.Digest) plus the seed, kept separate so seed sweeps
// over one configuration read as siblings of one digest.
type Key struct {
	Digest string
	Seed   uint64
}

// Stats are the cache's counters, read through Cache.Stats.
type Stats struct {
	// Hits counts Do calls served from a completed entry; Misses counts
	// calls that computed; InflightWaits counts calls that joined another
	// caller's in-progress computation of the same key.
	Hits, Misses, InflightWaits uint64
	// Evictions counts entries dropped by the LRU bound; Errors counts
	// computations that returned an error (never cached); InflightErrors
	// counts waiters that joined a computation which then failed — with
	// fault-injected or deadline-bounded computes these inherit an error
	// (possibly another job's abort) and should retry.
	Evictions, Errors, InflightErrors uint64
	// Entries and Capacity describe the store's current occupancy.
	Entries, Capacity int
	// Disk-tier counters, all zero for a memory-only cache (New). DiskHits
	// counts Do calls served from a verified disk entry after a memory
	// miss; DiskWrites counts entries durably stored; DiskWriteErrors
	// counts failed stores (the row is still served and cached in memory);
	// CorruptEntries counts damaged entries detected, deleted, and
	// recomputed — at preload or on read — never served; Preloaded counts
	// entries verified and indexed at construction time.
	DiskHits, DiskWrites, DiskWriteErrors uint64
	CorruptEntries, Preloaded             uint64
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	row  string
	err  error
}

// Cache is a bounded, concurrency-safe result store. The zero value is
// not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *entry
	items    map[Key]*list.Element
	inflight map[Key]*call
	stats    Stats
	disk     *diskTier // nil for a memory-only cache
}

type entry struct {
	key Key
	row string
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// NewDisk returns a cache bounded to capacity memory entries and backed by
// a durable disk tier rooted at dir (created if absent). Existing entries
// are verified against their embedded checksums and preloaded into the
// memory index — a warm restart serves them as hits — while corrupt or
// truncated entries are deleted and counted, never served.
func NewDisk(capacity int, dir string) (*Cache, error) {
	c := New(capacity)
	d, err := newDiskTier(dir)
	if err != nil {
		return nil, err
	}
	c.disk = d
	// Preload runs before the cache is shared, but insert expects c.mu.
	c.mu.Lock()
	loaded, corrupt := d.preload(c.insert)
	c.stats.Preloaded = uint64(loaded)
	c.stats.CorruptEntries = uint64(corrupt)
	c.mu.Unlock()
	return c, nil
}

// Get returns the cached row for key, if present, marking it recently
// used. It never waits on an in-flight computation.
func (c *Cache) Get(key Key) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).row, true
	}
	return "", false
}

// Do returns the row for key, computing it at most once across all
// concurrent callers: a completed entry is returned immediately (cached
// true), a second caller for a key someone is already computing waits for
// that computation (cached true — it cost this caller nothing; cached
// false if it failed, since no result was stored), and otherwise compute
// runs on the calling goroutine and its result is stored (cached false).
// A compute panic is converted to an error for every waiter, so one
// poisoned point cannot wedge or crash the cache.
func (c *Cache) Do(key Key, compute func() (string, error)) (row string, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		row = el.Value.(*entry).row
		c.mu.Unlock()
		return row, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.InflightWaits++
		c.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			// The joined computation failed (it may have been aborted by
			// the other caller's deadline). Nothing was cached, so report
			// cached false: the waiter inherited an error, not a result.
			c.mu.Lock()
			c.stats.InflightErrors++
			c.mu.Unlock()
			return cl.row, false, cl.err
		}
		return cl.row, true, nil
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	// Disk lookup happens inside the single-flight window: concurrent
	// callers for the same key join this call, so the file is read (and a
	// corrupt entry recomputed) at most once across all of them.
	var fromDisk bool
	if c.disk != nil {
		row, ok, corrupt := c.disk.load(key)
		if ok {
			cl.row, fromDisk = row, true
		} else if corrupt {
			c.mu.Lock()
			c.stats.CorruptEntries++
			c.mu.Unlock()
		}
	}
	if !fromDisk {
		cl.row, cl.err = runCompute(compute)
		if cl.err == nil && c.disk != nil {
			// Store before publishing so a crash right after callers saw the
			// row is the only window where it isn't durable yet — and then
			// it is simply recomputed on the next request.
			werr := c.disk.store(key, cl.row)
			c.mu.Lock()
			if werr != nil {
				c.stats.DiskWriteErrors++
			} else {
				c.stats.DiskWrites++
			}
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insert(key, cl.row)
		if fromDisk {
			c.stats.DiskHits++
		}
	} else {
		c.stats.Errors++
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.row, fromDisk, cl.err
}

// runCompute shields the cache from a panicking computation.
func runCompute(compute func() (string, error)) (row string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweepcache: compute panicked: %v", r)
		}
	}()
	return compute()
}

// insert stores a completed row, evicting from the LRU tail. Caller holds
// c.mu.
func (c *Cache) insert(key Key, row string) {
	if el, ok := c.items[key]; ok {
		// A concurrent Do of the same key can complete while this one
		// computed (both were in-flight only if one joined the other, so
		// this arises only through Get/Do interleavings); deterministic
		// points make both rows identical, keep the existing entry.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, row: row})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.capacity
	return s
}
