package harness

import (
	"strings"
	"testing"

	"wisync/internal/config"
	"wisync/internal/kernels"
)

// quickSpecs is a small batch of fast golden-covered points spanning kinds
// and seeds.
func quickSpecs() []PointSpec {
	return []PointSpec{
		{Workload: "tightloop", Kind: config.Baseline, Cores: 16, Seed: 1},
		{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1},
		{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 77},
		{Workload: "tightloop", Kind: config.BaselinePlus, Cores: 16, Seed: 2},
		{Workload: "liv6", Kind: config.WiSync, Cores: 16, Seed: 1, N: 16},
	}
}

// TestRunPointsPanicIsolation is the regression test for the sweep-worker
// bugfix: a panic inside one point's simulation must surface as that
// outcome's Err while every other point's row stays bit-identical to a
// clean batch — one bad job point cannot take down the pool or perturb its
// neighbors.
func TestRunPointsPanicIsolation(t *testing.T) {
	specs := quickSpecs()
	clean := RunPoints(Options{Workers: 3}, specs)
	for _, o := range clean {
		if o.Err != nil {
			t.Fatalf("clean run errored on %s: %v", o.Spec.ID(), o.Err)
		}
		if o.Row == "" {
			t.Fatalf("clean run produced empty row for %s", o.Spec.ID())
		}
	}

	// Inject a panic into exactly the seed-77 point.
	pointRunHook = func(s PointSpec) {
		if s.Seed == 77 {
			panic("injected: simulated core meltdown")
		}
	}
	defer func() { pointRunHook = nil }()

	poisoned := RunPoints(Options{Workers: 3}, specs)
	for i, o := range poisoned {
		if specs[i].Seed == 77 {
			if o.Err == nil {
				t.Fatalf("injected panic did not surface as an error")
			}
			if !strings.Contains(o.Err.Error(), "panicked") || !strings.Contains(o.Err.Error(), "meltdown") {
				t.Fatalf("panic error lost its message: %v", o.Err)
			}
			if o.Row != "" {
				t.Fatalf("panicking point still produced a row: %q", o.Row)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("neighbor %s errored after injected panic: %v", o.Spec.ID(), o.Err)
		}
		if o.Row != clean[i].Row {
			t.Fatalf("neighbor %s row changed after injected panic:\nclean:    %s\npoisoned: %s",
				o.Spec.ID(), clean[i].Row, o.Row)
		}
	}
}

// TestRunPointsWorkerInvariance pins that outcomes are in spec order and
// byte-identical at any worker count.
func TestRunPointsWorkerInvariance(t *testing.T) {
	specs := quickSpecs()
	seq := RunPoints(Options{Workers: 1}, specs)
	par := RunPoints(Options{Workers: 4}, specs)
	for i := range seq {
		if seq[i].Row != par[i].Row {
			t.Fatalf("point %s differs across worker counts:\n1: %s\n4: %s",
				specs[i].ID(), seq[i].Row, par[i].Row)
		}
	}
}

// TestPointSpecNormalize pins alias resolution, default fill-in, and the
// zeroing of parameters the workload does not read.
func TestPointSpecNormalize(t *testing.T) {
	n, err := PointSpec{Workload: "liv2", Kind: config.WiSync, Cores: 64, Seed: 1, CS: 999}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Workload != "livermore2" {
		t.Fatalf("alias not resolved: %q", n.Workload)
	}
	if n.N != 96 || n.Passes != 1 {
		t.Fatalf("golden defaults not filled: n=%d passes=%d", n.N, n.Passes)
	}
	if n.CS != 0 {
		t.Fatalf("irrelevant CS parameter survived normalization: %d", n.CS)
	}
	if _, err := (PointSpec{Workload: "mystery", Kind: config.WiSync, Cores: 64}).Normalize(); err == nil {
		t.Fatal("unknown workload normalized")
	}
}

// TestPointDigest pins the content-address semantics the cache relies on:
// aliases and defaults collapse onto one digest; seed, exec mode and shard
// count do not split it; workload parameters and machine configuration do.
func TestPointDigest(t *testing.T) {
	digest := func(s PointSpec) string {
		t.Helper()
		d, err := s.Digest()
		if err != nil {
			t.Fatalf("Digest(%+v): %v", s, err)
		}
		return d
	}
	base := PointSpec{Workload: "livermore2", Kind: config.WiSync, Cores: 64, Seed: 1, N: 96, Passes: 1}
	alias := PointSpec{Workload: "liv2", Kind: config.WiSync, Cores: 64, Seed: 9, CS: 5,
		Exec: kernels.ExecThread, Shards: 4}
	if digest(base) != digest(alias) {
		t.Fatal("alias/defaults/seed/exec/shards split the digest; cache would never hit")
	}
	for name, other := range map[string]PointSpec{
		"workload": {Workload: "livermore3", Kind: config.WiSync, Cores: 64, Seed: 1},
		"kind":     {Workload: "livermore2", Kind: config.Baseline, Cores: 64, Seed: 1},
		"cores":    {Workload: "livermore2", Kind: config.WiSync, Cores: 128, Seed: 1},
		"n":        {Workload: "livermore2", Kind: config.WiSync, Cores: 64, Seed: 1, N: 128},
		"variant":  {Workload: "livermore2", Kind: config.WiSync, Cores: 64, Seed: 1, Variant: config.SlowNet},
		"mac":      {Workload: "livermore2", Kind: config.WiSync, Cores: 64, Seed: 1, MAC: 1},
	} {
		if digest(base) == digest(other) {
			t.Errorf("changing %s did not move the point digest", name)
		}
	}
}

// TestPointSpecValidate pins that every malformed-spec class is an error,
// and that Run returns those errors instead of panicking.
func TestPointSpecValidate(t *testing.T) {
	good := PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec invalid: %v", err)
	}
	bad := map[string]PointSpec{
		"unknown workload": {Workload: "mystery", Kind: config.WiSync, Cores: 64, Seed: 1},
		"unknown app":      {Workload: "app:doom", Kind: config.WiSync, Cores: 64, Seed: 1},
		"zero cores":       {Workload: "tightloop", Kind: config.WiSync, Seed: 1},
		"too many cores":   {Workload: "tightloop", Kind: config.WiSync, Cores: 500, Seed: 1},
		"bad kind":         {Workload: "tightloop", Kind: 9, Cores: 64, Seed: 1},
		"bad variant":      {Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1, Variant: 9},
		"bad mac":          {Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1, MAC: 9},
		"bad exec":         {Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1, Exec: 7},
		"bad shards":       {Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1, Shards: 65},
		"iters beyond cap": {Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1, Iters: maxIters + 1},
		"n beyond cap":     {Workload: "liv2", Kind: config.WiSync, Cores: 64, Seed: 1, N: maxVecLen + 1},
	}
	for name, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		row, err := s.Run()
		if err == nil {
			t.Errorf("%s: Run succeeded with row %q", name, row)
		}
	}
}
