package harness

import (
	"fmt"

	"wisync/internal/config"
	"wisync/internal/kernels"
	"wisync/internal/sim"
	"wisync/internal/stats"
	"wisync/internal/wireless"
)

// MACRow is one (kernel, core count, protocol) point of the MAC
// comparison sweep.
type MACRow struct {
	Kernel string
	Cores  int
	MAC    wireless.MACKind
	// CyclesPerIter is the tightloop metric, Per1000 the cas-fifo one;
	// the other is zero.
	CyclesPerIter float64
	Per1000       float64
	Util          float64 // Data-channel utilization
	Net           wireless.Stats
	MACStats      wireless.MACStats
}

// macSweepKernels and macSweepMACs define the comparison grid.
var macSweepKernels = []string{"tightloop", "cas-fifo"}

// MACSweep compares the Data channel's arbitration protocols — the
// paper's carrier-sense backoff, collision-free token passing, and the
// traffic-adaptive switcher — on the two most channel-intensive kernels.
// It runs on WiSyncNoT, where every synchronization operation crosses the
// Data channel (the full design diverts barriers to the Tone channel and
// would mask the MAC): tightloop generates synchronized barrier storms
// (simultaneous arrivals, the random-access worst case), cas-fifo
// generates sustained RMW pressure with jittered arrivals. Reported
// counters show *why* a protocol wins: collision losses for backoff,
// token-rotation waits for token, mode switches for adaptive.
func MACSweep(o Options) []MACRow {
	coreCounts := []int{16, 64, 256}
	iters := 12
	duration := sim.Time(60000)
	if o.Quick {
		coreCounts = []int{16, 64}
		iters = 6
		duration = 20000
	}
	var rows []MACRow
	for _, kernel := range macSweepKernels {
		for _, cores := range coreCounts {
			for _, mac := range wireless.MACKinds {
				rows = append(rows, MACRow{Kernel: kernel, Cores: cores, MAC: mac})
			}
		}
	}
	o.forEach(len(rows), func(i int) {
		r := &rows[i]
		cfg := config.New(config.WiSyncNoT, r.Cores).WithMAC(r.MAC)
		switch r.Kernel {
		case "tightloop":
			res := kernels.TightLoop(cfg, iters)
			r.CyclesPerIter = res.CyclesPerIteration()
			r.Util = res.DataChannelUtil
			r.Net = res.Net
			r.MACStats = res.MAC
		case "cas-fifo":
			res := kernels.CASKernel(cfg, kernels.FIFO, 128, duration)
			r.Per1000 = res.Per1000
			r.Util = res.Net.Utilization(duration)
			r.Net = res.Net
			r.MACStats = res.MAC
		}
	})
	i := 0
	for _, kernel := range macSweepKernels {
		metric := "cyc/iter"
		if kernel == "cas-fifo" {
			metric = "cas/1000cyc"
		}
		tb := stats.NewTable(
			fmt.Sprintf("MAC comparison: %s on WiSyncNoT (%s)", kernel, metric),
			"cores", "mac", metric, "util %", "grants", "collisions", "token waits", "switches")
		for range coreCounts {
			for range wireless.MACKinds {
				r := rows[i]
				val := f0(r.CyclesPerIter)
				if kernel == "cas-fifo" {
					val = f2(r.Per1000)
				}
				tb.AddRow(r.Cores, r.MAC.String(), val, f2(100*r.Util),
					r.MACStats.Grants, r.MACStats.Collisions,
					r.MACStats.TokenWaitCycles, r.MACStats.ModeSwitches)
				i++
			}
		}
		fmt.Fprintln(o.out(), tb)
	}
	return rows
}
