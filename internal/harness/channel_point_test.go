package harness

import (
	"strings"
	"testing"

	"wisync/internal/channel"
	"wisync/internal/config"
)

// lossySpec is the reference lossy sweep point of this suite: a workload
// that hammers the Data channel (WiSyncNoT routes all synchronization
// through it), at a BER where a visible fraction of frames corrupt
// (77 bits x 63 receivers x 1e-5 ~ 5% per frame) but the retry budget is
// effectively never exhausted.
func lossySpec() PointSpec {
	return PointSpec{
		Workload: "tightloop", Kind: config.WiSyncNoT, Cores: 64, Seed: 3,
		Channel: channel.Uniform, BER: 1e-5, Retries: 20,
	}
}

// col extracts the value of a key=value column from a rendered row.
func col(t *testing.T, row, key string) string {
	t.Helper()
	for _, c := range strings.Split(row, "\t") {
		if v, ok := strings.CutPrefix(c, key+"="); ok {
			return v
		}
	}
	t.Fatalf("row has no %s column: %s", key, row)
	return ""
}

// TestLossyPointDeterministic pins the acceptance criterion for the lossy
// channel: a nonzero-BER point reports retransmissions and a nonzero
// energy total, and its row is byte-identical across engine shard counts
// and sweep worker counts — corruption draws happen in commit-event order,
// which the engine keeps invariant.
func TestLossyPointDeterministic(t *testing.T) {
	base := lossySpec()
	ref, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := col(t, ref, "retx"); v == "0" {
		t.Fatalf("no retransmissions at BER %g: %s", base.BER, ref)
	}
	if v := col(t, ref, "energy"); v == "0pJ" {
		t.Fatalf("zero energy total: %s", ref)
	}
	if v := col(t, ref, "drops"); v != "0" {
		t.Fatalf("delivery failures with a 20-retry budget at BER %g: %s", base.BER, ref)
	}
	for _, shards := range []int{2, 4} {
		s := base
		s.Shards = shards
		row, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if row != ref {
			t.Errorf("row diverged at %d shards\n got: %s\nwant: %s", shards, row, ref)
		}
	}
	specs := []PointSpec{base, base, base, base}
	seq := RunPoints(Options{Workers: 1}, specs)
	par := RunPoints(Options{Workers: 4}, specs)
	for i := range specs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("point %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Row != ref || par[i].Row != ref {
			t.Errorf("point %d diverged across worker counts\n seq: %s\n par: %s\nwant: %s",
				i, seq[i].Row, par[i].Row, ref)
		}
	}
}

// TestIdealChannelRowMatchesGolden pins that an explicitly-selected ideal
// channel renders rows byte-identical to the committed golden matrix —
// the channel model's existence is invisible until a lossy profile is
// asked for.
func TestIdealChannelRowMatchesGolden(t *testing.T) {
	want := loadGolden(t)
	for _, pt := range []GoldenPoint{
		{Kernel: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1},
		{Kernel: "cas-fifo", Kind: config.WiSync, Cores: 16, Seed: 1},
		{Kernel: "livermore2", Kind: config.Baseline, Cores: 16, Seed: 1},
	} {
		row := mustRunPoint(PointSpec{Workload: pt.Kernel, Kind: pt.Kind, Cores: pt.Cores,
			Seed: pt.Seed, Channel: channel.Ideal})
		if row != want[pt.ID()] {
			t.Errorf("%s: explicit ideal channel diverged from golden\n got: %s\nwant: %s",
				pt.ID(), row, want[pt.ID()])
		}
	}
}

// TestChannelDigest pins the content-address behavior of the channel
// fields: a lossy profile splits the digest from ideal, equivalent
// normalized forms share one, and stray BER/retry values under the ideal
// profile are zeroed rather than splitting the address.
func TestChannelDigest(t *testing.T) {
	digest := func(s PointSpec) string {
		t.Helper()
		d, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 64, Seed: 1}
	lossy := base
	lossy.Channel = channel.Uniform
	if digest(lossy) == digest(base) {
		t.Fatal("lossy profile did not split the digest")
	}
	explicit := lossy
	explicit.BER = 1e-4
	explicit.Retries = channel.DefaultMaxRetries
	if digest(explicit) != digest(lossy) {
		t.Fatal("normalized defaults split the digest from their explicit form")
	}
	other := lossy
	other.BER = 1e-3
	if digest(other) == digest(lossy) {
		t.Fatal("BER did not split the digest")
	}
	strayed := base
	strayed.BER = 0.5
	strayed.Retries = 7
	if digest(strayed) != digest(base) {
		t.Fatal("BER/retries under the ideal profile split the digest")
	}
}
