package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// poolWorkers returns a worker count that genuinely exercises the pool,
// even on single-CPU machines where GOMAXPROCS is 1.
func poolWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 4
	}
	return w
}

func TestForEachCoversAllJobsOnce(t *testing.T) {
	const n = 500
	var hits [n]atomic.Int32
	ForEach(7, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	ForEach(3, 10, func(i int) {
		if i == 4 {
			panic("boom")
		}
	})
}

// TestWorkersBitIdentical asserts the acceptance property of the sweep
// pool: every harness row and every rendered table is bit-identical
// between sequential execution and a full worker pool, because each sweep
// point is an independent simulation with its own seed.
func TestWorkersBitIdentical(t *testing.T) {
	seq := Options{Quick: true, Workers: 1}
	par := Options{Quick: true, Workers: poolWorkers()}

	var seqOut, parOut strings.Builder
	seqRows := Fig7(Options{Quick: true, Workers: 1, Out: &seqOut})
	parRows := Fig7(Options{Quick: true, Workers: par.Workers, Out: &parOut})
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("Fig7 rows differ between Workers=1 and Workers=%d", par.Workers)
	}
	if seqOut.String() != parOut.String() {
		t.Errorf("Fig7 rendered tables differ between worker counts")
	}
	// The headline benchmark metric must also be identical.
	metric := func(rows []Fig7Row) float64 {
		var base, w float64
		for _, r := range rows {
			if r.Cores == 128 {
				switch r.Kind.String() {
				case "Baseline":
					base = r.CyclesPerIter
				case "WiSync":
					w = r.CyclesPerIter
				}
			}
		}
		return base / w
	}
	if a, b := metric(seqRows), metric(parRows); a != b {
		t.Errorf("baseline/wisync@128c differs: %v vs %v", a, b)
	}

	if !reflect.DeepEqual(Fig8(seq), Fig8(par)) {
		t.Errorf("Fig8 rows differ between Workers=1 and Workers=%d", par.Workers)
	}
	if !reflect.DeepEqual(Fig9(seq), Fig9(par)) {
		t.Errorf("Fig9 rows differ between Workers=1 and Workers=%d", par.Workers)
	}
}

// TestWorkersBitIdenticalApps is the same property over the application
// suite (Figure 10 rows feed Table 5), which runs the OS-flavored
// workloads — the goroutine-process slow path.
func TestWorkersBitIdenticalApps(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	seq := Fig10(Options{Quick: true, Workers: 1})
	par := Fig10(Options{Quick: true, Workers: poolWorkers()})
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig10 rows differ between worker counts")
	}
	var seqT5, parT5 strings.Builder
	Table5(Options{Out: &seqT5}, seq)
	Table5(Options{Out: &parT5}, par)
	if seqT5.String() != parT5.String() {
		t.Errorf("Table 5 differs between worker counts")
	}
}

// BenchmarkHarnessParallel measures the sweep-level speedup of the worker
// pool on the Figure 7 regeneration. The reported rows are identical at
// every worker count; only wall time changes.
func BenchmarkHarnessParallel(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Fig7(Options{Quick: true, Workers: w})
			}
		})
	}
}
