package harness

import (
	"fmt"
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/sim"
	"wisync/internal/syncprims"
)

// TestKitchenSink runs every synchronization primitive concurrently on
// every machine configuration — locks and barriers interleaved with
// reductions, eurekas, producer-consumer traffic and shared-memory reads —
// and checks functional outcomes plus the coherence invariants afterwards.
// This is the system's widest single integration point.
func TestKitchenSink(t *testing.T) {
	const cores, rounds = 32, 4
	for _, kind := range config.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m := core.NewMachine(config.New(kind, cores))
			f := syncprims.NewFactory(m)
			barrier := f.NewBarrier(nil)
			lock := f.NewLock()
			red := f.NewReducer(0)
			eur := f.NewEureka()
			pc := f.NewPC(1)
			counter := f.NewVar(0)
			sharedBase := m.AllocArray(256)

			var inCS, maxCS int
			var consumed []uint64
			m.SpawnAll(func(th *core.Thread) {
				rng := sim.NewRand(uint64(th.Core) + 1234)
				for r := 0; r < rounds; r++ {
					th.Compute(rng.Intn(300))
					// Background coherence traffic.
					for i := 0; i < 4; i++ {
						th.Read(sharedBase + uint64(rng.Intn(256)*8))
					}
					// Mutual exclusion.
					lock.Acquire(th)
					inCS++
					if inCS > maxCS {
						maxCS = inCS
					}
					th.Compute(15)
					th.Sync()
					inCS--
					lock.Release(th)
					// Reduction and lock-free updates.
					red.Add(th, 1)
					for !counter.CAS(th, counter.Load(th), counter.Load(th)+1) {
						th.Instr(8)
					}
					// Producer-consumer across two fixed cores.
					if th.Core == 0 {
						pc.Produce(th, []uint64{uint64(r + 1)})
					}
					if th.Core == cores-1 {
						buf := make([]uint64, 1)
						pc.Consume(th, buf)
						consumed = append(consumed, buf[0])
					}
					// One thread triggers the eureka each round; all ack.
					if th.Core == r%cores {
						eur.Trigger(th)
					} else {
						eur.WaitTriggered(th)
					}
					eur.Ack(th)
					barrier.Wait(th)
				}
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if maxCS != 1 {
				t.Errorf("mutual exclusion violated: %d threads in CS", maxCS)
			}
			var redVal uint64
			m.Spawn("check", 0, 1, func(th *core.Thread) { redVal = red.Value(th) })
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if want := uint64(cores * rounds); redVal != want {
				t.Errorf("reduction = %d, want %d", redVal, want)
			}
			if len(consumed) != rounds {
				t.Fatalf("consumed %d items, want %d", len(consumed), rounds)
			}
			for i, v := range consumed {
				if v != uint64(i+1) {
					t.Errorf("consumed[%d] = %d, want %d", i, v, i+1)
				}
			}
			if err := m.Mem.CheckInvariants(); err != nil {
				t.Errorf("coherence invariants after kitchen sink: %v", err)
			}
		})
	}
}

// TestKitchenSinkDeterministic re-runs one configuration and requires
// bit-identical end times: the whole stack, including backoff randomness
// and workload jitter, must be reproducible.
func TestKitchenSinkDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := core.NewMachine(config.New(config.WiSync, 16))
		f := syncprims.NewFactory(m)
		b := f.NewBarrier(nil)
		l := f.NewLock()
		red := f.NewReducer(0)
		m.SpawnAll(func(th *core.Thread) {
			rng := sim.NewRand(uint64(th.Core) * 7)
			for r := 0; r < 5; r++ {
				th.Compute(rng.Intn(200))
				l.Acquire(th)
				th.Compute(10)
				l.Release(th)
				red.Add(th, 1)
				b.Wait(th)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

// TestAllCoreCountsAllKinds smoke-tests every paper core count on every
// configuration with a small barrier loop — the full cross product the
// evaluation sweeps.
func TestAllCoreCountsAllKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product sweep")
	}
	for _, cores := range []int{16, 32, 64, 128, 256} {
		for _, kind := range config.Kinds {
			cores, kind := cores, kind
			t.Run(fmt.Sprintf("%s-%d", kind, cores), func(t *testing.T) {
				m := core.NewMachine(config.New(kind, cores))
				b := syncprims.NewFactory(m).NewBarrier(nil)
				done := 0
				m.SpawnAll(func(th *core.Thread) {
					for e := 0; e < 2; e++ {
						th.Compute(th.Core % 17)
						b.Wait(th)
					}
					done++
				})
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				if done != cores {
					t.Errorf("done = %d, want %d", done, cores)
				}
			})
		}
	}
}
