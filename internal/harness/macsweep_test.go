package harness

import (
	"strings"
	"testing"

	"wisync/internal/wireless"
)

// TestMACSweepQuick runs the protocol-comparison sweep at quick size and
// checks its structural invariants: every (kernel, cores, MAC) cell is
// filled, token rows never collide, backoff rows never rotate a token,
// and the tables render.
func TestMACSweepQuick(t *testing.T) {
	var out strings.Builder
	rows := MACSweep(Options{Quick: true, Out: &out})
	wantRows := len(macSweepKernels) * 2 * len(wireless.MACKinds)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.MACStats.Grants == 0 {
			t.Errorf("%s/%dc/%v: no grants recorded", r.Kernel, r.Cores, r.MAC)
		}
		switch r.MAC {
		case wireless.MACToken:
			if r.MACStats.Collisions != 0 || r.Net.Collisions != 0 {
				t.Errorf("%s/%dc/token: collisions under token passing (%+v)", r.Kernel, r.Cores, r.MACStats)
			}
			if r.MACStats.TokenWaitCycles == 0 {
				t.Errorf("%s/%dc/token: no token waits recorded", r.Kernel, r.Cores)
			}
		case wireless.MACBackoff:
			if r.MACStats.TokenWaitCycles != 0 || r.MACStats.ModeSwitches != 0 {
				t.Errorf("%s/%dc/backoff: token/adaptive counters nonzero (%+v)", r.Kernel, r.Cores, r.MACStats)
			}
		}
		if r.Kernel == "tightloop" && r.CyclesPerIter == 0 {
			t.Errorf("%s/%dc/%v: zero cycles/iter", r.Kernel, r.Cores, r.MAC)
		}
		if r.Kernel == "cas-fifo" && r.Per1000 == 0 {
			t.Errorf("%s/%dc/%v: zero throughput", r.Kernel, r.Cores, r.MAC)
		}
	}
	if !strings.Contains(out.String(), "MAC comparison: tightloop") ||
		!strings.Contains(out.String(), "MAC comparison: cas-fifo") {
		t.Error("sweep tables missing from output")
	}
}

// TestOptionsMACAppliesToFigures: the harness-level MAC override reaches
// the sweep-point configurations (and changes wireless results).
func TestOptionsMACAppliesToFigures(t *testing.T) {
	cfg := Options{MAC: wireless.MACToken}.Config(0, 16)
	if cfg.Wireless.MAC != wireless.MACToken {
		t.Fatalf("Options.Config dropped the MAC override: %+v", cfg.Wireless)
	}
}
