package harness

import (
	"testing"
)

// shardCounts are the shard configurations the bit-identity suite pins:
// one shard exercises the full drain/merge machinery without concurrency,
// the powers of two are the practical settings, and seven (which does not
// divide any core count) forces uneven core-to-shard assignment.
var shardCounts = []int{1, 2, 4, 7}

// TestGoldenShardInvariance re-runs the kernel conformance matrix on a
// sharded engine at every pinned shard count and asserts each metrics line
// is byte-identical to the committed golden file — the end-to-end proof
// that sharded conservative dispatch reorders nothing. In -short mode only
// the 16-core half of the matrix runs, like TestGoldenConformance.
func TestGoldenShardInvariance(t *testing.T) {
	pts := shortPoints()
	want := loadGolden(t)
	for _, shards := range shardCounts {
		shards := shards
		lines := make([]string, len(pts))
		ForEach(0, len(pts), func(i int) { lines[i] = GoldenRunShards(pts[i], shards) })
		compareToGolden(t, want, lines, "sharded")
	}
}

// TestGoldenAppsShardInvariance is the full-application counterpart: the
// apps conformance matrix must render byte-identical to the committed
// golden file at every pinned shard count. In -short mode the matrix is
// trimmed to the two headline shard counts to keep the race job fast.
func TestGoldenAppsShardInvariance(t *testing.T) {
	counts := shardCounts
	if testing.Short() {
		counts = []int{1, 4}
	}
	pts := AppGoldenPoints()
	want := loadGoldenApps(t)
	for _, shards := range counts {
		shards := shards
		lines := make([]string, len(pts))
		ForEach(0, len(pts), func(i int) { lines[i] = AppGoldenRunShards(pts[i], shards) })
		compareToGolden(t, want, lines, "sharded")
	}
}
