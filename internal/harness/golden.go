package harness

import (
	"fmt"
	"strconv"
	"strings"

	"wisync/internal/config"
	"wisync/internal/kernels"
)

// GoldenPoint is one cell of the conformance matrix: a kernel run on one
// machine kind at one core count with one seed. The matrix pins the
// simulator's observable behavior exactly — every reported metric and every
// internal protocol counter — so that engine rewrites (event scheduling,
// continuation conversion, queue storage) can be proven behavior-preserving
// by re-running the matrix and diffing against the committed golden file.
type GoldenPoint struct {
	Kernel string
	Kind   config.Kind
	Cores  int
	Seed   uint64
}

// ID names the point; it is the first column of the golden file.
func (pt GoldenPoint) ID() string {
	return fmt.Sprintf("%s/%s/%dc/s%d", pt.Kernel, pt.Kind, pt.Cores, pt.Seed)
}

// GoldenPoints enumerates the conformance matrix: the wired baseline and
// the full wireless design (plus the two intermediate machines on the
// barrier kernel) x four kernels x {16, 64} cores, at fixed seeds. The
// kernels were picked to cover every contended protocol path: TightLoop
// drives barrier storms (directory invalidation storms on Baseline, tone /
// Data-channel bursts on WiSync), Livermore 2 mixes barrier phases with
// real array traffic, Livermore 6 adds a serial reduction with ownership
// ping-pong, and the FIFO CAS kernel hammers one line (Baseline) or one
// broadcast variable (WiSync) through the RMW path under an open-ended
// RunUntil horizon.
func GoldenPoints() []GoldenPoint {
	var pts []GoldenPoint
	add := func(kernel string, kinds []config.Kind, seeds ...uint64) {
		for _, k := range kinds {
			for _, cores := range []int{16, 64} {
				for _, seed := range seeds {
					pts = append(pts, GoldenPoint{Kernel: kernel, Kind: k, Cores: cores, Seed: seed})
				}
			}
		}
	}
	both := []config.Kind{config.Baseline, config.WiSync}
	// TightLoop runs on all four machines: it is the kernel where the four
	// synchronization substrates (CAS barrier, tournament barrier over the
	// tree NoC, Data-channel barrier, Tone barrier) diverge the most.
	add("tightloop", config.Kinds, 1)
	// A second seed on the two headline machines guards the seeded
	// randomness plumbing (backoff windows, workload jitter).
	add("tightloop", both, 42)
	add("livermore2", both, 1)
	add("livermore6", both, 1)
	add("cas-fifo", both, 1)
	return pts
}

// GoldenRun executes one point and renders its metrics line: the point ID
// followed by key=value columns, floats formatted exactly (shortest
// round-trip form), counters in full. Two runs of the same simulator build
// produce byte-identical lines; any behavioral divergence moves at least
// one column.
func GoldenRun(pt GoldenPoint) string { return GoldenRunExec(pt, kernels.ExecTask) }

// GoldenRunExec is GoldenRun with an explicit workload execution mode. The
// committed golden file was generated with blocking threads before the
// continuation conversion; both modes must render every line byte-identical
// to it (TestGoldenConformance pins the default, TestGoldenBlockingEquivalence
// the reference mode).
func GoldenRunExec(pt GoldenPoint, exec kernels.Exec) string {
	return mustRunPoint(PointSpec{Workload: pt.Kernel, Kind: pt.Kind, Cores: pt.Cores,
		Seed: pt.Seed, Exec: exec})
}

// GoldenRunShards executes one point on an engine partitioned into the
// given shard count. Sharding is exact — every line must render
// byte-identical to the unsharded golden file at any count
// (TestGoldenShardInvariance pins it).
func GoldenRunShards(pt GoldenPoint, shards int) string {
	return mustRunPoint(PointSpec{Workload: pt.Kernel, Kind: pt.Kind, Cores: pt.Cores,
		Seed: pt.Seed, Shards: shards})
}

// mustRunPoint runs a spec whose failure would be a programming error in
// the conformance matrix itself, not a runtime condition. The golden
// kernels execute through the same PointSpec.Run path the sweep service
// uses, so the service's default rows are byte-identical to the committed
// golden matrix by construction.
func mustRunPoint(s PointSpec) string {
	row, err := s.Run()
	if err != nil {
		panic(err)
	}
	return row
}

// goldenLine renders the shared kernels.Result columns plus extras.
func goldenLine(id string, r kernels.Result, extra ...string) string {
	cols := []string{
		fmt.Sprintf("cycles=%d", r.Cycles),
		fmt.Sprintf("iters=%d", r.Iterations),
		fmt.Sprintf("datautil=%s", gf(r.DataChannelUtil)),
	}
	cols = append(cols, extra...)
	cols = append(cols,
		fmt.Sprintf("mem=%+v", r.Mem),
		fmt.Sprintf("net=%+v", r.Net),
	)
	return id + "\t" + strings.Join(cols, "\t")
}

// GoldenTable runs every point across the worker pool and returns the full
// golden file contents. Rows are assembled in matrix order, so the output
// is bit-identical at every worker count. points selects a subset (nil
// means all).
func GoldenTable(o Options, points []GoldenPoint) string {
	if points == nil {
		points = GoldenPoints()
	}
	lines := make([]string, len(points))
	o.forEach(len(points), func(i int) { lines[i] = GoldenRun(points[i]) })
	return strings.Join(lines, "\n") + "\n"
}

// gf formats a float64 in its shortest exact round-trip form.
func gf(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// vecSum condenses a functional-result vector into one exact checksum
// column. The kernels' functional mirrors are deterministic, so this pins
// the computed values, not just the timing.
func vecSum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
