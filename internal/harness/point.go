// Point-level sweep API.
//
// The figure sweeps above are fixed matrices; the sweep service
// (cmd/wisync-server) instead receives arbitrary point sets from the
// outside world. PointSpec is that vocabulary: one workload on one machine
// configuration, serializable as JSON, normalized to a canonical form,
// validated before any machine is built, content-addressed for
// memoization, and executed with per-point panic isolation — a malformed
// or crashing point yields an error row, never a dead process, and every
// other point of the batch is bit-identical to a clean run.
package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"wisync/internal/apps"
	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/fault"
	"wisync/internal/kernels"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// PointSpec describes one sweep point. The zero value of every optional
// field means "the canonical default for this workload": Normalize fills
// defaults in and zeroes parameters the workload does not read, so two
// specs that run the same simulation digest identically.
type PointSpec struct {
	// Workload names a kernel — tightloop, livermore2/3/6 (aliases liv2,
	// liv3, liv6), cas-fifo/cas-lifo/cas-add (aliases fifo, lifo, add) —
	// or an application profile as app:<name>.
	Workload string           `json:"workload"`
	Kind     config.Kind      `json:"kind"`
	Cores    int              `json:"cores"`
	Seed     uint64           `json:"seed"`
	Variant  config.Variant   `json:"variant,omitempty"`
	MAC      wireless.MACKind `json:"mac,omitempty"`
	// Exec and Shards change only simulator wall-clock behavior, never
	// results (pinned by the equivalence and shard-invariance suites), so
	// they are excluded from Digest.
	Exec   kernels.Exec `json:"exec,omitempty"`
	Shards int          `json:"shards,omitempty"`

	// Channel selects the channel-error profile (default ideal: the
	// paper's error-free medium, under which rows match the golden
	// matrices byte for byte). BER and Retries configure the lossy
	// profiles; both are zeroed under ideal and defaulted otherwise
	// (1e-4, channel.DefaultMaxRetries), so equivalent specs digest
	// identically. BERGood/PGB/PBG configure the burst (Gilbert–Elliott)
	// profile only: BER is the bad-state error rate, BERGood the
	// good-state rate, PGB/PBG the per-message state-transition
	// probabilities (defaulted to channel.DefaultPGB/DefaultPBG).
	Channel channel.Profile `json:"channel,omitempty"`
	BER     float64         `json:"ber,omitempty"`
	Retries int             `json:"retries,omitempty"`
	BERGood float64         `json:"ber_good,omitempty"`
	PGB     float64         `json:"pgb,omitempty"`
	PBG     float64         `json:"pbg,omitempty"`

	// Faults is an optional deterministic fault-injection plan
	// (transceiver outages, token-loss events); nil means fault-free.
	// The plan is covered by the configuration digest.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Budget is an end-to-end cycle ceiling: a point still live at that
	// cycle comes back as a structured budget error row instead of
	// running forever. Watchdog is a progress window in cycles: no
	// workload-visible progress for that long is reported as a livelock.
	// Zero disables either guard.
	Budget   uint64 `json:"budget,omitempty"`
	Watchdog uint64 `json:"watchdog,omitempty"`

	// Workload parameters; zero means the workload's default.
	Iters    int    `json:"iters,omitempty"`    // tightloop iterations; app iteration override
	N        int    `json:"n,omitempty"`        // Livermore vector length
	Passes   int    `json:"passes,omitempty"`   // Livermore 2/3 passes
	CS       int    `json:"cs,omitempty"`       // CAS critical-section instructions
	Duration uint64 `json:"duration,omitempty"` // CAS kernel run length in cycles
}

// casKinds maps canonical CAS workload names to kernel kinds.
var casKinds = map[string]kernels.CASKind{
	"cas-fifo": kernels.FIFO,
	"cas-lifo": kernels.LIFO,
	"cas-add":  kernels.ADD,
}

// workloadAliases maps the cmd-line short names onto the canonical
// workload names (which match the golden matrix's kernel column).
var workloadAliases = map[string]string{
	"liv2": "livermore2",
	"liv3": "livermore3",
	"liv6": "livermore6",
	"fifo": "cas-fifo",
	"lifo": "cas-lifo",
	"add":  "cas-add",
}

// Normalize returns the canonical form of the spec: aliases resolved,
// workload defaults filled in, and parameters the workload does not read
// zeroed (so they cannot split the content address). The defaults are the
// golden matrix's parameters, which is what lets a default job be diffed
// against testdata/golden.tsv.
func (s PointSpec) Normalize() (PointSpec, error) {
	if w, ok := workloadAliases[s.Workload]; ok {
		s.Workload = w
	}
	switch {
	case s.Workload == "tightloop":
		if s.Iters == 0 {
			s.Iters = 8
		}
		s.N, s.Passes, s.CS, s.Duration = 0, 0, 0, 0
	case s.Workload == "livermore2" || s.Workload == "livermore3":
		if s.N == 0 {
			s.N = 96
		}
		if s.Passes == 0 {
			s.Passes = 1
		}
		s.Iters, s.CS, s.Duration = 0, 0, 0
	case s.Workload == "livermore6":
		if s.N == 0 {
			s.N = 40
		}
		s.Iters, s.Passes, s.CS, s.Duration = 0, 0, 0, 0
	case strings.HasPrefix(s.Workload, "cas-"):
		if _, ok := casKinds[s.Workload]; !ok {
			return s, fmt.Errorf("harness: unknown workload %q", s.Workload)
		}
		if s.CS == 0 {
			s.CS = 128
		}
		if s.Duration == 0 {
			s.Duration = 20000
		}
		s.Iters, s.N, s.Passes = 0, 0, 0
	case strings.HasPrefix(s.Workload, "app:"):
		if _, ok := apps.ByName(strings.TrimPrefix(s.Workload, "app:")); !ok {
			return s, fmt.Errorf("harness: unknown application %q", strings.TrimPrefix(s.Workload, "app:"))
		}
		s.N, s.Passes, s.CS, s.Duration = 0, 0, 0, 0
	default:
		return s, fmt.Errorf("harness: unknown workload %q", s.Workload)
	}
	if s.Channel == channel.Ideal {
		s.BER, s.Retries = 0, 0
	} else {
		if s.BER == 0 {
			s.BER = 1e-4
		}
		if s.Retries == 0 {
			s.Retries = channel.DefaultMaxRetries
		}
	}
	if s.Channel == channel.Burst {
		if s.PGB == 0 {
			s.PGB = channel.DefaultPGB
		}
		if s.PBG == 0 {
			s.PBG = channel.DefaultPBG
		}
	} else {
		// Only the burst profile reads the Gilbert–Elliott knobs.
		s.BERGood, s.PGB, s.PBG = 0, 0, 0
	}
	if s.Faults != nil {
		s.Faults.Normalize()
		if s.Faults.Empty() {
			s.Faults = nil
		}
	}
	return s, nil
}

// Parameter caps: a shared service must bound how much simulation one
// point may demand. The largest figure sweeps stay comfortably inside.
const (
	maxIters    = 100000
	maxVecLen   = 1 << 20
	maxPasses   = 100
	maxCSInstr  = 1 << 20
	maxDuration = 100000000
)

// Validate reports everything wrong with the spec: unknown workload or
// application, out-of-range machine configuration (delegated to
// config.Config.Validate, the single authority), unknown variant or exec
// mode, and workload parameters beyond the service caps. A spec that
// validates cleanly cannot panic machine construction.
func (s PointSpec) Validate() error {
	n, err := s.Normalize()
	if err != nil {
		return err
	}
	if n.Exec != kernels.ExecTask && n.Exec != kernels.ExecThread {
		return fmt.Errorf("harness: unknown exec mode %d", int(n.Exec))
	}
	if n.Variant < config.Default || n.Variant > config.SlowBMEM {
		return fmt.Errorf("harness: unknown variant %d", int(n.Variant))
	}
	if err := n.Config().Validate(); err != nil {
		return err
	}
	switch {
	case n.Iters < 0 || n.Iters > maxIters:
		return fmt.Errorf("harness: iters %d outside [0,%d]", n.Iters, maxIters)
	case n.N < 0 || n.N > maxVecLen:
		return fmt.Errorf("harness: vector length %d outside [0,%d]", n.N, maxVecLen)
	case n.Passes < 0 || n.Passes > maxPasses:
		return fmt.Errorf("harness: passes %d outside [0,%d]", n.Passes, maxPasses)
	case n.CS < 0 || n.CS > maxCSInstr:
		return fmt.Errorf("harness: cs %d outside [0,%d]", n.CS, maxCSInstr)
	case n.Duration > maxDuration:
		return fmt.Errorf("harness: duration %d beyond cap %d", n.Duration, maxDuration)
	case n.Budget > maxDuration:
		return fmt.Errorf("harness: budget %d beyond cap %d", n.Budget, maxDuration)
	case n.Watchdog > maxDuration:
		return fmt.Errorf("harness: watchdog %d beyond cap %d", n.Watchdog, maxDuration)
	}
	return nil
}

// Config builds the point's machine configuration.
func (s PointSpec) Config() config.Config {
	return config.New(s.Kind, s.Cores).WithVariant(s.Variant).WithSeed(s.Seed).
		WithMAC(s.MAC).WithShards(s.Shards).
		WithChannel(channel.Params{
			Profile: s.Channel, BER: s.BER, MaxRetries: s.Retries,
			BERGood: s.BERGood, PGB: s.PGB, PBG: s.PBG,
		}).
		WithFaults(s.Faults).
		WithBudget(sim.Time(s.Budget)).WithWatchdog(sim.Time(s.Watchdog))
}

// ID names the point in golden-matrix format: workload/kind/coresc/sseed.
func (s PointSpec) ID() string {
	return fmt.Sprintf("%s/%s/%dc/s%d", s.Workload, s.Kind, s.Cores, s.Seed)
}

// Digest returns the content address of the point: a hex SHA-256 over the
// normalized workload parameters and the machine configuration's digest.
// The seed is excluded — the memoization cache keys entries by
// (Digest, Seed) — and so are Exec and Shards, which are bit-identical by
// construction. Two specs share a digest exactly when they run the same
// simulation.
func (s PointSpec) Digest() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	cfgDigest, err := n.Config().Digest()
	if err != nil {
		return "", err
	}
	key := struct {
		Workload string `json:"workload"`
		Iters    int    `json:"iters"`
		N        int    `json:"n"`
		Passes   int    `json:"passes"`
		CS       int    `json:"cs"`
		Duration uint64 `json:"duration"`
		Config   string `json:"config"`
	}{n.Workload, n.Iters, n.N, n.Passes, n.CS, n.Duration, cfgDigest}
	b, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// pointRunHook, when non-nil, runs inside Run's recovery scope just before
// the simulation; the panic-isolation regression test injects a panicking
// point through it.
var pointRunHook func(PointSpec)

// Run validates the spec, executes the point, and renders its metrics row
// (the golden-matrix line format for kernels). Every failure mode —
// validation, machine construction, a panic anywhere inside the simulation
// — comes back as an error; Run never panics, so one bad point in a batch
// cannot take down the worker pool or the serving process.
func (s PointSpec) Run() (row string, err error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cancellation: when ctx is cancellable, the machine's
// abort hook polls it between event chunks, so a job deadline or a client
// disconnect converts an in-flight point into a core.ErrAborted error row
// within one guard interval. Cancellation does not change results — a
// point that completes before the deadline is bit-identical to Run's.
func (s PointSpec) RunCtx(ctx context.Context) (row string, err error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	if err := n.Validate(); err != nil {
		return "", err
	}
	defer func() {
		if r := recover(); r != nil {
			// Keep the error chain when the panic value is an error
			// (kernels and apps panic the guarded run's structured
			// errors), so callers can classify budget / livelock / abort
			// rows with errors.Is and errors.As.
			if e, ok := r.(error); ok {
				err = fmt.Errorf("harness: point %s panicked: %w", n.ID(), e)
			} else {
				err = fmt.Errorf("harness: point %s panicked: %v", n.ID(), r)
			}
		}
	}()
	if pointRunHook != nil {
		pointRunHook(n)
	}
	cfg := n.Config()
	if ctx != nil && ctx.Done() != nil {
		cfg.Abort = &config.AbortCheck{F: func() bool { return ctx.Err() != nil }}
	}
	id := n.ID()
	var energy wireless.EnergyStats
	var faults []core.Fault
	switch {
	case n.Workload == "tightloop":
		r := kernels.TightLoopExec(cfg, n.Iters, n.Exec)
		row, energy, faults = goldenLine(id, r, fmt.Sprintf("cyc/iter=%s", gf(r.CyclesPerIteration()))), r.Energy, r.Faults
	case n.Workload == "livermore2":
		r, x := kernels.Livermore2Exec(cfg, n.N, n.Passes, n.Exec)
		row, energy, faults = goldenLine(id, r, fmt.Sprintf("xsum=%s", gf(vecSum(x)))), r.Energy, r.Faults
	case n.Workload == "livermore3":
		r, dot := kernels.Livermore3Exec(cfg, n.N, n.Passes, n.Exec)
		row, energy, faults = goldenLine(id, r, fmt.Sprintf("dot=%s", gf(dot))), r.Energy, r.Faults
	case n.Workload == "livermore6":
		r, w := kernels.Livermore6Exec(cfg, n.N, n.Exec)
		row, energy, faults = goldenLine(id, r, fmt.Sprintf("wsum=%s", gf(vecSum(w)))), r.Energy, r.Faults
	case strings.HasPrefix(n.Workload, "cas-"):
		r := kernels.CASKernelExec(cfg, casKinds[n.Workload], n.CS, sim.Time(n.Duration), n.Exec)
		row, energy, faults = id+"\t"+strings.Join([]string{
			fmt.Sprintf("ok=%d", r.Successes),
			fmt.Sprintf("failed=%d", r.Failures),
			fmt.Sprintf("per1000=%s", gf(r.Per1000)),
			fmt.Sprintf("mem=%+v", r.Mem),
			fmt.Sprintf("net=%+v", r.Net),
		}, "\t"), r.Energy, r.Faults
	case strings.HasPrefix(n.Workload, "app:"):
		p, _ := apps.ByName(strings.TrimPrefix(n.Workload, "app:"))
		if n.Iters > 0 {
			p.Iterations = n.Iters
		}
		r := apps.RunExec(cfg, p, n.Exec)
		row, energy, faults = id+"\t"+strings.Join([]string{
			fmt.Sprintf("cycles=%d", r.Cycles),
			fmt.Sprintf("datautil=%s", gf(r.DataUtilPct)),
			fmt.Sprintf("spills=%d", r.Spills),
			fmt.Sprintf("mem=%+v", r.Mem),
			fmt.Sprintf("net=%+v", r.Net),
		}, "\t"), r.Energy, r.Faults
	default:
		return "", fmt.Errorf("harness: unknown workload %q", n.Workload)
	}
	// Lossy channels append the energy/reliability columns; the ideal
	// default appends nothing, keeping every row byte-identical to the
	// golden matrices.
	if n.Channel != channel.Ideal {
		row += "\t" + energyCols(energy)
	}
	// Fault plans append the degradation record: how many threads were
	// retired by a fail-stopped transceiver and where each halted.
	// Fault-free points append nothing, for the same golden reason.
	if n.Faults != nil {
		row += "\t" + faultCols(faults)
	}
	return row, nil
}

// faultCols renders the fault-plan row suffix: the per-core records of
// threads retired by a fail-stopped transceiver (deterministic order —
// guards fire at fixed positions in the global event order).
func faultCols(faults []core.Fault) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = f.String()
	}
	return fmt.Sprintf("faults=%d [%s]", len(faults), strings.Join(parts, "; "))
}

// energyCols renders the lossy-channel row suffix: total transceiver
// energy, retransmissions, and exhausted-budget delivery failures.
func energyCols(e wireless.EnergyStats) string {
	return strings.Join([]string{
		fmt.Sprintf("energy=%spJ", gf(e.TotalPJ())),
		fmt.Sprintf("retx=%d", e.Retransmissions),
		fmt.Sprintf("drops=%d", e.DeliveryFailures),
	}, "\t")
}

// PointOutcome is one point's result in a batch run.
type PointOutcome struct {
	Spec PointSpec
	Row  string
	Err  error
}

// RunPoints executes specs across the option's worker pool. Each point is
// isolated: a panicking or invalid point surfaces as its outcome's Err
// while every other outcome is bit-identical to a clean batch (pinned by
// TestRunPointsPanicIsolation). Outcomes are in spec order regardless of
// worker count.
func RunPoints(o Options, specs []PointSpec) []PointOutcome {
	out := make([]PointOutcome, len(specs))
	o.forEach(len(specs), func(i int) {
		out[i].Spec = specs[i]
		out[i].Row, out[i].Err = specs[i].Run()
	})
	return out
}
