package harness

import (
	"os"
	"strings"
	"testing"

	"wisync/internal/kernels"
)

// Regenerate the apps golden file after an INTENDED behavior change with:
//
//	go test ./internal/harness -run TestGoldenAppsConformance -update-golden
//
// Like golden.tsv, the committed file is the reference: it was generated
// from the blocking interpreter BEFORE the task-form port, and both
// execution modes must keep reproducing it byte for byte.
const goldenAppsPath = "testdata/golden_apps.tsv"

func loadGoldenApps(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenAppsPath)
	if err != nil {
		t.Fatalf("no apps golden file (generate with -update-golden): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		id, _, _ := strings.Cut(line, "\t")
		want[id] = line
	}
	return want
}

// TestGoldenAppsConformance re-runs the full-application conformance
// matrix in the default (task) execution mode and asserts each metrics
// line is byte-identical to the committed file.
func TestGoldenAppsConformance(t *testing.T) {
	got := AppGoldenTable(Options{}, nil)

	if *updateGolden {
		if err := os.WriteFile(goldenAppsPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d apps golden points to %s", len(AppGoldenPoints()), goldenAppsPath)
		return
	}

	want := loadGoldenApps(t)
	compareToGolden(t, want, strings.Split(strings.TrimRight(got, "\n"), "\n"), "task")
	if len(want) != len(AppGoldenPoints()) {
		t.Errorf("apps golden file has %d points, matrix has %d (regenerate with -update-golden)",
			len(want), len(AppGoldenPoints()))
	}
}

// TestGoldenAppsBlockingEquivalence re-runs the matrix with blocking
// workload threads and asserts every line matches the committed file byte
// for byte — the end-to-end proof that the task-form interpreter moved no
// simulated result.
func TestGoldenAppsBlockingEquivalence(t *testing.T) {
	pts := AppGoldenPoints()
	lines := make([]string, len(pts))
	ForEach(0, len(pts), func(i int) { lines[i] = AppGoldenRunExec(pts[i], kernels.ExecThread) })
	compareToGolden(t, loadGoldenApps(t), lines, "blocking")
}
