// Subprocess wire protocol.
//
// The sweep service can run points in OS-isolated worker subprocesses
// (cmd/wisync-worker, supervised by internal/workerpool) so a runaway or
// crashing simulation can be SIGKILLed without taking down the server.
// The protocol between supervisor and worker is newline-delimited JSON on
// the worker's stdin/stdout: one WireRequest per point down, one
// WireResponse back, sequence-numbered so a supervisor can detect a
// desynchronized worker and recycle it. Workers run the exact
// PointSpec.Run path, so a row computed in a subprocess is byte-identical
// to the in-process one — isolation never moves a result.
package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// WireRequest is one point dispatched to a worker subprocess. Seq pairs
// the eventual response with its request: the protocol is strictly
// one-in-flight per worker, so a mismatched Seq means the worker is
// desynchronized and must be recycled.
type WireRequest struct {
	Seq  uint64    `json:"seq"`
	Spec PointSpec `json:"spec"`
}

// WireResponse is a worker's answer: the golden-format row, or the
// structured error string PointSpec.Run produced (validation failure,
// budget/livelock/abort, recovered panic). Exactly one of Row and Error
// is meaningful; Err distinguishes an empty row from an empty error.
type WireResponse struct {
	Seq   uint64 `json:"seq"`
	Row   string `json:"row,omitempty"`
	Err   bool   `json:"err,omitempty"`
	Error string `json:"error,omitempty"`
}

// EncodeWire writes v as one newline-terminated JSON line. Both sides of
// the protocol use it so framing lives in one place.
func EncodeWire(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// ServeWire is the worker side of the protocol: read requests from r, run
// each point through the exact PointSpec.Run path, and write responses to
// w until EOF. Run never panics (per-point recovery is inside it), so the
// loop only ends when the supervisor closes stdin, kills the process, or
// the simulation crashes hard (OOM, runtime fault) — which is precisely
// what process isolation exists to contain. A clean EOF returns nil.
func ServeWire(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	bw := bufio.NewWriter(w)
	for {
		var req WireRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("harness: decoding wire request: %w", err)
		}
		resp := WireResponse{Seq: req.Seq}
		row, err := req.Spec.Run()
		if err != nil {
			resp.Err = true
			resp.Error = err.Error()
		} else {
			resp.Row = row
		}
		if err := EncodeWire(bw, resp); err != nil {
			return fmt.Errorf("harness: encoding wire response: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("harness: flushing wire response: %w", err)
		}
	}
}
