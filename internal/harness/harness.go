// Package harness regenerates every table and figure of the paper's
// evaluation (Section 7). Each function prints the same rows or series the
// paper reports and returns the data for programmatic checks. The cmd/
// wisync-bench tool and the repository's benchmark suite are thin wrappers
// around this package.
//
// Every sweep point — one (core count, configuration, kernel, length)
// combination — is an independent deterministic simulation: it builds its
// own engine from its own seed and shares no state with any other point.
// The harness therefore dispatches points across a worker pool (Options.
// Workers) and assembles rows in sweep order afterwards, so the output is
// bit-identical at every worker count, including sequential.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"wisync/internal/apps"
	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/fault"
	"wisync/internal/kernels"
	"wisync/internal/rfmodel"
	"wisync/internal/sim"
	"wisync/internal/stats"
	"wisync/internal/wireless"
)

// Options controls sweep sizes, parallelism and output.
type Options struct {
	// Quick shrinks the sweeps for fast iteration (CI, go test -short).
	Quick bool
	// Workers bounds how many sweep points simulate concurrently. Each
	// point is an independent engine with its own seed, and results are
	// written into pre-assigned row slots, so the rendered tables and
	// returned rows are bit-identical at every worker count. 0 (the
	// default) uses runtime.GOMAXPROCS(0); 1 forces sequential execution.
	Workers int
	// MAC selects the wireless Data channel's arbitration protocol for
	// every sweep point (zero value: the paper's carrier-sense backoff).
	// It has no effect on wired configurations. MACSweep ignores it — it
	// compares all protocols.
	MAC wireless.MACKind
	// Channel selects the channel-error model for every sweep point (zero
	// value: the paper's ideal channel, under which all output is
	// byte-identical to the pre-channel harness). No effect on wired
	// configurations.
	Channel channel.Params
	// Exec selects the workload execution mode for the full-application
	// sweeps (Fig10, Table5, Fig11). The zero value is the task
	// (continuation) mode — the fast path; ExecThread runs the blocking
	// reference interpreter. Simulated results are identical either way.
	Exec kernels.Exec
	// Shards partitions each sweep point's engine into this many shards
	// for intra-point parallelism (sim.ConfigureShards): core-local events
	// sort concurrently between dispatches. 0 keeps the unsharded engine.
	// Orthogonal to Workers — Workers parallelizes across points, Shards
	// within one — and bit-identical at every value.
	Shards int
	// Faults applies a deterministic fault-injection plan to every sweep
	// point (nil: fault-free, output byte-identical to the pre-fault
	// harness). No effect on wired configurations.
	Faults *fault.Plan
	// Budget bounds each sweep point to this many cycles (0: unbounded);
	// a point still live at the budget panics out of its sweep with a
	// structured core.BudgetError instead of hanging the harness.
	Budget uint64
	// Verbose appends scheduler-internals diagnostics to each application
	// sweep: a "# sched" line aggregating timing-wheel hits, heap
	// fallbacks and recycled-step pool reuse across the sweep's engines.
	Verbose bool
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// Config builds one sweep point's machine configuration with the
// option-level overrides (MAC protocol, engine shards) applied.
func (o Options) Config(kind config.Kind, cores int) config.Config {
	c := config.New(kind, cores).WithMAC(o.MAC).WithShards(o.Shards).WithChannel(o.Channel).
		WithBudget(sim.Time(o.Budget))
	if kind.HasBM() {
		// A fault plan targets transceivers; wired points in the same
		// sweep (Baseline rows, speedup denominators) run fault-free,
		// like the other wireless-only option overrides.
		c = c.WithFaults(o.Faults)
	}
	return c
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// ForEach runs jobs 0..n-1 across min(workers, n) goroutines (workers <= 0
// means runtime.GOMAXPROCS(0)). Jobs must be independent and write only
// their own result slots; ForEach returns when all jobs finished. A panic
// in a job is re-raised in the caller after the pool drains, so worker
// goroutines never die silently.
func ForEach(workers, n int, job func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Keep the worker's stack: the re-panic below raises
					// on the caller's goroutine, where these frames are
					// otherwise gone.
					panicked.CompareAndSwap(nil,
						fmt.Sprintf("harness: sweep point panicked: %v\n%s", r, debug.Stack()))
				}
			}()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// forEach is ForEach over the option's worker count.
func (o Options) forEach(n int, job func(int)) { ForEach(o.Workers, n, job) }

// Table4 reproduces Table 4: area and power of the transceiver plus two
// antennas against two reference cores at 22 nm.
func Table4(o Options) []rfmodel.Table4Row {
	rows := rfmodel.Table4()
	tb := stats.NewTable("Table 4: transceiver + 2 antennas (T+2A) vs cores at 22nm",
		"core", "core area mm2", "T+2A area mm2", "area %", "core TDP W", "T+2A mW", "power %")
	for _, r := range rows {
		tb.AddRow(r.Core.Name, r.Core.AreaMM2, fmt.Sprintf("%.2f", r.TxAreaMM2),
			fmt.Sprintf("%.1f", r.AreaPct), r.Core.TDPW,
			fmt.Sprintf("%.0f", r.TxPowerMW), fmt.Sprintf("%.1f", r.PowerPct))
	}
	fmt.Fprintln(o.out(), tb)
	return rows
}

// Fig7Row is one (core count, configuration) point of Figure 7.
type Fig7Row struct {
	Cores         int
	Kind          config.Kind
	CyclesPerIter float64
}

// Fig7 reproduces Figure 7: TightLoop cycles/iteration on all four
// configurations across core counts.
func Fig7(o Options) []Fig7Row {
	coreCounts := []int{16, 32, 64, 128, 256}
	iters := 25
	if o.Quick {
		coreCounts = []int{16, 64, 128}
		iters = 10
	}
	rows := make([]Fig7Row, 0, len(coreCounts)*len(config.Kinds))
	for _, n := range coreCounts {
		for _, k := range config.Kinds {
			rows = append(rows, Fig7Row{Cores: n, Kind: k})
		}
	}
	o.forEach(len(rows), func(i int) {
		r := &rows[i]
		r.CyclesPerIter = kernels.TightLoop(o.Config(r.Kind, r.Cores), iters).CyclesPerIteration()
	})
	tb := stats.NewTable("Figure 7: TightLoop execution time (cycles/iteration)",
		"cores", "Baseline", "Baseline+", "WiSyncNoT", "WiSync")
	for i := 0; i < len(rows); i += len(config.Kinds) {
		vals := make(map[config.Kind]float64, 4)
		for _, r := range rows[i : i+len(config.Kinds)] {
			vals[r.Kind] = r.CyclesPerIter
		}
		tb.AddRow(rows[i].Cores, f0(vals[config.Baseline]), f0(vals[config.BaselinePlus]),
			f0(vals[config.WiSyncNoT]), f0(vals[config.WiSync]))
	}
	fmt.Fprintln(o.out(), tb)
	return rows
}

// Fig8Row is one (loop, cores, vector length, configuration) point of
// Figure 8.
type Fig8Row struct {
	Loop   int
	Cores  int
	Length int
	Kind   config.Kind
	Cycles sim.Time
}

// Fig8 reproduces Figure 8: Livermore loops 2, 3 and 6 execution time
// versus vector length at 64 and 128 cores.
func Fig8(o Options) []Fig8Row {
	lens23 := []int{16, 64, 256, 1024, 4096, 16384}
	lens6 := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	coreCounts := []int{64, 128}
	passes := 2
	if o.Quick {
		lens23 = []int{16, 256, 4096}
		lens6 = []int{16, 128, 512}
		coreCounts = []int{64}
		passes = 1
	}
	lensFor := func(loop int) []int {
		if loop == 6 {
			return lens6
		}
		return lens23
	}
	var rows []Fig8Row
	for _, cores := range coreCounts {
		for _, loop := range []int{2, 3, 6} {
			for _, n := range lensFor(loop) {
				for _, k := range config.Kinds {
					rows = append(rows, Fig8Row{Loop: loop, Cores: cores, Length: n, Kind: k})
				}
			}
		}
	}
	o.forEach(len(rows), func(i int) {
		r := &rows[i]
		cfg := o.Config(r.Kind, r.Cores)
		var res kernels.Result
		switch r.Loop {
		case 2:
			res, _ = kernels.Livermore2(cfg, r.Length, passes)
		case 3:
			res, _ = kernels.Livermore3(cfg, r.Length, passes)
		case 6:
			res, _ = kernels.Livermore6(cfg, r.Length)
		}
		r.Cycles = res.Cycles
	})
	i := 0
	for _, cores := range coreCounts {
		for _, loop := range []int{2, 3, 6} {
			tb := stats.NewTable(
				fmt.Sprintf("Figure 8: Livermore loop %d, %d cores (cycles)", loop, cores),
				"length", "Baseline", "Baseline+", "WiSyncNoT", "WiSync")
			for range lensFor(loop) {
				vals := make(map[config.Kind]sim.Time, 4)
				for _, r := range rows[i : i+len(config.Kinds)] {
					vals[r.Kind] = r.Cycles
				}
				tb.AddRow(rows[i].Length, vals[config.Baseline], vals[config.BaselinePlus],
					vals[config.WiSyncNoT], vals[config.WiSync])
				i += len(config.Kinds)
			}
			fmt.Fprintln(o.out(), tb)
		}
	}
	return rows
}

// Fig9Row is one (kernel, cores, critical-section size, configuration)
// point of Figure 9.
type Fig9Row struct {
	Kernel  kernels.CASKind
	Cores   int
	CSInstr int
	Kind    config.Kind
	Per1000 float64
}

// Fig9 reproduces Figure 9: successful-CAS throughput of the FIFO, LIFO
// and ADD kernels versus critical-section size, Baseline versus WiSync, at
// 64 and 128 cores.
func Fig9(o Options) []Fig9Row {
	sizes := []int{65536, 16384, 4096, 1024, 256, 64, 16, 4}
	coreCounts := []int{64, 128}
	duration := sim.Time(300000)
	if o.Quick {
		sizes = []int{16384, 1024, 16}
		coreCounts = []int{64}
		duration = 60000
	}
	kinds := []config.Kind{config.Baseline, config.WiSync}
	kernelKinds := []kernels.CASKind{kernels.FIFO, kernels.LIFO, kernels.ADD}
	var rows []Fig9Row
	for _, cores := range coreCounts {
		for _, kn := range kernelKinds {
			for _, cs := range sizes {
				for _, k := range kinds {
					rows = append(rows, Fig9Row{Kernel: kn, Cores: cores, CSInstr: cs, Kind: k})
				}
			}
		}
	}
	o.forEach(len(rows), func(i int) {
		r := &rows[i]
		r.Per1000 = kernels.CASKernel(o.Config(r.Kind, r.Cores), r.Kernel, r.CSInstr, duration).Per1000
	})
	i := 0
	for _, cores := range coreCounts {
		for _, kn := range kernelKinds {
			tb := stats.NewTable(
				fmt.Sprintf("Figure 9: %v CAS throughput per 1000 cycles, %d cores", kn, cores),
				"cs instr", "Baseline", "WiSync")
			for range sizes {
				vals := make(map[config.Kind]float64, 2)
				for _, r := range rows[i : i+len(kinds)] {
					vals[r.Kind] = r.Per1000
				}
				tb.AddRow(rows[i].CSInstr, f2(vals[config.Baseline]), f2(vals[config.WiSync]))
				i += len(kinds)
			}
			fmt.Fprintln(o.out(), tb)
		}
	}
	return rows
}

// AppRow is one application's Figure 10 / Table 5 data.
type AppRow struct {
	Name     string
	Speedup  map[config.Kind]float64
	UtilWNoT float64 // Data-channel utilization %, WiSyncNoT
	UtilW    float64 // Data-channel utilization %, WiSync
	// Sched aggregates the scheduler-internals counters over the app's
	// four runs, for Options.Verbose diagnostics.
	Sched sim.SchedStats
	// Energy aggregates the Data-channel energy ledger over the app's
	// four runs, for the "# energy" sweep summaries.
	Energy wireless.EnergyStats
}

// fprintSched renders the aggregated scheduler counters of a sweep as a
// self-describing comment line, when Options.Verbose asks for it.
func fprintSched(o Options, what string, s sim.SchedStats) {
	if !o.Verbose {
		return
	}
	fmt.Fprintf(o.out(), "# sched %s: wheel-events=%d heap-fallbacks=%d step-pool-hits=%d step-pool-misses=%d",
		what, s.WheelEvents, s.HeapEvents, s.StepPoolHits, s.StepPoolMisses)
	if o.Shards > 0 {
		fmt.Fprintf(o.out(), " horizon-advances=%d cross-shard-msgs=%d barrier-stalls=%d",
			s.HorizonAdvances, s.CrossShardMsgs, s.BarrierStalls)
	}
	fmt.Fprintln(o.out())
}

// fprintEnergy renders the aggregated Data-channel energy ledger of a sweep
// as a self-describing comment line. It prints under Options.Verbose or
// whenever a lossy channel is selected; on the default quiet ideal-channel
// runs it prints nothing, keeping the harness output byte-identical to the
// pre-channel tool.
func fprintEnergy(o Options, what string, e wireless.EnergyStats) {
	if !o.Verbose && o.Channel.Profile == channel.Ideal {
		return
	}
	fmt.Fprintf(o.out(), "# energy %s: %s\n", what, e)
}

// appKinds is the per-application run order of Fig10 and Fig11: the
// Baseline run first (the speedup denominator), then the three compared
// configurations.
var appKinds = [4]config.Kind{config.Baseline, config.BaselinePlus, config.WiSyncNoT, config.WiSync}

// Fig10 reproduces Figure 10 (speedups over Baseline on the PARSEC and
// SPLASH-2 suites at 64 cores) and collects the Table 5 utilizations from
// the same runs.
func Fig10(o Options) []AppRow {
	base := o.Config(config.Baseline, 64)
	profiles := apps.Profiles()
	if o.Quick {
		profiles = profiles[:0:0]
		for _, name := range []string{"blackscholes", "streamcluster", "dedup",
			"ocean-c", "radiosity", "raytrace", "water-ns", "fft"} {
			p, _ := apps.ByName(name)
			p.Iterations = 4
			profiles = append(profiles, p)
		}
	}
	results := make([]apps.Result, len(profiles)*len(appKinds))
	o.forEach(len(results), func(i int) {
		cfg := base
		cfg.Kind = appKinds[i%len(appKinds)]
		results[i] = apps.RunExec(cfg, profiles[i/len(appKinds)], o.Exec)
	})
	var rows []AppRow
	tb := stats.NewTable("Figure 10: speedup over Baseline, 64 cores",
		"app", "Baseline+", "WiSyncNoT", "WiSync")
	var bp, wnt, w []float64
	for pi, p := range profiles {
		row := AppRow{Name: p.Name, Speedup: map[config.Kind]float64{config.Baseline: 1}}
		baseline := results[pi*len(appKinds)]
		row.Sched.Add(baseline.Sched)
		row.Energy.Add(baseline.Energy)
		for ki, k := range appKinds[1:] {
			r := results[pi*len(appKinds)+1+ki]
			row.Speedup[k] = float64(baseline.Cycles) / float64(r.Cycles)
			row.Sched.Add(r.Sched)
			row.Energy.Add(r.Energy)
			switch k {
			case config.WiSyncNoT:
				row.UtilWNoT = r.DataUtilPct
			case config.WiSync:
				row.UtilW = r.DataUtilPct
			}
		}
		rows = append(rows, row)
		bp = append(bp, row.Speedup[config.BaselinePlus])
		wnt = append(wnt, row.Speedup[config.WiSyncNoT])
		w = append(w, row.Speedup[config.WiSync])
		tb.AddRow(p.Name, f2(row.Speedup[config.BaselinePlus]),
			f2(row.Speedup[config.WiSyncNoT]), f2(row.Speedup[config.WiSync]))
	}
	tb.AddRow("mean", f2(stats.Mean(bp)), f2(stats.Mean(wnt)), f2(stats.Mean(w)))
	tb.AddRow("geoMean", f2(stats.GeoMean(bp)), f2(stats.GeoMean(wnt)), f2(stats.GeoMean(w)))
	fmt.Fprintln(o.out(), tb)
	fprintSched(o, "fig10", sumSched(rows))
	fprintEnergy(o, "fig10", sumEnergy(rows))
	return rows
}

// sumSched aggregates the scheduler counters across app rows.
func sumSched(rows []AppRow) sim.SchedStats {
	var s sim.SchedStats
	for _, r := range rows {
		s.Add(r.Sched)
	}
	return s
}

// sumEnergy aggregates the energy ledger across app rows.
func sumEnergy(rows []AppRow) wireless.EnergyStats {
	var e wireless.EnergyStats
	for _, r := range rows {
		e.Add(r.Energy)
	}
	return e
}

// Table5 reproduces Table 5: Data-channel utilization of WiSyncNoT and
// WiSync for the most demanding applications plus the geometric mean over
// the whole suite. It reuses Fig10's runs.
func Table5(o Options, rows []AppRow) {
	if rows == nil {
		silent := o
		silent.Out = nil
		rows = Fig10(silent)
	}
	demanding := []string{"streamcluster", "radiosity", "water-ns",
		"fluidanimate", "raytrace", "ocean-c", "ocean-nc"}
	tb := stats.NewTable("Table 5: Data channel utilization (% of cycles)",
		"app", "WiSyncNoT", "WiSync")
	for _, name := range demanding {
		for _, r := range rows {
			if r.Name == name {
				tb.AddRow(name, f2(r.UtilWNoT), f2(r.UtilW))
			}
		}
	}
	var wt, w []float64
	for _, r := range rows {
		// Geometric mean over nonzero values (zero utilization enters
		// as a small epsilon, as a log-scale mean requires).
		wt = append(wt, r.UtilWNoT+0.005)
		w = append(w, r.UtilW+0.005)
	}
	tb.AddRow("GM(all)", f2(stats.GeoMean(wt)), f2(stats.GeoMean(w)))
	fmt.Fprintln(o.out(), tb)
	fprintSched(o, "table5", sumSched(rows))
	fprintEnergy(o, "table5", sumEnergy(rows))
}

// Fig11Row is one sensitivity point: geomean speedup over Baseline under a
// Table 6 variant.
type Fig11Row struct {
	Variant config.Variant
	Kind    config.Kind
	GeoMean float64
}

// Fig11 reproduces Figure 11: geometric-mean application speedups over
// Baseline under the Table 6 memory and network variants, 64 cores.
func Fig11(o Options) []Fig11Row {
	profiles := apps.Profiles()
	if o.Quick {
		profiles = profiles[:0:0]
		for _, name := range []string{"streamcluster", "ocean-c", "radiosity", "fft", "blackscholes"} {
			p, _ := apps.ByName(name)
			p.Iterations = 3
			profiles = append(profiles, p)
		}
	}
	// One task per (variant, profile, kind) run; all independent.
	nk := len(appKinds)
	results := make([]apps.Result, len(config.Variants)*len(profiles)*nk)
	o.forEach(len(results), func(i int) {
		v := config.Variants[i/(len(profiles)*nk)]
		p := profiles[i/nk%len(profiles)]
		cfg := o.Config(config.Baseline, 64).WithVariant(v)
		cfg.Kind = appKinds[i%nk]
		results[i] = apps.RunExec(cfg, p, o.Exec)
	})
	var rows []Fig11Row
	tb := stats.NewTable("Figure 11: geomean speedup over Baseline by variant, 64 cores",
		"variant", "Baseline+", "WiSyncNoT", "WiSync")
	for vi, v := range config.Variants {
		acc := map[config.Kind][]float64{}
		for pi := range profiles {
			base := results[(vi*len(profiles)+pi)*nk]
			for ki, k := range appKinds[1:] {
				r := results[(vi*len(profiles)+pi)*nk+1+ki]
				acc[k] = append(acc[k], float64(base.Cycles)/float64(r.Cycles))
			}
		}
		for _, k := range appKinds[1:] {
			rows = append(rows, Fig11Row{Variant: v, Kind: k, GeoMean: stats.GeoMean(acc[k])})
		}
		tb.AddRow(v.String(), f2(stats.GeoMean(acc[config.BaselinePlus])),
			f2(stats.GeoMean(acc[config.WiSyncNoT])), f2(stats.GeoMean(acc[config.WiSync])))
	}
	fmt.Fprintln(o.out(), tb)
	var sched sim.SchedStats
	var energy wireless.EnergyStats
	for _, r := range results {
		sched.Add(r.Sched)
		energy.Add(r.Energy)
	}
	fprintSched(o, "fig11", sched)
	fprintEnergy(o, "fig11", energy)
	return rows
}

// All regenerates every table and figure in paper order.
func All(o Options) {
	Table4(o)
	Fig7(o)
	Fig8(o)
	Fig9(o)
	rows := Fig10(o)
	Table5(o, rows)
	Fig11(o)
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
