package harness_test

import (
	"fmt"
	"strings"

	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/harness"
)

// ExamplePointSpec builds one sweep point, validates it, and runs it to a
// golden-format metrics row. The zero value of every optional field is the
// canonical default, so this spec names the same simulation as the first
// row of testdata/golden.tsv — the output below is that row's ID and
// headline column, byte for byte.
func ExamplePointSpec() {
	spec := harness.PointSpec{
		Workload: "tightloop",
		Kind:     config.WiSync,
		Cores:    16,
		Seed:     1,
	}
	if err := spec.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	row, err := spec.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	cols := strings.SplitN(row, "\t", 3)
	fmt.Println(cols[0])
	fmt.Println(cols[1])
	// Output:
	// tightloop/WiSync/16c/s1
	// cycles=1804
}

// ExamplePointSpec_lossyChannel selects a lossy channel-error profile.
// Lossy rows carry three extra columns — total transceiver energy,
// retransmissions, delivery failures — while the default ideal channel
// keeps every row byte-identical to the golden matrices.
func ExamplePointSpec_lossyChannel() {
	spec := harness.PointSpec{
		Workload: "tightloop",
		Kind:     config.WiSyncNoT,
		Cores:    64,
		Seed:     3,
		Channel:  channel.Uniform,
		BER:      1e-5,
		Retries:  20,
	}
	row, err := spec.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, col := range strings.Split(row, "\t") {
		if strings.HasPrefix(col, "retx=") || strings.HasPrefix(col, "drops=") {
			fmt.Println(col)
		}
	}
	// Output:
	// retx=30
	// drops=0
}
