package harness_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/harness"
)

// ExamplePointSpec builds one sweep point, validates it, and runs it to a
// golden-format metrics row. The zero value of every optional field is the
// canonical default, so this spec names the same simulation as the first
// row of testdata/golden.tsv — the output below is that row's ID and
// headline column, byte for byte.
func ExamplePointSpec() {
	spec := harness.PointSpec{
		Workload: "tightloop",
		Kind:     config.WiSync,
		Cores:    16,
		Seed:     1,
	}
	if err := spec.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	row, err := spec.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	cols := strings.SplitN(row, "\t", 3)
	fmt.Println(cols[0])
	fmt.Println(cols[1])
	// Output:
	// tightloop/WiSync/16c/s1
	// cycles=1804
}

// ExamplePointSpec_lossyChannel selects a lossy channel-error profile.
// Lossy rows carry three extra columns — total transceiver energy,
// retransmissions, delivery failures — while the default ideal channel
// keeps every row byte-identical to the golden matrices.
func ExamplePointSpec_lossyChannel() {
	spec := harness.PointSpec{
		Workload: "tightloop",
		Kind:     config.WiSyncNoT,
		Cores:    64,
		Seed:     3,
		Channel:  channel.Uniform,
		BER:      1e-5,
		Retries:  20,
	}
	row, err := spec.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, col := range strings.Split(row, "\t") {
		if strings.HasPrefix(col, "retx=") || strings.HasPrefix(col, "drops=") {
			fmt.Println(col)
		}
	}
	// Output:
	// retx=30
	// drops=0
}

// ExampleServeWire shows one exchange of the subprocess wire protocol:
// the supervisor side (cmd/wisync-server via internal/workerpool) writes
// a sequence-numbered WireRequest to the worker's stdin, the worker side
// (cmd/wisync-worker) answers with one WireResponse. The row comes from
// the exact PointSpec.Run path, so it matches the in-process result — and
// the golden matrix — byte for byte.
func ExampleServeWire() {
	var stdin, stdout bytes.Buffer
	harness.EncodeWire(&stdin, harness.WireRequest{
		Seq:  7,
		Spec: harness.PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1},
	})
	if err := harness.ServeWire(&stdin, &stdout); err != nil {
		fmt.Println("worker:", err)
		return
	}
	var resp harness.WireResponse
	json.Unmarshal(stdout.Bytes(), &resp)
	fmt.Println(resp.Seq, resp.Err)
	fmt.Println(strings.SplitN(resp.Row, "\t", 2)[0])
	// Output:
	// 7 false
	// tightloop/WiSync/16c/s1
}
