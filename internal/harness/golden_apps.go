package harness

import (
	"fmt"
	"strings"

	"wisync/internal/apps"
	"wisync/internal/config"
	"wisync/internal/kernels"
)

// AppGoldenPoint is one cell of the full-application conformance matrix: a
// Table 3 profile run on one machine kind at the Figure 10 geometry (64
// cores) with one seed. Like the kernel matrix in golden.go, the committed
// file pins the simulator's observable behavior — cycles, Data-channel
// utilization, BM spills — so interpreter rewrites (the task-form port,
// recycled steps, queue storage) can be proven behavior-preserving by
// re-running the matrix and diffing. The committed golden_apps.tsv was
// generated from the blocking interpreter before the continuation port.
type AppGoldenPoint struct {
	App string
	// Iters overrides the catalog profile's iteration count, trimmed so
	// the matrix stays CI-fast; everything else comes from the catalog.
	Iters int
	Kind  config.Kind
	Seed  uint64
}

// ID names the point; it is the first column of the golden file.
func (pt AppGoldenPoint) ID() string {
	return fmt.Sprintf("%s/%s/64c/s%d", pt.App, pt.Kind, pt.Seed)
}

// AppGoldenPoints enumerates the matrix: three profiles covering the
// interpreter's qualitatively different paths — streamcluster
// (barrier-phase bound with reductions; the headline Figure 10 bar),
// radiosity (serialized hot locks), dedup (a lock array overflowing the BM,
// exercising the spill path) — across all four machine kinds and two seeds.
func AppGoldenPoints() []AppGoldenPoint {
	var pts []AppGoldenPoint
	for _, ap := range []struct {
		name  string
		iters int
	}{{"streamcluster", 3}, {"radiosity", 3}, {"dedup", 2}} {
		for _, k := range config.Kinds {
			for _, seed := range []uint64{1, 42} {
				pts = append(pts, AppGoldenPoint{App: ap.name, Iters: ap.iters, Kind: k, Seed: seed})
			}
		}
	}
	return pts
}

// AppGoldenRun executes one point in the default execution mode and
// renders its metrics line.
func AppGoldenRun(pt AppGoldenPoint) string { return AppGoldenRunExec(pt, kernels.ExecTask) }

// AppGoldenRunExec is AppGoldenRun with an explicit workload execution
// mode; both modes must render every line byte-identical to the committed
// file (TestGoldenAppsConformance pins the default, TestGoldenAppsBlocking-
// Equivalence the reference mode).
func AppGoldenRunExec(pt AppGoldenPoint, exec kernels.Exec) string {
	return appGoldenRunCfg(pt, config.New(pt.Kind, 64).WithSeed(pt.Seed), exec)
}

// AppGoldenRunShards executes one point on an engine partitioned into the
// given shard count; every line must render byte-identical to the
// unsharded golden file at any count.
func AppGoldenRunShards(pt AppGoldenPoint, shards int) string {
	cfg := config.New(pt.Kind, 64).WithSeed(pt.Seed).WithShards(shards)
	return appGoldenRunCfg(pt, cfg, kernels.ExecTask)
}

func appGoldenRunCfg(pt AppGoldenPoint, cfg config.Config, exec kernels.Exec) string {
	p, ok := apps.ByName(pt.App)
	if !ok {
		panic("harness: unknown golden app " + pt.App)
	}
	p.Iterations = pt.Iters
	r := apps.RunExec(cfg, p, exec)
	return pt.ID() + "\t" + strings.Join([]string{
		fmt.Sprintf("cycles=%d", r.Cycles),
		fmt.Sprintf("datautil=%s", gf(r.DataUtilPct)),
		fmt.Sprintf("spills=%d", r.Spills),
	}, "\t")
}

// AppGoldenTable runs every point across the worker pool and returns the
// full golden file contents, bit-identical at every worker count. points
// selects a subset (nil means all).
func AppGoldenTable(o Options, points []AppGoldenPoint) string {
	if points == nil {
		points = AppGoldenPoints()
	}
	lines := make([]string, len(points))
	o.forEach(len(points), func(i int) { lines[i] = AppGoldenRun(points[i]) })
	return strings.Join(lines, "\n") + "\n"
}
