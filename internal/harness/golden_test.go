package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wisync/internal/kernels"
)

// Regenerate the golden file after an INTENDED behavior change with:
//
//	go test ./internal/harness -run TestGoldenConformance -update-golden
//
// Never regenerate to make an engine refactor pass: the whole point of the
// file is that engine-level rewrites (event scheduling, continuation
// conversion, queue storage) must reproduce these numbers exactly.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden.tsv from the current simulator")

const goldenPath = "testdata/golden.tsv"

// shortPoints returns the 16-core half of the matrix in -short mode, the
// full matrix otherwise — the shared subsetting policy of the golden
// suites.
func shortPoints() []GoldenPoint {
	pts := GoldenPoints()
	if !testing.Short() {
		return pts
	}
	short := pts[:0:0]
	for _, pt := range pts {
		if pt.Cores <= 16 {
			short = append(short, pt)
		}
	}
	return short
}

// loadGolden reads the committed golden file as an id -> line map.
func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (generate with -update-golden): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		id, _, _ := strings.Cut(line, "\t")
		want[id] = line
	}
	return want
}

// compareToGolden asserts each produced line is byte-identical to the
// committed one. mode labels the execution mode in failure messages.
func compareToGolden(t *testing.T, want map[string]string, lines []string, mode string) {
	t.Helper()
	for _, line := range lines {
		id, _, _ := strings.Cut(line, "\t")
		wantLine, ok := want[id]
		if !ok {
			t.Errorf("%s: not in golden file (regenerate with -update-golden)", id)
			continue
		}
		if line != wantLine {
			t.Errorf("%s: %s execution diverged from golden\n got: %s\nwant: %s", id, mode, line, wantLine)
		}
	}
}

// TestGoldenConformance re-runs every conformance point and asserts each
// metrics line is byte-identical to the committed golden file. In -short
// mode only the 16-core half of the matrix runs (the full matrix still runs
// in the regular CI test job).
func TestGoldenConformance(t *testing.T) {
	pts := shortPoints()
	if *updateGolden {
		pts = GoldenPoints()
	}
	got := GoldenTable(Options{}, pts)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden points to %s", len(pts), goldenPath)
		return
	}

	want := loadGolden(t)
	compareToGolden(t, want, strings.Split(strings.TrimRight(got, "\n"), "\n"), "task")
	if !testing.Short() && len(want) != len(GoldenPoints()) {
		t.Errorf("golden file has %d points, matrix has %d (regenerate with -update-golden)",
			len(want), len(GoldenPoints()))
	}
}

// TestGoldenBlockingEquivalence re-runs the conformance matrix with
// blocking workload threads (the reference execution mode) and asserts
// every line matches the committed golden file byte for byte. Together
// with TestGoldenConformance — which runs the default continuation mode —
// this proves end to end that the two workload execution modes are
// bit-identical on every pinned metric and protocol counter. In -short
// mode only the 16-core half runs, like the conformance test.
func TestGoldenBlockingEquivalence(t *testing.T) {
	pts := shortPoints()
	lines := make([]string, len(pts))
	ForEach(0, len(pts), func(i int) { lines[i] = GoldenRunExec(pts[i], kernels.ExecThread) })
	compareToGolden(t, loadGolden(t), lines, "blocking")
}

// TestGoldenTableWorkerInvariant asserts the golden matrix itself is
// bit-identical at every worker count, extending the sweep-pool determinism
// property to the conformance suite.
func TestGoldenTableWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix twice")
	}
	seq := GoldenTable(Options{Workers: 1}, nil)
	par := GoldenTable(Options{Workers: poolWorkers()}, nil)
	if seq != par {
		t.Error("golden table differs between Workers=1 and a full pool")
	}
}
