package harness

import (
	"strings"
	"testing"

	"wisync/internal/config"
	"wisync/internal/kernels"
)

func quick() Options { return Options{Quick: true} }

func TestTable4MatchesPaper(t *testing.T) {
	var sb strings.Builder
	rows := Table4(Options{Out: &sb})
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	xeon, atom := rows[0], rows[1]
	// Paper: 0.7% / 0.4% for Xeon, 5.6% / 1.8% for Atom.
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(xeon.AreaPct, 0.7, 0.15) || !within(xeon.PowerPct, 0.4, 0.1) {
		t.Errorf("Xeon row = %.2f%% area, %.2f%% power; paper 0.7/0.4", xeon.AreaPct, xeon.PowerPct)
	}
	if !within(atom.AreaPct, 5.6, 0.5) || !within(atom.PowerPct, 1.8, 0.3) {
		t.Errorf("Atom row = %.2f%% area, %.2f%% power; paper 5.6/1.8", atom.AreaPct, atom.PowerPct)
	}
	if !strings.Contains(sb.String(), "Table 4") {
		t.Error("output missing table title")
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(quick())
	get := func(cores int, k config.Kind) float64 {
		for _, r := range rows {
			if r.Cores == cores && r.Kind == k {
				return r.CyclesPerIter
			}
		}
		t.Fatalf("missing row %d/%v", cores, k)
		return 0
	}
	for _, cores := range []int{16, 64, 128} {
		w, wnt := get(cores, config.WiSync), get(cores, config.WiSyncNoT)
		bp, b := get(cores, config.BaselinePlus), get(cores, config.Baseline)
		if !(w < wnt && wnt < bp && bp < b) {
			t.Errorf("%d cores: ordering violated: W %.0f WNT %.0f B+ %.0f B %.0f", cores, w, wnt, bp, b)
		}
	}
	// WiSync stays nearly flat with core count; Baseline grows steeply.
	if get(128, config.WiSync) > 4*get(16, config.WiSync) {
		t.Errorf("WiSync not flat: %0.f at 16 cores vs %.0f at 128",
			get(16, config.WiSync), get(128, config.WiSync))
	}
	if get(128, config.Baseline) < 3*get(16, config.Baseline) {
		t.Errorf("Baseline does not degrade with cores: %.0f at 16 vs %.0f at 128",
			get(16, config.Baseline), get(128, config.Baseline))
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(quick())
	get := func(loop, length int, k config.Kind) float64 {
		for _, r := range rows {
			if r.Loop == loop && r.Length == length && r.Cores == 64 && r.Kind == k {
				return float64(r.Cycles)
			}
		}
		t.Fatalf("missing row loop%d n=%d %v", loop, length, k)
		return 0
	}
	for _, loop := range []int{2, 3} {
		// Gains are largest at small vectors and shrink as n grows.
		smallAdv := get(loop, 16, config.Baseline) / get(loop, 16, config.WiSync)
		largeAdv := get(loop, 4096, config.Baseline) / get(loop, 4096, config.WiSync)
		if smallAdv < 3 {
			t.Errorf("loop %d: small-vector advantage %.1fx, want large", loop, smallAdv)
		}
		if largeAdv >= smallAdv {
			t.Errorf("loop %d: advantage did not shrink with n (%.1f -> %.1f)", loop, smallAdv, largeAdv)
		}
	}
	// Loop 6 at growing n: Baseline+ approaches WiSync.
	gap := func(n int) float64 { return get(6, n, config.BaselinePlus) / get(6, n, config.WiSync) }
	if gap(512) >= gap(16) {
		t.Errorf("loop 6: Baseline+/WiSync gap did not shrink: %.2f -> %.2f", gap(16), gap(512))
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9(quick())
	get := func(kn kernels.CASKind, cs int, k config.Kind) float64 {
		for _, r := range rows {
			if r.Kernel == kn && r.CSInstr == cs && r.Kind == k {
				return r.Per1000
			}
		}
		t.Fatalf("missing row %v cs=%d %v", kn, cs, k)
		return 0
	}
	for _, kn := range []kernels.CASKind{kernels.FIFO, kernels.LIFO, kernels.ADD} {
		// Near parity at 16K instructions; ~10x at high contention.
		parity := get(kn, 16384, config.WiSync) / get(kn, 16384, config.Baseline)
		contended := get(kn, 16, config.WiSync) / get(kn, 16, config.Baseline)
		if parity > 3 {
			t.Errorf("%v: WiSync/Baseline at 16K = %.1fx, want near parity", kn, parity)
		}
		if contended < 4 {
			t.Errorf("%v: WiSync/Baseline at 16 instr = %.1fx, want >= 4x", kn, contended)
		}
		if contended <= parity {
			t.Errorf("%v: gap did not grow with contention (%.1f -> %.1f)", kn, parity, contended)
		}
	}
}

func TestFig10AndTable5Shape(t *testing.T) {
	rows := Fig10(quick())
	byName := map[string]AppRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	sc := byName["streamcluster"]
	if sc.Speedup[config.WiSync] < 3 {
		t.Errorf("streamcluster WiSync speedup %.2f, want ~6", sc.Speedup[config.WiSync])
	}
	if sc.UtilW > sc.UtilWNoT/2 {
		t.Errorf("streamcluster: tone did not offload Data channel (%.2f vs %.2f)",
			sc.UtilW, sc.UtilWNoT)
	}
	bs := byName["blackscholes"]
	if bs.Speedup[config.WiSync] > 1.15 {
		t.Errorf("blackscholes speedup %.2f, want ~1.0", bs.Speedup[config.WiSync])
	}
	var sb strings.Builder
	Table5(Options{Out: &sb}, rows)
	if !strings.Contains(sb.String(), "streamcluster") {
		t.Error("Table 5 output missing streamcluster row")
	}
}

func TestFig11Shape(t *testing.T) {
	rows := Fig11(quick())
	get := func(v config.Variant, k config.Kind) float64 {
		for _, r := range rows {
			if r.Variant == v && r.Kind == k {
				return r.GeoMean
			}
		}
		t.Fatalf("missing row %v %v", v, k)
		return 0
	}
	// Paper: WiSync speedups rise with a slower NoC and fall with a
	// faster one; BM latency is marginal.
	def := get(config.Default, config.WiSync)
	if get(config.SlowNet, config.WiSync) <= def {
		t.Errorf("SlowNet did not increase WiSync speedup: %.3f vs %.3f",
			get(config.SlowNet, config.WiSync), def)
	}
	if get(config.FastNet, config.WiSync) >= def {
		t.Errorf("FastNet did not decrease WiSync speedup: %.3f vs %.3f",
			get(config.FastNet, config.WiSync), def)
	}
	slowBM := get(config.SlowBMEM, config.WiSync)
	if slowBM < 0.9*def || slowBM > 1.1*def {
		t.Errorf("SlowBMEM moved WiSync speedup too much: %.3f vs %.3f", slowBM, def)
	}
}
