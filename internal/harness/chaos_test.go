package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/fault"
	"wisync/internal/kernels"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// chaosPlan builds a seeded random fault plan for a cores-node machine:
// one mid-run fail-stop, one or two transient outages, and a token-loss
// event (consulted only by the token MAC, harmless elsewhere). The rand
// source is the test's, not the simulation's — each generated plan is
// itself deterministic data.
func chaosPlan(rng *rand.Rand, cores int) *fault.Plan {
	p := &fault.Plan{
		Outages: []fault.Outage{
			{Node: rng.Intn(cores), At: uint64(3000 + rng.Intn(9000))},
		},
		TokenLoss: []uint64{uint64(3000 + rng.Intn(6000))},
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		p.Outages = append(p.Outages, fault.Outage{
			Node: rng.Intn(cores),
			At:   uint64(500 + rng.Intn(8000)),
			For:  uint64(200 + rng.Intn(1500)),
		})
	}
	p.Normalize()
	return p
}

// TestChaosRandomizedFaultPlans is the chaos sweep: seeded random fault
// plans across the lock-free kernels, every MAC protocol, and shard counts
// {1, 4}. Each point must terminate (the watchdog converts a livelock into
// an error, and any error fails the test), and its row must be
// byte-identical across shard counts and on a rerun.
func TestChaosRandomizedFaultPlans(t *testing.T) {
	t.Parallel()
	for mi, mac := range wireless.MACKinds {
		for wi, workload := range []string{"cas-add", "cas-fifo"} {
			mac, workload := mac, workload
			rng := rand.New(rand.NewSource(int64(1000*mi + wi)))
			plan := chaosPlan(rng, 16)
			t.Run(fmt.Sprintf("%v/%s", mac, workload), func(t *testing.T) {
				t.Parallel()
				spec := PointSpec{
					Workload: workload, Kind: config.WiSync, Cores: 16, Seed: 1,
					MAC: mac, Faults: plan, Watchdog: 200000,
				}
				var rows []string
				for _, shards := range []int{1, 4} {
					s := spec
					s.Shards = shards
					for run := 0; run < 2; run++ {
						row, err := s.Run()
						if err != nil {
							t.Fatalf("shards=%d run=%d: %v (plan %+v)", shards, run, err, plan)
						}
						rows = append(rows, row)
					}
				}
				for i := 1; i < len(rows); i++ {
					if rows[i] != rows[0] {
						t.Fatalf("row %d diverged under plan %+v:\ngot:  %s\nwant: %s",
							i, plan, rows[i], rows[0])
					}
				}
			})
		}
	}
}

// TestTokenFailStopRecovery pins the token MAC's degradation protocol: a
// mid-run transceiver fail-stop loses the token when the ring path crosses
// the dead node, the bounded timeout regenerates it (counted in MACStats),
// the dead node's thread retires into a fault record, and the surviving
// cores finish the kernel — with every counter identical across shard
// counts and across concurrent reruns.
func TestTokenFailStopRecovery(t *testing.T) {
	t.Parallel()
	plan := &fault.Plan{Outages: []fault.Outage{{Node: 3, At: 8000}}}
	cfg := config.New(config.WiSync, 16).WithMAC(wireless.MACToken).
		WithFaults(plan).WithWatchdog(200000)
	ref := kernels.CASKernel(cfg, kernels.ADD, 50, 30000)
	if ref.MAC.TokenRegens == 0 {
		t.Fatalf("no token regeneration after fail-stop: MAC=%+v", ref.MAC)
	}
	if len(ref.Faults) == 0 {
		t.Fatalf("no fault records for the dead node: %+v", ref)
	}
	for _, f := range ref.Faults {
		if f.Core != 3 || f.Cycle < 8000 {
			t.Fatalf("fault record outside the plan: %+v", f)
		}
	}
	if ref.Successes == 0 {
		t.Fatalf("surviving cores made no progress: %+v", ref)
	}

	// Shard counts do not change a faulty run.
	for _, shards := range []int{2, 4} {
		r := kernels.CASKernel(cfg.WithShards(shards), kernels.ADD, 50, 30000)
		if r.Successes != ref.Successes || r.Failures != ref.Failures ||
			!reflect.DeepEqual(r.Net, ref.Net) || !reflect.DeepEqual(r.MAC, ref.MAC) ||
			!reflect.DeepEqual(r.Energy, ref.Energy) || !reflect.DeepEqual(r.Faults, ref.Faults) {
			t.Fatalf("shards=%d diverged:\ngot:  %+v\nwant: %+v", shards, r, ref)
		}
	}

	// Concurrent reruns (the -workers axis) are byte-identical rows.
	spec := PointSpec{
		Workload: "cas-add", Kind: config.WiSync, Cores: 16, Seed: 1, CS: 50,
		Duration: 30000, MAC: wireless.MACToken, Faults: plan, Watchdog: 200000,
	}
	want, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	rows := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], errs[i] = spec.Run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if rows[i] != want {
			t.Fatalf("worker %d row diverged:\ngot:  %s\nwant: %s", i, rows[i], want)
		}
	}
}

// TestChaosCounterConservation pins the fault-path accounting under an
// ideal channel: corruption counters stay zero, fault-injected send
// failures are counted, and every granted transmission is a committed
// message (grants that the injector aborts are not counted as grants).
func TestChaosCounterConservation(t *testing.T) {
	t.Parallel()
	plan := &fault.Plan{Outages: []fault.Outage{
		{Node: 2, At: 5000},             // fail-stop
		{Node: 7, At: 1000, For: 25000}, // outage spanning most of the run
	}}
	cfg := config.New(config.WiSync, 16).WithFaults(plan).WithWatchdog(200000)
	r := kernels.CASKernel(cfg, kernels.ADD, 50, 30000)
	if r.Energy.Retransmissions != 0 || r.Energy.DeliveryFailures != 0 {
		t.Fatalf("ideal channel reported corruption: %+v", r.Energy)
	}
	if r.Energy.FaultedSends == 0 {
		t.Fatalf("no faulted sends despite outages: %+v", r.Energy)
	}
	if r.Energy.RetxPJ != 0 {
		t.Fatalf("retransmission energy on an ideal channel: %+v", r.Energy)
	}
	if r.MAC.Grants != r.Net.Messages {
		t.Fatalf("grant/message conservation broken: grants=%d messages=%d",
			r.MAC.Grants, r.Net.Messages)
	}
	if r.Successes == 0 {
		t.Fatalf("no progress under the plan: %+v", r)
	}

	// The same plan under a no-fault control: the fault counters exist
	// only when injected.
	clean := kernels.CASKernel(config.New(config.WiSync, 16), kernels.ADD, 50, 30000)
	if clean.Energy.FaultedSends != 0 || clean.MAC.TokenRegens != 0 || len(clean.Faults) != 0 {
		t.Fatalf("fault counters nonzero without a plan: %+v", clean)
	}
}

// TestFailStopBarrierDeadlock pins the degraded-diagnostics satellite: a
// fail-stop under a barrier workload (task mode) parks the survivors
// forever, and the resulting structured deadlock error reports the
// simulated cycle and each parked core's last-operation breadcrumb with
// its address.
func TestFailStopBarrierDeadlock(t *testing.T) {
	t.Parallel()
	spec := PointSpec{
		Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1,
		Iters: 500, Faults: &fault.Plan{Outages: []fault.Outage{{Node: 5, At: 6000}}},
	}
	_, err := spec.Run()
	if err == nil {
		t.Fatal("barrier workload completed despite a fail-stopped participant")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock at cycle") {
		t.Fatalf("deadlock error lacks the simulated time: %v", err)
	}
	if !strings.Contains(msg, "addr=0x") {
		t.Fatalf("deadlock error lacks last-operation breadcrumbs: %v", err)
	}
}

// TestBudgetAndAbortRows pins the structured guard errors through the
// harness: a cycle budget below the point's natural length fails with
// core.BudgetError (classifiable via errors.As through the row error
// chain), and a pre-cancelled context fails with core.ErrAborted.
func TestBudgetAndAbortRows(t *testing.T) {
	t.Parallel()
	spec := PointSpec{
		Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1,
		Iters: 500, Budget: 10000,
	}
	_, err := spec.Run()
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget trip did not surface a BudgetError: %v", err)
	}
	if be.Budget != 10000 || be.Now > 10000 || len(be.Parked) == 0 {
		t.Fatalf("malformed BudgetError: %+v", be)
	}

	spec.Budget = 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = spec.RunCtx(ctx)
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("cancelled context did not abort: %v", err)
	}

	// A budget the run fits inside changes nothing: the guarded chunked
	// loop is bit-identical to the unguarded run.
	free := PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1, Iters: 50}
	want, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	free.Budget = uint64(sim.Time(50_000_000))
	got, err := free.Run()
	if err != nil {
		t.Fatalf("in-budget run failed: %v", err)
	}
	if got != want {
		t.Fatalf("guarded run diverged from unguarded:\ngot:  %s\nwant: %s", got, want)
	}
}
