package harness

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"wisync/internal/config"
)

// TestServeWireRoundTrip pins the subprocess protocol end to end in one
// process: a spec encoded down the pipe comes back as the byte-identical
// row PointSpec.Run produces, and an invalid spec comes back as a
// structured error response — never a dead serve loop.
func TestServeWireRoundTrip(t *testing.T) {
	good := PointSpec{Workload: "tightloop", Kind: config.WiSync, Cores: 16, Seed: 1}
	wantRow, err := good.Run()
	if err != nil {
		t.Fatalf("inproc run: %v", err)
	}
	bad := PointSpec{Workload: "mystery", Kind: config.WiSync, Cores: 16, Seed: 1}

	var in, out bytes.Buffer
	for i, spec := range []PointSpec{good, bad, good} {
		if err := EncodeWire(&in, WireRequest{Seq: uint64(i + 1), Spec: spec}); err != nil {
			t.Fatalf("encoding request %d: %v", i, err)
		}
	}
	if err := ServeWire(&in, &out); err != nil {
		t.Fatalf("ServeWire: %v", err)
	}

	var resps []WireResponse
	dec := newWireDecoder(t, &out)
	for {
		var r WireResponse
		if !dec(&r) {
			break
		}
		resps = append(resps, r)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	if resps[0].Seq != 1 || resps[0].Err || resps[0].Row != wantRow {
		t.Fatalf("good response drifted: %+v, want row %q", resps[0], wantRow)
	}
	if resps[1].Seq != 2 || !resps[1].Err || !strings.Contains(resps[1].Error, "unknown workload") {
		t.Fatalf("bad spec response: %+v", resps[1])
	}
	if resps[2].Row != wantRow {
		t.Fatalf("repeat response differs from first: %q vs %q", resps[2].Row, wantRow)
	}
}

// TestServeWireGarbage pins that a corrupt request stream is a returned
// error, not a hang or panic.
func TestServeWireGarbage(t *testing.T) {
	var out bytes.Buffer
	if err := ServeWire(strings.NewReader("{not json\n"), &out); err == nil {
		t.Fatal("garbage request stream did not error")
	}
}

// newWireDecoder returns a closure decoding one response per call,
// reporting false at EOF and failing the test on anything malformed.
func newWireDecoder(t *testing.T, r io.Reader) func(*WireResponse) bool {
	t.Helper()
	dec := json.NewDecoder(r)
	return func(v *WireResponse) bool {
		err := dec.Decode(v)
		if err == io.EOF {
			return false
		}
		if err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return true
	}
}
