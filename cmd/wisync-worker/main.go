// Command wisync-worker is one OS-isolated sweep-point executor: the
// subprocess side of cmd/wisync-server's -isolation=proc mode.
//
// It speaks the harness wire protocol on stdin/stdout — one
// harness.WireRequest (a JSON-encoded PointSpec) per line down, one
// harness.WireResponse (the golden-format row or a structured error) back
// — and runs the exact PointSpec.Run path, so rows computed here are
// byte-identical to in-process execution. The process carries no state
// between points: everything durable (cache, journal) lives with the
// supervisor.
//
// Workers are not meant to be launched by hand; internal/workerpool
// spawns, feeds, hard-kills and restarts them. Run one interactively for
// debugging:
//
//	echo '{"seq":1,"spec":{"workload":"tightloop","kind":"WiSync","cores":16,"seed":1}}' | wisync-worker
//
// Exit status is 0 on a clean EOF from the supervisor and 1 on a
// malformed request stream or broken pipe; anything else (signal death,
// OOM kill, runtime crash) is exactly the failure mode process isolation
// exists to contain.
package main

import (
	"flag"
	"fmt"
	"os"

	"wisync/internal/harness"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wisync-worker < requests.ndjson\n\nsweep-point worker subprocess; see cmd/wisync-server -isolation=proc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := harness.ServeWire(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wisync-worker: %v\n", err)
		os.Exit(1)
	}
}
