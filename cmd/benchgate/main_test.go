package main

import (
	"strings"
	"testing"
)

const oldRun = `goos: linux
goarch: amd64
pkg: wisync
BenchmarkFig7TightLoop-8     	       5	 200000000 ns/op	         2.250 baseline/wisync@128c
BenchmarkFig7TightLoop-8     	       5	 210000000 ns/op	         2.250 baseline/wisync@128c
BenchmarkFig7TightLoop-8     	       5	 190000000 ns/op	         2.250 baseline/wisync@128c
BenchmarkScheduleDrain-8     	25000000	        48.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleDrain-8     	25000000	        47.90 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleDrain-8     	25000000	        48.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkTxnContended/mem-8  	    1000	   1500000 ns/op	    102692 cyc
BenchmarkTxnContended/mem-8  	    1000	   1550000 ns/op	    102692 cyc
PASS
`

func newRun(tightloop, drain, mem string) string {
	return `pkg: wisync
BenchmarkFig7TightLoop-4     	       5	 ` + tightloop + ` ns/op
BenchmarkScheduleDrain-4     	25000000	        ` + drain + ` ns/op
BenchmarkTxnContended/mem-4  	    1000	   ` + mem + ` ns/op
BenchmarkAdded-4             	    1000	   9999999 ns/op
PASS
`
}

func parseStr(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parseStr(t, oldRun)
	if len(m["BenchmarkFig7TightLoop"]) != 3 {
		t.Errorf("tightloop samples = %v", m["BenchmarkFig7TightLoop"])
	}
	if len(m["BenchmarkTxnContended/mem"]) != 2 {
		t.Errorf("sub-benchmark samples = %v", m["BenchmarkTxnContended/mem"])
	}
	// The GOMAXPROCS suffix is stripped, non-benchmark lines skipped.
	if _, ok := m["BenchmarkScheduleDrain-8"]; ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
	if got := median(m["BenchmarkScheduleDrain"]); got != 48.0 {
		t.Errorf("median = %v, want 48", got)
	}
}

func TestGatePassesWhenFlat(t *testing.T) {
	old := parseStr(t, oldRun)
	cur := parseStr(t, newRun("201000000", "48.20", "1520000"))
	report, geomean, err := gate(old, cur, 1.15)
	if err != nil {
		t.Fatalf("flat run failed the gate: %v\n%s", err, report)
	}
	if geomean < 0.95 || geomean > 1.05 {
		t.Errorf("geomean = %v, want ~1.0", geomean)
	}
	// Benchmarks only in the new run are reported but don't gate.
	if !strings.Contains(report, "BenchmarkAdded") {
		t.Errorf("report does not mention the added benchmark:\n%s", report)
	}
}

func TestGateFailsOnGeomeanRegression(t *testing.T) {
	old := parseStr(t, oldRun)
	// Every benchmark 30% slower: geomean 1.3 > 1.15.
	cur := parseStr(t, newRun("260000000", "62.40", "1976500"))
	report, geomean, err := gate(old, cur, 1.15)
	if err == nil {
		t.Fatalf("30%% regression passed the gate: %v\n%s", geomean, report)
	}
	if geomean < 1.25 || geomean > 1.35 {
		t.Errorf("geomean = %v, want ~1.3", geomean)
	}
}

func TestGateToleratesSingleOutlier(t *testing.T) {
	old := parseStr(t, oldRun)
	// One benchmark 30% slower, the others flat: geomean ~1.09 stays
	// under the 15% limit — a single noisy benchmark doesn't block CI,
	// a broad slowdown does.
	cur := parseStr(t, newRun("260000000", "48.00", "1525000"))
	if report, _, err := gate(old, cur, 1.15); err != nil {
		t.Fatalf("single outlier failed the gate: %v\n%s", err, report)
	}
}

// TestGateFailsOnMissingBenchmark: a benchmark named in the baseline but
// absent from the new run is a hard, named error — never a silent (or
// zero-benchmark) pass.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	old := parseStr(t, oldRun+"BenchmarkRemoved-8 1000 1000000 ns/op\n")
	cur := parseStr(t, newRun("201000000", "48.20", "1520000"))
	report, _, err := gate(old, cur, 1.15)
	if err == nil {
		t.Fatalf("missing baseline benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(err.Error(), "BenchmarkRemoved") {
		t.Errorf("error does not name the missing benchmark: %v", err)
	}
	if !strings.Contains(report, "MISSING") {
		t.Errorf("report does not flag the missing benchmark:\n%s", report)
	}
}

// TestGateNoCommonBenchmarks: a fully disjoint pair means every baseline
// benchmark is missing — that must fail loudly, not pass on an empty
// intersection.
func TestGateNoCommonBenchmarks(t *testing.T) {
	old := parseStr(t, "BenchmarkOnlyOld-2 1 5 ns/op\n")
	cur := parseStr(t, "BenchmarkOnlyNew-2 1 5 ns/op\n")
	if _, _, err := gate(old, cur, 1.15); err == nil {
		t.Error("disjoint benchmark sets must fail the gate")
	}
	// An empty baseline (truncated or corrupt file) must fail too — a
	// gate with zero comparisons is not a pass.
	if _, _, err := gate(map[string][]float64{}, cur, 1.15); err == nil {
		t.Error("empty baseline must fail the gate")
	}
}
