// Command benchgate is the CI benchmark-regression gate: it compares two
// Go benchmark output files (the checked-in bench_baseline.txt against a
// fresh run) and fails when the geometric mean of the per-benchmark
// time/op ratios exceeds a threshold.
//
// Usage:
//
//	benchgate -baseline bench_baseline.txt -new bench_new.txt [-max 1.15]
//
// Each file is standard `go test -bench` output, ideally with -count=5 or
// more; benchgate takes the median time/op per benchmark name (medians
// shrug off the one-off scheduling hiccups that plague CI runners, where
// benchstat's mean-based deltas would flap) and reports every ratio plus
// the geomean. Benchmarks present only in the new run are reported but do
// not gate, so adding a benchmark never requires touching the baseline in
// the same change. A benchmark named in the baseline but missing from the
// new run, however, is a hard error: a renamed or silently-skipped
// benchmark must not dilute the gate into a zero-benchmark pass —
// removing one intentionally means removing it from the baseline too.
//
// The companion benchstat comparison in CI is informational; this tool is
// the pass/fail decision. To refresh the baseline after an intended
// performance change (or a runner-hardware change), download the
// bench_new.txt artifact from a trusted run on main and commit it as
// bench_baseline.txt — see the README's "Benchmark regression gate"
// section.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "bench_baseline.txt", "baseline benchmark output")
	fresh := flag.String("new", "bench_new.txt", "freshly produced benchmark output")
	max := flag.Float64("max", 1.15, "maximum allowed new/old geomean time ratio")
	flag.Parse()

	old, err := parseFile(*baseline)
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := parseFile(*fresh)
	if err != nil {
		fatalf("%v", err)
	}
	report, _, err := gate(old, cur, *max)
	fmt.Print(report)
	if err != nil {
		fatalf("%v", err)
	}
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts ns/op samples per benchmark name from `go test
// -bench` output. The trailing -N GOMAXPROCS suffix is stripped so runs
// from machines with different core counts stay comparable.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark lines read: name, iterations, value, unit, [more
		// value/unit pairs]. Find the ns/op pair.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 3; i < len(fields); i += 2 {
			if fields[i] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate renders the comparison table and decides pass/fail. Two failure
// modes: the geometric mean of new/old median ratios over the baseline's
// benchmarks exceeds max, or a benchmark named in the baseline is missing
// from the new run entirely — a renamed or silently-skipped benchmark
// must surface as an explicit baseline edit, never as a quietly weaker
// (or empty) gate.
func gate(old, cur map[string][]float64, max float64) (report string, geomean float64, err error) {
	var names []string
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	var logSum float64
	var compared int
	var missing []string
	fmt.Fprintf(&b, "%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o := median(old[name])
		samples, present := cur[name]
		if !present {
			missing = append(missing, name)
			fmt.Fprintf(&b, "%-50s %14.0f %14s %8s  (MISSING from new run)\n", name, o, "missing", "-")
			continue
		}
		n := median(samples)
		ratio := n / o
		logSum += math.Log(ratio)
		compared++
		fmt.Fprintf(&b, "%-50s %14.0f %14.0f %8.3f\n", name, o, n, ratio)
	}
	var added []string
	for name := range cur {
		if _, present := old[name]; !present {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(&b, "%-50s %14s %14.0f %8s  (not in baseline)\n", name, "-", median(cur[name]), "-")
	}
	if len(missing) > 0 {
		return b.String(), 0, fmt.Errorf(
			"%d benchmark(s) named in the baseline are missing from the new run: %s "+
				"(renamed or skipped? run them, or remove them from the baseline explicitly)",
			len(missing), strings.Join(missing, ", "))
	}
	if compared == 0 {
		// A baseline naming nothing means the file is truncated, corrupt,
		// or the benchmark output format drifted past the parser — never
		// a state to wave through.
		return b.String(), 0, fmt.Errorf("baseline contains no benchmarks: nothing to gate (corrupt or truncated baseline file?)")
	}
	geomean = math.Exp(logSum / float64(compared))
	verdict := "within"
	if geomean > max {
		verdict = "EXCEEDS"
	}
	fmt.Fprintf(&b, "geomean ratio over %d benchmarks: %.3f (%s limit %.2f)\n",
		compared, geomean, verdict, max)
	if geomean > max {
		return b.String(), geomean, fmt.Errorf("geomean time ratio %.3f exceeds limit %.2f", geomean, max)
	}
	return b.String(), geomean, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
