// Command wisync-bench regenerates the tables and figures of the paper's
// evaluation (Section 7).
//
// Usage:
//
//	wisync-bench [-quick] [table4|fig7|fig8|fig9|fig10|table5|fig11|all]
//
// Each subcommand prints the same rows or series the paper reports. Shapes
// (who wins, by roughly what factor, where crossovers fall) reproduce the
// paper; absolute cycle counts come from this repository's simulator, not
// the authors' Multi2Sim testbed. -quick shrinks the sweeps; -workers sets
// how many sweep points simulate concurrently (every sweep point is an
// independent seeded simulation, so the output is identical at any worker
// count).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wisync/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	workers := flag.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = sequential); results are identical at any value")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wisync-bench [-quick] [-workers n] [table4|fig7|fig8|fig9|fig10|table5|fig11|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	o := harness.Options{Quick: *quick, Workers: *workers, Out: os.Stdout}
	start := time.Now()
	switch what {
	case "table4":
		harness.Table4(o)
	case "fig7":
		harness.Fig7(o)
	case "fig8":
		harness.Fig8(o)
	case "fig9":
		harness.Fig9(o)
	case "fig10":
		harness.Fig10(o)
	case "table5":
		harness.Table5(o, nil)
	case "fig11":
		harness.Fig11(o)
	case "all":
		harness.All(o)
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
