// Command wisync-bench regenerates the tables and figures of the paper's
// evaluation (Section 7), plus the MAC-protocol comparison sweep.
//
// Usage:
//
//	wisync-bench [-quick] [-mac backoff|token|adaptive] [-cpuprofile f] [-memprofile f] [table4|fig7|fig8|fig9|fig10|table5|fig11|macs|all]
//
// Each subcommand prints the same rows or series the paper reports. Shapes
// (who wins, by roughly what factor, where crossovers fall) reproduce the
// paper; absolute cycle counts come from this repository's simulator, not
// the authors' Multi2Sim testbed. -quick shrinks the sweeps; -workers sets
// how many sweep points simulate concurrently (every sweep point is an
// independent seeded simulation, so the output is identical at any worker
// count); -mac swaps the wireless channel's arbitration protocol for every
// figure ("macs" compares all three side by side); -list enumerates the
// available subcommands and MAC protocols.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wisync/internal/channel"
	"wisync/internal/core"
	"wisync/internal/fault"
	"wisync/internal/harness"
	"wisync/internal/profiling"
	"wisync/internal/wireless"
)

var commands = []struct {
	name string
	run  func(harness.Options)
}{
	{"table4", func(o harness.Options) { harness.Table4(o) }},
	{"fig7", func(o harness.Options) { harness.Fig7(o) }},
	{"fig8", func(o harness.Options) { harness.Fig8(o) }},
	{"fig9", func(o harness.Options) { harness.Fig9(o) }},
	{"fig10", func(o harness.Options) { harness.Fig10(o) }},
	{"table5", func(o harness.Options) { harness.Table5(o, nil) }},
	{"fig11", func(o harness.Options) { harness.Fig11(o) }},
	{"macs", func(o harness.Options) { harness.MACSweep(o) }},
	{"all", harness.All},
}

func commandNames() []string {
	names := make([]string, len(commands))
	for i, c := range commands {
		names[i] = c.name
	}
	return names
}

func macNames() []string {
	names := make([]string, len(wireless.MACKinds))
	for i, k := range wireless.MACKinds {
		names[i] = k.String()
	}
	return names
}

func channelNames() []string {
	names := make([]string, len(channel.Profiles))
	for i, p := range channel.Profiles {
		names[i] = p.String()
	}
	return names
}

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	workers := flag.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = sequential); results are identical at any value")
	shards := flag.Int("shards", 0, "engine shards per sweep point (0 = unsharded); results are identical at any value")
	macName := flag.String("mac", "backoff", "wireless MAC protocol: "+strings.Join(macNames(), "|"))
	chName := flag.String("channel", "ideal", "wireless channel-error profile: "+strings.Join(channelNames(), "|"))
	ber := flag.Float64("ber", 0, "raw bit-error rate of the worst link for lossy -channel profiles (0 = profile default)")
	retries := flag.Int("retries", 0, "retransmission budget per message for lossy -channel profiles (0 = default)")
	faultsFlag := flag.String("faults", "", "deterministic fault-injection plan: inline JSON or @file, applied to every wireless point (see internal/fault)")
	pointBudget := flag.Uint64("point-budget", 0, "cycle budget per sweep point (0 = unlimited)")
	execName := flag.String("exec", "task", "application workload execution mode: task|thread (identical simulated results)")
	verbose := flag.Bool("v", false, "append scheduler-internals diagnostics (# sched lines: wheel hits, heap fallbacks, step-pool reuse)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	list := flag.Bool("list", false, "list available subcommands and MAC protocols, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wisync-bench [-quick] [-workers n] [-shards n] [-mac p] [-exec m] [-v] [-list] [%s]\n",
			strings.Join(commandNames(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		fmt.Printf("subcommands: %s\n", strings.Join(commandNames(), " "))
		fmt.Printf("macs: %s\n", strings.Join(macNames(), " "))
		fmt.Printf("channels: %s\n", strings.Join(channelNames(), " "))
		return
	}
	mac, ok := wireless.ParseMACKind(*macName)
	if !ok {
		fmt.Fprintf(os.Stderr, "wisync-bench: unknown MAC %q (one of: %s)\n", *macName, strings.Join(macNames(), ", "))
		os.Exit(2)
	}
	chProfile, ok := channel.ParseProfile(*chName)
	if !ok {
		fmt.Fprintf(os.Stderr, "wisync-bench: unknown channel profile %q (one of: %s)\n", *chName, strings.Join(channelNames(), ", "))
		os.Exit(2)
	}
	chParams := channel.Params{Profile: chProfile, BER: *ber, MaxRetries: *retries}
	if err := chParams.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wisync-bench: %v\n", err)
		os.Exit(2)
	}
	plan, err := fault.ParseFlag(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wisync-bench: %v\n", err)
		os.Exit(2)
	}
	exec, ok := core.ParseExec(*execName)
	if !ok {
		fmt.Fprintf(os.Stderr, "wisync-bench: unknown exec mode %q (task or thread)\n", *execName)
		os.Exit(2)
	}
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	o := harness.Options{Quick: *quick, Workers: *workers, MAC: mac, Channel: chParams,
		Exec: exec, Shards: *shards, Faults: plan, Budget: *pointBudget,
		Verbose: *verbose, Out: os.Stdout}
	for _, c := range commands {
		if c.name != what {
			continue
		}
		// Self-describing sweep output: lead with the effective
		// configuration. The macs subcommand compares every protocol and
		// ignores -mac, so its header must not claim one.
		macDesc := mac.String()
		if what == "macs" {
			macDesc = "all-compared"
		}
		fmt.Printf("# wisync-bench cmd=%s quick=%v workers=%d shards=%d mac=%s channel=%v ber=%g retries=%d faults=%q point-budget=%d exec=%v seed=1\n",
			what, *quick, *workers, *shards, macDesc, chProfile, *ber, *retries, *faultsFlag, *pointBudget, exec)
		stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wisync-bench: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		c.run(o)
		stopProfiles()
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	flag.Usage()
	os.Exit(2)
}
