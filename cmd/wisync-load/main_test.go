package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// identity stands in for jitter50 so delay assertions stay exact.
func identity(d time.Duration) time.Duration { return d }

// TestRetryDelayBackoffFallback pins the 429 spacing when the server's
// Retry-After is unusable: capped exponential growth, never the old
// linear crawl, for every malformed-header shape.
func TestRetryDelayBackoffFallback(t *testing.T) {
	for _, header := range []string{"", "0", "-3", "soon", "1.5", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		wants := []time.Duration{
			100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
			800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
			5 * time.Second, 5 * time.Second,
		}
		for attempt, want := range wants {
			if got := retryDelay(attempt, header, identity); got != want {
				t.Fatalf("retryDelay(%d, %q) = %v, want %v", attempt, header, got, want)
			}
		}
		// The cap holds arbitrarily deep, including where a naive shift
		// would overflow.
		for _, attempt := range []int{10, 63, 64, 1000} {
			if got := retryDelay(attempt, header, identity); got != 5*time.Second {
				t.Fatalf("retryDelay(%d, %q) = %v, want the 5s cap", attempt, header, got)
			}
		}
	}
}

// TestRetryDelayHonorsRetryAfter pins that a usable positive Retry-After
// wins over the backoff schedule, unjittered.
func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	panicJitter := func(time.Duration) time.Duration { panic("jitter applied to a server hint") }
	if got := retryDelay(0, "2", panicJitter); got != 500*time.Millisecond {
		t.Fatalf("retryDelay with Retry-After 2 = %v, want 500ms", got)
	}
	if got := retryDelay(9, " 4 ", panicJitter); got != time.Second {
		t.Fatalf("retryDelay with Retry-After 4 = %v, want 1s", got)
	}
}

// TestJitter50Bounds pins the jitter envelope: [d/2, 3d/2].
func TestJitter50Bounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		if j := jitter50(d); j < d/2 || j > 3*d/2 {
			t.Fatalf("jitter50(%v) = %v outside [%v, %v]", d, j, d/2, 3*d/2)
		}
	}
}

// TestOneRequestTruncated pins the truncated class: a stream that ends
// without a done or failed trailer — the server died mid-job — is
// reported as truncated, not as a generic error.
func TestOneRequestTruncated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"id":"p1","row":"p1\trow"}`)
		// Connection drops here: no trailer.
	}))
	defer ts.Close()
	o := oneRequest(http.DefaultClient, ts.URL, 0, []byte(`{}`), 3)
	if !o.truncated {
		t.Fatalf("outcome not truncated: %+v", o)
	}
	if o.err == nil || !strings.Contains(o.err.Error(), "truncated") {
		t.Fatalf("truncated outcome err = %v", o.err)
	}
	if o.rows != 1 {
		t.Fatalf("rows before truncation = %d, want 1", o.rows)
	}
}

// TestOneRequestFailedTrailer pins the graceful-failure class: a
// {"failed"} trailer is a hard error carrying the server's reason, and
// explicitly NOT a truncation.
func TestOneRequestFailedTrailer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"id":"p1","row":"p1\trow"}`)
		fmt.Fprintln(w, `{"failed":true,"reason":"internal error: disk on fire"}`)
	}))
	defer ts.Close()
	o := oneRequest(http.DefaultClient, ts.URL, 0, []byte(`{}`), 3)
	if o.truncated {
		t.Fatalf("failed trailer classified as truncation: %+v", o)
	}
	if o.err == nil || !strings.Contains(o.err.Error(), "disk on fire") {
		t.Fatalf("failed-trailer err = %v", o.err)
	}
}

// TestOneRequestRetriesThenSucceeds pins the 429 loop end to end: a
// server that bounces the first attempts (with no usable Retry-After) is
// retried with backoff until it admits the job, and the retry count is
// reported.
func TestOneRequestRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, `{"id":"p1","row":"p1\trow"}`)
		fmt.Fprintln(w, `{"done":true,"points":1}`)
	}))
	defer ts.Close()
	o := oneRequest(http.DefaultClient, ts.URL, 0, []byte(`{}`), 10)
	if o.err != nil || o.retries != 2 || o.rows != 1 {
		t.Fatalf("outcome: %+v", o)
	}
}

// TestOneRequestGivesUp pins the retry bound: a server that never admits
// the job exhausts max-retries into a hard error, not an infinite loop.
func TestOneRequestGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	o := oneRequest(http.DefaultClient, ts.URL, 0, []byte(`{}`), 2)
	if o.err == nil || !strings.Contains(o.err.Error(), "gave up") {
		t.Fatalf("outcome: %+v", o)
	}
	if o.retries != 2 {
		t.Fatalf("retries = %d, want 2", o.retries)
	}
}
