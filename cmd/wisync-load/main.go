// Command wisync-load drives cmd/wisync-server with many concurrent sweep
// requests and verifies the service's two core promises under load:
// every request eventually completes without error (riding 429
// backpressure with retries), and responses for the same job are
// byte-identical on every repetition — the determinism that makes the
// content-addressed cache sound, observed end to end over HTTP.
//
//	wisync-server -addr 127.0.0.1:8080 &
//	wisync-load -addr http://127.0.0.1:8080 -requests 1000 -distinct 8
//
// The run fires -requests requests (all launched concurrently unless
// -concurrency caps the in-flight count) spread over -distinct job
// variants that differ only in seed, so requests overlap heavily — the
// service's hot case. It reports throughput, latency percentiles, the
// cache-served row fraction and 429 retry counts, and exits nonzero if
// any request ultimately fails, any response contains an error row, or
// two responses to the same job differ.
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// row mirrors the server's NDJSON line shape.
type row struct {
	ID     string `json:"id,omitempty"`
	Row    string `json:"row,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	Done   bool   `json:"done,omitempty"`
	Points int    `json:"points,omitempty"`
	Errors int    `json:"errors,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// outcome is one request's digest: which job variant it ran, the
// fingerprint of its result rows (id/row/error only — cache metadata is
// excluded so a cached replay must fingerprint identically to the first
// computation), and bookkeeping.
type outcome struct {
	variant    int
	fp         [sha256.Size]byte
	rows       int
	cachedRows int
	errorRows  int
	retries    int
	latency    time.Duration
	err        error
	// deadline marks a request that hit the client-side -timeout: its own
	// outcome class, distinct from 429 backpressure and hard errors.
	deadline bool
	// truncated marks a stream that ended without a done or failed
	// trailer: the signature of the server process dying mid-job (a crash
	// or kill -9, not a graceful error — graceful failures send a
	// {"failed"} trailer). Its own class because the remedy differs: the
	// job is journaled server-side and replays when the server returns.
	truncated bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "wisync-server base URL")
	requests := flag.Int("requests", 1000, "total sweep requests to issue")
	concurrency := flag.Int("concurrency", 0, "max in-flight requests (0 = all at once)")
	distinct := flag.Int("distinct", 8, "distinct job variants (seeds) to spread requests over")
	jobDoc := flag.String("job", "", "job JSON template (default: a quick golden-covered kernel job); its seeds are overridden per variant")
	maxRetries := flag.Int("max-retries", 100, "max 429 retries per request before giving up")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout; requests that hit it are reported as deadline outcomes, not errors")
	flag.Parse()

	if *distinct < 1 {
		*distinct = 1
	}
	// The default job is golden-covered (testdata/golden.tsv rows), small
	// enough to saturate request handling rather than simulation.
	base := map[string]any{
		"workload": "tightloop",
		"kinds":    []string{"Baseline", "WiSync"},
		"cores":    []int{16, 64},
	}
	if *jobDoc != "" {
		base = nil
		if err := json.Unmarshal([]byte(*jobDoc), &base); err != nil {
			fmt.Fprintf(os.Stderr, "wisync-load: bad -job: %v\n", err)
			os.Exit(2)
		}
	}
	bodies := make([][]byte, *distinct)
	for v := range bodies {
		base["seeds"] = []uint64{uint64(v) + 1}
		b, err := json.Marshal(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wisync-load: %v\n", err)
			os.Exit(2)
		}
		bodies[v] = b
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	var sem chan struct{}
	if *concurrency > 0 {
		sem = make(chan struct{}, *concurrency)
	}
	outcomes := make([]outcome, *requests)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			v := i % *distinct
			outcomes[i] = oneRequest(client, *addr, v, bodies[v], *maxRetries)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	report(outcomes, elapsed, *distinct)
}

// oneRequest posts the job, retrying on 429 with the server's Retry-After
// hint (falling back to capped, jittered exponential backoff when the
// hint is absent or unusable), and fingerprints the streamed rows.
func oneRequest(client *http.Client, addr string, variant int, body []byte, maxRetries int) outcome {
	o := outcome{variant: variant}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(addr+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			o.err = err
			o.deadline = isTimeout(err)
			return o
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			header := resp.Header.Get("Retry-After")
			resp.Body.Close()
			if attempt >= maxRetries {
				o.err = fmt.Errorf("gave up after %d 429s", attempt)
				return o
			}
			o.retries++
			time.Sleep(retryDelay(attempt, header, jitter50))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			o.err = fmt.Errorf("status %s", resp.Status)
			resp.Body.Close()
			return o
		}
		h := sha256.New()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		done := false
		for sc.Scan() {
			var r row
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				o.err = fmt.Errorf("bad stream line: %v", err)
				resp.Body.Close()
				return o
			}
			if r.Done {
				done = true
				continue
			}
			if r.Failed {
				// A graceful mid-stream failure: the server stayed alive and
				// said so. A hard error, but not a truncation.
				o.err = fmt.Errorf("server failed the job mid-stream: %s", r.Reason)
				resp.Body.Close()
				return o
			}
			o.rows++
			if r.Cached {
				o.cachedRows++
			}
			if r.Error != "" {
				o.errorRows++
			}
			fmt.Fprintf(h, "%s\t%s\t%s\n", r.ID, r.Row, r.Error)
		}
		err = sc.Err()
		resp.Body.Close()
		if err != nil {
			o.err = err
			o.deadline = isTimeout(err)
			return o
		}
		if !done {
			// Neither trailer arrived: the server process died mid-stream.
			o.truncated = true
			o.err = fmt.Errorf("stream truncated: ended without a done or failed trailer after %d rows", o.rows)
			return o
		}
		copy(o.fp[:], h.Sum(nil))
		o.latency = time.Since(start)
		return o
	}
}

// retryDelay computes the wait before re-submitting after a 429. A usable
// Retry-After header wins; otherwise — header absent, zero, negative, or
// malformed — the fallback is capped exponential backoff: clients that
// can't be told when to return must at least not return in lockstep, and
// must space out under sustained overload instead of hammering linearly.
// jitter maps the raw delay to the slept one (jitter50 in production;
// tests pass the identity to keep assertions exact).
func retryDelay(attempt int, retryAfter string, jitter func(time.Duration) time.Duration) time.Duration {
	if d, ok := parseRetryAfter(retryAfter); ok {
		return d
	}
	return jitter(backoff429(attempt))
}

// parseRetryAfter interprets a 429's Retry-After header. ok is false for
// the fall-back-to-backoff cases: absent, zero, negative, or malformed.
func parseRetryAfter(h string) (time.Duration, bool) {
	ra, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || ra <= 0 {
		return 0, false
	}
	// Poll faster than the hint: Retry-After is a coarse whole-second
	// floor, while admission capacity frees at sweep-point granularity.
	return time.Duration(ra) * time.Second / 4, true
}

// backoff429 is the fallback spacing: 100ms doubling per attempt, capped
// at 5s.
func backoff429(attempt int) time.Duration {
	const base, maxDelay = 100 * time.Millisecond, 5 * time.Second
	if attempt >= 6 { // base<<6 exceeds the cap
		return maxDelay
	}
	d := base << attempt
	if d > maxDelay {
		return maxDelay
	}
	return d
}

// jitter50 spreads a delay over [d/2, 3d/2), so a burst of rejected
// clients does not reconverge on the server simultaneously.
func jitter50(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))
}

// isTimeout reports whether err is the client-side -timeout firing (on
// connect, headers, or mid-stream) rather than a hard failure.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func report(outcomes []outcome, elapsed time.Duration, distinct int) {
	var ok, failed, truncated, deadlines, retries, rows, cachedRows, errorRows int
	var latencies []time.Duration
	fps := make(map[int][sha256.Size]byte, distinct)
	mismatched := 0
	for _, o := range outcomes {
		retries += o.retries
		if o.deadline {
			deadlines++
			continue
		}
		if o.truncated {
			truncated++
			continue
		}
		if o.err != nil {
			failed++
			continue
		}
		ok++
		rows += o.rows
		cachedRows += o.cachedRows
		errorRows += o.errorRows
		latencies = append(latencies, o.latency)
		if prev, seen := fps[o.variant]; !seen {
			fps[o.variant] = o.fp
		} else if prev != o.fp {
			mismatched++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("requests=%d ok=%d failed=%d truncated=%d deadline=%d retries429=%d elapsed=%v rps=%.1f\n",
		len(outcomes), ok, failed, truncated, deadlines, retries, elapsed.Round(time.Millisecond),
		float64(ok)/elapsed.Seconds())
	fmt.Printf("rows=%d cached=%d (%.1f%%) errorRows=%d variants=%d mismatched=%d\n",
		rows, cachedRows, 100*float64(cachedRows)/max(1, float64(rows)), errorRows,
		distinct, mismatched)
	fmt.Printf("latency p50=%v p95=%v max=%v\n",
		pct(0.50).Round(time.Millisecond), pct(0.95).Round(time.Millisecond),
		pct(1.0).Round(time.Millisecond))
	if truncated > 0 {
		// Distinct failure class and message: a truncated stream means the
		// server process died mid-job — look for a crash, not a bad job.
		// The jobs are journaled server-side and replay on its restart.
		fmt.Printf("FAIL: %d streams truncated (no done/failed trailer) — the server died mid-job\n", truncated)
		os.Exit(1)
	}
	if failed > 0 || mismatched > 0 || errorRows > 0 {
		fmt.Println("FAIL: requests failed, responses diverged, or error rows were returned")
		os.Exit(1)
	}
	if deadlines > 0 {
		// The caller's own -timeout cut these off: a distinct outcome, not
		// a service failure.
		fmt.Printf("OK: %d completed byte-identical; %d hit the -timeout deadline\n", ok, deadlines)
		return
	}
	fmt.Println("OK: all requests completed; repeated jobs byte-identical")
}
