// Command wisync-sim runs one workload on one machine configuration and
// prints timing and hardware statistics.
//
// Usage:
//
//	wisync-sim -config WiSync -cores 64 -workload tightloop -iters 20
//	wisync-sim -config Baseline -workload liv6 -n 512
//	wisync-sim -config WiSync -workload add -cs 256 -duration 100000
//	wisync-sim -config WiSyncNoT -workload app:streamcluster
//	wisync-sim -config WiSync -cores 16,64,256 -workers 0 -workload tightloop
//
// Workloads: tightloop, liv2, liv3, liv6, fifo, lifo, add, app:<name>.
// Configs: Baseline, Baseline+, WiSyncNoT, WiSync. Variants: Default,
// SlowNet, SlowNet+L2, FastNet, SlowBMEM.
//
// -cores accepts a comma-separated list; the points of such a sweep are
// independent seeded simulations, so they are dispatched across -workers
// concurrent workers (0 = GOMAXPROCS) and printed in list order — the
// output is identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wisync/internal/apps"
	"wisync/internal/config"
	"wisync/internal/harness"
	"wisync/internal/kernels"
	"wisync/internal/sim"
)

func main() {
	cfgName := flag.String("config", "WiSync", "machine kind: Baseline, Baseline+, WiSyncNoT, WiSync")
	cores := flag.String("cores", "64", "core count 16-256, or a comma-separated sweep list")
	workload := flag.String("workload", "tightloop", "tightloop|liv2|liv3|liv6|fifo|lifo|add|app:<name>")
	n := flag.Int("n", 1024, "vector length for Livermore loops")
	iters := flag.Int("iters", 20, "iterations for tightloop")
	cs := flag.Int("cs", 256, "instructions between CASes for the CAS kernels")
	duration := flag.Uint64("duration", 200000, "cycles to run the CAS kernels")
	variant := flag.String("variant", "Default", "Table 6 variant")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "concurrent sweep points for a -cores list (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	kind, ok := parseKind(*cfgName)
	if !ok {
		fatalf("unknown config %q", *cfgName)
	}
	v, ok := parseVariant(*variant)
	if !ok {
		fatalf("unknown variant %q", *variant)
	}
	coreList, err := parseCores(*cores)
	if err != nil {
		fatalf("%v", err)
	}
	// Validate the workload once, up front: runOne executes on worker
	// goroutines, where a per-point fatalf would race and could discard
	// already-rendered points.
	var appProfile apps.Profile
	switch {
	case strings.HasPrefix(*workload, "app:"):
		name := strings.TrimPrefix(*workload, "app:")
		p, ok := apps.ByName(name)
		if !ok {
			fatalf("unknown application %q (see internal/apps/profiles.go)", name)
		}
		appProfile = p
	case *workload == "tightloop", *workload == "liv2", *workload == "liv3",
		*workload == "liv6", *workload == "fifo", *workload == "lifo", *workload == "add":
	default:
		fatalf("unknown workload %q", *workload)
	}

	// Each sweep point renders into its own buffer; buffers are printed in
	// list order so the output does not depend on the worker count.
	outputs := make([]strings.Builder, len(coreList))
	harness.ForEach(*workers, len(coreList), func(i int) {
		cfg := config.New(kind, coreList[i]).WithVariant(v).WithSeed(*seed)
		runOne(&outputs[i], cfg, *workload, appProfile, *n, *iters, *cs, *duration)
	})
	for i := range outputs {
		fmt.Print(outputs[i].String())
	}
}

func runOne(out *strings.Builder, cfg config.Config, workload string, appProfile apps.Profile, n, iters, cs int, duration uint64) {
	switch {
	case workload == "tightloop":
		r := kernels.TightLoop(cfg, iters)
		fmt.Fprintln(out, r)
		fmt.Fprintf(out, "data channel utilization: %.3f%%\n", 100*r.DataChannelUtil)
	case workload == "liv2":
		r, _ := kernels.Livermore2(cfg, n, 1)
		fmt.Fprintln(out, r)
	case workload == "liv3":
		r, sum := kernels.Livermore3(cfg, n, 1)
		fmt.Fprintln(out, r)
		fmt.Fprintf(out, "inner product: %g\n", sum)
	case workload == "liv6":
		r, _ := kernels.Livermore6(cfg, n)
		fmt.Fprintln(out, r)
	case workload == "fifo" || workload == "lifo" || workload == "add":
		kn := map[string]kernels.CASKind{"fifo": kernels.FIFO, "lifo": kernels.LIFO, "add": kernels.ADD}[workload]
		r := kernels.CASKernel(cfg, kn, cs, sim.Time(duration))
		fmt.Fprintln(out, r)
	case strings.HasPrefix(workload, "app:"):
		r := apps.Run(cfg, appProfile)
		fmt.Fprintln(out, r)
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

func parseKind(s string) (config.Kind, bool) {
	for _, k := range config.Kinds {
		if strings.EqualFold(k.String(), s) {
			return k, true
		}
	}
	return 0, false
}

func parseVariant(s string) (config.Variant, bool) {
	for _, v := range config.Variants {
		if strings.EqualFold(v.String(), s) {
			return v, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wisync-sim: "+format+"\n", args...)
	os.Exit(2)
}
