// Command wisync-sim runs one workload on one machine configuration and
// prints timing and hardware statistics.
//
// Usage:
//
//	wisync-sim -config WiSync -cores 64 -workload tightloop -iters 20
//	wisync-sim -config Baseline -workload liv6 -n 512
//	wisync-sim -config WiSync -workload add -cs 256 -duration 100000
//	wisync-sim -config WiSyncNoT -workload app:streamcluster
//
// Workloads: tightloop, liv2, liv3, liv6, fifo, lifo, add, app:<name>.
// Configs: Baseline, Baseline+, WiSyncNoT, WiSync. Variants: Default,
// SlowNet, SlowNet+L2, FastNet, SlowBMEM.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wisync/internal/apps"
	"wisync/internal/config"
	"wisync/internal/kernels"
	"wisync/internal/sim"
)

func main() {
	cfgName := flag.String("config", "WiSync", "machine kind: Baseline, Baseline+, WiSyncNoT, WiSync")
	cores := flag.Int("cores", 64, "core count (16-256)")
	workload := flag.String("workload", "tightloop", "tightloop|liv2|liv3|liv6|fifo|lifo|add|app:<name>")
	n := flag.Int("n", 1024, "vector length for Livermore loops")
	iters := flag.Int("iters", 20, "iterations for tightloop")
	cs := flag.Int("cs", 256, "instructions between CASes for the CAS kernels")
	duration := flag.Uint64("duration", 200000, "cycles to run the CAS kernels")
	variant := flag.String("variant", "Default", "Table 6 variant")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	kind, ok := parseKind(*cfgName)
	if !ok {
		fatalf("unknown config %q", *cfgName)
	}
	v, ok := parseVariant(*variant)
	if !ok {
		fatalf("unknown variant %q", *variant)
	}
	cfg := config.New(kind, *cores).WithVariant(v).WithSeed(*seed)

	switch {
	case *workload == "tightloop":
		r := kernels.TightLoop(cfg, *iters)
		fmt.Println(r)
		fmt.Printf("data channel utilization: %.3f%%\n", 100*r.DataChannelUtil)
	case *workload == "liv2":
		r, _ := kernels.Livermore2(cfg, *n, 1)
		fmt.Println(r)
	case *workload == "liv3":
		r, sum := kernels.Livermore3(cfg, *n, 1)
		fmt.Println(r)
		fmt.Printf("inner product: %g\n", sum)
	case *workload == "liv6":
		r, _ := kernels.Livermore6(cfg, *n)
		fmt.Println(r)
	case *workload == "fifo" || *workload == "lifo" || *workload == "add":
		kn := map[string]kernels.CASKind{"fifo": kernels.FIFO, "lifo": kernels.LIFO, "add": kernels.ADD}[*workload]
		r := kernels.CASKernel(cfg, kn, *cs, sim.Time(*duration))
		fmt.Println(r)
	case strings.HasPrefix(*workload, "app:"):
		name := strings.TrimPrefix(*workload, "app:")
		p, ok := apps.ByName(name)
		if !ok {
			fatalf("unknown application %q (see internal/apps/profiles.go)", name)
		}
		r := apps.Run(cfg, p)
		fmt.Println(r)
	default:
		fatalf("unknown workload %q", *workload)
	}
}

func parseKind(s string) (config.Kind, bool) {
	for _, k := range config.Kinds {
		if strings.EqualFold(k.String(), s) {
			return k, true
		}
	}
	return 0, false
}

func parseVariant(s string) (config.Variant, bool) {
	for _, v := range config.Variants {
		if strings.EqualFold(v.String(), s) {
			return v, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wisync-sim: "+format+"\n", args...)
	os.Exit(2)
}
