// Command wisync-sim runs one workload on one machine configuration and
// prints timing and hardware statistics.
//
// Usage:
//
//	wisync-sim -config WiSync -cores 64 -workload tightloop -iters 20
//	wisync-sim -config Baseline -workload liv6 -n 512
//	wisync-sim -config WiSync -workload add -cs 256 -duration 100000
//	wisync-sim -config WiSyncNoT -workload app:streamcluster
//	wisync-sim -config WiSync -cores 16,64,256 -workers 0 -workload tightloop
//
// Workloads: tightloop, liv2, liv3, liv6, fifo, lifo, add, app:<name>.
// Configs: Baseline, Baseline+, WiSyncNoT, WiSync. Variants: Default,
// SlowNet, SlowNet+L2, FastNet, SlowBMEM. MACs: backoff, token, adaptive
// (-mac swaps the wireless channel's arbitration protocol). -list
// enumerates everything runnable and exits.
//
// The first output line is a "# wisync-sim ..." header echoing the
// effective configuration, so saved sweep outputs are self-describing.
//
// -cores accepts a comma-separated list; the points of such a sweep are
// independent seeded simulations, so they are dispatched across -workers
// concurrent workers (0 = GOMAXPROCS) and printed in list order — the
// output is identical at any worker count.
//
// -cpuprofile and -memprofile write standard pprof profiles of the
// simulation (see README "Profiling").
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"wisync/internal/apps"
	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/fault"
	"wisync/internal/harness"
	"wisync/internal/kernels"
	"wisync/internal/profiling"
	"wisync/internal/sim"
	"wisync/internal/wireless"
)

// workloadNames are the non-app workloads, in help order.
var workloadNames = []string{"tightloop", "liv2", "liv3", "liv6", "fifo", "lifo", "add"}

func macNames() string {
	var names []string
	for _, k := range wireless.MACKinds {
		names = append(names, k.String())
	}
	return strings.Join(names, "|")
}

func channelNames() string {
	var names []string
	for _, p := range channel.Profiles {
		names = append(names, p.String())
	}
	return strings.Join(names, "|")
}

func main() {
	cfgName := flag.String("config", "WiSync", "machine kind: Baseline, Baseline+, WiSyncNoT, WiSync")
	cores := flag.String("cores", "64", "core count 16-256, or a comma-separated sweep list")
	workload := flag.String("workload", "tightloop", "tightloop|liv2|liv3|liv6|fifo|lifo|add|app:<name>")
	n := flag.Int("n", 1024, "vector length for Livermore loops")
	iters := flag.Int("iters", 20, "iterations for tightloop")
	cs := flag.Int("cs", 256, "instructions between CASes for the CAS kernels")
	duration := flag.Uint64("duration", 200000, "cycles to run the CAS kernels")
	variant := flag.String("variant", "Default", "Table 6 variant")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "concurrent sweep points for a -cores list (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 0, "engine shards per point (0 = unsharded); results are identical at any value")
	macName := flag.String("mac", "backoff", "wireless MAC protocol: "+macNames())
	chName := flag.String("channel", "ideal", "wireless channel-error profile: "+channelNames())
	ber := flag.Float64("ber", 0, "raw bit-error rate of the worst link for lossy -channel profiles (0 = profile default)")
	retries := flag.Int("retries", 0, "retransmission budget per message for lossy -channel profiles (0 = default)")
	faultsFlag := flag.String("faults", "", "deterministic fault-injection plan: inline JSON or @file (see internal/fault)")
	pointBudget := flag.Uint64("point-budget", 0, "cycle budget per point (0 = unlimited); a run still live at the budget fails with a structured error")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	list := flag.Bool("list", false, "list available workloads, configs, variants and MACs, then exit")
	flag.Parse()

	if *list {
		printList()
		return
	}
	kind, ok := config.ParseKind(*cfgName)
	if !ok {
		fatalf("unknown config %q", *cfgName)
	}
	v, ok := config.ParseVariant(*variant)
	if !ok {
		fatalf("unknown variant %q", *variant)
	}
	mac, ok := wireless.ParseMACKind(*macName)
	if !ok {
		fatalf("unknown MAC %q (one of: %s)", *macName, macNames())
	}
	chProfile, ok := channel.ParseProfile(*chName)
	if !ok {
		fatalf("unknown channel profile %q (one of: %s)", *chName, channelNames())
	}
	chParams := channel.Params{Profile: chProfile, BER: *ber, MaxRetries: *retries}
	plan, err := fault.ParseFlag(*faultsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	coreList, err := parseCores(*cores)
	if err != nil {
		fatalf("%v", err)
	}
	// Validate the workload once, up front: runOne executes on worker
	// goroutines, where a per-point fatalf would race and could discard
	// already-rendered points.
	var appProfile apps.Profile
	switch {
	case strings.HasPrefix(*workload, "app:"):
		name := strings.TrimPrefix(*workload, "app:")
		p, ok := apps.ByName(name)
		if !ok {
			fatalf("unknown application %q (see internal/apps/profiles.go)", name)
		}
		appProfile = p
	case knownWorkload(*workload):
	default:
		fatalf("unknown workload %q", *workload)
	}
	// Validate every sweep point's machine configuration up front through
	// the single authority (config.Config.Validate): a bad core count or
	// shard count is a usage error here, never a panic inside a worker.
	for _, c := range coreList {
		cfg := config.New(kind, c).WithVariant(v).WithSeed(*seed).WithMAC(mac).
			WithShards(*shards).WithChannel(chParams).WithFaults(plan).WithBudget(sim.Time(*pointBudget))
		if err := cfg.Validate(); err != nil {
			fatalf("%v", err)
		}
	}

	// Self-describing output: echo the effective configuration first.
	fmt.Printf("# wisync-sim config=%v cores=%s variant=%v seed=%d workers=%d shards=%d mac=%v channel=%v ber=%g retries=%d faults=%q point-budget=%d workload=%s\n",
		kind, *cores, v, *seed, *workers, *shards, mac, chProfile, *ber, *retries, *faultsFlag, *pointBudget, *workload)
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	// Each sweep point renders into its own buffer; buffers are printed in
	// list order so the output does not depend on the worker count.
	outputs := make([]strings.Builder, len(coreList))
	var pointFailed atomic.Bool
	harness.ForEach(*workers, len(coreList), func(i int) {
		cfg := config.New(kind, coreList[i]).WithVariant(v).WithSeed(*seed).WithMAC(mac).
			WithShards(*shards).WithChannel(chParams).WithFaults(plan).WithBudget(sim.Time(*pointBudget))
		if !runOne(&outputs[i], cfg, *workload, appProfile, *n, *iters, *cs, *duration) {
			pointFailed.Store(true)
		}
	})
	stopProfiles()
	for i := range outputs {
		fmt.Print(outputs[i].String())
	}
	if pointFailed.Load() {
		os.Exit(1)
	}
}

// printList enumerates everything the -config/-variant/-workload/-mac
// flags accept.
func printList() {
	fmt.Printf("workloads: %s app:<name>\n", strings.Join(workloadNames, " "))
	var names []string
	for _, p := range apps.Profiles() {
		names = append(names, p.Name)
	}
	fmt.Printf("apps: %s\n", strings.Join(names, " "))
	var kinds []string
	for _, k := range config.Kinds {
		kinds = append(kinds, k.String())
	}
	fmt.Printf("configs: %s\n", strings.Join(kinds, " "))
	var variants []string
	for _, v := range config.Variants {
		variants = append(variants, v.String())
	}
	fmt.Printf("variants: %s\n", strings.Join(variants, " "))
	fmt.Printf("macs: %s\n", strings.ReplaceAll(macNames(), "|", " "))
	fmt.Printf("channels: %s\n", strings.ReplaceAll(channelNames(), "|", " "))
}

func runOne(out *strings.Builder, cfg config.Config, workload string, appProfile apps.Profile, n, iters, cs int, duration uint64) (ok bool) {
	// Budget trips and other guarded-run failures panic out of the kernel
	// runners; surface them as a structured per-point error line instead of
	// crashing the whole sweep (the process still exits nonzero).
	ok = true
	defer func() {
		if r := recover(); r != nil {
			ok = false
			fmt.Fprintf(out, "error: %v\n", r)
		}
	}()
	// printEnergy appends the transceiver energy ledger after a lossy-
	// channel run; ideal-channel output is unchanged.
	printEnergy := func(e wireless.EnergyStats) {
		if cfg.Wireless.Channel.Profile != channel.Ideal {
			fmt.Fprintf(out, "# energy %s\n", e)
		}
	}
	switch {
	case workload == "tightloop":
		r := kernels.TightLoop(cfg, iters)
		fmt.Fprintln(out, r)
		fmt.Fprintf(out, "data channel utilization: %.3f%%\n", 100*r.DataChannelUtil)
		printEnergy(r.Energy)
	case workload == "liv2":
		r, _ := kernels.Livermore2(cfg, n, 1)
		fmt.Fprintln(out, r)
		printEnergy(r.Energy)
	case workload == "liv3":
		r, sum := kernels.Livermore3(cfg, n, 1)
		fmt.Fprintln(out, r)
		fmt.Fprintf(out, "inner product: %g\n", sum)
		printEnergy(r.Energy)
	case workload == "liv6":
		r, _ := kernels.Livermore6(cfg, n)
		fmt.Fprintln(out, r)
		printEnergy(r.Energy)
	case workload == "fifo" || workload == "lifo" || workload == "add":
		kn := map[string]kernels.CASKind{"fifo": kernels.FIFO, "lifo": kernels.LIFO, "add": kernels.ADD}[workload]
		r := kernels.CASKernel(cfg, kn, cs, sim.Time(duration))
		fmt.Fprintln(out, r)
		printEnergy(r.Energy)
	case strings.HasPrefix(workload, "app:"):
		r := apps.Run(cfg, appProfile)
		fmt.Fprintln(out, r)
		printEnergy(r.Energy)
	}
	return ok
}

func knownWorkload(s string) bool {
	for _, w := range workloadNames {
		if s == w {
			return true
		}
	}
	return false
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wisync-sim: "+format+"\n", args...)
	os.Exit(2)
}
