package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// goldenJobs covers every row of internal/harness/testdata/golden.tsv: the
// same kind x cores x seed matrix the golden-conformance suite pins, here
// submitted over HTTP.
var goldenJobs = []string{
	`{"workload":"tightloop","kinds":["Baseline","Baseline+","WiSyncNoT","WiSync"],"cores":[16,64],"seeds":[1]}`,
	`{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[42]}`,
	`{"workload":"livermore2","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[1]}`,
	`{"workload":"livermore6","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[1]}`,
	`{"workload":"cas-fifo","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[1]}`,
}

// loadGolden reads the committed golden matrix as id -> full row line.
func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	b, err := os.ReadFile("../../internal/harness/testdata/golden.tsv")
	if err != nil {
		t.Fatalf("reading golden matrix: %v", err)
	}
	rows := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		id, _, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		rows[id] = line
	}
	return rows
}

func newTestServer(t *testing.T, o serverOptions) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(o)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJob submits one job and parses the NDJSON stream. The trailing done
// marker is returned separately from the result rows.
func postJob(t *testing.T, url, body string) (rows []rowMsg, done rowMsg, status int) {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status != http.StatusOK {
		return nil, rowMsg{}, status
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawDone := false
	for sc.Scan() {
		var m rowMsg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if m.Done {
			sawDone = true
			done = m
			continue
		}
		rows = append(rows, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !sawDone {
		t.Fatalf("stream ended without done marker")
	}
	return rows, done, status
}

// TestServerGoldenSweep is the end-to-end smoke test: the full golden
// matrix submitted over HTTP must stream back byte-identical to
// testdata/golden.tsv, and a repeat of every job must be served entirely
// from the cache, still byte-identical.
func TestServerGoldenSweep(t *testing.T) {
	golden := loadGolden(t)
	s, ts := newTestServer(t, serverOptions{Workers: 4})

	seen := make(map[string]string)
	for _, body := range goldenJobs {
		rows, done, status := postJob(t, ts.URL, body)
		if status != http.StatusOK {
			t.Fatalf("job %s: status %d", body, status)
		}
		if done.Errors != 0 || done.Points != len(rows) {
			t.Fatalf("job %s: done=%+v with %d rows", body, done, len(rows))
		}
		for _, m := range rows {
			if m.Error != "" {
				t.Fatalf("error row %s: %s", m.ID, m.Error)
			}
			want, ok := golden[m.ID]
			if !ok {
				t.Fatalf("row %s not in the golden matrix", m.ID)
			}
			if m.Row != want {
				t.Errorf("row %s drifted from golden:\ngot:  %s\nwant: %s", m.ID, m.Row, want)
			}
			seen[m.ID] = m.Row
		}
	}
	if len(seen) != len(golden) {
		t.Fatalf("jobs covered %d of %d golden rows", len(seen), len(golden))
	}

	// Repeat every job: 100% cache hits, rows byte-identical.
	for _, body := range goldenJobs {
		rows, done, _ := postJob(t, ts.URL, body)
		if done.Hits != len(rows) {
			t.Fatalf("repeat of %s: %d/%d rows cached", body, done.Hits, len(rows))
		}
		for _, m := range rows {
			if !m.Cached {
				t.Errorf("repeat row %s not served from cache", m.ID)
			}
			if m.Row != seen[m.ID] {
				t.Errorf("cached row %s differs from first run:\ngot:  %s\nwant: %s", m.ID, m.Row, seen[m.ID])
			}
		}
	}
	if st := s.cache.Stats(); st.Hits < uint64(len(golden)) {
		t.Fatalf("cache stats after repeat: %+v", st)
	}
}

// TestServerRejectsMalformed pins satellite #1: every malformed-job class
// is a 400 with a JSON error body — never a panic, never a worker crash.
func TestServerRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{Workers: 1, MaxJobPoints: 8})
	cases := map[string]string{
		"not json":         `{"workload": tightloop}`,
		"unknown field":    `{"workload":"tightloop","turbo":true}`,
		"unknown workload": `{"workload":"mystery"}`,
		"unknown app":      `{"workload":"app:doom"}`,
		"unknown kind":     `{"workload":"tightloop","kinds":["Quantum"]}`,
		"numeric kind":     `{"workload":"tightloop","kinds":[2]}`,
		"unknown mac":      `{"workload":"tightloop","mac":"aloha"}`,
		"unknown exec":     `{"workload":"tightloop","exec":"fiber"}`,
		"unknown variant":  `{"workload":"tightloop","variant":"Turbo"}`,
		"zero cores":       `{"workload":"tightloop","cores":[0]}`,
		"too many cores":   `{"workload":"tightloop","cores":[500]}`,
		"bad shards":       `{"workload":"tightloop","shards":65}`,
		"iters beyond cap": `{"workload":"tightloop","iters":100001}`,
		"job too large":    `{"workload":"tightloop","seeds":[1,2,3,4,5,6,7,8,9]}`,
		"empty body":       ``,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var e struct {
			Error string `json:"error"`
		}
		dec := json.NewDecoder(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		} else if err := dec.Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: 400 without a JSON error body (%v)", name, err)
		}
		resp.Body.Close()
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /sweep: status %d, want 405", resp.StatusCode)
	}
	// The server is still healthy after all of the above.
	if _, done, status := postJob(t, ts.URL, `{"workload":"tightloop","kinds":["WiSync"],"cores":[16]}`); status != http.StatusOK || done.Errors != 0 {
		t.Fatalf("server unhealthy after malformed jobs: status=%d done=%+v", status, done)
	}
}

// TestServerBackpressure pins the bounded-queue contract: a job that would
// exceed the admission limit is an immediate 429 with Retry-After, counted
// in /stats, and the server keeps serving afterwards.
func TestServerBackpressure(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{Workers: 1, QueueLimit: 2})
	body := `{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[1]}` // 4 points > limit 2
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	// A job inside the limit still goes through.
	if _, done, status := postJob(t, ts.URL, `{"workload":"tightloop","kinds":["WiSync"],"cores":[16]}`); status != http.StatusOK || done.Errors != 0 {
		t.Fatalf("in-limit job failed after 429: status=%d done=%+v", status, done)
	}
}

// TestServerConcurrentIdenticalJobs hammers one job from many goroutines;
// under -race this pins the queue/cache/stream locking, and every response
// must be byte-identical (the load generator's invariant, in-process).
func TestServerConcurrentIdenticalJobs(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{Workers: 4, QueueLimit: 256})
	const clients = 32
	body := `{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16],"seeds":[1]}`
	results := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = "ERR " + err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i] = fmt.Sprintf("ERR status %d", resp.StatusCode)
				return
			}
			var fp bytes.Buffer
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				var m rowMsg
				if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
					results[i] = "ERR " + err.Error()
					return
				}
				if m.Done {
					continue
				}
				fmt.Fprintf(&fp, "%s\t%s\t%s\n", m.ID, m.Row, m.Error)
			}
			if err := sc.Err(); err != nil {
				results[i] = "ERR " + err.Error()
				return
			}
			results[i] = fp.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if strings.HasPrefix(results[i], "ERR") {
			t.Fatalf("client %d: %s", i, results[i])
		}
		if results[i] != results[0] {
			t.Fatalf("client %d response differs:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
}

// TestServerChannelJobs pins the channel axis over HTTP: an explicit ideal
// channel streams rows byte-identical to the golden matrix and shares
// cache entries with the implicit default, a lossy job reports
// retransmissions and energy, and the two never share a cache row.
func TestServerChannelJobs(t *testing.T) {
	golden := loadGolden(t)
	_, ts := newTestServer(t, serverOptions{Workers: 2})

	// Prime the cache with the default (no channel field) job.
	implicit := `{"workload":"tightloop","kinds":["WiSync"],"cores":[16],"seeds":[1]}`
	rows, done, status := postJob(t, ts.URL, implicit)
	if status != http.StatusOK || done.Errors != 0 || len(rows) != 1 {
		t.Fatalf("implicit job: status=%d done=%+v", status, done)
	}
	if want := golden[rows[0].ID]; rows[0].Row != want {
		t.Fatalf("implicit row drifted from golden:\ngot:  %s\nwant: %s", rows[0].Row, want)
	}

	// The explicit ideal form is the same point: byte-identical and a
	// cache hit.
	explicit := `{"workload":"tightloop","kinds":["WiSync"],"cores":[16],"seeds":[1],"channel":"ideal"}`
	rows2, done2, _ := postJob(t, ts.URL, explicit)
	if done2.Hits != 1 || !rows2[0].Cached {
		t.Fatalf("explicit ideal job missed the cache: done=%+v", done2)
	}
	if rows2[0].Row != rows[0].Row {
		t.Fatalf("explicit ideal row differs from implicit:\ngot:  %s\nwant: %s", rows2[0].Row, rows[0].Row)
	}

	// A lossy job is a different content address: no cache hit, and its
	// row carries the energy/retransmission columns.
	lossy := `{"workload":"tightloop","kinds":["WiSyncNoT"],"cores":[64],"seeds":[3],"channel":"uniform","ber":1e-5,"retries":20}`
	rows3, done3, _ := postJob(t, ts.URL, lossy)
	if done3.Errors != 0 || len(rows3) != 1 {
		t.Fatalf("lossy job: done=%+v", done3)
	}
	if rows3[0].Cached {
		t.Fatal("lossy job hit the ideal-channel cache entry")
	}
	row := rows3[0].Row
	if !strings.Contains(row, "\tenergy=") || !strings.Contains(row, "\tretx=") {
		t.Fatalf("lossy row missing energy columns: %s", row)
	}
	if strings.Contains(row, "retx=0\t") || strings.Contains(row, "energy=0pJ") {
		t.Fatalf("lossy row reports no corruption at BER 1e-5: %s", row)
	}
	// The repeat is a cache hit, and the sharded form shares the same
	// content address — sharding stays digest-excluded for lossy points
	// because corruption draws are shard-invariant (pinned end-to-end by
	// TestLossyPointDeterministic in internal/harness).
	rows4, done4, _ := postJob(t, ts.URL, lossy)
	if done4.Hits != 1 || rows4[0].Row != row {
		t.Fatalf("lossy repeat: done=%+v row=%s", done4, rows4[0].Row)
	}
	sharded := `{"workload":"tightloop","kinds":["WiSyncNoT"],"cores":[64],"seeds":[3],"channel":"uniform","ber":1e-5,"retries":20,"shards":2}`
	rows5, done5, _ := postJob(t, ts.URL, sharded)
	if done5.Errors != 0 || done5.Hits != 1 {
		t.Fatalf("sharded lossy job did not share the cache entry: done=%+v", done5)
	}
	if rows5[0].Row != row {
		t.Fatalf("lossy row diverged at 2 shards:\ngot:  %s\nwant: %s", rows5[0].Row, row)
	}

	// Unknown profile names are a 400 like every other enum.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workload":"tightloop","channel":"rayleigh"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown channel profile: status %d, want 400", resp.StatusCode)
	}
	// Out-of-range BER under a lossy profile is caught by validation.
	resp, err = http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workload":"tightloop","channel":"uniform","ber":1.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range BER: status %d, want 400", resp.StatusCode)
	}
}

// TestServerJobDeadline pins the deadline contract: a job whose wall-clock
// deadline expires converts its unfinished points into structured abort
// error rows (counted in /stats as deadlines), the done marker still
// arrives, the worker is freed, and the server stays fully healthy — the
// aborted point was never cached, so a later run recomputes it.
func TestServerJobDeadline(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{Workers: 1})
	// A point heavy enough that a 1ms deadline always expires first.
	body := `{"workload":"tightloop","kinds":["WiSync"],"cores":[64],"iters":100000,"deadline_ms":1}`
	rows, done, status := postJob(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("deadline job: status %d", status)
	}
	if done.Errors != 1 || len(rows) != 1 {
		t.Fatalf("deadline job: done=%+v rows=%d", done, len(rows))
	}
	if !strings.Contains(rows[0].Error, "aborted") {
		t.Fatalf("deadline row is not a structured abort: %q", rows[0].Error)
	}
	if got := s.deadlines.Load(); got != 1 {
		t.Fatalf("deadlines counter %d, want 1", got)
	}

	// /stats reports the deadline abort.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	resp.Body.Close()
	if st.Deadlines != 1 || st.ErrorRows != 1 {
		t.Fatalf("/stats after deadline: %+v", st)
	}

	// The worker is free and the server healthy: a small undeadlined job
	// completes normally.
	if _, done, status := postJob(t, ts.URL, `{"workload":"tightloop","kinds":["WiSync"],"cores":[16]}`); status != http.StatusOK || done.Errors != 0 {
		t.Fatalf("server unhealthy after deadline abort: status=%d done=%+v", status, done)
	}
	// Negative deadlines are rejected up front.
	resp, err = http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workload":"tightloop","deadline_ms":-5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms: status %d, want 400", resp.StatusCode)
	}
}

// TestServerDrainUnderLoad pins graceful shutdown: with a job mid-stream,
// StartDrain refuses new sweeps with 503 + Retry-After and flips /readyz
// (liveness /healthz stays 200), while the in-flight job keeps streaming
// to its done marker.
func TestServerDrainUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{Workers: 1})
	// Two points through one worker: after the first row arrives the job
	// is mid-flight by construction.
	body := `{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16],"seeds":[1]}`
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		t.Fatalf("stream ended before first row: %v", sc.Err())
	}
	var first rowMsg
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first row %q: %v", sc.Text(), err)
	}
	if first.Error != "" || first.Done {
		t.Fatalf("unexpected first message: %+v", first)
	}

	s.StartDrain()

	// New sweeps are refused with 503 + Retry-After...
	r2, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workload":"tightloop","kinds":["WiSync"],"cores":[16]}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep while draining: status %d, want 503", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// ...and /readyz reports draining, while /healthz (pure liveness)
	// stays 200: the process is alive, just finishing its work.
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", rz.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d, want 200", hz.StatusCode)
	}

	// ...but the in-flight job drains to completion, error-free.
	var rows int
	var done rowMsg
	for sc.Scan() {
		var m rowMsg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if m.Error != "" {
			t.Fatalf("error row while draining: %s: %s", m.ID, m.Error)
		}
		if m.Done {
			done = m
			break
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !done.Done || done.Points != 2 || done.Errors != 0 {
		t.Fatalf("in-flight job did not drain cleanly: rows=%d done=%+v", rows+1, done)
	}
}
