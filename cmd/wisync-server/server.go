package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"wisync/internal/channel"
	"wisync/internal/config"
	"wisync/internal/core"
	"wisync/internal/fault"
	"wisync/internal/harness"
	"wisync/internal/journal"
	"wisync/internal/kernels"
	"wisync/internal/sweepcache"
	"wisync/internal/wireless"
	"wisync/internal/workerpool"
)

// job is the wire form of one sweep request: a workload crossed with kind,
// core-count and seed lists. Enum fields decode from their flag names
// ("WiSync", "backoff", "task"); unknown names and unknown JSON fields are
// a 400 at decode time, so nothing malformed ever reaches a worker.
type job struct {
	Workload string           `json:"workload"`
	Kinds    []config.Kind    `json:"kinds,omitempty"`
	Cores    []int            `json:"cores,omitempty"`
	Seeds    []uint64         `json:"seeds,omitempty"`
	Variant  config.Variant   `json:"variant,omitempty"`
	MAC      wireless.MACKind `json:"mac,omitempty"`
	Exec     kernels.Exec     `json:"exec,omitempty"`
	Shards   int              `json:"shards,omitempty"`
	Iters    int              `json:"iters,omitempty"`
	N        int              `json:"n,omitempty"`
	Passes   int              `json:"passes,omitempty"`
	CS       int              `json:"cs,omitempty"`
	Duration uint64           `json:"duration,omitempty"`
	// Channel/BER/Retries select the channel-error model; the omitted
	// default is the ideal channel, under which every row is byte-identical
	// to the golden matrix. BERGood/PGB/PBG configure the burst
	// (Gilbert–Elliott) profile.
	Channel channel.Profile `json:"channel,omitempty"`
	BER     float64         `json:"ber,omitempty"`
	Retries int             `json:"retries,omitempty"`
	BERGood float64         `json:"ber_good,omitempty"`
	PGB     float64         `json:"pgb,omitempty"`
	PBG     float64         `json:"pbg,omitempty"`
	// Faults is a deterministic fault-injection plan applied to every
	// point; Budget/Watchdog are the per-point cycle guards (see
	// harness.PointSpec).
	Faults   *fault.Plan `json:"faults,omitempty"`
	Budget   uint64      `json:"budget,omitempty"`
	Watchdog uint64      `json:"watchdog,omitempty"`
	// DeadlineMS is the end-to-end wall-clock deadline for the whole job
	// in milliseconds (0: none). When it expires, in-flight points of
	// this job abort into error rows and queued ones abort as workers
	// reach them; the worker pool is never wedged.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// expand crosses the job's lists into normalized, validated point specs
// with their cache keys, in kinds x cores x seeds order (the golden
// matrix's row order). Any invalid point fails the whole job: a client
// should learn about a typo before any simulation runs.
func (j job) expand() ([]harness.PointSpec, []sweepcache.Key, error) {
	if len(j.Kinds) == 0 {
		j.Kinds = []config.Kind{config.WiSync}
	}
	if len(j.Cores) == 0 {
		j.Cores = []int{64}
	}
	if len(j.Seeds) == 0 {
		j.Seeds = []uint64{1}
	}
	specs := make([]harness.PointSpec, 0, len(j.Kinds)*len(j.Cores)*len(j.Seeds))
	keys := make([]sweepcache.Key, 0, cap(specs))
	for _, k := range j.Kinds {
		for _, cores := range j.Cores {
			for _, seed := range j.Seeds {
				spec := harness.PointSpec{
					Workload: j.Workload, Kind: k, Cores: cores, Seed: seed,
					Variant: j.Variant, MAC: j.MAC, Exec: j.Exec, Shards: j.Shards,
					Iters: j.Iters, N: j.N, Passes: j.Passes, CS: j.CS, Duration: j.Duration,
					Channel: j.Channel, BER: j.BER, Retries: j.Retries,
					BERGood: j.BERGood, PGB: j.PGB, PBG: j.PBG,
					Faults: j.Faults, Budget: j.Budget, Watchdog: j.Watchdog,
				}
				n, err := spec.Normalize()
				if err != nil {
					return nil, nil, err
				}
				if err := n.Validate(); err != nil {
					return nil, nil, fmt.Errorf("point %s: %w", n.ID(), err)
				}
				digest, err := n.Digest()
				if err != nil {
					return nil, nil, err
				}
				specs = append(specs, n)
				keys = append(keys, sweepcache.Key{Digest: digest, Seed: seed})
			}
		}
	}
	return specs, keys, nil
}

// rowMsg is one streamed NDJSON line: a result row (Row set, the
// byte-identical golden-format metrics line), an error row (Error set,
// Crashed additionally marking a worker-subprocess death or hard kill in
// -isolation=proc mode), or a trailing summary. Cached marks rows served
// without simulating; it is metadata, not part of the row, so repeated
// sweeps compare byte-identical on ID/Row/Error.
//
// Every successfully admitted job ends with exactly one trailer: {"done":
// true, ...} after the full row stream, or {"failed": true, "reason": ...}
// if the stream was cut short by an internal failure. A response with
// neither trailer means the server process itself died mid-stream
// (cmd/wisync-load classifies that as "truncated" — the journaled job is
// re-run when the server restarts).
type rowMsg struct {
	ID      string `json:"id,omitempty"`
	Row     string `json:"row,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
	Error   string `json:"error,omitempty"`
	Crashed bool   `json:"crashed,omitempty"`

	Done   bool `json:"done,omitempty"`
	Points int  `json:"points,omitempty"`
	Errors int  `json:"errors,omitempty"`
	Hits   int  `json:"hits,omitempty"`

	Failed bool   `json:"failed,omitempty"`
	Reason string `json:"reason,omitempty"`
}

type taskResult struct {
	row    string
	cached bool
	err    error
}

// task is one enqueued sweep point; res is buffered so a worker's delivery
// never blocks on a slow or departed client. ctx carries the job's
// deadline and the client's cancellation into the worker pool: an expired
// or disconnected job's points abort instead of occupying workers.
type task struct {
	spec harness.PointSpec
	key  sweepcache.Key
	ctx  context.Context
	res  chan taskResult
	// complete, when set, is invoked by the worker after delivering the
	// result — the job uses it to count down its points and mark its
	// journal record complete independently of the client connection.
	complete func()
}

// serverOptions sizes the service; zero fields take defaults.
type serverOptions struct {
	// Workers is the number of concurrent sweep-point simulations
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// QueueLimit bounds the points admitted but not yet finished, across
	// all requests; a job that would exceed it is rejected with 429
	// (default 4096).
	QueueLimit int
	// CacheEntries bounds the memoization store (default 65536).
	CacheEntries int
	// MaxJobPoints bounds one job's expansion (default 4096).
	MaxJobPoints int
	// CacheDir, when set, backs the memoization cache with a durable disk
	// tier: completed rows survive restarts (self-checksummed; corrupt
	// entries are recomputed, never served) and preload at startup.
	CacheDir string
	// WALPath, when set, journals every accepted job before its first row
	// streams; jobs incomplete at startup are replayed, and /readyz stays
	// 503 until the replay finishes.
	WALPath string
	// Isolation selects how points execute: "inproc" (default; the
	// simulation runs on a server goroutine) or "proc" (each point runs in
	// a supervised wisync-worker subprocess — crash containment, hard
	// wall-clock kills, per-point circuit breaker).
	Isolation string
	// WorkerCommand and WorkerEnv configure the subprocess argv and extra
	// environment in proc mode (defaults: wisync-worker next to this
	// binary, then $PATH).
	WorkerCommand []string
	WorkerEnv     []string
	// PointTimeout is the hard wall-clock kill per point in proc mode
	// (default 2m); BreakerAfter is the consecutive-crash count that
	// poisons a point (default 3).
	PointTimeout time.Duration
	BreakerAfter int
}

func (o serverOptions) withDefaults() serverOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 4096
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 65536
	}
	if o.MaxJobPoints <= 0 {
		o.MaxJobPoints = 4096
	}
	if o.Isolation == "" {
		o.Isolation = "inproc"
	}
	return o
}

// server is the sweep service: a bounded queue drained by a worker pool,
// fronted by the content-addressed cache.
type server struct {
	opts  serverOptions
	cache *sweepcache.Cache
	queue chan *task
	// pending counts admitted-but-unfinished points; reserve checks it
	// against QueueLimit before a job streams anything, so enqueues never
	// block and overload is an up-front 429, not a hung request.
	pending  atomic.Int64
	jobs     atomic.Uint64
	points   atomic.Uint64
	errRows  atomic.Uint64
	rejected atomic.Uint64
	// deadlines counts points aborted by a job deadline or client
	// disconnect (error rows whose chain contains core.ErrAborted).
	deadlines atomic.Uint64
	// draining is set by StartDrain: new sweeps get 503 + Retry-After and
	// /readyz reports not-ready while in-flight jobs finish.
	draining atomic.Bool
	// ready flips true once WAL replay (if any) has finished; /readyz is
	// 503 until then. /healthz is pure liveness and never flips.
	ready                        atomic.Bool
	replayedJobs, replayedPoints atomic.Uint64
	replayErrors                 atomic.Uint64
	pool                         *workerpool.Pool // nil in inproc mode
	wal                          *journal.Journal // nil without -wal
	closed                       atomic.Bool
	start                        time.Time
	mux                          *http.ServeMux
}

func newServer(o serverOptions) (*server, error) {
	o = o.withDefaults()
	s := &server{
		opts:  o,
		queue: make(chan *task, o.QueueLimit),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	if o.CacheDir != "" {
		c, err := sweepcache.NewDisk(o.CacheEntries, o.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	} else {
		s.cache = sweepcache.New(o.CacheEntries)
	}
	switch o.Isolation {
	case "inproc":
	case "proc":
		s.pool = workerpool.New(workerpool.Options{
			Command:      o.WorkerCommand,
			Env:          o.WorkerEnv,
			Workers:      o.Workers,
			PointTimeout: o.PointTimeout,
			BreakerAfter: o.BreakerAfter,
		})
	default:
		return nil, fmt.Errorf("unknown isolation mode %q (want inproc or proc)", o.Isolation)
	}
	var incomplete []journal.Entry
	if o.WALPath != "" {
		var err error
		s.wal, incomplete, err = journal.Open(o.WALPath)
		if err != nil {
			return nil, err
		}
	}
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: a draining or replaying server is still alive.
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.draining.Load():
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !s.ready.Load():
			w.Header().Set("Retry-After", "1")
			http.Error(w, "recovering: replaying journaled jobs", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	// Replay journaled jobs in the background; the server serves traffic
	// meanwhile but reports not-ready until every replayed job finished
	// (so an orchestrator can wait for the warm, consistent state).
	go s.replay(incomplete)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool once the queue drains, kills subprocess
// workers, and releases the journal (test lifecycle; the serving binary
// just exits). Idempotent.
func (s *server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.queue)
	if s.pool != nil {
		s.pool.Close()
	}
	if s.wal != nil {
		s.wal.Close()
	}
}

// runPoint executes one point under the configured isolation: on a server
// goroutine (inproc) or in a supervised worker subprocess (proc). Rows are
// byte-identical either way; proc mode adds crash containment and the
// hard wall-clock kill.
func (s *server) runPoint(ctx context.Context, spec harness.PointSpec) (string, error) {
	if s.pool != nil {
		return s.pool.Run(ctx, spec)
	}
	return spec.RunCtx(ctx)
}

// replay re-runs jobs the journal holds from a previous process: accepted,
// never completed. Points already in the durable cache are hits; only the
// genuinely unfinished tail recomputes. Replayed jobs count down to the
// same journal.Complete as live ones, and readiness waits for all of them.
func (s *server) replay(entries []journal.Entry) {
	defer s.ready.Store(true)
	for _, e := range entries {
		var j job
		if err := json.Unmarshal(e.Payload, &j); err != nil {
			// A payload this process can no longer decode (downgrade,
			// corruption the line-level JSON survived): drop it rather than
			// wedge readiness forever.
			s.replayErrors.Add(1)
			_ = s.wal.Complete(e.ID)
			continue
		}
		specs, keys, err := j.expand()
		if err != nil {
			s.replayErrors.Add(1)
			_ = s.wal.Complete(e.ID)
			continue
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if j.DeadlineMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(j.DeadlineMS)*time.Millisecond)
		}
		s.replayedJobs.Add(1)
		s.replayedPoints.Add(uint64(len(specs)))
		// Replay bypasses reserve: these points were admitted by a previous
		// process and must not be bounced by this one's queue pressure.
		s.pending.Add(int64(len(specs)))
		id := e.ID
		complete := s.jobCompleter(id, len(specs))
		tasks := make([]*task, len(specs))
		for i := range specs {
			tasks[i] = &task{spec: specs[i], key: keys[i], ctx: ctx, res: make(chan taskResult, 1), complete: complete}
			s.queue <- tasks[i]
		}
		for _, t := range tasks {
			<-t.res // rows land in the cache; no client is attached
		}
		cancel()
	}
}

// jobCompleter returns the per-point countdown that marks job id complete
// in the journal once all n points have been delivered — driven by the
// workers, so it fires even when the client has disconnected mid-stream.
func (s *server) jobCompleter(id uint64, n int) func() {
	if s.wal == nil {
		return nil
	}
	var left atomic.Int64
	left.Store(int64(n))
	return func() {
		if left.Add(-1) == 0 {
			_ = s.wal.Complete(id)
		}
	}
}

// StartDrain flips the server into graceful-shutdown mode: /sweep answers
// 503 + Retry-After, /readyz reports draining (while /healthz stays 200 —
// the process is alive, just finishing), and already-admitted jobs keep
// streaming until done (the caller bounds that with its grace period).
func (s *server) StartDrain() { s.draining.Store(true) }

// worker drains the queue through the cache. PointSpec.RunCtx recovers
// its own panics and the cache recovers compute panics, so a poisoned
// point reaches the client as an error row and the worker lives on; an
// expired deadline aborts the point the same way, freeing the worker. In
// proc mode the compute dispatches to a supervised subprocess instead,
// adding crash containment and the hard wall-clock kill.
func (s *server) worker() {
	for t := range s.queue {
		spec, ctx := t.spec, t.ctx
		row, cached, err := s.cache.Do(t.key, func() (string, error) { return s.runPoint(ctx, spec) })
		s.pending.Add(-1)
		s.points.Add(1)
		if err != nil {
			s.errRows.Add(1)
			if errors.Is(err, core.ErrAborted) {
				s.deadlines.Add(1)
			}
		}
		t.res <- taskResult{row: row, cached: cached, err: err}
		if t.complete != nil {
			t.complete()
		}
	}
}

// reserve admits n points against the queue limit, atomically.
func (s *server) reserve(n int) bool {
	for {
		cur := s.pending.Load()
		if cur+int64(n) > int64(s.opts.QueueLimit) {
			return false
		}
		if s.pending.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// handleSweep validates, admits and streams one job: rows go back as NDJSON
// in point order, each flushed as soon as its prefix of the job completes,
// so a client watches a large sweep fill in while later points are still
// simulating or waiting behind other clients' work.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a sweep job to /sweep")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var j job
	if err := dec.Decode(&j); err != nil {
		httpError(w, http.StatusBadRequest, "bad job: %v", err)
		return
	}
	if j.DeadlineMS < 0 {
		httpError(w, http.StatusBadRequest, "bad job: deadline_ms must be >= 0")
		return
	}
	specs, keys, err := j.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job: %v", err)
		return
	}
	if len(specs) > s.opts.MaxJobPoints {
		httpError(w, http.StatusBadRequest, "job expands to %d points, cap is %d",
			len(specs), s.opts.MaxJobPoints)
		return
	}
	if !s.reserve(len(specs)) {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full (%d points pending, limit %d)",
			s.pending.Load(), s.opts.QueueLimit)
		return
	}
	s.jobs.Add(1)

	// Journal the accepted job — fsync'd — before the first row streams:
	// from here on, a crash of this process re-runs the job at the next
	// startup instead of silently losing it.
	var complete func()
	if s.wal != nil {
		payload, err := json.Marshal(j)
		if err == nil {
			var id uint64
			if id, err = s.wal.Append(payload); err == nil {
				complete = s.jobCompleter(id, len(specs))
			}
		}
		if err != nil {
			s.pending.Add(int64(-len(specs)))
			httpError(w, http.StatusInternalServerError, "journaling job: %v", err)
			return
		}
	}

	// The job context carries both the client's disconnect (r.Context) and
	// the optional wall-clock deadline into every point: when either fires,
	// queued and in-flight points abort into error rows instead of tying up
	// workers.
	ctx := r.Context()
	if j.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	// Admitted: enqueue everything (reserve guarantees capacity, so these
	// sends never block), then stream rows in point order.
	tasks := make([]*task, len(specs))
	for i := range specs {
		tasks[i] = &task{spec: specs[i], key: keys[i], ctx: ctx, res: make(chan taskResult, 1), complete: complete}
		s.queue <- tasks[i]
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Trailer guarantee: every admitted job's stream ends in exactly one
	// trailer — {"done"} after the full row set, or {"failed"} when an
	// internal fault (including a handler panic) cuts the stream short
	// while the client is still connected. Only the death of this process
	// (or of the client) can leave a stream trailerless; the journal
	// covers the former, the client's own exit the latter.
	trailerSent := false
	defer func() {
		if trailerSent {
			return
		}
		reason := "internal error"
		if r := recover(); r != nil {
			reason = fmt.Sprintf("internal error: %v", r)
		}
		_ = enc.Encode(rowMsg{Failed: true, Reason: reason})
		if flusher != nil {
			flusher.Flush()
		}
	}()

	var hits, errs int
	for i, t := range tasks {
		res := <-t.res
		msg := rowMsg{ID: t.spec.ID(), Row: res.row, Cached: res.cached}
		if res.err != nil {
			errs++
			msg = rowMsg{ID: t.spec.ID(), Error: res.err.Error(),
				Crashed: errors.Is(res.err, workerpool.ErrCrashed) || errors.Is(res.err, workerpool.ErrKilled)}
		} else if res.cached {
			hits++
		}
		if err := streamFailHook(i); err != nil {
			panic(err) // test hook: simulate an internal mid-stream fault
		}
		if err := enc.Encode(msg); err != nil {
			// Client gone: no trailer can reach it. Remaining deliveries
			// land in buffered channels; the workers still complete them
			// into the cache and the journal countdown.
			trailerSent = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	trailerSent = true
	_ = enc.Encode(rowMsg{Done: true, Points: len(tasks), Errors: errs, Hits: hits})
}

// streamFailHook lets tests inject an internal fault between row i's
// completion and its encode; it is a no-op in production.
var streamFailHook = func(i int) error { return nil }

// statsResponse is the /stats payload.
type statsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Workers       int              `json:"workers"`
	QueuePending  int64            `json:"queue_pending"`
	QueueLimit    int              `json:"queue_limit"`
	Jobs          uint64           `json:"jobs"`
	Points        uint64           `json:"points"`
	ErrorRows     uint64           `json:"error_rows"`
	Rejected429   uint64           `json:"rejected_429"`
	Deadlines     uint64           `json:"deadlines"`
	Draining      bool             `json:"draining"`
	Ready         bool             `json:"ready"`
	Isolation     string           `json:"isolation"`
	Cache         sweepcache.Stats `json:"cache"`
	// Pool carries the subprocess supervision counters (restarts, kills,
	// crashes, breaker_open, ...) in proc mode; absent in inproc mode.
	Pool *workerpool.Stats `json:"pool,omitempty"`
	// Journal recovery: jobs/points re-run from the WAL at startup, jobs
	// whose journaled payload could no longer be executed, and the
	// incomplete jobs currently on record.
	ReplayedJobs   uint64 `json:"replayed_jobs,omitempty"`
	ReplayedPoints uint64 `json:"replayed_points,omitempty"`
	ReplayErrors   uint64 `json:"replay_errors,omitempty"`
	JournalPending int    `json:"journal_pending,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueuePending:  s.pending.Load(),
		QueueLimit:    s.opts.QueueLimit,
		Jobs:          s.jobs.Load(),
		Points:        s.points.Load(),
		ErrorRows:     s.errRows.Load(),
		Rejected429:   s.rejected.Load(),
		Deadlines:     s.deadlines.Load(),
		Draining:      s.draining.Load(),
		Ready:         s.ready.Load(),
		Isolation:     s.opts.Isolation,
		Cache:         s.cache.Stats(),
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		resp.Pool = &ps
	}
	if s.wal != nil {
		resp.ReplayedJobs = s.replayedJobs.Load()
		resp.ReplayedPoints = s.replayedPoints.Load()
		resp.ReplayErrors = s.replayErrors.Load()
		resp.JournalPending = s.wal.Pending()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
