// Command wisync-server is the sweep service: a long-running HTTP/JSON
// backend that turns CLI sweeps into jobs from many concurrent clients.
//
// A job names a workload and lists of machine kinds, core counts and
// seeds; the server crosses them into points, fans the points across a
// worker pool, and streams result rows back as NDJSON as they complete —
// in point order, flushed incrementally. Because every point is a
// deterministic seeded simulation (pinned by the golden-conformance
// suites), completed points are memoized in a content-addressed LRU cache
// keyed by (canonical config digest, seed): repeated or overlapping sweeps
// from any number of clients are served byte-identical at cache speed.
//
//	wisync-server -addr :8080 &
//	curl -s localhost:8080/sweep -d '{
//	  "workload": "tightloop",
//	  "kinds": ["Baseline", "WiSync"], "cores": [16, 64], "seeds": [1]
//	}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /sweep    submit a job; response is application/x-ndjson, one
//	               object per point ({"id", "row", "cached"} or
//	               {"id", "error"}) and a trailing {"done": true} summary
//	               (or {"failed": true, "reason": ...} if an internal
//	               fault cut the stream short)
//	GET  /stats    cache hit/miss/in-flight metrics, queue depth, totals,
//	               worker-pool supervision and journal-replay counters
//	GET  /healthz  liveness: 200 whenever the process can answer
//	GET  /readyz   readiness: 503 while draining or replaying journaled
//	               jobs after a restart, 200 once warm
//
// Malformed jobs — unknown workload, kind, MAC, exec mode or variant,
// out-of-range cores/shards/parameters, unknown JSON fields — are rejected
// with 400 before any simulation runs. When the bounded admission queue is
// full the server answers 429 with Retry-After instead of queueing
// unboundedly; cmd/wisync-load demonstrates riding that backpressure with
// thousands of concurrent requests.
//
// Crash safety is opt-in by flag, off by default so the bare server stays
// dependency- and state-free:
//
//	-cache-dir DIR   durable result cache: completed rows persist as
//	                 self-checksummed files and preload on restart;
//	                 corrupt entries are detected, dropped and recomputed
//	-wal FILE        job journal: accepted jobs are fsync'd before their
//	                 first row streams, and jobs interrupted by a crash
//	                 re-run at the next startup (against the warm cache,
//	                 so only the unfinished tail recomputes)
//	-isolation proc  run every point in a supervised wisync-worker
//	                 subprocess: a crashing or runaway point costs one
//	                 structured error row, never the server
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"
)

// resolveWorkerBin picks the worker argv for proc mode: the explicit flag
// value, else wisync-worker sitting next to this binary (the layout `go
// build ./...` and the release tarball produce), else $PATH.
func resolveWorkerBin(explicit string) []string {
	if explicit != "" {
		return []string{explicit}
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "wisync-worker")
		if _, err := os.Stat(cand); err == nil {
			return []string{cand}
		}
	}
	return []string{"wisync-worker"}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent sweep-point simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 4096, "max admitted-but-unfinished points before 429")
	cacheEntries := flag.Int("cache-entries", 65536, "memoization cache capacity (points)")
	maxJobPoints := flag.Int("max-job-points", 4096, "max points one job may expand to")
	grace := flag.Duration("grace", 10*time.Second, "drain period for in-flight jobs on SIGINT/SIGTERM")
	cacheDir := flag.String("cache-dir", "", "durable result-cache directory (empty: memory only)")
	wal := flag.String("wal", "", "job journal path; interrupted jobs replay on restart (empty: no journal)")
	isolation := flag.String("isolation", "inproc", "point execution: inproc, or proc for supervised worker subprocesses")
	workerBin := flag.String("worker-bin", "", "wisync-worker binary for -isolation=proc (default: next to this binary, then $PATH)")
	pointTimeout := flag.Duration("point-timeout", 2*time.Minute, "hard wall-clock kill per point in proc mode")
	breaker := flag.Int("breaker", 3, "consecutive worker crashes of one point before its circuit breaker opens")
	flag.Parse()

	s, err := newServer(serverOptions{
		Workers:       *workers,
		QueueLimit:    *queue,
		CacheEntries:  *cacheEntries,
		MaxJobPoints:  *maxJobPoints,
		CacheDir:      *cacheDir,
		WALPath:       *wal,
		Isolation:     *isolation,
		WorkerCommand: resolveWorkerBin(*workerBin),
		PointTimeout:  *pointTimeout,
		BreakerAfter:  *breaker,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		// Graceful shutdown: stop admitting (new sweeps see 503 +
		// Retry-After, /readyz flips to draining while /healthz stays
		// live), then give in-flight jobs up to the grace period to
		// finish streaming.
		log.Printf("wisync-server draining (grace %s)", *grace)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	log.Printf("wisync-server listening on %s (workers=%d queue=%d cache=%d isolation=%s)",
		*addr, s.opts.Workers, s.opts.QueueLimit, s.opts.CacheEntries, s.opts.Isolation)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
