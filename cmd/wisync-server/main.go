// Command wisync-server is the sweep service: a long-running HTTP/JSON
// backend that turns CLI sweeps into jobs from many concurrent clients.
//
// A job names a workload and lists of machine kinds, core counts and
// seeds; the server crosses them into points, fans the points across a
// worker pool, and streams result rows back as NDJSON as they complete —
// in point order, flushed incrementally. Because every point is a
// deterministic seeded simulation (pinned by the golden-conformance
// suites), completed points are memoized in a content-addressed LRU cache
// keyed by (canonical config digest, seed): repeated or overlapping sweeps
// from any number of clients are served byte-identical at cache speed.
//
//	wisync-server -addr :8080 &
//	curl -s localhost:8080/sweep -d '{
//	  "workload": "tightloop",
//	  "kinds": ["Baseline", "WiSync"], "cores": [16, 64], "seeds": [1]
//	}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /sweep    submit a job; response is application/x-ndjson, one
//	               object per point ({"id", "row", "cached"} or
//	               {"id", "error"}) and a trailing {"done": true} summary
//	GET  /stats    cache hit/miss/in-flight metrics, queue depth, totals
//	GET  /healthz  liveness
//
// Malformed jobs — unknown workload, kind, MAC, exec mode or variant,
// out-of-range cores/shards/parameters, unknown JSON fields — are rejected
// with 400 before any simulation runs. When the bounded admission queue is
// full the server answers 429 with Retry-After instead of queueing
// unboundedly; cmd/wisync-load demonstrates riding that backpressure with
// thousands of concurrent requests.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent sweep-point simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 4096, "max admitted-but-unfinished points before 429")
	cacheEntries := flag.Int("cache-entries", 65536, "memoization cache capacity (points)")
	maxJobPoints := flag.Int("max-job-points", 4096, "max points one job may expand to")
	grace := flag.Duration("grace", 10*time.Second, "drain period for in-flight jobs on SIGINT/SIGTERM")
	flag.Parse()

	s := newServer(serverOptions{
		Workers:      *workers,
		QueueLimit:   *queue,
		CacheEntries: *cacheEntries,
		MaxJobPoints: *maxJobPoints,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		// Graceful shutdown: stop admitting (new sweeps see 503 +
		// Retry-After, /healthz flips to draining), then give in-flight
		// jobs up to the grace period to finish streaming.
		log.Printf("wisync-server draining (grace %s)", *grace)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	log.Printf("wisync-server listening on %s (workers=%d queue=%d cache=%d)",
		*addr, s.opts.Workers, s.opts.QueueLimit, s.opts.CacheEntries)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
