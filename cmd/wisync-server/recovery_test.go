package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wisync/internal/harness"
	"wisync/internal/journal"
)

// The proc-isolation tests re-exec this test binary as the worker
// subprocess, the same pattern internal/workerpool uses: TestMain diverts
// to a worker loop when the helper env var is set.
//
//	serve     the real harness.ServeWire loop (rows byte-identical)
//	selective ServeWire, except seed 666 crashes the process mid-point
const serverWorkerHelperEnv = "WISYNC_SERVER_WORKER_HELPER"

func TestMain(m *testing.M) {
	switch os.Getenv(serverWorkerHelperEnv) {
	case "":
		os.Exit(m.Run())
	case "serve":
		if err := harness.ServeWire(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "selective":
		dec := json.NewDecoder(os.Stdin)
		for {
			var req harness.WireRequest
			if err := dec.Decode(&req); err != nil {
				os.Exit(0)
			}
			if req.Spec.Seed == 666 {
				os.Exit(2)
			}
			resp := harness.WireResponse{Seq: req.Seq}
			if row, err := req.Spec.Run(); err != nil {
				resp.Err, resp.Error = true, err.Error()
			} else {
				resp.Row = row
			}
			if err := harness.EncodeWire(os.Stdout, resp); err != nil {
				os.Exit(0)
			}
		}
	}
}

// procOptions returns serverOptions running points in subprocesses of this
// test binary, diverted into the given helper mode.
func procOptions(t *testing.T, mode string, workers int) serverOptions {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return serverOptions{
		Workers:       workers,
		Isolation:     "proc",
		WorkerCommand: []string{exe},
		WorkerEnv:     []string{serverWorkerHelperEnv + "=" + mode},
		PointTimeout:  time.Minute,
	}
}

// waitReady polls /readyz until it answers 200 (or the deadline expires):
// the contract an orchestrator relies on after a restart.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("/readyz never turned 200")
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	return st
}

// TestServerProcIsolationGolden pins the isolation invariant over HTTP:
// with every point running in a worker subprocess, the golden matrix
// streams back byte-identical to testdata/golden.tsv, and /stats carries
// the pool counters.
func TestServerProcIsolationGolden(t *testing.T) {
	golden := loadGolden(t)
	_, ts := newTestServer(t, procOptions(t, "serve", 2))
	body := `{"workload":"tightloop","kinds":["Baseline","Baseline+","WiSyncNoT","WiSync"],"cores":[16,64],"seeds":[1]}`
	rows, done, status := postJob(t, ts.URL, body)
	if status != http.StatusOK || done.Errors != 0 {
		t.Fatalf("proc job: status=%d done=%+v", status, done)
	}
	for _, m := range rows {
		if m.Row != golden[m.ID] {
			t.Fatalf("subprocess row drifted from golden:\ngot:  %s\nwant: %s", m.Row, golden[m.ID])
		}
	}
	st := getStats(t, ts.URL)
	if st.Isolation != "proc" || st.Pool == nil {
		t.Fatalf("/stats missing pool in proc mode: %+v", st)
	}
	if st.Pool.Points != uint64(len(rows)) || st.Pool.Crashes != 0 {
		t.Fatalf("pool stats: %+v", st.Pool)
	}
}

// TestServerProcCrashedRow pins crash containment end to end: a point that
// kills its worker subprocess becomes one structured crashed row, the rest
// of the job (and the job's done trailer) is unharmed, and the restart is
// visible in /stats.
func TestServerProcCrashedRow(t *testing.T) {
	_, ts := newTestServer(t, procOptions(t, "selective", 1))
	body := `{"workload":"tightloop","kinds":["WiSync"],"cores":[16],"seeds":[1,666,42]}`
	rows, done, status := postJob(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(rows) != 3 || done.Errors != 1 {
		t.Fatalf("rows=%d done=%+v", len(rows), done)
	}
	var crashed int
	for _, m := range rows {
		if m.Crashed {
			crashed++
			if !strings.Contains(m.Error, "worker") {
				t.Fatalf("crashed row lacks a structured error: %+v", m)
			}
		} else if m.Error != "" {
			t.Fatalf("non-crash error row: %+v", m)
		} else if m.Row == "" {
			t.Fatalf("healthy row empty: %+v", m)
		}
	}
	if crashed != 1 {
		t.Fatalf("crashed rows = %d, want 1", crashed)
	}
	st := getStats(t, ts.URL)
	if st.Pool == nil || st.Pool.Crashes != 1 || st.Pool.Restarts < 1 {
		t.Fatalf("pool stats after crash: %+v", st.Pool)
	}
	// The server survives: the crashing seed is recomputable-free but the
	// healthy part of the matrix still serves (now from cache).
	rows2, done2, _ := postJob(t, ts.URL, `{"workload":"tightloop","kinds":["WiSync"],"cores":[16],"seeds":[1,42]}`)
	if done2.Errors != 0 || done2.Hits != 2 {
		t.Fatalf("healthy resubmit: done=%+v rows=%+v", done2, rows2)
	}
}

// TestServerJournalRecovery pins the WAL contract: a job journaled by a
// previous process but never completed is replayed at startup, /readyz
// holds 503 until the replay lands, and a client resubmitting the job is
// then served entirely from the (durable) cache, byte-identical to golden.
func TestServerJournalRecovery(t *testing.T) {
	golden := loadGolden(t)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	cacheDir := filepath.Join(dir, "cache")
	body := `{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16,64],"seeds":[1]}`

	// A "previous process" accepted the job and died before completing it:
	// journal it by hand, with no completion record.
	j, _, err := journal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(json.RawMessage(body)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, ts := newTestServer(t, serverOptions{Workers: 2, WALPath: walPath, CacheDir: cacheDir})
	waitReady(t, ts.URL)
	st := getStats(t, ts.URL)
	if st.ReplayedJobs != 1 || st.ReplayedPoints != 4 || st.JournalPending != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	if st.Cache.DiskWrites != 4 {
		t.Fatalf("replayed rows not durably stored: %+v", st.Cache)
	}

	// The client's resubmission: all four points are hits, byte-identical.
	rows, done, status := postJob(t, ts.URL, body)
	if status != http.StatusOK || done.Errors != 0 || done.Hits != 4 {
		t.Fatalf("resubmit after replay: status=%d done=%+v", status, done)
	}
	for _, m := range rows {
		if !m.Cached || m.Row != golden[m.ID] {
			t.Fatalf("replayed row wrong: %+v (want %s)", m, golden[m.ID])
		}
	}
	s.Close()

	// A second restart over the same state: nothing to replay (the job
	// completed and was compacted away), and the disk tier preloads the
	// rows so the job is warm-served without a single recompute.
	s2, ts2 := newTestServer(t, serverOptions{Workers: 2, WALPath: walPath, CacheDir: cacheDir})
	defer func() { ts2.Close(); s2.Close() }()
	waitReady(t, ts2.URL)
	st2 := getStats(t, ts2.URL)
	if st2.ReplayedJobs != 0 || st2.Cache.Preloaded != 4 {
		t.Fatalf("second restart: %+v", st2)
	}
	rows2, done2, _ := postJob(t, ts2.URL, body)
	if done2.Hits != 4 || done2.Errors != 0 {
		t.Fatalf("warm job after restart: done=%+v", done2)
	}
	for _, m := range rows2 {
		if m.Row != golden[m.ID] {
			t.Fatalf("warm row drifted:\ngot:  %s\nwant: %s", m.Row, golden[m.ID])
		}
	}
	if st := getStats(t, ts2.URL); st.Cache.Misses != 0 {
		t.Fatalf("warm restart recomputed: %+v", st.Cache)
	}
}

// TestServerReplayDropsUndecodable pins the poisoned-journal path: a WAL
// record this build cannot decode is dropped (counted, completed) rather
// than wedging readiness forever.
func TestServerReplayDropsUndecodable(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	j, _, err := journal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(json.RawMessage(`{"workload":"mystery-not-a-workload"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, ts := newTestServer(t, serverOptions{Workers: 1, WALPath: walPath})
	waitReady(t, ts.URL)
	st := getStats(t, ts.URL)
	if st.ReplayErrors != 1 || st.JournalPending != 0 {
		t.Fatalf("undecodable replay: %+v", st)
	}
}

// TestServerFailedTrailer pins the trailer guarantee: when an internal
// fault cuts a stream short with the client still connected, the stream
// ends with one {"failed": true} trailer instead of going silent — the
// signal wisync-load uses to tell a server fault from a truncated
// (server-death) stream.
func TestServerFailedTrailer(t *testing.T) {
	prev := streamFailHook
	streamFailHook = func(i int) error {
		if i == 1 {
			return fmt.Errorf("injected stream fault")
		}
		return nil
	}
	defer func() { streamFailHook = prev }()

	_, ts := newTestServer(t, serverOptions{Workers: 1})
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workload":"tightloop","kinds":["Baseline","WiSync"],"cores":[16],"seeds":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msgs []rowMsg
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var m rowMsg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		msgs = append(msgs, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(msgs) != 2 {
		t.Fatalf("stream: %+v", msgs)
	}
	if msgs[0].Row == "" || msgs[0].Error != "" {
		t.Fatalf("first row: %+v", msgs[0])
	}
	last := msgs[len(msgs)-1]
	if !last.Failed || last.Done || !strings.Contains(last.Reason, "injected stream fault") {
		t.Fatalf("missing failed trailer: %+v", last)
	}
}
