module wisync

go 1.22
